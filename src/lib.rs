//! Facade crate re-exporting the Prospector workspace.
//!
//! `prospector` reproduces "A Sampling-Based Approach to Optimizing Top-k
//! Queries in Sensor Networks" (Silberstein, Braynard, Ellis, Munagala,
//! Yang — ICDE 2006). See the workspace README for an overview and
//! `examples/quickstart.rs` for a first tour.

pub use prospector_ckpt as ckpt;
pub use prospector_core as core;
pub use prospector_data as data;
pub use prospector_lp as lp;
pub use prospector_net as net;
pub use prospector_obs as obs;
pub use prospector_par as par;
pub use prospector_serve as serve;
pub use prospector_sim as sim;
