//! The paper's motivating scenario (Section 1): ornithologists place
//! sensor-equipped bird feeders in a forest and periodically ask for the
//! top-k most-visited feeders. Territorial birds make feeder popularity
//! *negatively correlated within an area* — some feeder in each territory
//! is busy, but never many at once — which is exactly the contention-zone
//! workload where local filtering shines.
//!
//! ```text
//! cargo run --example birdwatch
//! ```

use prospector::core::{evaluate, PlanContext, Planner, ProspectorLpLf, ProspectorLpNoLf};
use prospector::data::{ContentionZones, SampleSet, ValueSource};
use prospector::net::{EnergyModel, NetworkBuilder, ZoneLayout};
use prospector::sim::execute_plan;

fn main() {
    let k = 6;
    let zones = 5;

    // Feeders: 60 scattered through the forest plus 5 territories of 2k
    // feeders each around the perimeter; the field station is the root.
    let network = NetworkBuilder::new(60, 400.0, 400.0, 90.0)
        .seed(2024)
        .zones(ZoneLayout { zones, nodes_per_zone: 2 * k, zone_radius: 40.0 })
        .build()
        .expect("forest deployment connects");
    let topology = &network.topology;
    let n = network.len();
    println!("{n} feeders, {} territories, tree height {}", zones, topology.height());

    // Bird visits: background feeders see a steady ~100 landings; inside a
    // territory, each feeder has a 1/(2·zones) chance of being the busy
    // one this period.
    let mut visits = ContentionZones::paper_setup(network.zone.clone(), k, 100.0, 2024);

    // A season of weekly full surveys feeds the sample window.
    let mut samples = SampleSet::new(n, k, 30);
    for week in 0..30 {
        samples.push(visits.values(week));
    }

    let energy = EnergyModel::mica2();
    let budget = 120.0; // mJ per query

    println!("\nwhere should we watch this week? (top {k} feeders, {budget} mJ budget)\n");
    for (name, planner) in [
        ("LP-LF (no local filtering)", &ProspectorLpNoLf as &dyn Planner),
        ("LP+LF (local filtering)", &ProspectorLpLf),
    ] {
        let ctx = PlanContext::new(topology, &energy, &samples, budget);
        let plan = planner.plan(&ctx).expect("planning succeeds");

        // Evaluate over the next 8 weeks.
        let mut acc = 0.0;
        let mut mj = 0.0;
        for week in 30..38 {
            let v = visits.values(week);
            acc += evaluate::accuracy_on_values(&plan, topology, &v, k);
            mj += execute_plan(&plan, topology, &energy, &v, k, None).total_mj();
        }
        println!(
            "{name:<28} visits {:>3} feeders, finds {:>5.1}% of the busiest, {:>6.1} mJ/query",
            plan.num_visited(topology),
            100.0 * acc / 8.0,
            mj / 8.0
        );
    }

    // Show one concrete week with the LP+LF plan.
    let ctx = PlanContext::new(topology, &energy, &samples, budget);
    let plan = ProspectorLpLf.plan(&ctx).expect("planning succeeds");
    let week = 38;
    let v = visits.values(week);
    let report = execute_plan(&plan, topology, &energy, &v, k, None);
    println!("\nweek {week}: best observation spots");
    for r in &report.answer {
        let zone = network.zone[r.node.index()]
            .map(|z| format!("territory {z}"))
            .unwrap_or_else(|| "open forest".into());
        println!("  feeder {:<5} {:>6.1} landings  ({zone})", r.node.to_string(), r.value);
    }
}
