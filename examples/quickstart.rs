//! Quickstart: plan and run one energy-budgeted top-k query.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a 60-node random sensor network, collects a window of samples,
//! asks `ProspectorLpLf` for a plan that fits a 30 mJ collection budget,
//! executes it on a fresh epoch and compares against the true top 10.

use prospector::core::{evaluate, PlanContext, Planner, ProspectorLpLf};
use prospector::data::{IndependentGaussian, SampleSet, ValueSource};
use prospector::net::{EnergyModel, NetworkBuilder};
use prospector::sim::execute_plan;

fn main() {
    // 1. Deploy: 60 nodes in a 300 m × 300 m field, min-hop routing tree.
    let network =
        NetworkBuilder::new(60, 300.0, 300.0, 70.0).seed(7).build().expect("placement connects");
    let topology = &network.topology;
    println!(
        "network: {} nodes, tree height {}, root {}",
        topology.len(),
        topology.height(),
        topology.root()
    );

    // 2. Readings: independent per-node Gaussians (Figure 3's workload).
    let mut source = IndependentGaussian::random(60, 40.0..60.0, 1.0..5.0, 7);

    // 3. Sample window: 12 full-network sweeps (the exploration phase).
    let k = 10;
    let mut samples = SampleSet::new(60, k, 12);
    for epoch in 0..12 {
        samples.push(source.values(epoch));
    }

    // 4. Plan: highest expected accuracy within a 30 mJ collection budget.
    let energy = EnergyModel::mica2();
    let budget_mj = 30.0;
    let ctx = PlanContext::new(topology, &energy, &samples, budget_mj);
    let plan = ProspectorLpLf.plan(&ctx).expect("planning succeeds");
    println!(
        "plan: visits {} of {} nodes, total bandwidth {}, planned cost {:.1} mJ (budget {budget_mj} mJ)",
        plan.num_visited(topology),
        topology.len(),
        plan.total_bandwidth(),
        ctx.plan_cost(&plan),
    );

    // 5. Execute on a fresh epoch and score against the truth.
    let values = source.values(12);
    let report = execute_plan(&plan, topology, &energy, &values, k, None);
    let accuracy = evaluate::accuracy_on_values(&plan, topology, &values, k);
    println!("answer ({} values):", report.answer.len());
    for r in &report.answer {
        println!("  {}  {:.2}", r.node, r.value);
    }
    println!(
        "accuracy: {:.0}% of the true top {k}; measured energy {:.1} mJ",
        100.0 * accuracy,
        report.total_mj()
    );
}
