//! Beyond top-k: the sampling framework generalizes to any query that
//! returns a subset of readings (Section 3), and to the cluster-level
//! top-k of the paper's introduction.
//!
//! ```text
//! cargo run --example subset_queries
//! ```
//!
//! Three queries over one vineyard deployment:
//! 1. a **selection** query — "which blocks are above 30 °C?" (frost/heat
//!    alarms);
//! 2. a **quantile band** — "which blocks sit in the middle of the
//!    temperature distribution?" (calibration picks);
//! 3. a **cluster top-k** — "the 2 hottest vineyard blocks by average".

use prospector::core::cluster::{cluster_accuracy, plan_cluster_query, Clustering};
use prospector::core::subset::{plan_subset_query, subset_accuracy, subset_context};
use prospector::core::PlanContext;
use prospector::data::intel::IntelConfig;
use prospector::data::{AnswerSpec, IntelLabLike, SampleSet, SubsetSampleSet, ValueSource};
use prospector::net::{EnergyModel, NetworkBuilder};

fn main() {
    // 48 sensors over a 60 m × 45 m vineyard; temperatures behave like the
    // Intel-lab generator (warm spots + diurnal cycle).
    let network = (0..6)
        .map(|i| 12.0 + 2.0 * i as f64)
        .find_map(|r| NetworkBuilder::new(48, 60.0, 45.0, r).seed(12).build().ok())
        .expect("vineyard connects");
    let topology = &network.topology;
    let energy = EnergyModel::mica2();
    let mut temps = IntelLabLike::new(network.positions.clone(), IntelConfig::default(), 12);

    // A placeholder SampleSet satisfies PlanContext (subset planning reads
    // its counts from the generalized windows below).
    let mut placeholder = SampleSet::new(48, 1, 1);
    placeholder.push(vec![0.0; 48]);

    // ---- 1. Selection: readings above 30 °C -------------------------------
    let hot = AnswerSpec::AboveThreshold(25.0);
    let mut window = SubsetSampleSet::new(48, hot.clone(), 16);
    for epoch in 0..16 {
        window.push(temps.values(epoch));
    }
    let ctx = subset_context(topology, &energy, &placeholder, 15.0);
    let plan = plan_subset_query(&ctx, &window).expect("selection plan");
    let mut acc = 0.0;
    for epoch in 16..24 {
        acc += subset_accuracy(&plan, topology, &hot, &temps.values(epoch));
    }
    println!(
        "selection  (>25°C):      visits {:>2} nodes, {:>5.1}% of alarms caught, {:>5.1} mJ budget",
        plan.num_visited(topology) - 1,
        100.0 * acc / 8.0,
        15.0
    );

    // ---- 2. Quantile band: the middle fifth -------------------------------
    let band = AnswerSpec::QuantileBand { lo: 0.4, hi: 0.6 };
    let mut window = SubsetSampleSet::new(48, band.clone(), 16);
    for epoch in 0..16 {
        window.push(temps.values(epoch));
    }
    let ctx = subset_context(topology, &energy, &placeholder, 25.0);
    let plan = plan_subset_query(&ctx, &window).expect("quantile plan");
    let mut acc = 0.0;
    for epoch in 16..24 {
        acc += subset_accuracy(&plan, topology, &band, &temps.values(epoch));
    }
    println!(
        "quantile   (40-60%):     visits {:>2} nodes, {:>5.1}% of the band delivered",
        plan.num_visited(topology) - 1,
        100.0 * acc / 8.0,
    );

    // ---- 3. Cluster top-k: hottest vineyard blocks ------------------------
    // Blocks = 8 spatial clusters by x coordinate (6 sensors each).
    let mut order: Vec<usize> = (1..48).collect();
    order.sort_by(|&a, &b| network.positions[a].x.total_cmp(&network.positions[b].x));
    let mut assignment = vec![None; 48];
    for (rank, node) in order.iter().enumerate() {
        assignment[*node] = Some(rank / 6);
    }
    let clustering = Clustering::new(assignment);
    let k_clusters = 2;
    let mut samples = SampleSet::new(48, 1, 16);
    for epoch in 0..16 {
        samples.push(temps.values(epoch));
    }
    let ctx = PlanContext::new(topology, &energy, &samples, 30.0);
    let plan = plan_cluster_query(&ctx, &clustering, &samples, k_clusters).expect("cluster plan");
    let mut acc = 0.0;
    for epoch in 16..24 {
        acc += cluster_accuracy(&plan, topology, &clustering, &temps.values(epoch), k_clusters);
    }
    println!(
        "clusters   (top {k_clusters} of 8): visits {:>2} nodes, {:>5.1}% of the hottest blocks found",
        plan.num_visited(topology) - 1,
        100.0 * acc / 8.0,
    );
}
