//! Exact top-k three ways (Sections 2 and 4.3): the one-pass `NAIVE-k`,
//! the pipelined `NAIVE-1`, and the two-phase `ProspectorExact`, whose
//! proof-carrying first phase lets the mop-up phase skip most of the
//! network.
//!
//! ```text
//! cargo run --example exact_topk
//! ```

use prospector::core::{exact::ExactConfig, Plan, PlanContext};
use prospector::data::{top_k_nodes, IndependentGaussian, SampleSet, ValueSource};
use prospector::net::{EnergyModel, NetworkBuilder};
use prospector::sim::{execute_plan, run_exact, run_naive1};

fn main() {
    let n = 80;
    let k = 12;
    let network =
        NetworkBuilder::new(n, 360.0, 360.0, 70.0).seed(4).build().expect("placement connects");
    let topology = &network.topology;
    let energy = EnergyModel::mica2();

    let mut source = IndependentGaussian::random(n, 40.0..60.0, 1.0..4.0, 4);
    let mut samples = SampleSet::new(n, k, 8);
    for epoch in 0..8 {
        samples.push(source.values(epoch));
    }
    let values = source.values(8);
    let truth = top_k_nodes(&values, k);

    // NAIVE-k: one pass, every node forwards its subtree's top k.
    let naive = Plan::naive_k(topology, k);
    let naive_report = execute_plan(&naive, topology, &energy, &values, k, None);
    assert_eq!(naive_report.answer_nodes(), truth);

    // NAIVE-1: pipelined, one value per message.
    let (naive1_answer, naive1_meter) = run_naive1(topology, &energy, &values, k);
    assert_eq!(naive1_answer.iter().map(|r| r.node).collect::<Vec<_>>(), truth);

    // ProspectorExact: proof-carrying phase 1 sized from the samples, then
    // a mop-up only where proofs failed.
    let probe = PlanContext::new(topology, &energy, &samples, 1.0);
    let phase1_budget = probe.min_proof_cost() * 1.25;
    let cfg = ExactConfig { phase1_budget_mj: phase1_budget };
    let ctx = PlanContext::new(topology, &energy, &samples, phase1_budget);
    let plan = cfg.plan_phase1(&ctx).expect("phase-1 plan");
    let exact = run_exact(&plan, topology, &energy, &values, k, None);
    assert_eq!(
        exact.answer.iter().map(|r| r.node).collect::<Vec<_>>(),
        truth,
        "ProspectorExact is exact"
    );

    println!("exact top-{k} over {n} nodes — all three agree. Energy:");
    println!("  naive-1          {:>8.1} mJ  (1 value per message)", naive1_meter.total());
    println!("  naive-k          {:>8.1} mJ  (k values per edge)", naive_report.total_mj());
    println!(
        "  prospector-exact {:>8.1} mJ  (phase 1 {:.1} + mop-up {:.1}{})",
        exact.total_mj(),
        exact.phase1_mj,
        exact.phase2_mj,
        if exact.mopup_ran { "" } else { ", proof complete — no mop-up" }
    );

    println!("\nanswer:");
    for r in &exact.answer {
        println!("  {}  {:.2}", r.node, r.value);
    }
}
