//! Continuous building monitoring à la the Intel Berkeley Lab deployment
//! (Figure 9): 54 motes report temperatures every epoch; the base station
//! keeps a sample window fresh with occasional full sweeps, re-plans when
//! the expected improvement justifies re-installation, and copes with
//! transient link failures (Section 4.4).
//!
//! ```text
//! cargo run --example building_monitor
//! ```

use prospector::core::ProspectorLpNoLf;
use prospector::data::intel::IntelConfig;
use prospector::data::{IntelLabLike, SamplePolicy};
use prospector::net::{ArqPolicy, EnergyModel, FailureModel, FaultSchedule, NetworkBuilder, Phase};
use prospector::sim::{ExperimentConfig, ExperimentRunner};

fn main() {
    // 54 motes on a 40 m × 30 m floor; radio range trimmed to 10 m for a
    // multi-hop tree, as the paper does with the lab data.
    let network = (0..6)
        .map(|i| 8.0 + 2.0 * i as f64)
        .find_map(|range| NetworkBuilder::new(54, 40.0, 30.0, range).seed(99).build().ok())
        .expect("lab network connects");
    let topology = network.topology.clone();
    println!("54 motes, tree height {}", topology.height());

    let mut temps = IntelLabLike::new(network.positions.clone(), IntelConfig::default(), 99);
    let energy = EnergyModel::mica2();

    // One unreliable link in twenty; rerouting costs 2 mJ per failure.
    let failures = FailureModel::uniform(54, 0.05, 2.0);

    let config = ExperimentConfig {
        k: 5,
        window: 24,
        // Full sweep for the first day (24 epochs), then every 12 epochs.
        policy: SamplePolicy::Periodic { warmup: 24, period: 12 },
        budget_mj: 12.0,
        replan_every: 24,
        replan_threshold: 0.2,
        failures: Some(failures),
        faults: FaultSchedule::new(),
        install_retries: 2,
        // Per-hop ARQ with the default backoff; escalate the retry budget
        // whenever fewer than 90% of plan edges deliver in an epoch.
        arq: ArqPolicy::default(),
        min_delivered: 0.9,
        max_retry_budget: 6,
        gate: None,
        continuous: None,
        seed: 5,
    };

    let planner = ProspectorLpNoLf;
    let mut runner = ExperimentRunner::new(&topology, &energy, &planner, config);
    let epochs = 24 * 7; // one simulated week at 24 epochs/day
    let reports = runner.run(&mut temps, epochs).expect("run completes");

    let queries: Vec<_> = reports.iter().filter(|r| !r.sampled).collect();
    let sweeps = reports.len() - queries.len();
    let avg_acc: f64 = queries.iter().map(|r| r.accuracy).sum::<f64>() / queries.len() as f64;
    let replans = reports.iter().filter(|r| r.replanned).count();

    println!("\none week of monitoring ({} epochs):", epochs);
    println!("  {:>5} full sampling sweeps", sweeps);
    println!("  {:>5} plan (re-)installations", replans);
    println!("  {:>5.1}% average accuracy on the {} query epochs", 100.0 * avg_acc, queries.len());

    let meter = runner.meter();
    println!("\nenergy breakdown (mJ):");
    for (label, phase) in [
        ("sampling sweeps", Phase::Sampling),
        ("plan installs", Phase::PlanInstall),
        ("trigger broadcasts", Phase::Trigger),
        ("collection", Phase::Collection),
        ("ARQ retransmits", Phase::Retransmit),
        ("failure rerouting", Phase::Rerouting),
    ] {
        println!("  {label:<20} {:>10.1}", meter.phase_total(phase));
    }
    println!("  {:<20} {:>10.1}", "total", meter.total());
    if let Some((node, mj)) = meter.hottest_node() {
        println!("\nhottest node: {node} at {mj:.1} mJ — the network lives as long as it does");
    }
}
