//! Exploration/exploitation sampling (Section 3) and its energy cost.
//!
//! "At randomly chosen timesteps, we spend more energy to collect all
//! values in the network and use them as a sample. The most recent samples
//! are maintained and used in optimization."

use crate::stats::mix_seed;
use prospector_net::{EnergyModel, Topology};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// When to pay for a full-network sweep that feeds the sample window.
#[derive(Debug, Clone)]
pub enum SamplePolicy {
    /// Collect the first `warmup` epochs, then every `period`-th epoch.
    Periodic { warmup: u64, period: u64 },
    /// Collect the first `warmup` epochs, then each epoch independently
    /// with probability `prob` (the exploration/exploitation scheme).
    Random { warmup: u64, prob: f64, seed: u64 },
    /// Never sample (plans run on whatever the window already holds).
    Never,
}

impl SamplePolicy {
    /// Should epoch `epoch` be spent on a full sweep?
    pub fn should_sample(&self, epoch: u64) -> bool {
        match *self {
            SamplePolicy::Periodic { warmup, period } => {
                epoch < warmup || (period > 0 && epoch.is_multiple_of(period))
            }
            SamplePolicy::Random { warmup, prob, seed } => {
                if epoch < warmup {
                    true
                } else {
                    let mut rng = StdRng::seed_from_u64(mix_seed(seed, epoch, 0x5A11));
                    prob > 0.0 && rng.random_bool(prob.min(1.0))
                }
            }
            SamplePolicy::Never => false,
        }
    }
}

/// Energy cost (mJ) of one full-network sweep: every edge carries every
/// value in its subtree to the root in one message per edge (the cheapest
/// exact full collection).
pub fn full_sweep_cost(topology: &Topology, energy: &EnergyModel) -> f64 {
    topology.edges().map(|e| energy.unicast_values(topology.subtree_size(e))).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_net::topology::{chain, star};

    #[test]
    fn periodic_policy() {
        let p = SamplePolicy::Periodic { warmup: 3, period: 10 };
        assert!(p.should_sample(0));
        assert!(p.should_sample(2));
        assert!(!p.should_sample(3));
        assert!(p.should_sample(10));
        assert!(!p.should_sample(11));
    }

    #[test]
    fn random_policy_rate() {
        let p = SamplePolicy::Random { warmup: 0, prob: 0.2, seed: 7 };
        let hits = (0..10_000).filter(|&e| p.should_sample(e)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "rate {rate}");
        // Deterministic per epoch.
        assert_eq!(p.should_sample(42), p.should_sample(42));
    }

    #[test]
    fn never_policy() {
        assert!(!SamplePolicy::Never.should_sample(0));
    }

    #[test]
    fn sweep_cost_chain_vs_star() {
        let em = EnergyModel::mica2();
        // Chain of 4: edges carry 3, 2, 1 values → 3 messages + 6 values.
        let c = full_sweep_cost(&chain(4), &em);
        let expect = 3.0 * em.per_message_mj + 6.0 * em.per_value();
        assert!((c - expect).abs() < 1e-9);
        // Star of 4: edges carry 1 value each → 3 messages + 3 values.
        let s = full_sweep_cost(&star(4), &em);
        let expect = 3.0 * em.per_message_mj + 3.0 * em.per_value();
        assert!((s - expect).abs() < 1e-9);
        assert!(c > s, "deep topologies pay more per sweep");
    }
}
