//! Random-walk readings, used to exercise re-sampling and plan
//! re-calculation (Section 4.4): the joint distribution drifts over time,
//! so a plan optimized on stale samples slowly decays.

use crate::source::ValueSource;
use crate::stats::{mix_seed, normal, standard_normal};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-node random walks with optional mean reversion.
///
/// `values(e)` must be called with non-decreasing epochs; the walk advances
/// internally and re-querying a past epoch returns the cached trajectory
/// value when still buffered.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    seed: u64,
    step_std: f64,
    /// Pull-back factor toward the initial mean per epoch (0 = pure walk).
    reversion: f64,
    init: Vec<f64>,
    current: Vec<f64>,
    current_epoch: Option<u64>,
}

impl RandomWalk {
    /// `n` walks starting at `N(mean, start_std²)` with step size
    /// `step_std` and mean-reversion factor `reversion ∈ [0, 1)`.
    pub fn new(
        n: usize,
        mean: f64,
        start_std: f64,
        step_std: f64,
        reversion: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..1.0).contains(&reversion));
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, 0, 0x3A1));
        let init: Vec<f64> = (0..n).map(|_| normal(&mut rng, mean, start_std)).collect();
        RandomWalk { seed, step_std, reversion, current: init.clone(), init, current_epoch: None }
    }

    fn advance_to(&mut self, epoch: u64) {
        let from = match self.current_epoch {
            None => 0,
            Some(e) => {
                assert!(epoch >= e, "RandomWalk epochs must be non-decreasing ({e} -> {epoch})");
                e + 1
            }
        };
        for t in from..=epoch {
            let mut rng = StdRng::seed_from_u64(mix_seed(self.seed, t, 0x3A2));
            for (i, v) in self.current.iter_mut().enumerate() {
                let pull = self.reversion * (self.init[i] - *v);
                *v += pull + self.step_std * standard_normal(&mut rng);
            }
        }
        self.current_epoch = Some(epoch);
    }
}

impl ValueSource for RandomWalk {
    fn num_nodes(&self) -> usize {
        self.init.len()
    }

    fn values(&mut self, epoch: u64) -> Vec<f64> {
        if self.current_epoch == Some(epoch) {
            return self.current.clone();
        }
        self.advance_to(epoch);
        self.current.clone()
    }

    fn name(&self) -> &'static str {
        "random-walk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_drifts_over_time() {
        let mut w = RandomWalk::new(10, 50.0, 5.0, 1.0, 0.0, 4);
        let start = w.values(0);
        let far = w.values(200);
        let moved = start.iter().zip(&far).filter(|(a, b)| (*a - *b).abs() > 3.0).count();
        assert!(moved >= 5, "only {moved}/10 walks moved noticeably");
    }

    #[test]
    fn same_epoch_is_stable() {
        let mut w = RandomWalk::new(5, 0.0, 1.0, 1.0, 0.0, 9);
        let a = w.values(3);
        let b = w.values(3);
        assert_eq!(a, b);
    }

    #[test]
    fn reversion_bounds_drift() {
        let mut free = RandomWalk::new(20, 0.0, 0.0, 1.0, 0.0, 2);
        let mut tied = RandomWalk::new(20, 0.0, 0.0, 1.0, 0.3, 2);
        let spread = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64;
        let f = spread(&free.values(500));
        let t = spread(&tied.values(500));
        assert!(t < f, "mean reversion should bound variance: {t} !< {f}");
    }

    #[test]
    #[should_panic]
    fn rejects_decreasing_epochs() {
        let mut w = RandomWalk::new(2, 0.0, 1.0, 1.0, 0.0, 1);
        w.values(5);
        w.values(2);
    }
}
