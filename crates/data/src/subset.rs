//! Generalized subset queries (Section 3).
//!
//! "Note that this approach can be easily generalized to queries that
//! return subsets of all sensor values, e.g., selection and quantile
//! queries. In the general case, we would set M[j][i] = 1 if node i
//! contributes to the answer in the j-th sample … The optimization goal
//! would still be to minimize the total number of 1's in M missed by the
//! plan."
//!
//! This module supplies the generalized answer definitions and the
//! corresponding sample window; `prospector-core::subset` plans against
//! it.

use crate::samples::{top_k_nodes, Reading};
use prospector_net::NodeId;
use std::collections::VecDeque;

/// What counts as "the answer" within one epoch's readings.
///
/// ```
/// use prospector_data::AnswerSpec;
/// use prospector_net::NodeId;
///
/// let values = [1.0, 9.0, 5.0, 7.0];
/// assert_eq!(
///     AnswerSpec::AboveThreshold(6.0).answer_nodes(&values),
///     vec![NodeId(1), NodeId(3)],
/// );
/// assert_eq!(AnswerSpec::TopK(1).answer_nodes(&values), vec![NodeId(1)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum AnswerSpec {
    /// The k highest readings (the paper's main query).
    TopK(usize),
    /// All readings strictly above a threshold (selection query).
    AboveThreshold(f64),
    /// All readings strictly below a threshold.
    BelowThreshold(f64),
    /// Readings between the `lo` and `hi` quantiles, inclusive
    /// (`0 ≤ lo ≤ hi ≤ 1`); `{lo: 0.5, hi: 0.5}` asks for the median.
    QuantileBand { lo: f64, hi: f64 },
}

impl AnswerSpec {
    /// Nodes contributing to the answer for `values`, in rank order
    /// (highest first) for deterministic downstream processing.
    pub fn answer_nodes(&self, values: &[f64]) -> Vec<NodeId> {
        match *self {
            AnswerSpec::TopK(k) => top_k_nodes(values, k),
            AnswerSpec::AboveThreshold(t) => {
                let mut nodes: Vec<Reading> = values
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v > t)
                    .map(|(i, &v)| Reading { node: NodeId::from_index(i), value: v })
                    .collect();
                nodes.sort_unstable_by(Reading::rank_cmp);
                nodes.into_iter().map(|r| r.node).collect()
            }
            AnswerSpec::BelowThreshold(t) => {
                let mut nodes: Vec<Reading> = values
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v < t)
                    .map(|(i, &v)| Reading { node: NodeId::from_index(i), value: v })
                    .collect();
                nodes.sort_unstable_by(Reading::rank_cmp);
                nodes.into_iter().map(|r| r.node).collect()
            }
            AnswerSpec::QuantileBand { lo, hi } => {
                assert!((0.0..=1.0).contains(&lo) && lo <= hi && hi <= 1.0, "bad quantile band");
                let n = values.len();
                if n == 0 {
                    return Vec::new();
                }
                // Rank values ascending; keep positions whose quantile
                // (rank / (n-1), midpoint convention for n == 1) lies in
                // the band.
                let mut order: Vec<Reading> = values
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| Reading { node: NodeId::from_index(i), value: v })
                    .collect();
                order.sort_unstable_by(Reading::rank_cmp); // best (highest) first
                order.reverse(); // ascending
                let denom = (n - 1).max(1) as f64;
                let mut picked: Vec<Reading> = order
                    .into_iter()
                    .enumerate()
                    .filter(|&(rank, _)| {
                        let q = if n == 1 { 0.5 } else { rank as f64 / denom };
                        q >= lo - 1e-12 && q <= hi + 1e-12
                    })
                    .map(|(_, r)| r)
                    .collect();
                picked.sort_unstable_by(Reading::rank_cmp);
                picked.into_iter().map(|r| r.node).collect()
            }
        }
    }

    /// Human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AnswerSpec::TopK(_) => "top-k",
            AnswerSpec::AboveThreshold(_) => "selection(>)",
            AnswerSpec::BelowThreshold(_) => "selection(<)",
            AnswerSpec::QuantileBand { .. } => "quantile-band",
        }
    }
}

/// Sliding window of samples for a generalized subset query: like
/// [`SampleSet`](crate::SampleSet) but with 1-entries defined by an
/// [`AnswerSpec`] instead of top-k membership.
#[derive(Debug, Clone)]
pub struct SubsetSampleSet {
    n: usize,
    spec: AnswerSpec,
    capacity: usize,
    window: VecDeque<Vec<f64>>,
    answers: VecDeque<Vec<NodeId>>,
    column_counts: Vec<u32>,
}

impl SubsetSampleSet {
    /// A window over `n`-node networks for the given query.
    pub fn new(n: usize, spec: AnswerSpec, capacity: usize) -> Self {
        assert!(capacity >= 1);
        SubsetSampleSet {
            n,
            spec,
            capacity,
            window: VecDeque::new(),
            answers: VecDeque::new(),
            column_counts: vec![0; n],
        }
    }

    /// Adds a sample, evicting the oldest at capacity.
    pub fn push(&mut self, values: Vec<f64>) {
        assert_eq!(values.len(), self.n);
        if self.window.len() == self.capacity {
            self.window.pop_front();
            for node in self.answers.pop_front().expect("answers track window") {
                self.column_counts[node.index()] -= 1;
            }
        }
        let ans = self.spec.answer_nodes(&values);
        for &node in &ans {
            self.column_counts[node.index()] += 1;
        }
        self.window.push_back(values);
        self.answers.push_back(ans);
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True before any sample arrives.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The query this window serves.
    pub fn spec(&self) -> &AnswerSpec {
        &self.spec
    }

    /// Per-node answer-membership counts over the window.
    pub fn column_counts(&self) -> &[u32] {
        &self.column_counts
    }

    /// The answer node set of sample `j`.
    pub fn answer(&self, j: usize) -> &[NodeId] {
        &self.answers[j]
    }

    /// Raw readings of sample `j`.
    pub fn values(&self, j: usize) -> &[f64] {
        &self.window[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn above_threshold_selects_and_ranks() {
        let v = vec![1.0, 9.0, 5.0, 7.0];
        let a = AnswerSpec::AboveThreshold(4.0).answer_nodes(&v);
        assert_eq!(a, vec![NodeId(1), NodeId(3), NodeId(2)]);
        assert!(AnswerSpec::AboveThreshold(9.0).answer_nodes(&v).is_empty());
    }

    #[test]
    fn below_threshold_selects() {
        let v = vec![1.0, 9.0, 5.0, 7.0];
        let a = AnswerSpec::BelowThreshold(6.0).answer_nodes(&v);
        assert_eq!(a, vec![NodeId(2), NodeId(0)]);
    }

    #[test]
    fn top_k_spec_matches_top_k_nodes() {
        let v = vec![3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(AnswerSpec::TopK(2).answer_nodes(&v), top_k_nodes(&v, 2));
    }

    #[test]
    fn median_band() {
        // 5 values, quantiles 0, .25, .5, .75, 1 ascending; the median is
        // the middle value.
        let v = vec![10.0, 30.0, 20.0, 50.0, 40.0];
        // ascending: 10(n0) 20(n2) 30(n1) 40(n4) 50(n3); rank 2 of 0..=4 →
        // q = 0.5 → value 30 at node 1.
        let a = AnswerSpec::QuantileBand { lo: 0.5, hi: 0.5 }.answer_nodes(&v);
        assert_eq!(a, vec![NodeId(1)]);
    }

    #[test]
    fn quantile_band_range() {
        let v: Vec<f64> = (0..11).map(|i| i as f64).collect();
        // Top quartile: q >= 0.75 → ranks 8, 9, 10 (values 8, 9, 10)… rank
        // 7.5 rounds via the inclusive test: ranks 8..=10.
        let a = AnswerSpec::QuantileBand { lo: 0.75, hi: 1.0 }.answer_nodes(&v);
        assert_eq!(a.len(), 3);
        assert!(a.contains(&NodeId(10)) && a.contains(&NodeId(8)));
    }

    #[test]
    fn single_value_band() {
        let a = AnswerSpec::QuantileBand { lo: 0.4, hi: 0.6 }.answer_nodes(&[7.0]);
        assert_eq!(a, vec![NodeId(0)]);
    }

    #[test]
    fn window_counts_track_selection() {
        let mut w = SubsetSampleSet::new(3, AnswerSpec::AboveThreshold(5.0), 2);
        w.push(vec![6.0, 1.0, 9.0]); // answers: n0, n2
        w.push(vec![1.0, 8.0, 9.0]); // answers: n1, n2
        assert_eq!(w.column_counts(), &[1, 1, 2]);
        w.push(vec![0.0, 0.0, 0.0]); // evicts first, empty answer
        assert_eq!(w.column_counts(), &[0, 1, 1]);
        assert_eq!(w.len(), 2);
        assert_eq!(w.spec(), &AnswerSpec::AboveThreshold(5.0));
    }

    #[test]
    #[should_panic]
    fn bad_quantile_band_rejected() {
        AnswerSpec::QuantileBand { lo: 0.8, hi: 0.2 }.answer_nodes(&[1.0, 2.0]);
    }
}
