//! Sensor value generation and the sampling framework of Section 3.
//!
//! The Prospector planners never reason about explicit probabilistic
//! models; they optimize over a window of **samples** — full-network value
//! snapshots collected at exploration timesteps. This crate provides:
//!
//! * [`source`] — the [`ValueSource`](source::ValueSource) trait producing
//!   per-epoch readings for every node;
//! * [`gaussian`] — independent per-node Gaussians (the synthetic workload
//!   of Figures 3 and 4);
//! * [`zones`] — the contention-zone workload of Figures 5–7, where zone
//!   nodes have sub-threshold means but high variance tuned so the expected
//!   number of zone nodes in the top k is exactly `k`;
//! * [`intel`] — a synthetic stand-in for the Intel Berkeley Lab trace
//!   (Figure 9): spatially correlated temperatures with a diurnal cycle,
//!   persistent warm spots and missing-value filling (see DESIGN.md §3);
//! * [`walk`] — random-walk readings for drift/adaptivity experiments;
//! * [`samples`] — the sample window, the Boolean top-k matrix, its column
//!   counts, and the `smaller(...)` witness sets used by the proof LP;
//! * [`collector`] — exploration/exploitation scheduling of full-network
//!   sweeps and their energy cost;
//! * [`stats`] — small numeric helpers (Box–Muller sampling, inverse normal
//!   CDF) shared by the generators.

pub mod collector;
pub mod drift;
pub mod gaussian;
pub mod intel;
pub mod samples;
pub mod source;
pub mod stats;
pub mod subset;
pub mod walk;
pub mod zones;

pub use collector::{full_sweep_cost, SamplePolicy};
pub use drift::{DriftField, PiecewiseConstant};
pub use gaussian::IndependentGaussian;
pub use intel::IntelLabLike;
pub use samples::{top_k_nodes, Reading, SamplePartsError, SampleSet};
pub use source::ValueSource;
pub use subset::{AnswerSpec, SubsetSampleSet};
pub use walk::RandomWalk;
pub use zones::ContentionZones;
