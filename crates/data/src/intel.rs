//! Synthetic stand-in for the Intel Berkeley Research Lab temperature
//! trace used in Figure 9.
//!
//! The real dataset (54 motes, ~31s epochs, temperatures) is not available
//! offline, so this generator reproduces the statistics the paper's result
//! depends on (DESIGN.md §3):
//!
//! * **persistent warm spots** — a few fixed heat sources (server racks,
//!   windows) create a spatial temperature field whose *ranking* is stable
//!   over time, which is exactly why the paper observes "the locations of
//!   the top values are fairly predictable" and LP+LF ≈ LP−LF;
//! * **diurnal cycle** — a shared sinusoidal drift, so absolute values
//!   change while the ranking largely persists;
//! * **spatially correlated wobble** — slow regional fluctuations with
//!   correlation decaying over distance;
//! * **measurement noise** — small per-reading Gaussian noise;
//! * **missing readings** — each reading is dropped with a configurable
//!   probability and, as in the paper, "filled in … with the average of
//!   the node values read at the prior and subsequent epochs".

use crate::source::ValueSource;
use crate::stats::{mix_seed, standard_normal};
use prospector_net::Position;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`IntelLabLike`].
#[derive(Debug, Clone)]
pub struct IntelConfig {
    /// Baseline lab temperature (°C).
    pub base_temp: f64,
    /// Amplitude of the shared diurnal cycle.
    pub diurnal_amplitude: f64,
    /// Epochs per simulated day.
    pub epochs_per_day: u64,
    /// Number of fixed heat sources.
    pub heat_sources: usize,
    /// Peak temperature offset of a heat source.
    pub heat_amplitude: f64,
    /// Length scale (meters) of a heat source's influence.
    pub heat_scale: f64,
    /// Standard deviation of the slow regional wobble.
    pub wobble_std: f64,
    /// Number of regional wobble modes.
    pub wobble_modes: usize,
    /// Length scale (meters) of a wobble mode's spatial falloff. Larger
    /// scales make the fluctuation more building-wide: it shifts absolute
    /// temperatures without reordering the warm spots, which is what keeps
    /// the top-k membership persistent (the Figure 9 statistic).
    pub wobble_scale: f64,
    /// Per-reading measurement noise standard deviation.
    pub noise_std: f64,
    /// Probability a reading goes missing (filled per the paper).
    pub missing_prob: f64,
}

impl Default for IntelConfig {
    fn default() -> Self {
        IntelConfig {
            base_temp: 19.0,
            diurnal_amplitude: 2.5,
            epochs_per_day: 48,
            heat_sources: 9,
            heat_amplitude: 4.5,
            heat_scale: 7.0,
            wobble_std: 1.4,
            wobble_modes: 6,
            wobble_scale: 60.0,
            noise_std: 0.15,
            missing_prob: 0.03,
        }
    }
}

/// The synthetic Intel-lab-like temperature source.
#[derive(Debug, Clone)]
pub struct IntelLabLike {
    positions: Vec<Position>,
    cfg: IntelConfig,
    seed: u64,
    /// Static per-node offset from the heat-source field.
    spatial_offset: Vec<f64>,
    /// Wobble mode definitions: (center, phase, period in epochs).
    wobble: Vec<(Position, f64, f64)>,
}

impl IntelLabLike {
    /// Builds the source over the given node positions (node 0 is the query
    /// station and also carries a sensor, as in the lab deployment).
    pub fn new(positions: Vec<Position>, cfg: IntelConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, 0, 0x1A7));
        let (min_x, max_x) = bounds(positions.iter().map(|p| p.x));
        let (min_y, max_y) = bounds(positions.iter().map(|p| p.y));

        // Fixed heat sources scattered over the floor plan.
        let sources: Vec<(Position, f64)> = (0..cfg.heat_sources)
            .map(|_| {
                let p = Position {
                    x: rng.random_range(min_x..max_x.max(min_x + 1e-9)),
                    y: rng.random_range(min_y..max_y.max(min_y + 1e-9)),
                };
                let amp = cfg.heat_amplitude * rng.random_range(0.5..1.0);
                (p, amp)
            })
            .collect();
        let spatial_offset = positions
            .iter()
            .map(|p| {
                sources
                    .iter()
                    .map(|(s, amp)| amp * (-(p.distance(s) / cfg.heat_scale).powi(2)).exp())
                    .sum()
            })
            .collect();

        let wobble = (0..cfg.wobble_modes)
            .map(|_| {
                let c = Position {
                    x: rng.random_range(min_x..max_x.max(min_x + 1e-9)),
                    y: rng.random_range(min_y..max_y.max(min_y + 1e-9)),
                };
                let phase = rng.random_range(0.0..std::f64::consts::TAU);
                let period = rng.random_range(20.0..120.0);
                (c, phase, period)
            })
            .collect();

        IntelLabLike { positions, cfg, seed, spatial_offset, wobble }
    }

    /// The noiseless process value at (`node`, `epoch`): base + diurnal +
    /// static warm spots + regional wobble.
    fn process(&self, node: usize, epoch: u64) -> f64 {
        let t = epoch as f64;
        let diurnal = self.cfg.diurnal_amplitude
            * (std::f64::consts::TAU * t / self.cfg.epochs_per_day as f64).sin();
        let wobble: f64 = self
            .wobble
            .iter()
            .map(|(c, phase, period)| {
                let falloff =
                    (-(self.positions[node].distance(c) / self.cfg.wobble_scale).powi(2)).exp();
                self.cfg.wobble_std * falloff * (std::f64::consts::TAU * t / period + phase).sin()
            })
            .sum();
        self.cfg.base_temp + diurnal + self.spatial_offset[node] + wobble
    }

    /// A single noisy reading, or `None` when it goes missing.
    fn raw_reading(&self, node: usize, epoch: u64) -> Option<f64> {
        let mut rng = StdRng::seed_from_u64(mix_seed(self.seed, epoch, 0x100 + node as u64));
        if self.cfg.missing_prob > 0.0 && rng.random_bool(self.cfg.missing_prob) {
            return None;
        }
        let noise = self.cfg.noise_std * standard_normal(&mut rng);
        Some(self.process(node, epoch) + noise)
    }

    /// Static spatial offsets (exposed for tests/diagnostics).
    pub fn spatial_offsets(&self) -> &[f64] {
        &self.spatial_offset
    }
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| (lo.min(v), hi.max(v)))
}

impl ValueSource for IntelLabLike {
    fn num_nodes(&self) -> usize {
        self.positions.len()
    }

    fn values(&mut self, epoch: u64) -> Vec<f64> {
        (0..self.positions.len())
            .map(|node| match self.raw_reading(node, epoch) {
                Some(v) => v,
                None => {
                    // Paper: fill a missing value with the average of the
                    // readings at the prior and subsequent epochs (falling
                    // back to the process value when those are missing too).
                    let prev = if epoch > 0 { self.raw_reading(node, epoch - 1) } else { None };
                    let next = self.raw_reading(node, epoch + 1);
                    match (prev, next) {
                        (Some(a), Some(b)) => (a + b) / 2.0,
                        (Some(a), None) => a,
                        (None, Some(b)) => b,
                        (None, None) => self.process(node, epoch),
                    }
                }
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "intel-lab-like"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::top_k_nodes;

    fn grid_positions(n: usize) -> Vec<Position> {
        // Roughly the lab footprint: 40m × 30m.
        let cols = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| Position {
                x: (i % cols) as f64 * 40.0 / cols as f64,
                y: (i / cols) as f64 * 30.0 / cols as f64,
            })
            .collect()
    }

    #[test]
    fn deterministic() {
        let mut a = IntelLabLike::new(grid_positions(54), IntelConfig::default(), 5);
        let mut b = IntelLabLike::new(grid_positions(54), IntelConfig::default(), 5);
        assert_eq!(a.values(10), b.values(10));
    }

    #[test]
    fn top_k_locations_are_persistent() {
        // The defining property for Figure 9: top-k membership is stable
        // across epochs.
        let mut src = IntelLabLike::new(grid_positions(54), IntelConfig::default(), 5);
        let k = 5;
        let reference: std::collections::HashSet<_> =
            top_k_nodes(&src.values(0), k).into_iter().collect();
        let mut overlap = 0usize;
        let epochs = 50;
        for e in 1..=epochs {
            let top: Vec<_> = top_k_nodes(&src.values(e), k);
            overlap += top.iter().filter(|n| reference.contains(n)).count();
        }
        let avg = overlap as f64 / epochs as f64;
        assert!(avg >= 0.7 * k as f64, "avg top-k overlap {avg} of {k} too low");
    }

    #[test]
    fn values_in_plausible_temperature_range() {
        let mut src = IntelLabLike::new(grid_positions(54), IntelConfig::default(), 8);
        for e in 0..20 {
            for v in src.values(e) {
                assert!((5.0..45.0).contains(&v), "implausible lab temperature {v}");
            }
        }
    }

    #[test]
    fn missing_values_are_filled() {
        let cfg = IntelConfig { missing_prob: 0.5, ..Default::default() };
        let mut src = IntelLabLike::new(grid_positions(20), cfg, 3);
        // Even with half the readings missing, `values` returns a full,
        // finite vector close to the underlying process.
        for e in 0..10 {
            let v = src.values(e);
            assert_eq!(v.len(), 20);
            for (node, &x) in v.iter().enumerate() {
                assert!(x.is_finite());
                let p = src.process(node, e);
                assert!((x - p).abs() < 5.0, "fill too far from process: {x} vs {p}");
            }
        }
    }

    #[test]
    fn warm_spots_create_spatial_contrast() {
        let src = IntelLabLike::new(grid_positions(54), IntelConfig::default(), 5);
        let offs = src.spatial_offsets();
        let max = offs.iter().cloned().fold(f64::MIN, f64::max);
        let min = offs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min > 1.0, "spatial field is flat: {min}..{max}");
    }
}
