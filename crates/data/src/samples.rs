//! The sample window and the Boolean top-k matrix of Section 3.
//!
//! Each sample is a full-network snapshot of readings. A sample translates
//! into a Boolean vector whose i-th component is 1 iff node i's value is
//! among the top k of that sample; the vectors from a window of samples
//! form the matrix the Prospector planners optimize over. Only the LP+LF
//! and proof formulations need individual entries (and raw values); the
//! greedy and LP−LF planners only need the column sums, which the window
//! maintains incrementally.

use prospector_net::NodeId;
use std::cmp::Ordering;
use std::collections::VecDeque;

/// A (node, value) pair with the total order used everywhere for top-k
/// selection: higher values first, ties broken by lower node id. The
/// deterministic tie-break keeps plans and accuracy metrics reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reading {
    pub node: NodeId,
    pub value: f64,
}

impl Reading {
    /// Comparison placing the *better* reading first (descending value,
    /// ascending node id).
    pub fn rank_cmp(&self, other: &Reading) -> Ordering {
        other.value.total_cmp(&self.value).then_with(|| self.node.cmp(&other.node))
    }
}

impl Eq for Reading {}

impl PartialOrd for Reading {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Reading {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank_cmp(other)
    }
}

/// Nodes holding the top `k` values of `values` (deterministic
/// tie-breaking), in rank order. Empty input or `k == 0` yields an empty
/// vector; `k > n` clamps to all nodes.
pub fn top_k_nodes(values: &[f64], k: usize) -> Vec<NodeId> {
    if values.is_empty() || k == 0 {
        return Vec::new();
    }
    let mut readings: Vec<Reading> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| Reading { node: NodeId::from_index(i), value: v })
        .collect();
    let k = k.min(readings.len());
    readings.select_nth_unstable_by(k - 1, Reading::rank_cmp);
    readings.truncate(k);
    readings.sort_unstable_by(Reading::rank_cmp);
    readings.into_iter().map(|r| r.node).collect()
}

/// Packs a top-k node set into `words` `u64` words (bit `i` of the row =
/// node `i`'s membership).
fn pack_row(ones: &[NodeId], words: usize) -> Vec<u64> {
    let mut row = vec![0u64; words];
    for node in ones {
        row[node.index() >> 6] |= 1u64 << (node.index() & 63);
    }
    row
}

/// Captured [`SampleSet`] parts that do not describe a valid window (see
/// [`SampleSet::from_parts`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamplePartsError {
    /// `k`/`n`/`capacity` violate the constructor invariants.
    BadShape { n: usize, k: usize, capacity: usize },
    /// The window, ones and column-count collections disagree in length.
    LengthMismatch { window: usize, ones: usize, counts: usize },
    /// A sample row or its top-k set has an impossible size or node id.
    BadSample { row: usize, ones: usize },
    /// The stored column counts do not match the stored top-k sets.
    InconsistentCounts,
}

impl std::fmt::Display for SamplePartsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplePartsError::BadShape { n, k, capacity } => {
                write!(f, "invalid window shape: n={n}, k={k}, capacity={capacity}")
            }
            SamplePartsError::LengthMismatch { window, ones, counts } => write!(
                f,
                "window parts disagree in length: {window} samples, {ones} top-k sets, \
                 {counts} column counts"
            ),
            SamplePartsError::BadSample { row, ones } => {
                write!(f, "sample with {row} readings / {ones} top-k entries is malformed")
            }
            SamplePartsError::InconsistentCounts => {
                write!(f, "column counts do not match the stored top-k sets")
            }
        }
    }
}

impl std::error::Error for SamplePartsError {}

/// A sliding window of full-network samples plus the derived top-k sets.
///
/// ```
/// use prospector_data::SampleSet;
/// use prospector_net::NodeId;
///
/// let mut s = SampleSet::new(4, 2, 8);
/// s.push(vec![1.0, 9.0, 3.0, 7.0]); // top-2: n1, n3
/// s.push(vec![8.0, 9.0, 0.0, 1.0]); // top-2: n1, n0
/// assert_eq!(s.column_counts(), &[1, 2, 0, 1]);
/// assert_eq!(s.ones(0), &[NodeId(1), NodeId(3)]);
/// ```
#[derive(Debug, Clone)]
pub struct SampleSet {
    n: usize,
    k: usize,
    capacity: usize,
    /// Raw readings per sample, oldest first.
    window: VecDeque<Vec<f64>>,
    /// `ones(j)`: the top-k node set per sample, in rank order.
    ones: VecDeque<Vec<NodeId>>,
    /// Packed mirror of `ones`: one `⌈n/64⌉`-word row per sample, bit `i`
    /// set iff node `i` is in the sample's top k. Derived state — always
    /// rebuilt from `ones`, never restored independently — giving the
    /// evaluators O(1) membership tests and word-wide popcount
    /// intersections over cache-dense rows.
    bits: VecDeque<Vec<u64>>,
    /// Number of samples in which each node appears in the top k.
    column_counts: Vec<u32>,
}

impl SampleSet {
    /// A window over networks of `n` nodes, answering top-`k` queries,
    /// retaining at most `capacity` samples (older ones expire).
    pub fn new(n: usize, k: usize, capacity: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        assert!(k <= n, "k cannot exceed the number of nodes");
        assert!(capacity >= 1, "capacity must be positive");
        SampleSet {
            n,
            k,
            capacity,
            window: VecDeque::new(),
            ones: VecDeque::new(),
            bits: VecDeque::new(),
            column_counts: vec![0; n],
        }
    }

    /// Rebuilds a window from previously captured parts, for checkpoint
    /// restore. The derived state (`ones`, `column_counts`) is restored
    /// verbatim rather than recomputed: after [`SampleSet::mask_nodes`]
    /// the stored top-k sets are retain-filtered in a way a replay of
    /// plain pushes would not reproduce, so recomputation could diverge
    /// from the live window. The parts are cross-checked for internal
    /// consistency instead.
    pub fn from_parts(
        n: usize,
        k: usize,
        capacity: usize,
        window: VecDeque<Vec<f64>>,
        ones: VecDeque<Vec<NodeId>>,
        column_counts: Vec<u32>,
    ) -> Result<Self, SamplePartsError> {
        if k < 1 || k > n || capacity < 1 {
            return Err(SamplePartsError::BadShape { n, k, capacity });
        }
        if window.len() > capacity || window.len() != ones.len() || column_counts.len() != n {
            return Err(SamplePartsError::LengthMismatch {
                window: window.len(),
                ones: ones.len(),
                counts: column_counts.len(),
            });
        }
        let mut recount = vec![0u32; n];
        for (row, one) in window.iter().zip(&ones) {
            if row.len() != n || one.len() > k {
                return Err(SamplePartsError::BadSample { row: row.len(), ones: one.len() });
            }
            for node in one {
                if node.index() >= n {
                    return Err(SamplePartsError::BadSample { row: row.len(), ones: one.len() });
                }
                recount[node.index()] += 1;
            }
        }
        if recount != column_counts {
            return Err(SamplePartsError::InconsistentCounts);
        }
        // The packed rows are pure derived state, so checkpoints never
        // carry them: rebuild from the restored top-k sets.
        let words = n.div_ceil(64);
        let bits = ones.iter().map(|one| pack_row(one, words)).collect();
        Ok(SampleSet { n, k, capacity, window, ones, bits, column_counts })
    }

    /// Window capacity (maximum retained samples).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Adds a sample, evicting the oldest one when at capacity.
    pub fn push(&mut self, values: Vec<f64>) {
        assert_eq!(values.len(), self.n, "sample size mismatch");
        if self.window.len() == self.capacity {
            self.window.pop_front();
            self.bits.pop_front();
            let old = self.ones.pop_front().expect("ones tracks window");
            for node in old {
                self.column_counts[node.index()] -= 1;
            }
        }
        let top = top_k_nodes(&values, self.k);
        for &node in &top {
            self.column_counts[node.index()] += 1;
        }
        self.bits.push_back(pack_row(&top, self.words_per_row()));
        self.window.push_back(values);
        self.ones.push_back(top);
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when no samples have been collected yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Network size.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Query parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Raw readings of sample `j` (0 = oldest in the window).
    pub fn values(&self, j: usize) -> &[f64] {
        &self.window[j]
    }

    /// Reading of `node` in sample `j`.
    pub fn value(&self, j: usize, node: NodeId) -> f64 {
        self.window[j][node.index()]
    }

    /// `ones(j)`: nodes providing the top-k values of sample `j`, in rank
    /// order.
    pub fn ones(&self, j: usize) -> &[NodeId] {
        &self.ones[j]
    }

    /// Words per packed top-k row (`⌈n/64⌉`).
    pub fn words_per_row(&self) -> usize {
        self.n.div_ceil(64)
    }

    /// Sample `j`'s top-k membership as a packed bit row: bit `i` (word
    /// `i/64`, bit `i%64`) is set iff node `i` is in the top k. The same
    /// sets as [`SampleSet::ones`], laid out for O(1) membership tests and
    /// word-wide intersections.
    pub fn topk_bits(&self, j: usize) -> &[u64] {
        &self.bits[j]
    }

    /// True iff the matrix entry `M[j][node]` is 1 — an O(1) bit test on
    /// the packed row (the old `contains` scan over `ones(j)` was O(k) per
    /// probe, which the lossy evaluator pays per answer reading per sample
    /// per candidate plan).
    pub fn is_one(&self, j: usize, node: NodeId) -> bool {
        self.bits[j][node.index() >> 6] & (1u64 << (node.index() & 63)) != 0
    }

    /// Size of the intersection of sample `j`'s top-k set with another
    /// packed row of the same width: a popcount loop over `⌈n/64⌉` words.
    pub fn intersect_count(&self, j: usize, other: &[u64]) -> usize {
        debug_assert_eq!(other.len(), self.words_per_row());
        self.bits[j].iter().zip(other).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// Column sums of the Boolean matrix: in how many window samples each
    /// node ranked in the top k. This is the only statistic the greedy and
    /// LP−LF planners need.
    pub fn column_counts(&self) -> &[u32] {
        &self.column_counts
    }

    /// Removes `nodes` from every sample in the window, as if they had
    /// never reported: their readings become `NEG_INFINITY` and the top-k
    /// sets and column counts are recomputed over the survivors.
    ///
    /// Used after a permanent failure — historical samples from a dead
    /// node would otherwise keep steering planners toward it even though
    /// it can no longer answer.
    pub fn mask_nodes(&mut self, nodes: &[NodeId]) {
        if nodes.is_empty() {
            return;
        }
        self.column_counts.fill(0);
        let words = self.words_per_row();
        for ((row, ones), bits) in
            self.window.iter_mut().zip(self.ones.iter_mut()).zip(self.bits.iter_mut())
        {
            for &node in nodes {
                row[node.index()] = f64::NEG_INFINITY;
            }
            *ones = top_k_nodes(row, self.k);
            // With fewer than k survivors the top-k would include masked
            // entries; a dead node must never count as a top-k holder.
            ones.retain(|n| row[n.index()] != f64::NEG_INFINITY);
            *bits = pack_row(ones, words);
            for &node in ones.iter() {
                self.column_counts[node.index()] += 1;
            }
        }
    }

    /// Prediction of `node`'s current reading from the sample window: the
    /// mean of its finite window values (masked `NEG_INFINITY` entries
    /// from dead nodes are skipped). Returns `None` when the window holds
    /// no usable reading for the node — callers decide how an unknown
    /// prediction competes (backfill maps it to `NEG_INFINITY` so it can
    /// never displace a real observation in rank order; gating treats it
    /// as "no evidence").
    ///
    /// This is what the root falls back to when a subtree's batch is lost
    /// in transit: estimate the missing readings from recent history
    /// rather than silently returning a short answer.
    pub fn predicted_value(&self, node: NodeId) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for row in &self.window {
            let v = row[node.index()];
            if v.is_finite() {
                sum += v;
                count += 1;
            }
        }
        (count > 0).then(|| sum / count as f64)
    }

    /// Plausibility band for `node`'s next reading: window mean ±
    /// `z × max(sample stddev, min_sigma)`. Returns `None` when fewer than
    /// `max(min_window, 2)` finite readings are in the window — a short or
    /// heavily masked history degenerates to "no band" rather than a
    /// spuriously tight one. `min_sigma` floors the width so a constant
    /// history (zero variance) still tolerates sensor quantization.
    pub fn prediction_band(
        &self,
        node: NodeId,
        z: f64,
        min_sigma: f64,
        min_window: usize,
    ) -> Option<(f64, f64)> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for row in &self.window {
            let v = row[node.index()];
            if v.is_finite() {
                sum += v;
                count += 1;
            }
        }
        if count < min_window.max(2) {
            return None;
        }
        let mean = sum / count as f64;
        let mut sq = 0.0;
        for row in &self.window {
            let v = row[node.index()];
            if v.is_finite() {
                sq += (v - mean) * (v - mean);
            }
        }
        let sigma = (sq / (count - 1) as f64).sqrt().max(min_sigma);
        Some((mean - z * sigma, mean + z * sigma))
    }

    /// Nodes among `candidates` whose value in sample `j` is strictly
    /// smaller than `threshold` — the witness sets `smaller(·)` of the
    /// proof LP (Section 4.3).
    pub fn smaller_in<'a>(
        &'a self,
        j: usize,
        threshold: f64,
        candidates: &'a [NodeId],
    ) -> impl Iterator<Item = NodeId> + 'a {
        let row = &self.window[j];
        candidates.iter().copied().filter(move |node| row[node.index()] < threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reading_order_breaks_ties_by_id() {
        let a = Reading { node: NodeId(2), value: 5.0 };
        let b = Reading { node: NodeId(1), value: 5.0 };
        let c = Reading { node: NodeId(0), value: 7.0 };
        let mut v = [a, b, c];
        v.sort();
        assert_eq!(v[0].node, NodeId(0));
        assert_eq!(v[1].node, NodeId(1));
        assert_eq!(v[2].node, NodeId(2));
    }

    #[test]
    fn top_k_basic() {
        let values = vec![1.0, 9.0, 3.0, 7.0, 5.0];
        assert_eq!(top_k_nodes(&values, 2), vec![NodeId(1), NodeId(3)]);
        assert_eq!(top_k_nodes(&values, 5).len(), 5);
        // k larger than n clamps
        assert_eq!(top_k_nodes(&values, 10).len(), 5);
    }

    #[test]
    fn top_k_deterministic_under_ties() {
        let values = vec![5.0, 5.0, 5.0, 5.0];
        assert_eq!(top_k_nodes(&values, 2), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn top_k_empty_input_is_empty() {
        // Regression: `k.saturating_sub(1).min(readings.len() - 1)` used
        // to underflow (panic) on an empty slice.
        assert_eq!(top_k_nodes(&[], 3), Vec::<NodeId>::new());
        assert_eq!(top_k_nodes(&[], 0), Vec::<NodeId>::new());
    }

    #[test]
    fn top_k_zero_k_is_empty() {
        // Regression: k == 0 used to select the single best node anyway.
        assert_eq!(top_k_nodes(&[3.0, 1.0, 2.0], 0), Vec::<NodeId>::new());
    }

    #[test]
    fn top_k_above_n_clamps_to_all() {
        let got = top_k_nodes(&[1.0, 3.0, 2.0], 7);
        assert_eq!(got, vec![NodeId(1), NodeId(2), NodeId(0)]);
    }

    /// The packed rows must mirror `ones(j)` exactly through pushes,
    /// evictions and masking — the invariant every popcount evaluator
    /// rests on.
    fn assert_bits_mirror_ones(s: &SampleSet) {
        for j in 0..s.len() {
            let expect = pack_row(s.ones(j), s.words_per_row());
            assert_eq!(s.topk_bits(j), &expect[..], "sample {j} bits diverge from ones");
            for i in 0..s.num_nodes() {
                let node = NodeId::from_index(i);
                assert_eq!(s.is_one(j, node), s.ones(j).contains(&node));
            }
        }
    }

    #[test]
    fn packed_bits_track_push_evict_and_mask() {
        let mut s = SampleSet::new(70, 3, 2); // >64 nodes: two words per row
        for r in 0..3u64 {
            s.push((0..70).map(|i| ((i as u64 * 37 + r * 11) % 71) as f64).collect());
            assert_bits_mirror_ones(&s);
        }
        assert_eq!(s.words_per_row(), 2);
        s.mask_nodes(&[NodeId(69), NodeId(3)]);
        assert_bits_mirror_ones(&s);
    }

    #[test]
    fn intersect_count_popcounts_common_members() {
        let mut s = SampleSet::new(4, 2, 4);
        s.push(vec![1.0, 9.0, 3.0, 7.0]); // top-2: n1, n3
        let mut other = vec![0u64; s.words_per_row()];
        other[0] |= (1 << 1) | (1 << 2); // {n1, n2}
        assert_eq!(s.intersect_count(0, &other), 1);
        assert_eq!(s.intersect_count(0, &[0]), 0);
    }

    #[test]
    fn column_counts_track_pushes() {
        let mut s = SampleSet::new(4, 2, 10);
        s.push(vec![1.0, 4.0, 3.0, 2.0]); // top2: n1, n2
        s.push(vec![9.0, 0.0, 8.0, 1.0]); // top2: n0, n2
        assert_eq!(s.len(), 2);
        assert_eq!(s.column_counts(), &[1, 1, 2, 0]);
        assert!(s.is_one(0, NodeId(1)));
        assert!(!s.is_one(0, NodeId(0)));
        assert_eq!(s.ones(1), &[NodeId(0), NodeId(2)]);
    }

    #[test]
    fn eviction_updates_counts() {
        let mut s = SampleSet::new(3, 1, 2);
        s.push(vec![3.0, 1.0, 0.0]); // top: n0
        s.push(vec![0.0, 3.0, 1.0]); // top: n1
        s.push(vec![0.0, 1.0, 3.0]); // top: n2, evicts first
        assert_eq!(s.len(), 2);
        assert_eq!(s.column_counts(), &[0, 1, 1]);
    }

    #[test]
    fn smaller_in_filters_by_value() {
        let mut s = SampleSet::new(4, 2, 4);
        s.push(vec![5.0, 2.0, 8.0, 3.0]);
        let cands = [NodeId(0), NodeId(1), NodeId(3)];
        let smaller: Vec<_> = s.smaller_in(0, 4.0, &cands).collect();
        assert_eq!(smaller, vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn value_accessors() {
        let mut s = SampleSet::new(2, 1, 4);
        s.push(vec![1.5, 2.5]);
        assert_eq!(s.value(0, NodeId(1)), 2.5);
        assert_eq!(s.values(0), &[1.5, 2.5]);
    }

    #[test]
    fn mask_nodes_rewrites_window_and_counts() {
        let mut s = SampleSet::new(4, 2, 10);
        s.push(vec![1.0, 4.0, 3.0, 2.0]); // top2: n1, n2
        s.push(vec![9.0, 8.0, 0.0, 1.0]); // top2: n0, n1
        s.mask_nodes(&[NodeId(1)]);
        // n1 drops out everywhere; the next best node takes its place.
        assert_eq!(s.ones(0), &[NodeId(2), NodeId(3)]);
        assert_eq!(s.ones(1), &[NodeId(0), NodeId(3)]);
        assert_eq!(s.column_counts(), &[1, 0, 1, 2]);
        assert_eq!(s.value(0, NodeId(1)), f64::NEG_INFINITY);
    }

    #[test]
    fn mask_nodes_never_reports_dead_topk() {
        // 3 nodes, k = 2, two dead: only the lone survivor may rank.
        let mut s = SampleSet::new(3, 2, 4);
        s.push(vec![3.0, 2.0, 1.0]);
        s.mask_nodes(&[NodeId(0), NodeId(1)]);
        assert_eq!(s.ones(0), &[NodeId(2)]);
        assert_eq!(s.column_counts(), &[0, 0, 1]);
    }

    #[test]
    fn mask_nothing_is_identity() {
        let mut s = SampleSet::new(3, 1, 4);
        s.push(vec![1.0, 5.0, 2.0]);
        let before = s.clone();
        s.mask_nodes(&[]);
        assert_eq!(s.ones(0), before.ones(0));
        assert_eq!(s.column_counts(), before.column_counts());
        assert_eq!(s.values(0), before.values(0));
    }

    #[test]
    fn masking_composes_with_eviction() {
        let mut s = SampleSet::new(3, 1, 2);
        s.push(vec![3.0, 1.0, 0.0]); // top: n0
        s.push(vec![0.0, 3.0, 1.0]); // top: n1
        s.mask_nodes(&[NodeId(1)]);
        assert_eq!(s.column_counts(), &[1, 0, 1]);
        s.push(vec![0.0, 9.0, 1.0]); // evicts the oldest; n1 alive again in new data
        assert_eq!(s.column_counts(), &[0, 1, 1]);
    }

    #[test]
    fn predicted_value_averages_finite_history() {
        let mut s = SampleSet::new(3, 1, 4);
        s.push(vec![1.0, 4.0, 2.0]);
        s.push(vec![3.0, 6.0, 2.0]);
        assert!((s.predicted_value(NodeId(0)).unwrap() - 2.0).abs() < 1e-12);
        assert!((s.predicted_value(NodeId(1)).unwrap() - 5.0).abs() < 1e-12);
        // Masked (dead) nodes have no finite history left: the prediction
        // is `None`, not a `-inf` sentinel that callers could band around.
        s.mask_nodes(&[NodeId(2)]);
        assert_eq!(s.predicted_value(NodeId(2)), None);
        assert!((s.predicted_value(NodeId(0)).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn predicted_value_empty_window_is_unknown() {
        let s = SampleSet::new(2, 1, 4);
        assert_eq!(s.predicted_value(NodeId(0)), None);
    }

    #[test]
    fn prediction_band_needs_a_long_enough_finite_window() {
        let mut s = SampleSet::new(2, 1, 8);
        assert_eq!(s.prediction_band(NodeId(0), 4.0, 0.0, 3), None, "empty window");
        s.push(vec![10.0, 0.0]);
        s.push(vec![12.0, 0.0]);
        assert_eq!(s.prediction_band(NodeId(0), 4.0, 0.0, 3), None, "2 < min_window");
        s.push(vec![14.0, 0.0]);
        let (lo, hi) = s.prediction_band(NodeId(0), 4.0, 0.0, 3).unwrap();
        // mean 12, sample stddev 2 → 12 ± 8.
        assert!((lo - 4.0).abs() < 1e-12, "lo {lo}");
        assert!((hi - 20.0).abs() < 1e-12, "hi {hi}");
        // Masking drains the finite count back below the floor.
        s.mask_nodes(&[NodeId(0)]);
        assert_eq!(s.prediction_band(NodeId(0), 4.0, 0.0, 3), None, "masked window");
    }

    #[test]
    fn prediction_band_floors_sigma_for_constant_history() {
        let mut s = SampleSet::new(1, 1, 4);
        for _ in 0..4 {
            s.push(vec![7.0]);
        }
        let (lo, hi) = s.prediction_band(NodeId(0), 2.0, 0.5, 2).unwrap();
        // Zero variance would give a zero-width band; min_sigma keeps it open.
        assert!((lo - 6.0).abs() < 1e-12, "lo {lo}");
        assert!((hi - 8.0).abs() < 1e-12, "hi {hi}");
        // min_window below 2 is clamped up: one reading never yields a band.
        let mut short = SampleSet::new(1, 1, 4);
        short.push(vec![7.0]);
        assert_eq!(short.prediction_band(NodeId(0), 2.0, 0.5, 0), None);
    }

    #[test]
    #[should_panic]
    fn rejects_k_above_n() {
        SampleSet::new(3, 4, 2);
    }

    #[test]
    #[should_panic]
    fn rejects_wrong_sample_size() {
        let mut s = SampleSet::new(3, 1, 2);
        s.push(vec![1.0]);
    }

    /// Capture a masked window's parts and rebuild it: every accessor
    /// must agree with the original. A replay of plain pushes would not
    /// (masking retain-filters the top-k sets), which is the whole reason
    /// `from_parts` restores derived state verbatim.
    #[test]
    fn from_parts_roundtrips_a_masked_window() {
        let mut s = SampleSet::new(4, 2, 3);
        s.push(vec![1.0, 4.0, 3.0, 2.0]);
        s.push(vec![9.0, 0.0, 8.0, 1.0]);
        s.push(vec![2.0, 7.0, 1.0, 6.0]);
        s.mask_nodes(&[NodeId(2)]);
        let window: VecDeque<Vec<f64>> = (0..s.len()).map(|j| s.values(j).to_vec()).collect();
        let ones: VecDeque<Vec<NodeId>> = (0..s.len()).map(|j| s.ones(j).to_vec()).collect();
        let counts = s.column_counts().to_vec();
        let r = SampleSet::from_parts(4, 2, 3, window, ones, counts).expect("parts are consistent");
        assert_eq!(r.len(), s.len());
        assert_eq!(r.capacity(), s.capacity());
        assert_eq!(r.column_counts(), s.column_counts());
        for j in 0..s.len() {
            assert_eq!(r.values(j), s.values(j));
            assert_eq!(r.ones(j), s.ones(j));
            assert_eq!(r.topk_bits(j), s.topk_bits(j), "packed rows rebuilt from ones");
        }
    }

    #[test]
    fn from_parts_rejects_inconsistent_captures() {
        let window: VecDeque<Vec<f64>> = VecDeque::from(vec![vec![1.0, 2.0, 3.0]]);
        let ones: VecDeque<Vec<NodeId>> = VecDeque::from(vec![vec![NodeId(2)]]);
        // Bad shape: k > n.
        assert!(matches!(
            SampleSet::from_parts(3, 4, 2, window.clone(), ones.clone(), vec![0, 0, 1]),
            Err(SamplePartsError::BadShape { .. })
        ));
        // Window longer than capacity.
        let long: VecDeque<Vec<f64>> = VecDeque::from(vec![vec![1.0, 2.0, 3.0]; 3]);
        let long_ones: VecDeque<Vec<NodeId>> = VecDeque::from(vec![vec![NodeId(2)]; 3]);
        assert!(matches!(
            SampleSet::from_parts(3, 1, 2, long, long_ones, vec![0, 0, 3]),
            Err(SamplePartsError::LengthMismatch { .. })
        ));
        // A sample row of the wrong width.
        let bad_row: VecDeque<Vec<f64>> = VecDeque::from(vec![vec![1.0, 2.0]]);
        assert!(matches!(
            SampleSet::from_parts(3, 1, 2, bad_row, ones.clone(), vec![0, 0, 1]),
            Err(SamplePartsError::BadSample { .. })
        ));
        // A top-k set naming a node outside the network.
        let oob: VecDeque<Vec<NodeId>> = VecDeque::from(vec![vec![NodeId(7)]]);
        assert!(matches!(
            SampleSet::from_parts(3, 1, 2, window.clone(), oob, vec![0, 0, 1]),
            Err(SamplePartsError::BadSample { .. })
        ));
        // Counts that disagree with the stored top-k sets.
        assert!(matches!(
            SampleSet::from_parts(3, 1, 2, window, ones, vec![1, 0, 0]),
            Err(SamplePartsError::InconsistentCounts)
        ));
    }
}
