//! Independent per-node Gaussian readings (Figures 3 and 4).
//!
//! "Sensor values in this synthetic data experiment are drawn from
//! independent normal distributions whose means and variances are chosen
//! randomly from small ranges."

use crate::source::ValueSource;
use crate::stats::{mix_seed, normal};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Each node's reading is an independent `N(mean_i, std_i²)` draw, freshly
/// sampled each epoch (stateless: any epoch can be regenerated).
#[derive(Debug, Clone)]
pub struct IndependentGaussian {
    means: Vec<f64>,
    std_devs: Vec<f64>,
    seed: u64,
}

impl IndependentGaussian {
    /// Explicit parameters.
    pub fn new(means: Vec<f64>, std_devs: Vec<f64>, seed: u64) -> Self {
        assert_eq!(means.len(), std_devs.len());
        assert!(std_devs.iter().all(|s| *s >= 0.0), "negative std dev");
        IndependentGaussian { means, std_devs, seed }
    }

    /// Means uniform in `mean_range`, standard deviations uniform in
    /// `std_range`, as the paper's Figure 3 setup.
    pub fn random(
        n: usize,
        mean_range: std::ops::Range<f64>,
        std_range: std::ops::Range<f64>,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, 0, 0xC0FFEE));
        let means = (0..n).map(|_| rng.random_range(mean_range.clone())).collect();
        let std_devs = (0..n).map(|_| rng.random_range(std_range.clone())).collect();
        IndependentGaussian { means, std_devs, seed }
    }

    /// Per-node means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-node standard deviations.
    pub fn std_devs(&self) -> &[f64] {
        &self.std_devs
    }

    /// Rescales every node's standard deviation (the variance sweep of
    /// Figure 4).
    pub fn with_std_scale(&self, scale: f64) -> Self {
        IndependentGaussian {
            means: self.means.clone(),
            std_devs: self.std_devs.iter().map(|s| s * scale).collect(),
            seed: self.seed,
        }
    }
}

impl ValueSource for IndependentGaussian {
    fn num_nodes(&self) -> usize {
        self.means.len()
    }

    fn values(&mut self, epoch: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(mix_seed(self.seed, epoch, 1));
        self.means.iter().zip(&self.std_devs).map(|(&m, &s)| normal(&mut rng, m, s)).collect()
    }

    fn name(&self) -> &'static str {
        "independent-gaussian"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_epoch() {
        let mut a = IndependentGaussian::random(20, 50.0..60.0, 1.0..3.0, 7);
        let mut b = IndependentGaussian::random(20, 50.0..60.0, 1.0..3.0, 7);
        assert_eq!(a.values(5), b.values(5));
        assert_ne!(a.values(5), a.values(6), "different epochs differ");
    }

    #[test]
    fn respects_parameters() {
        let mut g = IndependentGaussian::new(vec![10.0, 100.0], vec![0.01, 0.01], 3);
        let v = g.values(0);
        assert!((v[0] - 10.0).abs() < 1.0);
        assert!((v[1] - 100.0).abs() < 1.0);
    }

    #[test]
    fn empirical_moments_match() {
        let mut g = IndependentGaussian::new(vec![5.0], vec![2.0], 11);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|e| g.values(e)[0]).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn std_scale_changes_spread_only() {
        let g = IndependentGaussian::new(vec![5.0, 6.0], vec![1.0, 2.0], 1);
        let h = g.with_std_scale(3.0);
        assert_eq!(h.means(), &[5.0, 6.0]);
        assert_eq!(h.std_devs(), &[3.0, 6.0]);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_std() {
        IndependentGaussian::new(vec![0.0], vec![-1.0], 0);
    }
}
