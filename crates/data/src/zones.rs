//! The contention-zone workload (Figures 5–7).
//!
//! Nodes outside the zones have fixed means `m` and low variance. Nodes
//! inside a zone have means *below* `m` but variances tuned so each zone
//! node exceeds `m` with probability `p = k / (zones · nodes_per_zone)`;
//! with the paper's `nodes_per_zone = 2k` and `z` zones this is `1/(2z)`,
//! so the expected number of zone nodes above `m` is exactly `k` and each
//! zone contributes `k/z` of the top k in expectation — the negative
//! correlation that makes local filtering pay off.

use crate::source::ValueSource;
use crate::stats::{mix_seed, normal, normal_inv_cdf};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Contention-zone value source.
#[derive(Debug, Clone)]
pub struct ContentionZones {
    /// Zone id per node (`None` = background node).
    membership: Vec<Option<usize>>,
    background_mean: f64,
    background_std: f64,
    /// Mean of zone nodes, derived from the exceedance probability.
    zone_mean: f64,
    zone_std: f64,
    seed: u64,
}

impl ContentionZones {
    /// Builds the workload.
    ///
    /// * `membership` — zone id per node, as produced by
    ///   [`prospector_net::NetworkBuilder::zones`];
    /// * `background_mean`/`background_std` — the fixed-mean, low-variance
    ///   background population (`m` in the paper);
    /// * `zone_std` — the (high) standard deviation of zone nodes;
    /// * `exceed_prob` — per-zone-node probability of exceeding `m`; the
    ///   zone mean is then `m - zone_std · Φ⁻¹(1 − exceed_prob) < m`.
    pub fn new(
        membership: Vec<Option<usize>>,
        background_mean: f64,
        background_std: f64,
        zone_std: f64,
        exceed_prob: f64,
        seed: u64,
    ) -> Self {
        assert!(
            exceed_prob > 0.0 && exceed_prob <= 0.5,
            "exceed_prob must be in (0, 0.5] so the zone mean stays at or below m"
        );
        assert!(zone_std > background_std, "zone variance must exceed background variance");
        let zone_mean = background_mean - zone_std * normal_inv_cdf(1.0 - exceed_prob);
        ContentionZones { membership, background_mean, background_std, zone_mean, zone_std, seed }
    }

    /// Convenience constructor matching the paper's setup: `z` zones of
    /// `2k` nodes, exceedance probability `1/(2z)` (expected `k` zone nodes
    /// above `m` in total).
    pub fn paper_setup(
        membership: Vec<Option<usize>>,
        k: usize,
        background_mean: f64,
        seed: u64,
    ) -> Self {
        let zones = membership.iter().flatten().copied().max().map_or(0, |z| z + 1);
        assert!(zones > 0, "membership names no zones");
        let per_zone = membership.iter().filter(|z| z.is_some()).count() / zones;
        let _ = k;
        let exceed = 1.0 / (2.0 * zones as f64);
        let _ = per_zone;
        ContentionZones::new(membership, background_mean, 1.0, 25.0, exceed, seed)
    }

    /// The derived zone mean (strictly below the background mean).
    pub fn zone_mean(&self) -> f64 {
        self.zone_mean
    }

    /// The background threshold `m`.
    pub fn background_mean(&self) -> f64 {
        self.background_mean
    }
}

impl ValueSource for ContentionZones {
    fn num_nodes(&self) -> usize {
        self.membership.len()
    }

    fn values(&mut self, epoch: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(mix_seed(self.seed, epoch, 2));
        self.membership
            .iter()
            .map(|z| match z {
                None => normal(&mut rng, self.background_mean, self.background_std),
                Some(_) => normal(&mut rng, self.zone_mean, self.zone_std),
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "contention-zones"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn membership(zones: usize, per_zone: usize, background: usize) -> Vec<Option<usize>> {
        let mut m = vec![None; background];
        for z in 0..zones {
            m.extend(std::iter::repeat_n(Some(z), per_zone));
        }
        m
    }

    #[test]
    fn zone_mean_below_background() {
        let src = ContentionZones::new(membership(6, 20, 50), 100.0, 1.0, 15.0, 1.0 / 12.0, 1);
        assert!(src.zone_mean() < src.background_mean());
    }

    #[test]
    fn exceedance_probability_matches() {
        let zones = 6;
        let k = 10;
        let mut src = ContentionZones::paper_setup(membership(zones, 2 * k, 50), k, 100.0, 3);
        let mut exceed = 0usize;
        let mut zone_draws = 0usize;
        for epoch in 0..2_000 {
            let v = src.values(epoch);
            for (i, z) in src.membership.iter().enumerate() {
                if z.is_some() {
                    zone_draws += 1;
                    if v[i] > 100.0 {
                        exceed += 1;
                    }
                }
            }
        }
        let rate = exceed as f64 / zone_draws as f64;
        let target = 1.0 / (2.0 * zones as f64);
        assert!((rate - target).abs() < 0.01, "rate {rate} target {target}");
    }

    #[test]
    fn expected_zone_nodes_in_topk_is_k() {
        // With 2k nodes per zone at p = 1/(2z), z zones contribute k
        // exceedances in expectation; since background nodes hover near m
        // with tiny variance, the top-k is dominated by exceeding zone
        // nodes.
        let zones = 4;
        let k = 8;
        let mut src = ContentionZones::paper_setup(membership(zones, 2 * k, 30), k, 100.0, 9);
        let mut above = 0usize;
        let epochs = 1_000;
        for epoch in 0..epochs {
            let v = src.values(epoch);
            above += src
                .membership
                .iter()
                .enumerate()
                .filter(|(i, z)| z.is_some() && v[*i] > 100.0)
                .count();
        }
        let avg = above as f64 / epochs as f64;
        assert!((avg - k as f64).abs() < 0.8, "avg exceedances {avg}, expected ~{k}");
    }

    #[test]
    #[should_panic]
    fn rejects_exceed_prob_above_half() {
        ContentionZones::new(membership(2, 4, 4), 100.0, 1.0, 15.0, 0.6, 0);
    }

    #[test]
    fn single_zone_boundary_probability_allowed() {
        // One zone → p = 1/(2·1) = 0.5: zone mean equals the background
        // threshold (the paper's formula's boundary case).
        let src = ContentionZones::new(membership(1, 8, 4), 100.0, 1.0, 15.0, 0.5, 0);
        assert!((src.zone_mean() - 100.0).abs() < 1e-9);
    }
}
