//! Drift workloads for the continuous-query mode.
//!
//! The continuous protocol's entire value proposition is "quiet epochs
//! are (nearly) free", so its benchmarks and differential tests need
//! sources whose *rate of change* is a tunable knob — unlike
//! [`IndependentGaussian`](crate::IndependentGaussian), which redraws
//! every node every epoch, or [`RandomWalk`](crate::RandomWalk), which
//! carries mutable state and cannot regenerate an arbitrary epoch after
//! a crash-resume.
//!
//! Both sources here are **stateless per epoch**: `values(e)` is a pure
//! function of the configuration and `e`, so checkpoint/resume replays
//! identically and any epoch can be queried out of order.

use crate::source::ValueSource;
use crate::stats::{mix_seed, normal};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Per-node hold-or-redraw drift: at every epoch each node independently
/// redraws from its `N(mean_i, std_i²)` with probability `change_prob`
/// and otherwise holds its previous reading bit-for-bit. `change_prob`
/// is the drift rate: `0.0` is a perfectly quiet network (constant after
/// epoch 0), `1.0` degenerates to [`IndependentGaussian`] behaviour.
#[derive(Debug, Clone)]
pub struct DriftField {
    means: Vec<f64>,
    std_devs: Vec<f64>,
    change_prob: f64,
    seed: u64,
}

impl DriftField {
    /// Explicit parameters. `change_prob` must be in `[0, 1]`.
    pub fn new(means: Vec<f64>, std_devs: Vec<f64>, change_prob: f64, seed: u64) -> Self {
        assert_eq!(means.len(), std_devs.len());
        assert!(std_devs.iter().all(|s| *s >= 0.0), "negative std dev");
        assert!((0.0..=1.0).contains(&change_prob), "change_prob outside [0, 1]");
        DriftField { means, std_devs, change_prob, seed }
    }

    /// Means uniform in `mean_range`, standard deviations uniform in
    /// `std_range` (mirrors [`IndependentGaussian::random`]).
    pub fn random(
        n: usize,
        mean_range: std::ops::Range<f64>,
        std_range: std::ops::Range<f64>,
        change_prob: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, 0, 0xD81F7));
        let means = (0..n).map(|_| rng.random_range(mean_range.clone())).collect();
        let std_devs = (0..n).map(|_| rng.random_range(std_range.clone())).collect();
        DriftField::new(means, std_devs, change_prob, seed)
    }

    /// The drift rate.
    pub fn change_prob(&self) -> f64 {
        self.change_prob
    }

    /// Whether node `i` redraws at `epoch`. Epoch 0 always redraws so
    /// every node starts with a defined value.
    fn changes_at(&self, epoch: u64, i: usize) -> bool {
        if epoch == 0 {
            return true;
        }
        if self.change_prob <= 0.0 {
            return false;
        }
        let mut rng = StdRng::seed_from_u64(mix_seed(self.seed, epoch, 0x2_0000 + i as u64));
        rng.random_range(0.0..1.0) < self.change_prob
    }

    /// The epoch node `i`'s current value was drawn at: the latest
    /// change epoch `<= epoch`. Linear scan backwards — run lengths are
    /// geometric with mean `1/change_prob`, and epoch 0 terminates it.
    fn draw_epoch(&self, epoch: u64, i: usize) -> u64 {
        (0..=epoch).rev().find(|&e| self.changes_at(e, i)).unwrap_or(0)
    }
}

impl ValueSource for DriftField {
    fn num_nodes(&self) -> usize {
        self.means.len()
    }

    fn values(&mut self, epoch: u64) -> Vec<f64> {
        (0..self.means.len())
            .map(|i| {
                let e = self.draw_epoch(epoch, i);
                let mut rng = StdRng::seed_from_u64(mix_seed(self.seed, e, 0x3_0000 + i as u64));
                normal(&mut rng, self.means[i], self.std_devs[i])
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "drift-field"
    }
}

/// Fully scripted readings: a base vector plus pinned step changes.
/// `values(e)` is the base with every step `(step_epoch, node, value)`
/// with `step_epoch <= e` applied in order. This is the golden-scenario
/// workload: quiet epochs are exactly constant, and each interesting
/// event is placed by hand.
#[derive(Debug, Clone)]
pub struct PiecewiseConstant {
    base: Vec<f64>,
    steps: Vec<(u64, usize, f64)>,
}

impl PiecewiseConstant {
    /// `steps` are `(epoch, node, new_value)` and must reference valid
    /// nodes; they are applied in the order given.
    pub fn new(base: Vec<f64>, steps: Vec<(u64, usize, f64)>) -> Self {
        assert!(steps.iter().all(|&(_, node, _)| node < base.len()), "step node out of range");
        PiecewiseConstant { base, steps }
    }
}

impl ValueSource for PiecewiseConstant {
    fn num_nodes(&self) -> usize {
        self.base.len()
    }

    fn values(&mut self, epoch: u64) -> Vec<f64> {
        let mut v = self.base.clone();
        for &(e, node, value) in &self.steps {
            if e <= epoch {
                v[node] = value;
            }
        }
        v
    }

    fn name(&self) -> &'static str {
        "piecewise-constant"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_drift_is_constant_after_epoch_zero() {
        let mut s = DriftField::random(8, 10.0..20.0, 1.0..2.0, 0.0, 7);
        let v0 = s.values(0);
        for e in 1..10 {
            let ve = s.values(e);
            for (a, b) in v0.iter().zip(&ve) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn full_drift_redraws_every_epoch() {
        let mut s = DriftField::random(8, 10.0..20.0, 1.0..2.0, 1.0, 7);
        let v0 = s.values(0);
        let v1 = s.values(1);
        assert!(v0.iter().zip(&v1).any(|(a, b)| a.to_bits() != b.to_bits()));
    }

    #[test]
    fn values_are_reproducible_and_order_independent() {
        let mut s = DriftField::random(6, 0.0..50.0, 0.5..1.5, 0.3, 11);
        let forward: Vec<Vec<f64>> = (0..12).map(|e| s.values(e)).collect();
        let mut s2 = s.clone();
        for e in (0..12).rev() {
            let v = s2.values(e);
            assert_eq!(v, forward[e as usize], "epoch {e}");
        }
    }

    #[test]
    fn intermediate_drift_holds_some_values() {
        let mut s = DriftField::random(16, 10.0..20.0, 1.0..2.0, 0.3, 5);
        let v1 = s.values(1);
        let v2 = s.values(2);
        let held = v1.iter().zip(&v2).filter(|(a, b)| a.to_bits() == b.to_bits()).count();
        assert!(held > 0, "expected some nodes to hold at drift 0.3");
        assert!(held < 16, "expected some nodes to change at drift 0.3");
    }

    #[test]
    fn piecewise_steps_apply_and_persist() {
        let mut s = PiecewiseConstant::new(vec![1.0, 2.0, 3.0], vec![(4, 1, 9.0)]);
        assert_eq!(s.values(3), vec![1.0, 2.0, 3.0]);
        assert_eq!(s.values(4), vec![1.0, 9.0, 3.0]);
        assert_eq!(s.values(10), vec![1.0, 9.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "step node out of range")]
    fn piecewise_rejects_bad_node() {
        PiecewiseConstant::new(vec![1.0], vec![(0, 3, 2.0)]);
    }
}
