//! Small numeric helpers shared by the value generators.

use rand::rngs::StdRng;
use rand::RngExt;

/// Draws one standard-normal sample via the Box–Muller transform.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.random_range(0.0..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws one `N(mean, std_dev²)` sample.
pub fn normal(rng: &mut StdRng, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Inverse CDF of the standard normal distribution (Acklam's rational
/// approximation, |relative error| < 1.15e-9). Panics outside `(0, 1)`.
pub fn normal_inv_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_inv_cdf requires p in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Standard normal CDF (via `erf`-free Abramowitz–Stegun 7.1.26-style
/// approximation on `erfc`, good to ~1e-7). Used only in tests and
/// diagnostics.
pub fn normal_cdf(x: f64) -> f64 {
    // Hart-style rational approximation through the complementary error
    // function of |x| / sqrt(2).
    let z = x / std::f64::consts::SQRT_2;
    0.5 * erfc_approx(-z)
}

fn erfc_approx(x: f64) -> f64 {
    // For erfc(-z) with our usage we need erfc over the full real line.
    let t = 1.0 / (1.0 + 0.5 * x.abs());
    let tau = t
        * (-x * x - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        tau
    } else {
        2.0 - tau
    }
}

/// Deterministically mixes a base seed with an epoch (and an optional
/// stream id) so stateless sources can regenerate any epoch.
pub fn mix_seed(seed: u64, epoch: u64, stream: u64) -> u64 {
    // SplitMix64-style finalizer over the XOR of the inputs.
    let mut z =
        seed ^ epoch.wrapping_mul(0x9e3779b97f4a7c15) ^ stream.wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn inv_cdf_round_trips_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = normal_inv_cdf(p);
            let back = normal_cdf(x);
            assert!((back - p).abs() < 1e-6, "p={p}: inv={x}, cdf(inv)={back}");
        }
    }

    #[test]
    fn inv_cdf_known_values() {
        assert!(normal_inv_cdf(0.5).abs() < 1e-9);
        assert!((normal_inv_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_inv_cdf(0.025) + 1.959964).abs() < 1e-4);
    }

    #[test]
    #[should_panic]
    fn inv_cdf_rejects_bounds() {
        normal_inv_cdf(0.0);
    }

    #[test]
    fn normal_samples_have_right_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn mix_seed_spreads_inputs() {
        let a = mix_seed(1, 0, 0);
        let b = mix_seed(1, 1, 0);
        let c = mix_seed(1, 0, 1);
        let d = mix_seed(2, 0, 0);
        assert!(a != b && a != c && a != d && b != c);
        // Determinism
        assert_eq!(mix_seed(1, 0, 0), a);
    }
}
