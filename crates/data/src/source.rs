//! The value-source abstraction.

/// A process generating one reading per node per epoch.
///
/// Implementations take `&mut self` so stateful processes (e.g.
/// [`RandomWalk`](crate::RandomWalk)) can advance; stateless sources ignore
/// ordering, but callers should query epochs in non-decreasing order for
/// portability across sources.
pub trait ValueSource {
    /// Number of nodes this source generates readings for.
    fn num_nodes(&self) -> usize;

    /// Readings for every node at `epoch`, indexed by node id.
    fn values(&mut self, epoch: u64) -> Vec<f64>;

    /// Human-readable workload name for experiment reports.
    fn name(&self) -> &'static str {
        "unnamed"
    }
}

impl<S: ValueSource + ?Sized> ValueSource for Box<S> {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    fn values(&mut self, epoch: u64) -> Vec<f64> {
        (**self).values(epoch)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(usize);

    impl ValueSource for Constant {
        fn num_nodes(&self) -> usize {
            self.0
        }
        fn values(&mut self, _epoch: u64) -> Vec<f64> {
            vec![1.0; self.0]
        }
    }

    #[test]
    fn boxed_source_delegates() {
        let mut b: Box<dyn ValueSource> = Box::new(Constant(3));
        assert_eq!(b.num_nodes(), 3);
        assert_eq!(b.values(0), vec![1.0; 3]);
        assert_eq!(b.name(), "unnamed");
    }
}
