//! On-disk checkpoint management: atomic writes, retention, and
//! fallback across corrupt files.
//!
//! A store is a directory of `ckpt-<epoch>.bin` files. Writes are
//! crash-consistent: the image is written to a temporary name, synced,
//! then atomically renamed into place, so a crash mid-write can leave a
//! stray temp file but never a half-written checkpoint under the real
//! name. Loads scan newest-first and skip anything that fails the
//! checksum, so one corrupt or truncated file silently falls back to the
//! previous good one.

use crate::checkpoint::{Checkpoint, CheckpointError};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// When (and how many) checkpoints to keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Write a checkpoint at every epoch boundary divisible by this
    /// (1 = every epoch). Must be nonzero.
    pub every_epochs: u64,
    /// Retain at most this many checkpoint files, pruning the oldest.
    /// Keeping at least 2 is what makes corrupt-fallback useful.
    pub keep_last: usize,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy { every_epochs: 4, keep_last: 3 }
    }
}

impl CheckpointPolicy {
    /// Is a checkpoint due at the boundary *after* `completed_epoch`?
    /// Boundary `e` means epochs `0..=e` have run; the policy fires when
    /// `e + 1` is a multiple of `every_epochs`, so `every_epochs = 4`
    /// checkpoints after epochs 3, 7, 11, …
    pub fn due(&self, completed_epoch: u64) -> bool {
        self.every_epochs > 0 && (completed_epoch + 1).is_multiple_of(self.every_epochs)
    }
}

/// A directory of checkpoint files.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

/// A store-level failure: IO wrapped with the path it concerned.
#[derive(Debug)]
pub enum StoreError {
    Io {
        path: PathBuf,
        error: std::io::Error,
    },
    /// No file in the directory decoded as a valid checkpoint.
    NoValidCheckpoint {
        dir: PathBuf,
        skipped: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            StoreError::NoValidCheckpoint { dir, skipped } => write!(
                f,
                "no valid checkpoint in {} ({skipped} corrupt/unreadable file(s) skipped)",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl CheckpointStore {
    /// Opens (creating if needed) a store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|error| StoreError::Io { path: dir.clone(), error })?;
        Ok(CheckpointStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, epoch: u64) -> PathBuf {
        // Zero-padded so lexicographic file listings sort by epoch.
        self.dir.join(format!("ckpt-{epoch:010}.bin"))
    }

    /// Epochs with a checkpoint file present, ascending. Files that do
    /// not match the naming scheme are ignored (they may be temp files
    /// from an interrupted write).
    pub fn list(&self) -> Result<Vec<u64>, StoreError> {
        let entries = fs::read_dir(&self.dir)
            .map_err(|error| StoreError::Io { path: self.dir.clone(), error })?;
        let mut epochs = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|error| StoreError::Io { path: self.dir.clone(), error })?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(num) = name.strip_prefix("ckpt-").and_then(|s| s.strip_suffix(".bin")) {
                if let Ok(epoch) = num.parse::<u64>() {
                    epochs.push(epoch);
                }
            }
        }
        epochs.sort_unstable();
        Ok(epochs)
    }

    /// Atomically writes `ckpt` under its `next_epoch`, then prunes to
    /// `keep_last` files. The write path is temp-file + `sync_all` +
    /// rename: a crash at any instant leaves either the old directory
    /// contents or the new file, never a torn one.
    pub fn save(&self, ckpt: &Checkpoint, keep_last: usize) -> Result<PathBuf, StoreError> {
        let bytes = ckpt.encode();
        let final_path = self.path_for(ckpt.next_epoch);
        let tmp_path = self.dir.join(format!(".ckpt-{:010}.tmp", ckpt.next_epoch));
        let io = |path: &Path, error| StoreError::Io { path: path.to_path_buf(), error };
        {
            let mut f = fs::File::create(&tmp_path).map_err(|e| io(&tmp_path, e))?;
            f.write_all(&bytes).map_err(|e| io(&tmp_path, e))?;
            // Data must be durable before the rename publishes the name,
            // or a crash could expose an empty file under the final path.
            f.sync_all().map_err(|e| io(&tmp_path, e))?;
        }
        fs::rename(&tmp_path, &final_path).map_err(|e| io(&final_path, e))?;
        #[cfg(unix)]
        {
            // Persist the rename itself; without the directory fsync the
            // new name may not survive a power loss.
            if let Ok(d) = fs::File::open(&self.dir) {
                let _ = d.sync_all();
            }
        }
        self.prune(keep_last)?;
        Ok(final_path)
    }

    /// Deletes the oldest checkpoints until at most `keep_last` remain.
    pub fn prune(&self, keep_last: usize) -> Result<(), StoreError> {
        let epochs = self.list()?;
        if epochs.len() <= keep_last {
            return Ok(());
        }
        for &epoch in &epochs[..epochs.len() - keep_last] {
            let path = self.path_for(epoch);
            fs::remove_file(&path).map_err(|error| StoreError::Io { path, error })?;
        }
        Ok(())
    }

    /// Loads the checkpoint for exactly `epoch`.
    pub fn load(&self, epoch: u64) -> Result<Checkpoint, CheckpointError> {
        let path = self.path_for(epoch);
        let bytes = fs::read(&path)
            .map_err(|e| CheckpointError::Invalid(format!("{}: {e}", path.display())))?;
        Checkpoint::decode(&bytes)
    }

    /// Loads the newest checkpoint that passes validation, skipping (and
    /// reporting) corrupt, truncated or unreadable files. This is the
    /// crash-recovery entry point: a half-written or bit-flipped latest
    /// file falls back to the previous good one instead of failing the
    /// resume.
    pub fn latest_valid(&self) -> Result<(Checkpoint, Vec<(u64, CheckpointError)>), StoreError> {
        let mut skipped = Vec::new();
        for epoch in self.list()?.into_iter().rev() {
            match self.load(epoch) {
                Ok(ckpt) => return Ok((ckpt, skipped)),
                Err(e) => skipped.push((epoch, e)),
            }
        }
        Err(StoreError::NoValidCheckpoint { dir: self.dir.clone(), skipped: skipped.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_due_fires_on_multiples() {
        let p = CheckpointPolicy { every_epochs: 4, keep_last: 2 };
        let due: Vec<u64> = (0..12).filter(|&e| p.due(e)).collect();
        assert_eq!(due, vec![3, 7, 11]);
        let every = CheckpointPolicy { every_epochs: 1, keep_last: 2 };
        assert!((0..5).all(|e| every.due(e)));
        let never = CheckpointPolicy { every_epochs: 0, keep_last: 2 };
        assert!(!(0..5).any(|e| never.due(e)));
    }

    #[test]
    fn filenames_sort_by_epoch() {
        let s = CheckpointStore { dir: PathBuf::from("/x") };
        let a = s.path_for(9);
        let b = s.path_for(10);
        let c = s.path_for(100);
        assert!(a < b && b < c, "{a:?} {b:?} {c:?}");
    }
}
