//! The versioned checkpoint image of a running experiment.
//!
//! A [`Checkpoint`] captures everything an `ExperimentRunner` needs to
//! continue a run from an epoch boundary: the full experiment
//! configuration (so a resumed process needs no side channel), the
//! repaired topology and liveness mask, the sample window with its
//! derived top-k state, cumulative energy, the installed plan and its
//! provenance, the post-degradation failure model, the escalated ARQ
//! policy, the dissemination RNG's raw state (the only RNG stream that
//! survives across epochs — collection randomness is re-derived per
//! epoch from `epoch_seed`), and the metrics snapshot.
//!
//! ## Wire format
//!
//! ```text
//! magic    8 bytes   "PRSPCKPT"
//! version  u32 LE    currently 2
//! length   u64 LE    payload byte count
//! checksum u64 LE    FNV-1a 64 of the payload
//! payload  length bytes, fields in the fixed order of `encode`
//! ```
//!
//! The payload is byte-deterministic: floats travel as IEEE-754 bits,
//! maps in sorted order, and no wall-clock or platform-dependent value
//! is ever written, so `encode` is a pure function of the captured
//! state. Corruption anywhere — header or payload, substitution or
//! truncation — surfaces as a typed [`CheckpointError`].

use crate::codec::{fnv1a64, DecodeError, Reader, Writer};
use prospector_core::{ContinuousPolicy, GatePolicy, Plan, SketchPrecision, TrustState};
use prospector_data::{SamplePolicy, SampleSet};
use prospector_net::{
    ArqPolicy, Backoff, DataFault, EnergyMeter, FailureModel, FaultEvent, FaultSchedule, NodeId,
    Topology, NUM_PHASES,
};
use prospector_obs::{Histogram, MetricsSnapshot};
use std::collections::VecDeque;

/// File magic: identifies a Prospector checkpoint.
pub const MAGIC: [u8; 8] = *b"PRSPCKPT";

/// Current format version. Version 2 added data faults (with the
/// schedule's noise seed), the plausibility-gate policy, and per-node
/// trust state. Version 3 added the continuous-query mode: the
/// [`ContinuousPolicy`] in the configuration section and the protocol's
/// resumable state (view, per-node last-shipped values, in-flight
/// custody entries, threshold, refresh cursor and encoded per-subtree
/// q-digests) as a [`ContinuousImage`].
pub const VERSION: u32 = 3;

/// Header bytes preceding the payload (magic + version + length +
/// checksum).
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Why a byte stream failed to load as a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The stream's version is not the one this build reads and writes.
    UnsupportedVersion { found: u32 },
    /// The stream is shorter than the header + declared payload length.
    Truncated { declared: u64, available: usize },
    /// The payload does not hash to the stored checksum.
    ChecksumMismatch { stored: u64, computed: u64 },
    /// The payload's bytes do not parse as the declared version's schema.
    Decode(DecodeError),
    /// The payload parsed but describes an impossible state (e.g. a
    /// parent vector that is not a tree).
    Invalid(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a Prospector checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(f, "checkpoint version {found} does not match supported version {VERSION}")
            }
            CheckpointError::Truncated { declared, available } => {
                write!(f, "checkpoint truncated: header declares {declared} payload bytes, {available} present")
            }
            CheckpointError::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}")
            }
            CheckpointError::Decode(e) => write!(f, "payload decode failed: {e}"),
            CheckpointError::Invalid(why) => write!(f, "checkpoint describes invalid state: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<DecodeError> for CheckpointError {
    fn from(e: DecodeError) -> Self {
        CheckpointError::Decode(e)
    }
}

/// The resumable state of an experiment, captured at an epoch boundary.
///
/// Fields are public plain data: the sim crate assembles one in
/// `ExperimentRunner::checkpoint` and consumes one in
/// `ExperimentRunner::resume`; this crate only defines the image and its
/// wire format.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The epoch the resumed run executes next (all epochs `< next_epoch`
    /// are already reflected in the state below).
    pub next_epoch: u64,

    // -- experiment configuration (immutable over a run) --
    pub k: usize,
    pub window: usize,
    pub policy: SamplePolicy,
    pub budget_mj: f64,
    pub replan_every: u64,
    pub replan_threshold: f64,
    /// The *configured* failure model, before any scheduled degradations.
    pub config_failures: Option<FailureModel>,
    pub faults: FaultSchedule,
    pub install_retries: u32,
    /// The *configured* ARQ policy, before any escalations.
    pub config_arq: ArqPolicy,
    pub min_delivered: f64,
    pub max_retry_budget: u32,
    /// The plausibility-gate policy, if gating is enabled.
    pub gate: Option<GatePolicy>,
    /// The continuous-query policy, if the run is in continuous mode.
    pub continuous: Option<ContinuousPolicy>,
    pub seed: u64,

    // -- dynamic state (accumulated across epochs) --
    /// The routing tree as currently repaired.
    pub topology: Topology,
    /// Per-node liveness.
    pub alive: Vec<bool>,
    /// Per-node plausibility-gate trust state (strike counters,
    /// quarantine, parole progress).
    pub trust: Vec<TrustState>,
    /// The sample window with its derived top-k sets.
    pub samples: SampleSet,
    /// Cumulative energy accounting.
    pub meter: EnergyMeter,
    /// The installed plan, if any.
    pub plan: Option<Plan>,
    /// Provenance of the installed plan: planner name and fallback depth.
    pub plan_via: Option<(String, u64)>,
    /// Epoch of the last plan recalculation.
    pub last_replan: Option<u64>,
    /// The failure model as currently degraded.
    pub failures: Option<FailureModel>,
    /// The ARQ policy as currently escalated.
    pub arq: ArqPolicy,
    /// Raw state of the dissemination RNG stream.
    pub rng_state: [u64; 4],
    /// Metrics at the boundary, if the run had metrics enabled.
    pub metrics: Option<MetricsSnapshot>,
    /// Continuous-protocol state, present exactly when `continuous` is.
    pub cont_state: Option<ContinuousImage>,
}

/// Wire-level image of the continuous protocol's resumable state (the
/// sim crate's `ContinuousState` without its derived answer index, which
/// is rebuilt from `eff` on resume).
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousImage {
    /// Root's belief: last applied raw value per node (`-inf` unknown).
    pub view: Vec<f64>,
    /// Per node: the last value it handed into the delta pipeline.
    pub last_shipped: Vec<f64>,
    /// Root's post-gate effective value per node (`-inf` absent).
    pub eff: Vec<f64>,
    /// The k-th threshold as last broadcast.
    pub threshold: f64,
    /// Epoch of the last full refresh.
    pub last_refresh: Option<u64>,
    /// The next query epoch must fully refresh.
    pub force_refresh: bool,
    /// Per holder node: in-flight custody entries `(origin, epoch, value)`.
    pub custody: Vec<Vec<(u32, u64, f64)>>,
    /// Per root-child: `(child, encoded q-digest)` from the last refresh.
    pub sketches: Vec<(u32, Vec<u8>)>,
}

fn put_node(w: &mut Writer, n: NodeId) {
    w.put_u32(n.0);
}

fn get_node(r: &mut Reader<'_>) -> Result<NodeId, DecodeError> {
    Ok(NodeId(r.get_u32()?))
}

fn put_policy(w: &mut Writer, p: &SamplePolicy) {
    match *p {
        SamplePolicy::Periodic { warmup, period } => {
            w.put_u8(0);
            w.put_u64(warmup);
            w.put_u64(period);
        }
        SamplePolicy::Random { warmup, prob, seed } => {
            w.put_u8(1);
            w.put_u64(warmup);
            w.put_f64(prob);
            w.put_u64(seed);
        }
        SamplePolicy::Never => w.put_u8(2),
    }
}

fn get_policy(r: &mut Reader<'_>) -> Result<SamplePolicy, DecodeError> {
    let offset_tag = r.get_u8()?;
    match offset_tag {
        0 => Ok(SamplePolicy::Periodic { warmup: r.get_u64()?, period: r.get_u64()? }),
        1 => Ok(SamplePolicy::Random {
            warmup: r.get_u64()?,
            prob: r.get_f64()?,
            seed: r.get_u64()?,
        }),
        2 => Ok(SamplePolicy::Never),
        tag => Err(DecodeError::BadTag { offset: 0, tag }),
    }
}

fn put_arq(w: &mut Writer, a: &ArqPolicy) {
    w.put_u32(a.max_retries);
    w.put_f64(a.backoff.base_mj);
    w.put_f64(a.backoff.factor);
    w.put_f64(a.backoff.jitter);
}

fn get_arq(r: &mut Reader<'_>) -> Result<ArqPolicy, DecodeError> {
    Ok(ArqPolicy {
        max_retries: r.get_u32()?,
        backoff: Backoff { base_mj: r.get_f64()?, factor: r.get_f64()?, jitter: r.get_f64()? },
    })
}

fn put_failures(w: &mut Writer, f: &FailureModel) {
    let probs: Vec<f64> = (0..f.len()).map(|i| f.prob(NodeId::from_index(i))).collect();
    w.put_seq(&probs, |w, p| w.put_f64(*p));
    w.put_f64(f.reroute_penalty());
}

fn get_failures(r: &mut Reader<'_>) -> Result<FailureModel, CheckpointError> {
    let probs = r.get_seq(8, |r| r.get_f64())?;
    let penalty = r.get_f64()?;
    FailureModel::per_edge(probs.len(), probs, penalty)
        .map_err(|e| CheckpointError::Invalid(e.to_string()))
}

fn put_faults(w: &mut Writer, s: &FaultSchedule) {
    let epochs: Vec<u64> = s.epochs().collect();
    w.put_seq(&epochs, |w, &epoch| {
        w.put_u64(epoch);
        let events = s.events_at(epoch);
        w.put_usize(events.len());
        for e in events {
            match e {
                FaultEvent::NodeDeath(n) => {
                    w.put_u8(0);
                    put_node(w, *n);
                }
                FaultEvent::LinkDegrade { child, added_prob } => {
                    w.put_u8(1);
                    put_node(w, *child);
                    w.put_f64(*added_prob);
                }
                FaultEvent::Data { node, fault, duration } => {
                    w.put_u8(2);
                    put_node(w, *node);
                    let kind = match fault {
                        DataFault::StuckAt { .. } => 0,
                        DataFault::Drift { .. } => 1,
                        DataFault::Spike { .. } => 2,
                        DataFault::Noise { .. } => 3,
                    };
                    w.put_u8(kind);
                    w.put_f64(fault.param());
                    w.put_u64(*duration);
                }
            }
        }
    });
    w.put_u64(s.noise_seed());
}

impl Checkpoint {
    /// Serializes to the wire format (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.next_epoch);

        w.put_usize(self.k);
        w.put_usize(self.window);
        put_policy(&mut w, &self.policy);
        w.put_f64(self.budget_mj);
        w.put_u64(self.replan_every);
        w.put_f64(self.replan_threshold);
        w.put_opt(&self.config_failures, put_failures);
        put_faults(&mut w, &self.faults);
        w.put_u32(self.install_retries);
        put_arq(&mut w, &self.config_arq);
        w.put_f64(self.min_delivered);
        w.put_u32(self.max_retry_budget);
        w.put_opt(&self.gate, put_gate);
        w.put_opt(&self.continuous, put_continuous_policy);
        w.put_u64(self.seed);

        put_node(&mut w, self.topology.root());
        let parents = self.topology.parent_vec();
        w.put_seq(&parents, |w, p| w.put_opt(p, |w, n| put_node(w, *n)));
        w.put_seq(&self.alive, |w, a| w.put_bool(*a));
        w.put_seq(&self.trust, put_trust);

        w.put_usize(self.samples.num_nodes());
        w.put_usize(self.samples.k());
        w.put_usize(self.samples.capacity());
        w.put_usize(self.samples.len());
        for j in 0..self.samples.len() {
            w.put_seq(self.samples.values(j), |w, v| w.put_f64(*v));
            w.put_seq(self.samples.ones(j), |w, n| put_node(w, *n));
        }
        w.put_seq(self.samples.column_counts(), |w, c| w.put_u32(*c));

        w.put_seq(self.meter.node_totals(), |w, v| w.put_f64(*v));
        for &p in self.meter.phase_totals() {
            w.put_f64(p);
        }
        w.put_f64(self.meter.total());

        w.put_opt(&self.plan, |w, p| {
            let bw: Vec<u32> =
                (0..parents.len()).map(|i| p.bandwidth(NodeId::from_index(i))).collect();
            w.put_seq(&bw, |w, b| w.put_u32(*b));
            w.put_bool(p.proof_carrying);
        });
        w.put_opt(&self.plan_via, |w, (name, depth)| {
            w.put_str(name);
            w.put_u64(*depth);
        });
        w.put_opt(&self.last_replan, |w, e| w.put_u64(*e));
        w.put_opt(&self.failures, put_failures);
        put_arq(&mut w, &self.arq);
        for s in self.rng_state {
            w.put_u64(s);
        }
        w.put_opt(&self.metrics, put_metrics);
        w.put_opt(&self.cont_state, put_cont_state);
        w.into_bytes()
    }

    /// Parses the wire format, verifying magic, version, declared length
    /// and checksum before touching the payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 8 || bytes[..8] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        if bytes.len() < HEADER_LEN {
            return Err(CheckpointError::Truncated { declared: 0, available: bytes.len() });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let declared = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let stored = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
        let available = bytes.len() - HEADER_LEN;
        if declared != available as u64 {
            return Err(CheckpointError::Truncated { declared, available });
        }
        let payload = &bytes[HEADER_LEN..];
        let computed = fnv1a64(payload);
        if computed != stored {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }
        Self::decode_payload(payload)
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::new(payload);
        let next_epoch = r.get_u64()?;

        let k = r.get_usize()?;
        let window = r.get_usize()?;
        let policy = get_policy(&mut r)?;
        let budget_mj = r.get_f64()?;
        let replan_every = r.get_u64()?;
        let replan_threshold = r.get_f64()?;
        let config_failures = get_opt_failures(&mut r)?;
        let faults = read_faults(&mut r)?;
        let install_retries = r.get_u32()?;
        let config_arq = get_arq(&mut r)?;
        let min_delivered = r.get_f64()?;
        let max_retry_budget = r.get_u32()?;
        let gate = r.get_opt(get_gate)?;
        if let Some(g) = &gate {
            g.validate().map_err(|e| CheckpointError::Invalid(e.to_string()))?;
        }
        let continuous = r.get_opt(get_continuous_policy)?;
        if let Some(c) = &continuous {
            c.validate().map_err(|e| CheckpointError::Invalid(e.to_string()))?;
        }
        let seed = r.get_u64()?;

        let root = get_node(&mut r)?;
        let parents = r.get_seq(1, |r| r.get_opt(get_node))?;
        let topology = Topology::from_parents(root, parents)
            .map_err(|e| CheckpointError::Invalid(e.to_string()))?;
        let alive = r.get_seq(1, |r| r.get_bool())?;
        if alive.len() != topology.len() {
            return Err(CheckpointError::Invalid(format!(
                "alive mask covers {} nodes, topology has {}",
                alive.len(),
                topology.len()
            )));
        }
        let trust = r.get_seq(9, get_trust)?;
        if trust.len() != topology.len() {
            return Err(CheckpointError::Invalid(format!(
                "trust state covers {} nodes, topology has {}",
                trust.len(),
                topology.len()
            )));
        }

        let sn = r.get_usize()?;
        let sk = r.get_usize()?;
        let scap = r.get_usize()?;
        let slen = r.get_usize()?;
        if slen > payload.len() {
            return Err(CheckpointError::Decode(DecodeError::BadLength {
                offset: 0,
                len: slen as u64,
            }));
        }
        let mut swindow = VecDeque::with_capacity(slen);
        let mut sones = VecDeque::with_capacity(slen);
        for _ in 0..slen {
            swindow.push_back(r.get_seq(8, |r| r.get_f64())?);
            sones.push_back(r.get_seq(4, get_node)?);
        }
        let counts = r.get_seq(4, |r| r.get_u32())?;
        let samples = SampleSet::from_parts(sn, sk, scap, swindow, sones, counts)
            .map_err(|e| CheckpointError::Invalid(e.to_string()))?;

        let per_node = r.get_seq(8, |r| r.get_f64())?;
        if per_node.len() != topology.len() {
            return Err(CheckpointError::Invalid(format!(
                "meter covers {} nodes, topology has {}",
                per_node.len(),
                topology.len()
            )));
        }
        let mut per_phase = [0.0; NUM_PHASES];
        for p in &mut per_phase {
            *p = r.get_f64()?;
        }
        let total = r.get_f64()?;
        let meter = EnergyMeter::from_parts(per_node, per_phase, total);

        // A bandwidth vector of the wrong length would index out of
        // bounds deep inside execution, so its length is checked against
        // the topology here. The full `Plan::validate` invariants are
        // deliberately NOT enforced: a live plan can transiently violate
        // them (undelivered subplan installs splice old bandwidths in),
        // and a checkpoint must capture exactly what was running.
        let plan_parts = r.get_opt(|r| {
            let bw = r.get_seq(4, |r| r.get_u32())?;
            let proof = r.get_bool()?;
            Ok((bw, proof))
        })?;
        let plan = match plan_parts {
            None => None,
            Some((bw, proof)) => {
                if bw.len() != topology.len() {
                    return Err(CheckpointError::Invalid(format!(
                        "plan covers {} edges, topology has {} nodes",
                        bw.len(),
                        topology.len()
                    )));
                }
                Some(Plan::from_bandwidths(bw, proof))
            }
        };
        let plan_via = r.get_opt(|r| {
            let name = r.get_str()?;
            let depth = r.get_u64()?;
            Ok((name, depth))
        })?;
        let last_replan = r.get_opt(|r| r.get_u64())?;
        let failures = get_opt_failures(&mut r)?;
        let arq = get_arq(&mut r)?;
        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = r.get_u64()?;
        }
        let metrics = get_opt_metrics(&mut r)?;
        let cont_state = get_opt_cont_state(&mut r)?;
        if let Some(cs) = &cont_state {
            for (label, len) in [
                ("view", cs.view.len()),
                ("last_shipped", cs.last_shipped.len()),
                ("eff", cs.eff.len()),
                ("custody", cs.custody.len()),
            ] {
                if len != topology.len() {
                    return Err(CheckpointError::Invalid(format!(
                        "continuous {label} covers {len} nodes, topology has {}",
                        topology.len()
                    )));
                }
            }
        }
        r.finish()?;

        Ok(Checkpoint {
            next_epoch,
            k,
            window,
            policy,
            budget_mj,
            replan_every,
            replan_threshold,
            config_failures,
            faults,
            install_retries,
            config_arq,
            min_delivered,
            max_retry_budget,
            gate,
            continuous,
            seed,
            topology,
            alive,
            trust,
            samples,
            meter,
            plan,
            plan_via,
            last_replan,
            failures,
            arq,
            rng_state,
            metrics,
            cont_state,
        })
    }
}

fn put_continuous_policy(w: &mut Writer, c: &ContinuousPolicy) {
    w.put_f64(c.tolerance);
    w.put_u64(c.refresh_period);
    w.put_opt(&c.sketch, |w, s| {
        w.put_u32(s.depth);
        w.put_u64(s.compression);
        w.put_f64(s.lo);
        w.put_f64(s.hi);
    });
}

fn get_continuous_policy(r: &mut Reader<'_>) -> Result<ContinuousPolicy, DecodeError> {
    Ok(ContinuousPolicy {
        tolerance: r.get_f64()?,
        refresh_period: r.get_u64()?,
        sketch: r.get_opt(|r| {
            Ok(SketchPrecision {
                depth: r.get_u32()?,
                compression: r.get_u64()?,
                lo: r.get_f64()?,
                hi: r.get_f64()?,
            })
        })?,
    })
}

fn put_cont_state(w: &mut Writer, s: &ContinuousImage) {
    w.put_seq(&s.view, |w, v| w.put_f64(*v));
    w.put_seq(&s.last_shipped, |w, v| w.put_f64(*v));
    w.put_seq(&s.eff, |w, v| w.put_f64(*v));
    w.put_f64(s.threshold);
    w.put_opt(&s.last_refresh, |w, e| w.put_u64(*e));
    w.put_bool(s.force_refresh);
    w.put_usize(s.custody.len());
    for held in &s.custody {
        w.put_seq(held, |w, (origin, epoch, value)| {
            w.put_u32(*origin);
            w.put_u64(*epoch);
            w.put_f64(*value);
        });
    }
    w.put_usize(s.sketches.len());
    for (child, bytes) in &s.sketches {
        w.put_u32(*child);
        w.put_seq(bytes, |w, b| w.put_u8(*b));
    }
}

fn get_opt_cont_state(r: &mut Reader<'_>) -> Result<Option<ContinuousImage>, CheckpointError> {
    match r.get_u8().map_err(CheckpointError::Decode)? {
        0 => Ok(None),
        1 => {
            let view = r.get_seq(8, |r| r.get_f64())?;
            let last_shipped = r.get_seq(8, |r| r.get_f64())?;
            let eff = r.get_seq(8, |r| r.get_f64())?;
            let threshold = r.get_f64()?;
            let last_refresh = r.get_opt(|r| r.get_u64())?;
            let force_refresh = r.get_bool()?;
            let holders = bounded_len(r)?;
            let mut custody = Vec::with_capacity(holders);
            for _ in 0..holders {
                custody.push(r.get_seq(20, |r| Ok((r.get_u32()?, r.get_u64()?, r.get_f64()?)))?);
            }
            let num_sketches = bounded_len(r)?;
            let mut sketches = Vec::with_capacity(num_sketches);
            for _ in 0..num_sketches {
                let child = r.get_u32()?;
                let bytes = r.get_seq(1, |r| r.get_u8())?;
                sketches.push((child, bytes));
            }
            Ok(Some(ContinuousImage {
                view,
                last_shipped,
                eff,
                threshold,
                last_refresh,
                force_refresh,
                custody,
                sketches,
            }))
        }
        tag => Err(CheckpointError::Decode(DecodeError::BadTag { offset: 0, tag })),
    }
}

fn get_opt_failures(r: &mut Reader<'_>) -> Result<Option<FailureModel>, CheckpointError> {
    match r.get_u8().map_err(CheckpointError::Decode)? {
        0 => Ok(None),
        1 => Ok(Some(get_failures(r)?)),
        tag => Err(CheckpointError::Decode(DecodeError::BadTag { offset: 0, tag })),
    }
}

fn read_faults(r: &mut Reader<'_>) -> Result<FaultSchedule, CheckpointError> {
    let num_epochs = r.get_usize()?;
    if num_epochs > r.remaining() {
        return Err(CheckpointError::Decode(DecodeError::BadLength {
            offset: 0,
            len: num_epochs as u64,
        }));
    }
    let mut sched = FaultSchedule::new();
    for _ in 0..num_epochs {
        let epoch = r.get_u64()?;
        let num_events = r.get_usize()?;
        if num_events > r.remaining() {
            return Err(CheckpointError::Decode(DecodeError::BadLength {
                offset: 0,
                len: num_events as u64,
            }));
        }
        for _ in 0..num_events {
            match r.get_u8()? {
                0 => {
                    let node = get_node(r)?;
                    sched = sched
                        .try_with_death(epoch, node)
                        .map_err(|e| CheckpointError::Invalid(e.to_string()))?;
                }
                1 => {
                    let child = get_node(r)?;
                    let prob = r.get_f64()?;
                    sched = sched
                        .try_with_degradation(epoch, child, prob)
                        .map_err(|e| CheckpointError::Invalid(e.to_string()))?;
                }
                2 => {
                    let node = get_node(r)?;
                    let kind = r.get_u8()?;
                    let param = r.get_f64()?;
                    let duration = r.get_u64()?;
                    let fault = match kind {
                        0 => DataFault::StuckAt { level: param },
                        1 => DataFault::Drift { rate: param },
                        2 => DataFault::Spike { magnitude: param },
                        3 => DataFault::Noise { amplitude: param },
                        tag => {
                            return Err(CheckpointError::Decode(DecodeError::BadTag {
                                offset: 0,
                                tag,
                            }))
                        }
                    };
                    sched = sched
                        .try_with_data_fault(epoch, node, fault, duration)
                        .map_err(|e| CheckpointError::Invalid(e.to_string()))?;
                }
                tag => return Err(CheckpointError::Decode(DecodeError::BadTag { offset: 0, tag })),
            }
        }
    }
    Ok(sched.with_noise_seed(r.get_u64()?))
}

fn put_gate(w: &mut Writer, g: &GatePolicy) {
    w.put_f64(g.z);
    w.put_f64(g.min_sigma);
    w.put_usize(g.min_window);
    w.put_u32(g.quarantine_after);
    w.put_u32(g.parole_after);
}

fn get_gate(r: &mut Reader<'_>) -> Result<GatePolicy, DecodeError> {
    Ok(GatePolicy {
        z: r.get_f64()?,
        min_sigma: r.get_f64()?,
        min_window: r.get_usize()?,
        quarantine_after: r.get_u32()?,
        parole_after: r.get_u32()?,
    })
}

fn put_trust(w: &mut Writer, t: &TrustState) {
    w.put_u32(t.strikes);
    w.put_opt(&t.quarantined_since, |w, e| w.put_u64(*e));
    w.put_u32(t.clean_epochs);
}

fn get_trust(r: &mut Reader<'_>) -> Result<TrustState, DecodeError> {
    Ok(TrustState {
        strikes: r.get_u32()?,
        quarantined_since: r.get_opt(|r| r.get_u64())?,
        clean_epochs: r.get_u32()?,
    })
}

fn put_metrics(w: &mut Writer, m: &MetricsSnapshot) {
    // BTreeMap iteration is sorted, so the byte stream is deterministic.
    let counters: Vec<(&String, &u64)> = m.counters.iter().collect();
    w.put_usize(counters.len());
    for (k, v) in counters {
        w.put_str(k);
        w.put_u64(*v);
    }
    let gauges: Vec<(&String, &f64)> = m.gauges.iter().collect();
    w.put_usize(gauges.len());
    for (k, v) in gauges {
        w.put_str(k);
        w.put_f64(*v);
    }
    let histograms: Vec<(&String, &Histogram)> = m.histograms.iter().collect();
    w.put_usize(histograms.len());
    for (k, h) in histograms {
        w.put_str(k);
        w.put_u64(h.count);
        w.put_f64(h.sum);
        w.put_f64(h.min);
        w.put_f64(h.max);
    }
}

fn get_opt_metrics(r: &mut Reader<'_>) -> Result<Option<MetricsSnapshot>, CheckpointError> {
    match r.get_u8().map_err(CheckpointError::Decode)? {
        0 => Ok(None),
        1 => {
            let mut m = MetricsSnapshot::default();
            let nc = bounded_len(r)?;
            for _ in 0..nc {
                let k = r.get_str()?;
                let v = r.get_u64()?;
                m.counters.insert(k, v);
            }
            let ng = bounded_len(r)?;
            for _ in 0..ng {
                let k = r.get_str()?;
                let v = r.get_f64()?;
                m.gauges.insert(k, v);
            }
            let nh = bounded_len(r)?;
            for _ in 0..nh {
                let k = r.get_str()?;
                let h = Histogram {
                    count: r.get_u64()?,
                    sum: r.get_f64()?,
                    min: r.get_f64()?,
                    max: r.get_f64()?,
                };
                m.histograms.insert(k, h);
            }
            Ok(Some(m))
        }
        tag => Err(CheckpointError::Decode(DecodeError::BadTag { offset: 0, tag })),
    }
}

fn bounded_len(r: &mut Reader<'_>) -> Result<usize, CheckpointError> {
    let len = r.get_usize()?;
    if len > r.remaining() {
        return Err(CheckpointError::Decode(DecodeError::BadLength { offset: 0, len: len as u64 }));
    }
    Ok(len)
}
