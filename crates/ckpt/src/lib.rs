//! Crash-consistent checkpoint/resume for long-running experiments.
//!
//! The paper's protocol is explicitly multi-epoch: sample windows,
//! adaptive retry budgets and repaired topologies all accumulate state
//! across epochs. This crate makes that state durable — a [`Checkpoint`]
//! is a versioned, checksummed, byte-deterministic image of everything
//! an `ExperimentRunner` needs to continue from an epoch boundary, and a
//! [`CheckpointStore`] manages a directory of them with atomic writes
//! and corrupt-file fallback.
//!
//! The contract (enforced by `tests/crash_resume.rs` at the workspace
//! root): killing a run at any epoch boundary and resuming from the
//! latest checkpoint yields epoch reports, meters and traces
//! byte-identical to the uninterrupted run. Three properties make that
//! possible:
//!
//! 1. **Per-epoch randomness is re-derived.** Collection draws come from
//!    `epoch_seed(seed, epoch)`, so they need no capture. The only RNG
//!    stream that persists across epochs (the dissemination stream) is
//!    captured as raw generator state.
//! 2. **The format is byte-deterministic.** Floats travel as IEEE-754
//!    bits, maps in sorted order; no wall clock or pointer identity is
//!    ever serialized. Encoding the same state twice yields the same
//!    bytes.
//! 3. **Corruption cannot masquerade as state.** The payload is guarded
//!    by an FNV-1a 64 checksum (every single-byte substitution changes
//!    it) plus a declared length (every truncation is caught), and the
//!    store falls back to the previous good file.
//!
//! Like the obs crate, this crate is std-only and hand-rolls its wire
//! format — no serde, no external dependencies.

pub mod checkpoint;
pub mod codec;
pub mod store;

pub use checkpoint::{Checkpoint, CheckpointError, ContinuousImage, HEADER_LEN, MAGIC, VERSION};
pub use codec::{fnv1a64, DecodeError, Reader, Writer};
pub use store::{CheckpointPolicy, CheckpointStore, StoreError};
