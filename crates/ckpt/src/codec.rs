//! Byte-deterministic binary primitives for checkpoint payloads.
//!
//! The codec mirrors the obs crate's hand-rolled JSON philosophy: no
//! external dependencies, no ambient nondeterminism. Every multi-byte
//! integer is little-endian, every float is its IEEE-754 bit pattern
//! (`f64::to_bits`), every collection is length-prefixed, and decoding
//! is total — malformed input yields a typed [`DecodeError`], never a
//! panic. Encoding the same value twice yields the same bytes, which is
//! what lets the checksum (FNV-1a 64) stand in for equality.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `bytes`.
///
/// Each step is `h = (h ^ b) * PRIME` with an odd prime, so the map from
/// pre-state to post-state is a bijection for every input byte: two
/// payloads that first differ at byte `i` have different hash states from
/// `i` on, and identical suffixes can never re-converge. Any single-byte
/// substitution, and any truncation combined with the stored length, is
/// therefore guaranteed to change the digest.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` travels as `u64` so 32- and 64-bit hosts agree on bytes.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Floats travel as IEEE-754 bit patterns: `to_bits` round-trips
    /// every value including NaN payloads, infinities and signed zeros,
    /// which decimal formatting would not.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Option tag: 0 = None, 1 = Some (followed by the payload).
    pub fn put_opt<T>(&mut self, v: &Option<T>, mut put: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.put_u8(0),
            Some(inner) => {
                self.put_u8(1);
                put(self, inner);
            }
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed sequence.
    pub fn put_seq<T>(&mut self, items: &[T], mut put: impl FnMut(&mut Self, &T)) {
        self.put_usize(items.len());
        for item in items {
            put(self, item);
        }
    }
}

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the value being read was complete.
    UnexpectedEof { offset: usize, needed: usize },
    /// A tag byte (Option, enum discriminant) had no meaning.
    BadTag { offset: usize, tag: u8 },
    /// A length prefix was absurd (longer than the remaining payload),
    /// caught before allocating.
    BadLength { offset: usize, len: u64 },
    /// A string's bytes were not UTF-8.
    BadUtf8 { offset: usize },
    /// Decoding finished with bytes left over — the payload and the
    /// decoder disagree about the schema.
    TrailingBytes { remaining: usize },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof { offset, needed } => {
                write!(f, "payload ended at byte {offset} ({needed} more needed)")
            }
            DecodeError::BadTag { offset, tag } => {
                write!(f, "invalid tag byte {tag:#04x} at offset {offset}")
            }
            DecodeError::BadLength { offset, len } => {
                write!(f, "length prefix {len} at offset {offset} exceeds the payload")
            }
            DecodeError::BadUtf8 { offset } => write!(f, "non-UTF-8 string at offset {offset}"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} unconsumed bytes after the last field")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Cursor-based decoder over an encoded payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`DecodeError::TrailingBytes`] unless every byte was
    /// consumed — a schema mismatch otherwise slips through silently.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes { remaining: self.remaining() })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                offset: self.pos,
                needed: n - self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn get_usize(&mut self) -> Result<usize, DecodeError> {
        let offset = self.pos;
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| DecodeError::BadLength { offset, len: v })
    }

    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_bool(&mut self) -> Result<bool, DecodeError> {
        let offset = self.pos;
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag { offset, tag }),
        }
    }

    pub fn get_opt<T>(
        &mut self,
        mut get: impl FnMut(&mut Self) -> Result<T, DecodeError>,
    ) -> Result<Option<T>, DecodeError> {
        let offset = self.pos;
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(get(self)?)),
            tag => Err(DecodeError::BadTag { offset, tag }),
        }
    }

    /// Length prefix for a sequence of items at least `min_item_bytes`
    /// wide each; rejects prefixes the remaining payload cannot satisfy
    /// so a corrupt length cannot trigger a huge allocation.
    fn get_len(&mut self, min_item_bytes: usize) -> Result<usize, DecodeError> {
        let offset = self.pos;
        let len = self.get_u64()?;
        let cap = (self.remaining() / min_item_bytes.max(1)) as u64;
        if len > cap {
            return Err(DecodeError::BadLength { offset, len });
        }
        Ok(len as usize)
    }

    pub fn get_str(&mut self) -> Result<String, DecodeError> {
        let len = self.get_len(1)?;
        let offset = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8 { offset })
    }

    /// Length-prefixed sequence; `min_item_bytes` bounds the allocation
    /// against corrupt prefixes.
    pub fn get_seq<T>(
        &mut self,
        min_item_bytes: usize,
        mut get: impl FnMut(&mut Self) -> Result<T, DecodeError>,
    ) -> Result<Vec<T>, DecodeError> {
        let len = self.get_len(min_item_bytes)?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(get(self)?);
        }
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_str("epoch");
        w.put_opt(&Some(7u64), |w, v| w.put_u64(*v));
        w.put_opt(&None::<u64>, |w, v| w.put_u64(*v));
        w.put_seq(&[1.5f64, -2.5], |w, v| w.put_f64(*v));
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "epoch");
        assert_eq!(r.get_opt(|r| r.get_u64()).unwrap(), Some(7));
        assert_eq!(r.get_opt(|r| r.get_u64()).unwrap(), None);
        assert_eq!(r.get_seq(8, |r| r.get_f64()).unwrap(), vec![1.5, -2.5]);
        r.finish().unwrap();
    }

    #[test]
    fn encoding_is_deterministic() {
        let encode = || {
            let mut w = Writer::new();
            w.put_f64(std::f64::consts::PI);
            w.put_seq(&[3u64, 1, 4], |w, v| w.put_u64(*v));
            w.put_str("same bytes every time");
            w.into_bytes()
        };
        assert_eq!(encode(), encode());
        assert_eq!(fnv1a64(&encode()), fnv1a64(&encode()));
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(matches!(r.get_u64(), Err(DecodeError::UnexpectedEof { .. })), "cut at {cut}");
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // claimed sequence length
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_seq(8, |r| r.get_u64()), Err(DecodeError::BadLength { .. })));
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_str(), Err(DecodeError::BadLength { .. })));
    }

    #[test]
    fn bad_tags_and_trailing_bytes_are_errors() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.get_bool(), Err(DecodeError::BadTag { offset: 0, tag: 2 })));
        let mut r = Reader::new(&[9]);
        assert!(matches!(r.get_opt(|r| r.get_u8()), Err(DecodeError::BadTag { .. })));
        let r = Reader::new(&[0, 0]);
        assert_eq!(r.finish(), Err(DecodeError::TrailingBytes { remaining: 2 }));
    }

    #[test]
    fn fnv_detects_every_single_byte_substitution() {
        let mut w = Writer::new();
        w.put_str("checksum coverage");
        w.put_u64(0x0123_4567_89AB_CDEF);
        let bytes = w.into_bytes();
        let clean = fnv1a64(&bytes);
        for i in 0..bytes.len() {
            for flip in 1..=255u8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= flip;
                assert_ne!(fnv1a64(&corrupt), clean, "byte {i} xor {flip:#04x} undetected");
            }
        }
    }
}
