//! Trace sinks.
//!
//! Instrumented code paths take `&mut dyn Tracer` and guard event
//! construction behind [`Tracer::enabled`], so a [`NullTracer`] costs one
//! predictable branch per potential event and no allocation — the fig3
//! fast path stays fast. [`RingTracer`] keeps the last `cap` events in
//! memory for post-hoc inspection (figures, the `trace` CLI);
//! [`JsonlTracer`] streams each event as one JSON line to any
//! [`std::io::Write`] sink.

use std::collections::VecDeque;
use std::io::Write;

use crate::event::TraceEvent;

/// A sink for [`TraceEvent`]s.
///
/// Implementations must not reorder or drop events silently other than as
/// documented ([`RingTracer`] drops the *oldest* and counts them), because
/// golden-trace tests byte-diff the serialized stream.
pub trait Tracer {
    /// Whether events should be constructed at all. Call sites use this
    /// to skip building events (and their `String` payloads) when tracing
    /// is off. Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&mut self, event: TraceEvent);
}

/// The disabled tracer: reports `enabled() == false` and discards
/// everything. Instrumented paths run with effectively zero overhead.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}
}

/// A bounded in-memory tracer. When full, the oldest event is dropped and
/// counted in [`RingTracer::dropped`].
#[derive(Debug)]
pub struct RingTracer {
    cap: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingTracer {
    /// Creates a tracer holding at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        RingTracer { cap: cap.max(1), events: VecDeque::new(), dropped: 0 }
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the buffer into a `Vec`, oldest first.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }
}

impl Tracer for RingTracer {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// Streams each event as one JSON line into a [`Write`] sink.
///
/// Writes are line-buffered by the caller's sink choice; wrap the sink in
/// a `BufWriter` for file output. I/O errors are counted (the simulation
/// must not panic mid-epoch over a full disk) and can be checked after the
/// run via [`JsonlTracer::io_errors`].
#[derive(Debug)]
pub struct JsonlTracer<W: Write> {
    sink: W,
    written: u64,
    io_errors: u64,
}

impl<W: Write> JsonlTracer<W> {
    /// Wraps `sink`.
    pub fn new(sink: W) -> Self {
        JsonlTracer { sink, written: 0, io_errors: 0 }
    }

    /// Number of events written successfully.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Number of events lost to I/O errors.
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// Flushes and returns the underlying sink.
    pub fn into_inner(mut self) -> W {
        let _ = self.sink.flush();
        self.sink
    }
}

impl<W: Write> Tracer for JsonlTracer<W> {
    fn record(&mut self, event: TraceEvent) {
        let mut line = event.to_json();
        line.push('\n');
        if self.sink.write_all(line.as_bytes()).is_ok() {
            self.written += 1;
        } else {
            self.io_errors += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_is_disabled() {
        let mut t = NullTracer;
        assert!(!t.enabled());
        t.record(TraceEvent::EpochStart { epoch: 0 });
    }

    #[test]
    fn ring_tracer_keeps_newest() {
        let mut t = RingTracer::new(2);
        assert!(t.enabled());
        for epoch in 0..5 {
            t.record(TraceEvent::EpochStart { epoch });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let evs = t.take();
        assert_eq!(
            evs,
            vec![TraceEvent::EpochStart { epoch: 3 }, TraceEvent::EpochStart { epoch: 4 }]
        );
        assert!(t.is_empty());
    }

    #[test]
    fn jsonl_tracer_writes_lines() {
        let mut t = JsonlTracer::new(Vec::new());
        t.record(TraceEvent::EpochStart { epoch: 7 });
        t.record(TraceEvent::NodeDeath { node: 2 });
        assert_eq!(t.written(), 2);
        assert_eq!(t.io_errors(), 0);
        let bytes = t.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(
            text,
            "{\"ev\":\"epoch_start\",\"epoch\":7}\n{\"ev\":\"node_death\",\"node\":2}\n"
        );
    }

    struct FailingSink;
    impl Write for FailingSink {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_tracer_counts_io_errors() {
        let mut t = JsonlTracer::new(FailingSink);
        t.record(TraceEvent::EpochStart { epoch: 0 });
        assert_eq!(t.written(), 0);
        assert_eq!(t.io_errors(), 1);
    }
}
