//! Aggregate metrics: counters, gauges, histograms.
//!
//! Where the trace answers "what happened, in order", the registry
//! answers "how much, in total". Keys are owned strings (so a registry
//! can be rebuilt from a checkpointed snapshot) stored in `BTreeMap`s so
//! a snapshot serializes in a stable order. Unlike trace events, metrics
//! MAY carry wall-clock measurements (plan latency, LP solve time) —
//! snapshots are for humans and dashboards, never byte-diffed by the
//! golden-trace harness.

use std::collections::BTreeMap;

use crate::json;

/// Running summary of an observed distribution (no buckets — min/max/
/// mean are what the bench reports need, and they merge trivially).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Histogram {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Histogram {
    fn new() -> Self {
        Histogram { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Mean of the observed values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A registry of named counters, gauges and histograms.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a registry from a snapshot, for checkpoint restore: a
    /// registry restored from `r.snapshot()` behaves identically to `r`
    /// (same counts, gauges and histogram summaries) from that point on.
    pub fn from_snapshot(snapshot: &MetricsSnapshot) -> Self {
        MetricsRegistry {
            counters: snapshot.counters.clone(),
            gauges: snapshot.gauges.clone(),
            histograms: snapshot.histograms.clone(),
        }
    }

    /// Adds `by` to the named counter (creating it at zero).
    pub fn count(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Sets the named gauge to `v`.
    pub fn gauge(&mut self, name: &str, v: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = v;
        } else {
            self.gauges.insert(name.to_string(), v);
        }
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &str, v: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Histogram::new();
            h.observe(v);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Copies the current state into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            histograms: self.histograms.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    /// Clears all metrics.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }
}

/// An immutable copy of a [`MetricsRegistry`], suitable for embedding in
/// epoch reports and serializing to `BENCH_obs.json`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Serializes the snapshot as one JSON object. Keys appear in sorted
    /// (BTreeMap) order, so identical snapshots serialize identically.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(256);
        o.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            json::push_key(&mut o, k);
            o.push_str(&format!("{v}"));
        }
        o.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            json::push_key(&mut o, k);
            json::push_f64(&mut o, *v);
        }
        o.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            json::push_key(&mut o, k);
            o.push_str("{\"count\":");
            o.push_str(&format!("{}", h.count));
            o.push_str(",\"sum\":");
            json::push_f64(&mut o, h.sum);
            o.push_str(",\"min\":");
            json::push_f64(&mut o, h.min);
            o.push_str(",\"max\":");
            json::push_f64(&mut o, h.max);
            o.push_str(",\"mean\":");
            json::push_f64(&mut o, h.mean());
            o.push('}');
        }
        o.push_str("}}");
        o
    }
}

/// Gini coefficient of a non-negative sample (0 = perfectly even,
/// → 1 = one node carries everything). Used to quantify per-node energy
/// skew: Buragohain et al. argue skew, not totals, determines sensor-
/// network lifetime.
pub fn gini(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // G = (2 * Σ i*x_i) / (n * Σ x_i) - (n + 1) / n, with 1-based ranks
    // over the ascending sort.
    let weighted: f64 = sorted.iter().enumerate().map(|(i, x)| (i + 1) as f64 * x).sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.count("messages", 3);
        m.count("messages", 4);
        assert_eq!(m.counter("messages"), 7);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.gauge("delivered_fraction", 0.5);
        m.gauge("delivered_fraction", 0.75);
        assert_eq!(m.gauge_value("delivered_fraction"), Some(0.75));
    }

    #[test]
    fn histograms_track_bounds_and_mean() {
        let mut m = MetricsRegistry::new();
        m.observe("latency_ms", 2.0);
        m.observe("latency_ms", 6.0);
        let h = m.histogram("latency_ms").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 6.0);
        assert_eq!(h.mean(), 4.0);
    }

    #[test]
    fn snapshot_serializes_in_sorted_order() {
        let mut m = MetricsRegistry::new();
        m.count("b", 1);
        m.count("a", 2);
        m.gauge("g", 1.5);
        m.observe("h", 3.0);
        let s = m.snapshot();
        let j = s.to_json();
        assert!(j.find("\"a\":2").unwrap() < j.find("\"b\":1").unwrap());
        assert!(j.contains("\"g\":1.5"));
        assert!(j.contains("\"mean\":3"));
        // Identical registries serialize identically.
        assert_eq!(j, m.snapshot().to_json());
    }

    #[test]
    fn registry_restored_from_snapshot_behaves_identically() {
        let mut m = MetricsRegistry::new();
        m.count("c", 3);
        m.gauge("g", 0.5);
        m.observe("h", 2.0);
        let mut r = MetricsRegistry::from_snapshot(&m.snapshot());
        assert_eq!(r.snapshot(), m.snapshot());
        // Continued updates accumulate on the restored state.
        r.count("c", 1);
        m.count("c", 1);
        r.observe("h", 6.0);
        m.observe("h", 6.0);
        assert_eq!(r.snapshot(), m.snapshot());
        assert_eq!(r.counter("c"), 4);
        assert_eq!(r.histogram("h").unwrap().max, 6.0);
    }

    #[test]
    fn gini_bounds() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[5.0, 5.0, 5.0, 5.0]), 0.0);
        // One node carries everything: G = (n-1)/n.
        let g = gini(&[0.0, 0.0, 0.0, 10.0]);
        assert!((g - 0.75).abs() < 1e-12, "{g}");
        // Skewed is more unequal than even.
        assert!(gini(&[1.0, 2.0, 3.0, 10.0]) > gini(&[3.0, 4.0, 4.0, 5.0]));
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = MetricsRegistry::new();
        m.count("c", 1);
        m.gauge("g", 1.0);
        m.observe("h", 1.0);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }
}
