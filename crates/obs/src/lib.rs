//! Structured observability for the Prospector pipeline.
//!
//! The paper's whole argument is an accounting argument: Prospector wins
//! because every message, byte and retransmission is charged against a
//! fixed energy budget. This crate records *why* a plan spent what it
//! spent, at event granularity, without perturbing the system it watches:
//!
//! * [`TraceEvent`] — the event taxonomy: plan provenance (which planner,
//!   which fallback link, LP statistics), per-edge delivery during ARQ
//!   collection, repair actions, backfill substitutions, and one event
//!   mirroring every `EnergyMeter::charge` call;
//! * [`Tracer`] — the sink abstraction, with [`NullTracer`] (disabled,
//!   zero-cost), [`RingTracer`] (bounded in-memory buffer) and
//!   [`JsonlTracer`] (streaming JSON-lines sink);
//! * [`MetricsRegistry`] — counters / gauges / histograms snapshotted into
//!   per-epoch reports and dumped by the bench CLI as `BENCH_obs.json`.
//!
//! **Determinism contract.** Everything an event carries is a pure
//! function of the (seeded) simulation state: no timestamps, no pointers,
//! no map-iteration order. With a fixed seed the serialized JSONL trace is
//! byte-identical across runs and across `PROSPECTOR_THREADS` settings —
//! which is what makes golden-trace snapshot testing possible
//! (`tests/golden_trace.rs`). Wall-clock measurements (plan latency, LP
//! solve time) live only in the [`MetricsRegistry`], never in the trace.
//!
//! This crate is std-only and sits below `prospector-net`/`-core`/`-sim`
//! in the dependency graph, so events name nodes by raw index (`u32`) and
//! phases by their stable [`str`] name.

pub mod event;
pub mod json;
pub mod metrics;
pub mod tracer;

pub use event::{PlanAttemptInfo, TraceEvent};
pub use metrics::{gini, Histogram, MetricsRegistry, MetricsSnapshot};
pub use tracer::{JsonlTracer, NullTracer, RingTracer, Tracer};
