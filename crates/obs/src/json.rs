//! Minimal deterministic JSON encoding.
//!
//! The offline build has no `serde`, and the golden-trace harness needs
//! byte-stable output anyway, so events and metrics serialize themselves
//! through these few helpers. Numbers use Rust's shortest-round-trip
//! `Display` for `f64`, which is a pure function of the bit pattern —
//! identical bits in, identical text out, on every platform.

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` to `out`. Finite values use the shortest
/// round-trippable decimal form; non-finite values (which JSON cannot
/// express as numbers) become the strings `"inf"`, `"-inf"` and `"nan"`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else if v.is_nan() {
        out.push_str("\"nan\"");
    } else if v > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

/// Appends a `key:` prefix (quoted key, colon) to `out`.
pub fn push_key(out: &mut String, key: &str) {
    push_str(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn str_of(s: &str) -> String {
        let mut out = String::new();
        push_str(&mut out, s);
        out
    }

    fn f64_of(v: f64) -> String {
        let mut out = String::new();
        push_f64(&mut out, v);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(str_of("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(str_of("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_round_trip() {
        assert_eq!(f64_of(1.5), "1.5");
        assert_eq!(f64_of(0.1 + 0.2), format!("{}", 0.1f64 + 0.2f64));
        assert_eq!(f64_of(f64::INFINITY), "\"inf\"");
        assert_eq!(f64_of(f64::NEG_INFINITY), "\"-inf\"");
        assert_eq!(f64_of(f64::NAN), "\"nan\"");
    }

    #[test]
    fn shortest_form_is_bit_stable() {
        // Two f64s with the same bits always print the same text.
        let a = 1.0f64 / 3.0;
        let b = f64::from_bits(a.to_bits());
        assert_eq!(f64_of(a), f64_of(b));
    }
}
