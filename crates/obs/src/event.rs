//! The trace-event taxonomy.
//!
//! One epoch's trace is a flat event stream bracketed by
//! [`TraceEvent::EpochStart`] / [`TraceEvent::EpochEnd`]; events between
//! the brackets (energy charges, link deliveries, backfills) belong to
//! that epoch and therefore do not repeat the epoch number. Every field is
//! a pure function of seeded simulation state — see the crate docs for the
//! determinism contract.

use crate::json;

/// One failed (or succeeded) link of a planner fallback chain.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanAttemptInfo {
    /// Planner name as used in the paper's figures.
    pub planner: &'static str,
    /// Why the attempt failed; `None` for the succeeding link.
    pub error: Option<String>,
}

/// A structured observation of the pipeline. See the module docs for the
/// stream layout and the crate docs for the determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An epoch began.
    EpochStart { epoch: u64 },
    /// A planner (or a fallback-chain link) was asked for a plan. One
    /// event per failed link plus one for the link that succeeded.
    PlanAttempt { planner: &'static str, error: Option<String> },
    /// A plan was chosen for this epoch (it may or may not be installed,
    /// see `installed`). `fallback_depth` counts the chain links that
    /// failed first; `lp_iterations`/`lp_objective` are present when the
    /// producing planner solved a linear program.
    PlanChosen {
        planner: &'static str,
        fallback_depth: u32,
        lp_iterations: Option<u64>,
        lp_objective: Option<f64>,
        cost_mj: f64,
        total_bandwidth: u64,
        installed: bool,
    },
    /// A plan-installation pass finished (lossy or reliable).
    PlanInstalled { edges: u32, undelivered: u32, attempts: u32 },
    /// One used edge's delivery record during ARQ collection: how many
    /// values were batched, how many transmissions it took, whether the
    /// batch arrived, whether a retried delivery was acked, and the
    /// backoff idle-listening paid. `delivered == false` means the edge
    /// exhausted its budget and lost its subtree's batch.
    LinkDelivery {
        child: u32,
        sent_values: u32,
        attempts: u32,
        delivered: bool,
        acked: bool,
        backoff_mj: f64,
    },
    /// One energy charge, mirroring `EnergyMeter::charge` in call order:
    /// summing `mj` over a merge-free execution's events reproduces its
    /// meter total bit-for-bit.
    Energy { node: u32, phase: &'static str, mj: f64 },
    /// A scheduled permanent node death fired.
    NodeDeath { node: u32 },
    /// A scheduled link degradation fired (loss probability raised).
    LinkDegraded { child: u32, added: f64 },
    /// The spanning tree was rebuilt around this epoch's deaths.
    TreeRepaired { deaths: u32 },
    /// Adaptive reliability raised the collection retry budget.
    RetryEscalated { max_retries: u32 },
    /// Adaptive reliability exhausted the retry budget and forced a
    /// replan to route around the loss.
    ReplanForced { delivered_fraction: f64 },
    /// A lost subtree's answer entry was backfilled from the sample
    /// window (an estimate, not an observation).
    Backfill { node: u32, predicted: f64 },
    /// A scheduled data fault corrupted a sourced reading: the node
    /// reported `corrupted` where the truth was `clean`.
    DataFault { node: u32, kind: &'static str, clean: f64, corrupted: f64 },
    /// A delivered reading fell outside its plausibility band
    /// `[lo, hi]` and was substituted with the window prediction.
    ReadingFlagged { node: u32, value: f64, lo: f64, hi: f64, predicted: f64 },
    /// A node crossed the consecutive-strike threshold into quarantine.
    NodeQuarantined { node: u32, strikes: u32 },
    /// A quarantined node completed parole and is trusted again.
    NodeReadmitted { node: u32, clean_epochs: u32 },
    /// An adaptive-loop epoch finished (`run_adaptive`).
    AdaptiveEpoch { epoch: u64, action: &'static str, period: u64, accuracy: f64, energy_mj: f64 },
    /// A service request cleared validation and admission control
    /// (`prospector-serve`). `band` is the budget band the request was
    /// admitted into — the plan-cache key component, not the raw budget.
    RequestAccepted { id: u64, tenant: u32, k: u32, band: u64 },
    /// A service request was rejected; `reason` is the stringified typed
    /// error (validation or admission), which is deterministic.
    RequestRejected { id: u64, tenant: u32, reason: String },
    /// A service request was answered by a cached plan — no LP ran.
    PlanCacheHit { topo_epoch: u64, k: u32, band: u64 },
    /// No usable cached plan existed for this key; the service planned
    /// from scratch (and cached the result).
    PlanCacheMiss { topo_epoch: u64, k: u32, band: u64 },
    /// A service batch finished planning: `requests` admitted requests
    /// shared `unique_keys` distinct cache keys, of which `planned`
    /// required a fresh planner run.
    BatchPlanned { requests: u32, unique_keys: u32, planned: u32 },
    /// Continuous mode: a node's changed reading was applied to the
    /// root's cached view this epoch (delta epochs only).
    DeltaShipped { node: u32, value: f64 },
    /// Continuous mode: this epoch ran a full from-scratch collection
    /// instead of shipping deltas. `reason` is one of `"first"`,
    /// `"period"`, `"repair"`, `"loss"`, `"sweep"`.
    FullRefresh { reason: &'static str },
    /// Continuous mode: the k-th threshold moved beyond the tolerance
    /// and was re-broadcast down the tree.
    ThresholdBroadcast { threshold: f64 },
    /// An epoch finished; scalar summary mirroring `EpochReport`.
    EpochEnd {
        epoch: u64,
        sampled: bool,
        replanned: bool,
        accuracy: f64,
        energy_mj: f64,
        lost_edges: u32,
        retransmissions: u32,
        delivered_fraction: f64,
        backfilled: u32,
    },
}

impl TraceEvent {
    /// Stable kind tag used as the JSONL `ev` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::EpochStart { .. } => "epoch_start",
            TraceEvent::PlanAttempt { .. } => "plan_attempt",
            TraceEvent::PlanChosen { .. } => "plan_chosen",
            TraceEvent::PlanInstalled { .. } => "plan_installed",
            TraceEvent::LinkDelivery { .. } => "link_delivery",
            TraceEvent::Energy { .. } => "energy",
            TraceEvent::NodeDeath { .. } => "node_death",
            TraceEvent::LinkDegraded { .. } => "link_degraded",
            TraceEvent::TreeRepaired { .. } => "tree_repaired",
            TraceEvent::RetryEscalated { .. } => "retry_escalated",
            TraceEvent::ReplanForced { .. } => "replan_forced",
            TraceEvent::Backfill { .. } => "backfill",
            TraceEvent::DataFault { .. } => "data_fault",
            TraceEvent::ReadingFlagged { .. } => "reading_flagged",
            TraceEvent::NodeQuarantined { .. } => "node_quarantined",
            TraceEvent::NodeReadmitted { .. } => "node_readmitted",
            TraceEvent::AdaptiveEpoch { .. } => "adaptive_epoch",
            TraceEvent::RequestAccepted { .. } => "request_accepted",
            TraceEvent::RequestRejected { .. } => "request_rejected",
            TraceEvent::PlanCacheHit { .. } => "plan_cache_hit",
            TraceEvent::PlanCacheMiss { .. } => "plan_cache_miss",
            TraceEvent::BatchPlanned { .. } => "batch_planned",
            TraceEvent::DeltaShipped { .. } => "delta_shipped",
            TraceEvent::FullRefresh { .. } => "full_refresh",
            TraceEvent::ThresholdBroadcast { .. } => "threshold_broadcast",
            TraceEvent::EpochEnd { .. } => "epoch_end",
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    /// Field order is fixed by this function, making the output
    /// byte-stable for identical events.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(96);
        o.push_str("{\"ev\":");
        json::push_str(&mut o, self.kind());
        match self {
            TraceEvent::EpochStart { epoch } => {
                push_u64(&mut o, "epoch", *epoch);
            }
            TraceEvent::PlanAttempt { planner, error } => {
                push_static(&mut o, "planner", planner);
                o.push(',');
                json::push_key(&mut o, "error");
                match error {
                    Some(e) => json::push_str(&mut o, e),
                    None => o.push_str("null"),
                }
            }
            TraceEvent::PlanChosen {
                planner,
                fallback_depth,
                lp_iterations,
                lp_objective,
                cost_mj,
                total_bandwidth,
                installed,
            } => {
                push_static(&mut o, "planner", planner);
                push_u64(&mut o, "fallback_depth", u64::from(*fallback_depth));
                o.push(',');
                json::push_key(&mut o, "lp_iterations");
                match lp_iterations {
                    Some(i) => o.push_str(&format!("{i}")),
                    None => o.push_str("null"),
                }
                o.push(',');
                json::push_key(&mut o, "lp_objective");
                match lp_objective {
                    Some(v) => json::push_f64(&mut o, *v),
                    None => o.push_str("null"),
                }
                push_f64_field(&mut o, "cost_mj", *cost_mj);
                push_u64(&mut o, "total_bandwidth", *total_bandwidth);
                push_bool(&mut o, "installed", *installed);
            }
            TraceEvent::PlanInstalled { edges, undelivered, attempts } => {
                push_u64(&mut o, "edges", u64::from(*edges));
                push_u64(&mut o, "undelivered", u64::from(*undelivered));
                push_u64(&mut o, "attempts", u64::from(*attempts));
            }
            TraceEvent::LinkDelivery {
                child,
                sent_values,
                attempts,
                delivered,
                acked,
                backoff_mj,
            } => {
                push_u64(&mut o, "child", u64::from(*child));
                push_u64(&mut o, "sent_values", u64::from(*sent_values));
                push_u64(&mut o, "attempts", u64::from(*attempts));
                push_bool(&mut o, "delivered", *delivered);
                push_bool(&mut o, "acked", *acked);
                push_f64_field(&mut o, "backoff_mj", *backoff_mj);
            }
            TraceEvent::Energy { node, phase, mj } => {
                push_u64(&mut o, "node", u64::from(*node));
                push_static(&mut o, "phase", phase);
                push_f64_field(&mut o, "mj", *mj);
            }
            TraceEvent::NodeDeath { node } => {
                push_u64(&mut o, "node", u64::from(*node));
            }
            TraceEvent::LinkDegraded { child, added } => {
                push_u64(&mut o, "child", u64::from(*child));
                push_f64_field(&mut o, "added", *added);
            }
            TraceEvent::TreeRepaired { deaths } => {
                push_u64(&mut o, "deaths", u64::from(*deaths));
            }
            TraceEvent::RetryEscalated { max_retries } => {
                push_u64(&mut o, "max_retries", u64::from(*max_retries));
            }
            TraceEvent::ReplanForced { delivered_fraction } => {
                push_f64_field(&mut o, "delivered_fraction", *delivered_fraction);
            }
            TraceEvent::Backfill { node, predicted } => {
                push_u64(&mut o, "node", u64::from(*node));
                push_f64_field(&mut o, "predicted", *predicted);
            }
            TraceEvent::DataFault { node, kind, clean, corrupted } => {
                push_u64(&mut o, "node", u64::from(*node));
                push_static(&mut o, "kind", kind);
                push_f64_field(&mut o, "clean", *clean);
                push_f64_field(&mut o, "corrupted", *corrupted);
            }
            TraceEvent::ReadingFlagged { node, value, lo, hi, predicted } => {
                push_u64(&mut o, "node", u64::from(*node));
                push_f64_field(&mut o, "value", *value);
                push_f64_field(&mut o, "lo", *lo);
                push_f64_field(&mut o, "hi", *hi);
                push_f64_field(&mut o, "predicted", *predicted);
            }
            TraceEvent::NodeQuarantined { node, strikes } => {
                push_u64(&mut o, "node", u64::from(*node));
                push_u64(&mut o, "strikes", u64::from(*strikes));
            }
            TraceEvent::NodeReadmitted { node, clean_epochs } => {
                push_u64(&mut o, "node", u64::from(*node));
                push_u64(&mut o, "clean_epochs", u64::from(*clean_epochs));
            }
            TraceEvent::AdaptiveEpoch { epoch, action, period, accuracy, energy_mj } => {
                push_u64(&mut o, "epoch", *epoch);
                push_static(&mut o, "action", action);
                push_u64(&mut o, "period", *period);
                push_f64_field(&mut o, "accuracy", *accuracy);
                push_f64_field(&mut o, "energy_mj", *energy_mj);
            }
            TraceEvent::RequestAccepted { id, tenant, k, band } => {
                push_u64(&mut o, "id", *id);
                push_u64(&mut o, "tenant", u64::from(*tenant));
                push_u64(&mut o, "k", u64::from(*k));
                push_u64(&mut o, "band", *band);
            }
            TraceEvent::RequestRejected { id, tenant, reason } => {
                push_u64(&mut o, "id", *id);
                push_u64(&mut o, "tenant", u64::from(*tenant));
                o.push(',');
                json::push_key(&mut o, "reason");
                json::push_str(&mut o, reason);
            }
            TraceEvent::PlanCacheHit { topo_epoch, k, band } => {
                push_u64(&mut o, "topo_epoch", *topo_epoch);
                push_u64(&mut o, "k", u64::from(*k));
                push_u64(&mut o, "band", *band);
            }
            TraceEvent::PlanCacheMiss { topo_epoch, k, band } => {
                push_u64(&mut o, "topo_epoch", *topo_epoch);
                push_u64(&mut o, "k", u64::from(*k));
                push_u64(&mut o, "band", *band);
            }
            TraceEvent::BatchPlanned { requests, unique_keys, planned } => {
                push_u64(&mut o, "requests", u64::from(*requests));
                push_u64(&mut o, "unique_keys", u64::from(*unique_keys));
                push_u64(&mut o, "planned", u64::from(*planned));
            }
            TraceEvent::DeltaShipped { node, value } => {
                push_u64(&mut o, "node", u64::from(*node));
                push_f64_field(&mut o, "value", *value);
            }
            TraceEvent::FullRefresh { reason } => {
                push_static(&mut o, "reason", reason);
            }
            TraceEvent::ThresholdBroadcast { threshold } => {
                push_f64_field(&mut o, "threshold", *threshold);
            }
            TraceEvent::EpochEnd {
                epoch,
                sampled,
                replanned,
                accuracy,
                energy_mj,
                lost_edges,
                retransmissions,
                delivered_fraction,
                backfilled,
            } => {
                push_u64(&mut o, "epoch", *epoch);
                push_bool(&mut o, "sampled", *sampled);
                push_bool(&mut o, "replanned", *replanned);
                push_f64_field(&mut o, "accuracy", *accuracy);
                push_f64_field(&mut o, "energy_mj", *energy_mj);
                push_u64(&mut o, "lost_edges", u64::from(*lost_edges));
                push_u64(&mut o, "retransmissions", u64::from(*retransmissions));
                push_f64_field(&mut o, "delivered_fraction", *delivered_fraction);
                push_u64(&mut o, "backfilled", u64::from(*backfilled));
            }
        }
        o.push('}');
        o
    }
}

/// Serializes events as JSON lines (one event per line, trailing newline).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    out
}

fn push_u64(o: &mut String, key: &str, v: u64) {
    o.push(',');
    json::push_key(o, key);
    o.push_str(&format!("{v}"));
}

fn push_bool(o: &mut String, key: &str, v: bool) {
    o.push(',');
    json::push_key(o, key);
    o.push_str(if v { "true" } else { "false" });
}

fn push_f64_field(o: &mut String, key: &str, v: f64) {
    o.push(',');
    json::push_key(o, key);
    json::push_f64(o, v);
}

fn push_static(o: &mut String, key: &str, v: &str) {
    o.push(',');
    json::push_key(o, key);
    json::push_str(o, v);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_event_serializes_compactly() {
        let ev = TraceEvent::Energy { node: 3, phase: "collection", mj: 1.5 };
        assert_eq!(ev.to_json(), r#"{"ev":"energy","node":3,"phase":"collection","mj":1.5}"#);
    }

    #[test]
    fn optional_fields_serialize_as_null() {
        let ev = TraceEvent::PlanChosen {
            planner: "greedy",
            fallback_depth: 1,
            lp_iterations: None,
            lp_objective: None,
            cost_mj: 2.0,
            total_bandwidth: 7,
            installed: true,
        };
        let j = ev.to_json();
        assert!(j.contains("\"lp_iterations\":null"));
        assert!(j.contains("\"fallback_depth\":1"));
        assert!(j.contains("\"installed\":true"));
    }

    #[test]
    fn backfill_minus_infinity_is_representable() {
        let ev = TraceEvent::Backfill { node: 2, predicted: f64::NEG_INFINITY };
        assert_eq!(ev.to_json(), r#"{"ev":"backfill","node":2,"predicted":"-inf"}"#);
    }

    #[test]
    fn gating_events_serialize_with_fixed_field_order() {
        let ev = TraceEvent::DataFault { node: 5, kind: "stuck_at", clean: 42.5, corrupted: 99.0 };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"data_fault","node":5,"kind":"stuck_at","clean":42.5,"corrupted":99}"#
        );
        let ev = TraceEvent::ReadingFlagged {
            node: 5,
            value: 99.0,
            lo: 40.0,
            hi: 45.0,
            predicted: 42.5,
        };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"reading_flagged","node":5,"value":99,"lo":40,"hi":45,"predicted":42.5}"#
        );
        let ev = TraceEvent::NodeQuarantined { node: 5, strikes: 3 };
        assert_eq!(ev.to_json(), r#"{"ev":"node_quarantined","node":5,"strikes":3}"#);
        let ev = TraceEvent::NodeReadmitted { node: 5, clean_epochs: 4 };
        assert_eq!(ev.to_json(), r#"{"ev":"node_readmitted","node":5,"clean_epochs":4}"#);
    }

    #[test]
    fn identical_events_serialize_identically() {
        let a = TraceEvent::LinkDelivery {
            child: 9,
            sent_values: 4,
            attempts: 3,
            delivered: true,
            acked: true,
            backoff_mj: 0.1 + 0.2,
        };
        assert_eq!(a.to_json(), a.clone().to_json());
    }

    #[test]
    fn serve_events_serialize_with_fixed_field_order() {
        let ev = TraceEvent::RequestAccepted { id: 7, tenant: 2, k: 4, band: 3 };
        assert_eq!(ev.to_json(), r#"{"ev":"request_accepted","id":7,"tenant":2,"k":4,"band":3}"#);
        let ev = TraceEvent::RequestRejected {
            id: 8,
            tenant: 1,
            reason: "energy budget exhausted".to_string(),
        };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"request_rejected","id":8,"tenant":1,"reason":"energy budget exhausted"}"#
        );
        let ev = TraceEvent::PlanCacheHit { topo_epoch: 2, k: 4, band: 5 };
        assert_eq!(ev.to_json(), r#"{"ev":"plan_cache_hit","topo_epoch":2,"k":4,"band":5}"#);
        let ev = TraceEvent::PlanCacheMiss { topo_epoch: 2, k: 4, band: 5 };
        assert_eq!(ev.to_json(), r#"{"ev":"plan_cache_miss","topo_epoch":2,"k":4,"band":5}"#);
        let ev = TraceEvent::BatchPlanned { requests: 6, unique_keys: 3, planned: 2 };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"batch_planned","requests":6,"unique_keys":3,"planned":2}"#
        );
    }

    #[test]
    fn continuous_events_serialize_with_fixed_field_order() {
        let ev = TraceEvent::DeltaShipped { node: 10, value: 48.5 };
        assert_eq!(ev.to_json(), r#"{"ev":"delta_shipped","node":10,"value":48.5}"#);
        let ev = TraceEvent::FullRefresh { reason: "repair" };
        assert_eq!(ev.to_json(), r#"{"ev":"full_refresh","reason":"repair"}"#);
        let ev = TraceEvent::ThresholdBroadcast { threshold: 47.0 };
        assert_eq!(ev.to_json(), r#"{"ev":"threshold_broadcast","threshold":47}"#);
        let ev = TraceEvent::ThresholdBroadcast { threshold: f64::NEG_INFINITY };
        assert_eq!(ev.to_json(), r#"{"ev":"threshold_broadcast","threshold":"-inf"}"#);
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let evs = vec![
            TraceEvent::EpochStart { epoch: 0 },
            TraceEvent::EpochEnd {
                epoch: 0,
                sampled: true,
                replanned: false,
                accuracy: 1.0,
                energy_mj: 0.5,
                lost_edges: 0,
                retransmissions: 0,
                delivered_fraction: 1.0,
                backfilled: 0,
            },
        ];
        let text = to_jsonl(&evs);
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }
}
