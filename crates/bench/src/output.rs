//! Rendering figure results as ASCII tables and CSV files.

use crate::CurvePoint;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders the points grouped by series as a plain-text table.
pub fn render_table(title: &str, x_label: &str, y_label: &str, points: &[CurvePoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {title} ===");
    let mut series: Vec<&str> = points.iter().map(|p| p.series.as_str()).collect();
    series.dedup();
    let mut seen: Vec<&str> = Vec::new();
    for s in series {
        if !seen.contains(&s) {
            seen.push(s);
        }
    }
    for s in seen {
        let _ = writeln!(out, "-- {s} --");
        let _ = writeln!(out, "{x_label:>14} {y_label:>14}");
        for p in points.iter().filter(|p| p.series == s) {
            let _ = writeln!(out, "{:>14.3} {:>14.3}", p.x, p.y);
        }
    }
    out
}

/// Writes `series,x,y` rows (with a header) to `path`, creating parent
/// directories as needed.
pub fn write_csv(path: &Path, points: &[CurvePoint]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut body = String::from("series,x,y\n");
    for p in points {
        let _ = writeln!(body, "{},{},{}", p.series, p.x, p.y);
    }
    std::fs::write(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_groups_by_series() {
        let pts = vec![
            CurvePoint::new("a", 1.0, 2.0),
            CurvePoint::new("b", 1.0, 3.0),
            CurvePoint::new("a", 2.0, 4.0),
        ];
        let t = render_table("T", "x", "y", &pts);
        assert!(t.contains("=== T ==="));
        assert!(t.contains("-- a --") && t.contains("-- b --"));
        // Series "a" lists both its points.
        let a_pos = t.find("-- a --").unwrap();
        let b_pos = t.find("-- b --").unwrap();
        let a_section = if a_pos < b_pos { &t[a_pos..b_pos] } else { &t[a_pos..] };
        assert!(a_section.contains("1.000") && a_section.contains("4.000"));
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("prospector-bench-test");
        let path = dir.join("out.csv");
        let pts = vec![CurvePoint::new("s", 1.5, 2.5)];
        write_csv(&path, &pts).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "series,x,y\ns,1.5,2.5\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
