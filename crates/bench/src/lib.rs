//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (Section 5). See DESIGN.md §6 for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured comparisons.
//!
//! Each figure has a runner in [`figures`] returning a flat list of
//! [`CurvePoint`]s (series name, x, y); [`output`] renders them as ASCII
//! tables and CSV files under `results/`. [`scenarios`] holds the shared
//! experiment setups (networks, sources, sample windows) with a `fast`
//! switch that shrinks sizes for smoke tests and Criterion runs.

pub mod figures;
pub mod output;
pub mod scenarios;

pub use figures::FigureResult;
pub use output::{render_table, write_csv};

/// One point of one series of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct CurvePoint {
    /// Series (algorithm / phase) name as used in the paper's legend.
    pub series: String,
    /// X coordinate (meaning is per-figure: budget mJ, variance, …).
    pub x: f64,
    /// Y coordinate (accuracy %, energy mJ, …).
    pub y: f64,
}

impl CurvePoint {
    pub fn new(series: impl Into<String>, x: f64, y: f64) -> Self {
        CurvePoint { series: series.into(), x, y }
    }
}
