//! Replays one golden observability scenario and streams its JSONL
//! trace to stdout.
//!
//! ```text
//! trace [--metrics] [--checkpoint-dir DIR] [--ckpt-every N] [--kill-at E]
//!       [--resume] [--resume-epoch] [--epoch-delay-ms M]
//!       [clean|loss_arq|death_repair|data_fault|continuous_drift]
//! ```
//!
//! Stdout carries exactly the bytes the golden-trace harness diffs
//! (`tests/golden/<name>.jsonl`), so
//!
//! ```text
//! cargo run -p prospector-bench --bin trace -- clean | diff tests/golden/clean.jsonl -
//! ```
//!
//! is a cross-process determinism check. `--metrics` additionally prints
//! the scenario's cumulative metrics snapshot as one JSON object on
//! stderr, keeping stdout byte-diffable.
//!
//! The checkpoint flags turn the binary into CI's crash harness.
//! `--checkpoint-dir DIR` writes a checkpoint into `DIR` after every
//! `--ckpt-every` epochs (default 1); epochs are flushed to stdout one at
//! a time, so killing the process at any moment leaves a clean prefix of
//! the golden trace plus a checkpoint to continue from. `--kill-at E`
//! simulates the crash deterministically (exit 137 at the boundary before
//! epoch `E`); `--epoch-delay-ms M` slows the loop down so an external
//! `kill -9` can land mid-run. `--resume` loads the newest valid
//! checkpoint (falling back over corrupt files) and emits only the
//! remaining epochs: the concatenation of the killed run's stdout
//! (truncated to whole epochs) and the resumed run's stdout is
//! byte-identical to the uninterrupted trace. `--resume-epoch` prints the
//! epoch a resume would continue from and exits.

use prospector_ckpt::{CheckpointPolicy, CheckpointStore};
use prospector_obs::{event, RingTracer};
use prospector_testutil::golden;
use std::io::Write as _;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| args.get(i + 1).unwrap_or_else(|| die(&format!("{flag} needs a value"))).clone())
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics = args.iter().any(|a| a == "--metrics");
    let resume = args.iter().any(|a| a == "--resume");
    let print_resume_epoch = args.iter().any(|a| a == "--resume-epoch");
    let ckpt_dir = arg_value(&args, "--checkpoint-dir");
    let every: u64 = arg_value(&args, "--ckpt-every")
        .map(|v| v.parse().unwrap_or_else(|_| die("--ckpt-every needs an integer")))
        .unwrap_or(1);
    let kill_at: Option<u64> = arg_value(&args, "--kill-at")
        .map(|v| v.parse().unwrap_or_else(|_| die("--kill-at needs an epoch number")));
    let delay_ms: u64 = arg_value(&args, "--epoch-delay-ms")
        .map(|v| v.parse().unwrap_or_else(|_| die("--epoch-delay-ms needs an integer")))
        .unwrap_or(0);

    // Skip flag values when scanning for the scenario name.
    let value_flags = ["--checkpoint-dir", "--ckpt-every", "--kill-at", "--epoch-delay-ms"];
    let mut names: Vec<&str> = Vec::new();
    let mut skip = false;
    for a in &args {
        if skip {
            skip = false;
            continue;
        }
        if value_flags.contains(&a.as_str()) {
            skip = true;
        } else if !a.starts_with("--") {
            names.push(a.as_str());
        }
    }
    let name = match names.as_slice() {
        [] => "clean",
        [one] if golden::SCENARIOS.contains(one) => one,
        other => die(&format!(
            "usage: trace [--metrics] [--checkpoint-dir DIR] [--ckpt-every N] [--kill-at E] \
             [--resume] [--resume-epoch] [--epoch-delay-ms M] [scenario]; \
             valid scenarios: {} (got {other:?})",
            golden::SCENARIOS.join(" ")
        )),
    };

    if (resume || print_resume_epoch) && ckpt_dir.is_none() {
        die("--resume/--resume-epoch require --checkpoint-dir");
    }
    let store = ckpt_dir.map(|d| CheckpointStore::open(d).unwrap_or_else(|e| die(&e.to_string())));
    let policy = CheckpointPolicy { every_epochs: every, keep_last: 3 };

    let sc = golden::scenario(name);
    let mut runner = if resume || print_resume_epoch {
        let store = store.as_ref().expect("checked above");
        let (ckpt, skipped) =
            store.latest_valid().unwrap_or_else(|e| die(&format!("cannot resume: {e}")));
        for (epoch, err) in &skipped {
            eprintln!("[skipping corrupt checkpoint for epoch {epoch}: {err}]");
        }
        let runner = sc.resume(ckpt).unwrap_or_else(|e| die(&format!("cannot resume: {e}")));
        if print_resume_epoch {
            println!("{}", runner.next_epoch());
            return;
        }
        runner
    } else {
        sc.runner()
    };

    // One epoch at a time, flushed: a kill at any instant leaves whole
    // epochs on stdout (plus at most one partially written line, which
    // the harness truncates at the last newline).
    let mut source = sc.source();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for e in runner.next_epoch()..golden::EPOCHS {
        if kill_at == Some(e) {
            // SIGKILL's exit status, the same thing a real crash reports.
            std::process::exit(137);
        }
        let mut tracer = RingTracer::new(1 << 14);
        runner.step_traced(&mut source, e, &mut tracer).unwrap_or_else(|err| {
            die(&format!("{name} epoch {e} failed: {err}"));
        });
        assert_eq!(tracer.dropped(), 0, "ring capacity must cover one epoch");
        out.write_all(event::to_jsonl(&tracer.take()).as_bytes()).expect("write trace");
        out.flush().expect("flush trace");
        if let Some(store) = &store {
            if policy.due(e) {
                store
                    .save(&runner.checkpoint(), policy.keep_last)
                    .unwrap_or_else(|err| die(&format!("checkpoint write failed: {err}")));
            }
        }
        if delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        }
    }
    if metrics {
        let snapshot = runner.metrics().expect("metrics enabled").snapshot();
        eprintln!("{}", snapshot.to_json());
    }
}
