//! Replays one golden observability scenario and streams its JSONL
//! trace to stdout.
//!
//! ```text
//! trace [--metrics] [clean|loss_arq|death_repair]
//! ```
//!
//! Stdout carries exactly the bytes the golden-trace harness diffs
//! (`tests/golden/<name>.jsonl`), so
//!
//! ```text
//! cargo run -p prospector-bench --bin trace -- clean | diff tests/golden/clean.jsonl -
//! ```
//!
//! is a cross-process determinism check. `--metrics` additionally prints
//! the scenario's cumulative metrics snapshot as one JSON object on
//! stderr, keeping stdout byte-diffable.

use prospector_obs::event;
use prospector_testutil::golden;
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics = args.iter().any(|a| a == "--metrics");
    let names: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let name = match names.as_slice() {
        [] => "clean",
        [one] if golden::SCENARIOS.contains(one) => one,
        other => {
            eprintln!(
                "usage: trace [--metrics] [scenario]; valid scenarios: {} (got {other:?})",
                golden::SCENARIOS.join(" ")
            );
            std::process::exit(2);
        }
    };
    let (events, snapshot) = golden::golden_run(name);
    std::io::stdout()
        .write_all(event::to_jsonl(&events).as_bytes())
        .expect("write trace to stdout");
    if metrics {
        eprintln!("{}", snapshot.to_json());
    }
}
