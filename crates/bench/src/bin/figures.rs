//! CLI harness regenerating the paper's tables and figures.
//!
//! ```text
//! figures [--fast] [--checkpoint-dir DIR] [--resume]
//!         [all|table1|fig3|fig4|fig5|fig7|fig8|fig9|esamples|elptime|edissem|naive1]...
//! ```
//!
//! Each figure is printed as an ASCII table and written to
//! `results/<id>.csv` (series,x,y). Requested figures are computed across
//! the worker pool (`PROSPECTOR_THREADS`); rendering and CSV writes stay
//! serial and in request order, so the output is identical at any thread
//! count.
//!
//! `--checkpoint-dir DIR` records every completed figure in `DIR` as a
//! checksummed result file (written atomically); with `--resume`, figures
//! whose recorded results verify are rendered from the checkpoint instead
//! of recomputed, so a killed multi-figure sweep restarts from the first
//! unfinished figure. A corrupt or truncated record just means that one
//! figure is recomputed.

use prospector_bench::{figures, render_table, write_csv, CurvePoint, FigureResult};
use prospector_ckpt::fnv1a64;
use std::path::{Path, PathBuf};

fn run_one(id: &str, title: &str, x_label: &str, y_label: &str, points: &[CurvePoint]) {
    println!("{}", render_table(title, x_label, y_label, points));
    let path = PathBuf::from("results").join(format!("{id}.csv"));
    match write_csv(&path, points) {
        Ok(()) => println!("[wrote {}]\n", path.display()),
        Err(e) => eprintln!("[failed to write {}: {e}]\n", path.display()),
    }
}

/// Serializes a finished figure for `--resume`. The body is plain text;
/// the first line carries an FNV-1a 64 checksum over everything after it,
/// so a torn write never masquerades as a completed figure.
fn figure_record(r: &FigureResult) -> String {
    let mut body = String::new();
    body.push_str(&format!("title={}\n", r.title));
    body.push_str(&format!("x_label={}\n", r.x_label));
    body.push_str(&format!("y_label={}\n", r.y_label));
    for p in &r.points {
        // f64 Display is shortest-roundtrip, so parse() restores the bits.
        body.push_str(&format!("{},{},{}\n", p.series, p.x, p.y));
    }
    format!("prospector-figure v1 checksum={:016x}\n{body}", fnv1a64(body.as_bytes()))
}

/// A figure restored from a checkpoint record: title, x label, y label
/// and the data points (the id is the record's filename).
type CachedFigure = (String, String, String, Vec<CurvePoint>);

/// Parses a record written by [`figure_record`], verifying its checksum.
fn parse_record(text: &str) -> Option<CachedFigure> {
    let (header, body) = text.split_once('\n')?;
    let sum =
        u64::from_str_radix(header.strip_prefix("prospector-figure v1 checksum=")?, 16).ok()?;
    if fnv1a64(body.as_bytes()) != sum {
        return None;
    }
    let mut lines = body.lines();
    let title = lines.next()?.strip_prefix("title=")?.to_string();
    let x_label = lines.next()?.strip_prefix("x_label=")?.to_string();
    let y_label = lines.next()?.strip_prefix("y_label=")?.to_string();
    let mut points = Vec::new();
    for line in lines {
        // Split from the right: series names may contain commas, but the
        // x and y columns are plain numbers.
        let mut it = line.rsplitn(3, ',');
        let y: f64 = it.next()?.parse().ok()?;
        let x: f64 = it.next()?.parse().ok()?;
        points.push(CurvePoint::new(it.next()?, x, y));
    }
    Some((title, x_label, y_label, points))
}

fn record_path(dir: &Path, id: &str) -> PathBuf {
    dir.join(format!("{id}.figure"))
}

fn save_record(dir: &Path, r: &FigureResult) {
    let path = record_path(dir, r.id);
    let tmp = dir.join(format!(".{}.figure.tmp", r.id));
    let write = std::fs::write(&tmp, figure_record(r)).and_then(|()| std::fs::rename(&tmp, &path));
    if let Err(e) = write {
        eprintln!("[failed to checkpoint {}: {e}]", path.display());
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let resume = args.iter().any(|a| a == "--resume");
    let ckpt_dir: Option<PathBuf> =
        args.iter().position(|a| a == "--checkpoint-dir").map(|i| match args.get(i + 1) {
            Some(dir) => PathBuf::from(dir),
            None => die("--checkpoint-dir needs a value"),
        });
    if resume && ckpt_dir.is_none() {
        die("--resume requires --checkpoint-dir");
    }
    if let Some(dir) = &ckpt_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            die(&format!("cannot create {}: {e}", dir.display()));
        }
    }

    let mut names: Vec<&str> = Vec::new();
    let mut skip = false;
    for a in &args {
        if skip {
            skip = false;
        } else if a == "--checkpoint-dir" {
            skip = true;
        } else if !a.starts_with("--") {
            names.push(a.as_str());
        }
    }
    let names: Vec<&str> = if names.is_empty() { vec!["all"] } else { names };

    // Resolve every requested name up front so a typo anywhere fails
    // before hours of figure computation.
    let mut jobs: Vec<(&str, figures::FigureFn)> = Vec::new();
    for name in names {
        if name == "all" {
            jobs.extend_from_slice(figures::REGISTRY);
        } else if let Some(f) = figures::by_name(name) {
            jobs.push((name, f));
        } else {
            let known: Vec<&str> = figures::REGISTRY.iter().map(|&(n, _)| n).collect();
            die(&format!("unknown figure '{name}'; known: all {}", known.join(" ")));
        }
    }

    // With --resume, figures whose checkpoint verifies are rendered from
    // it; everything else is (re)computed across the pool.
    let cached: Vec<Option<CachedFigure>> = jobs
        .iter()
        .map(|&(name, _)| {
            let dir = ckpt_dir.as_deref().filter(|_| resume)?;
            let text = std::fs::read_to_string(record_path(dir, name)).ok()?;
            let parsed = parse_record(&text);
            if parsed.is_none() {
                eprintln!("[checkpoint for {name} is corrupt; recomputing]");
            }
            parsed
        })
        .collect();

    let to_compute: Vec<(&str, figures::FigureFn)> =
        jobs.iter().zip(&cached).filter(|(_, c)| c.is_none()).map(|(&j, _)| j).collect();
    let computed = prospector_par::par_map(&to_compute, |_, &(_, f)| f(fast));

    let mut fresh = computed.into_iter();
    for (&(name, _), cache) in jobs.iter().zip(&cached) {
        match cache {
            Some((title, x_label, y_label, points)) => {
                println!("[{name}: restored from checkpoint]");
                run_one(name, title, x_label, y_label, points);
            }
            None => {
                let r = fresh.next().expect("one result per uncached job");
                if let Some(dir) = &ckpt_dir {
                    save_record(dir, &r);
                }
                run_one(r.id, r.title, r.x_label, r.y_label, &r.points);
            }
        }
    }
}
