//! CLI harness regenerating the paper's tables and figures.
//!
//! ```text
//! figures [--fast] [all|table1|fig3|fig4|fig5|fig7|fig8|fig9|esamples|elptime|edissem|naive1]...
//! ```
//!
//! Each figure is printed as an ASCII table and written to
//! `results/<id>.csv` (series,x,y).

use prospector_bench::{figures, render_table, write_csv, FigureResult};
use std::path::PathBuf;

fn run_one(result: &FigureResult) {
    println!("{}", render_table(result.title, result.x_label, result.y_label, &result.points));
    let path = PathBuf::from("results").join(format!("{}.csv", result.id));
    match write_csv(&path, &result.points) {
        Ok(()) => println!("[wrote {}]\n", path.display()),
        Err(e) => eprintln!("[failed to write {}: {e}]\n", path.display()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let names: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let names: Vec<&str> = if names.is_empty() { vec!["all"] } else { names };

    for name in names {
        match name {
            "all" => {
                for r in figures::all(fast) {
                    run_one(&r);
                }
            }
            "table1" => run_one(&figures::table1()),
            "fig3" => run_one(&figures::fig3(fast)),
            "fig4" => run_one(&figures::fig4(fast)),
            "fig5" => run_one(&figures::fig5(fast)),
            "fig7" => run_one(&figures::fig7(fast)),
            "fig8" => run_one(&figures::fig8(fast)),
            "fig9" => run_one(&figures::fig9(fast)),
            "esamples" => run_one(&figures::e_samples(fast)),
            "elptime" => run_one(&figures::e_lp_time(fast)),
            "edissem" => run_one(&figures::e_dissemination(fast)),
            "naive1" => run_one(&figures::naive1_vs_naive_k(fast)),
            "ablation" => run_one(&figures::ablation_fill(fast)),
            "efailures" => run_one(&figures::e_failures(fast)),
            "fault_tolerance" => run_one(&figures::fault_tolerance(fast)),
            "esensitivity" => run_one(&figures::e_sensitivity(fast)),
            "esubset" => run_one(&figures::e_subset(fast)),
            other => {
                eprintln!(
                    "unknown figure '{other}'; known: all table1 fig3 fig4 fig5 fig7 fig8 fig9 \
                     esamples elptime edissem naive1 ablation efailures fault_tolerance \
                     esensitivity esubset"
                );
                std::process::exit(2);
            }
        }
    }
}
