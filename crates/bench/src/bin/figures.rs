//! CLI harness regenerating the paper's tables and figures.
//!
//! ```text
//! figures [--fast] [all|table1|fig3|fig4|fig5|fig7|fig8|fig9|esamples|elptime|edissem|naive1]...
//! ```
//!
//! Each figure is printed as an ASCII table and written to
//! `results/<id>.csv` (series,x,y). Requested figures are computed across
//! the worker pool (`PROSPECTOR_THREADS`); rendering and CSV writes stay
//! serial and in request order, so the output is identical at any thread
//! count.

use prospector_bench::{figures, render_table, write_csv, FigureResult};
use std::path::PathBuf;

fn run_one(result: &FigureResult) {
    println!("{}", render_table(result.title, result.x_label, result.y_label, &result.points));
    let path = PathBuf::from("results").join(format!("{}.csv", result.id));
    match write_csv(&path, &result.points) {
        Ok(()) => println!("[wrote {}]\n", path.display()),
        Err(e) => eprintln!("[failed to write {}: {e}]\n", path.display()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let names: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let names: Vec<&str> = if names.is_empty() { vec!["all"] } else { names };

    // Resolve every requested name up front so a typo anywhere fails
    // before hours of figure computation.
    let mut jobs: Vec<(&str, figures::FigureFn)> = Vec::new();
    for name in names {
        if name == "all" {
            jobs.extend_from_slice(figures::REGISTRY);
        } else if let Some(f) = figures::by_name(name) {
            jobs.push((name, f));
        } else {
            let known: Vec<&str> = figures::REGISTRY.iter().map(|&(n, _)| n).collect();
            eprintln!("unknown figure '{name}'; known: all {}", known.join(" "));
            std::process::exit(2);
        }
    }

    let results = prospector_par::par_map(&jobs, |_, &(_, f)| f(fast));
    for r in &results {
        run_one(r);
    }
}
