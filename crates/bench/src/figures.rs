//! One runner per table/figure of the paper's evaluation (Section 5).
//!
//! Absolute numbers differ from the paper (different hardware constants,
//! our own simplex instead of CPLEX, synthetic Intel-lab data); the
//! *shapes* — who wins, by what factor, where crossovers fall — are the
//! reproduction targets. EXPERIMENTS.md records both.

use crate::scenarios::{GaussianScenario, IntelScenario, Scenario, ZoneScenario};
use crate::CurvePoint;
use prospector_core::{
    evaluate, exact::ExactConfig, oracle, Plan, PlanContext, Planner, ProspectorGreedy,
    ProspectorLpLf, ProspectorLpNoLf,
};
use prospector_data::{IndependentGaussian, SampleSet, ValueSource};
use prospector_net::{EnergyModel, NodeId, Topology};
use prospector_sim::{execute_plan, install_cost, run_exact, run_naive1};
use std::time::Instant;

/// A fully rendered figure: identifier, axes and data points.
#[derive(Debug, Clone)]
pub struct FigureResult {
    pub id: &'static str,
    pub title: &'static str,
    pub x_label: &'static str,
    pub y_label: &'static str,
    pub points: Vec<CurvePoint>,
}

/// Average executed collection+trigger energy of `plan` over epochs.
fn avg_exec_mj(
    plan: &Plan,
    topology: &Topology,
    energy: &EnergyModel,
    epochs: &[Vec<f64>],
    k: usize,
) -> f64 {
    let total: f64 = epochs
        .iter()
        .map(|values| execute_plan(plan, topology, energy, values, k, None).total_mj())
        .sum();
    total / epochs.len() as f64
}

/// Average accuracy (%) of `plan` over epochs.
fn avg_accuracy_pct(plan: &Plan, topology: &Topology, epochs: &[Vec<f64>], k: usize) -> f64 {
    let total: f64 =
        epochs.iter().map(|values| evaluate::accuracy_on_values(plan, topology, values, k)).sum();
    100.0 * total / epochs.len() as f64
}

/// Runs each approximate planner across a budget ladder, producing
/// (measured energy, accuracy%) points.
///
/// Every (planner, budget) pair is independent, so the grid is fanned
/// across the worker pool; results come back in planner-major order, so
/// the point list is identical to the old serial double loop.
fn approx_curves<S>(
    scenario: &Scenario<S>,
    energy: &EnergyModel,
    budgets: &[f64],
    planners: &[(&str, &(dyn Planner + Sync))],
) -> Vec<CurvePoint> {
    let topo = &scenario.network.topology;
    let samples = &scenario.samples;
    let eval_epochs = &scenario.eval_epochs;
    let k = scenario.k;
    let jobs: Vec<(&str, &(dyn Planner + Sync), f64)> = planners
        .iter()
        .flat_map(|&(name, planner)| budgets.iter().map(move |&b| (name, planner, b)))
        .collect();
    prospector_par::par_map(&jobs, |_, &(name, planner, budget)| {
        let ctx = PlanContext::new(topo, energy, samples, budget);
        let plan = match planner.plan(&ctx) {
            Ok(p) => p,
            Err(e) => panic!("{name} failed at budget {budget}: {e}"),
        };
        let x = avg_exec_mj(&plan, topo, energy, eval_epochs, k);
        let y = avg_accuracy_pct(&plan, topo, eval_epochs, k);
        CurvePoint::new(name, x, y)
    })
}

/// Exact algorithms (ORACLE / NAIVE-k) traced by varying k' ≤ k, as the
/// paper does: accuracy k'/k at the cost of the k' plan.
fn exact_curves<S>(
    scenario: &Scenario<S>,
    energy: &EnergyModel,
    k_ladder: &[usize],
) -> Vec<CurvePoint> {
    let topo = &scenario.network.topology;
    let eval_epochs = &scenario.eval_epochs;
    let k = scenario.k;
    let mut points = prospector_par::par_map(k_ladder, |_, &kp| {
        let plan = Plan::naive_k(topo, kp);
        let x = avg_exec_mj(&plan, topo, energy, eval_epochs, kp);
        CurvePoint::new("naive-k", x, 100.0 * kp as f64 / k as f64)
    });
    points.extend(prospector_par::par_map(k_ladder, |_, &kp| {
        let cost: f64 = eval_epochs
            .iter()
            .map(|values| {
                let plan = oracle::oracle_plan(topo, values, kp);
                execute_plan(&plan, topo, energy, values, kp, None).total_mj()
            })
            .sum::<f64>()
            / eval_epochs.len() as f64;
        CurvePoint::new("oracle", cost, 100.0 * kp as f64 / k as f64)
    }));
    points
}

fn budget_ladder(scale: f64, fractions: &[f64]) -> Vec<f64> {
    fractions.iter().map(|f| f * scale).collect()
}

/// Table 1 (Section 2): the MICA2-derived cost constants.
pub fn table1() -> FigureResult {
    let em = EnergyModel::mica2();
    let points = vec![
        CurvePoint::new("sending cost (mW)", 0.0, prospector_net::energy::MICA2_TX_MW),
        CurvePoint::new("receiving cost (mW)", 0.0, prospector_net::energy::MICA2_RX_MW),
        CurvePoint::new("byte rate (B/s)", 0.0, prospector_net::energy::MICA2_BYTES_PER_SEC),
        CurvePoint::new("per-byte cost c_b (mJ/B)", 0.0, em.per_byte_mj),
        CurvePoint::new("per-message cost c_m (mJ)", 0.0, em.per_message_mj),
        CurvePoint::new("bytes per value", 0.0, em.value_bytes as f64),
    ];
    FigureResult {
        id: "table1",
        title: "Table 1: MICA2 communication cost model",
        x_label: "-",
        y_label: "value",
        points,
    }
}

/// Figure 3: energy vs accuracy for all algorithms on independent
/// Gaussians.
pub fn fig3(fast: bool) -> FigureResult {
    let scenario = GaussianScenario::fig3(fast).build();
    let em = EnergyModel::mica2();
    let topo = &scenario.network.topology;
    let naive_cost =
        avg_exec_mj(&Plan::naive_k(topo, scenario.k), topo, &em, &scenario.eval_epochs, scenario.k);

    let mut points = Vec::new();
    let k_ladder: Vec<usize> = [0.2, 0.4, 0.6, 0.8, 1.0]
        .iter()
        .map(|f| ((f * scenario.k as f64) as usize).max(1))
        .collect();
    points.extend(exact_curves(&scenario, &em, &k_ladder));

    let fractions: &[f64] =
        if fast { &[0.1, 0.3, 0.6, 1.0] } else { &[0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0] };
    let budgets = budget_ladder(naive_cost, fractions);
    let planners: Vec<(&str, &(dyn Planner + Sync))> = vec![
        ("greedy", &ProspectorGreedy),
        ("lp-lf", &ProspectorLpNoLf),
        ("lp+lf", &ProspectorLpLf),
    ];
    points.extend(approx_curves(&scenario, &em, &budgets, &planners));

    FigureResult {
        id: "fig3",
        title: "Figure 3: comparison of algorithms (independent Gaussians)",
        x_label: "energy (mJ)",
        y_label: "accuracy (% of top k)",
        points,
    }
}

/// Figure 4: accuracy vs variance at a fixed (ample) energy budget.
pub fn fig4(fast: bool) -> FigureResult {
    let base = if fast {
        GaussianScenario {
            n: 30,
            k: 6,
            num_samples: 8,
            num_eval: 6,
            mean_range: 48.0..52.0,
            std_range: 0.4..0.6,
            seed: 41,
        }
    } else {
        GaussianScenario {
            n: 60,
            k: 10,
            num_samples: 15,
            num_eval: 10,
            mean_range: 48.0..52.0,
            std_range: 0.4..0.6,
            seed: 41,
        }
    };
    let em = EnergyModel::mica2();
    let probe = base.build();
    let topo_probe = &probe.network.topology;
    let naive_cost = avg_exec_mj(
        &Plan::naive_k(topo_probe, base.k),
        topo_probe,
        &em,
        &probe.eval_epochs,
        base.k,
    );
    // "fixed at a sufficiently high level ... to achieve near perfect
    // accuracy when variance is negligible".
    let budget = 0.55 * naive_cost;

    let scales: &[f64] =
        if fast { &[0.5, 2.0, 8.0] } else { &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] };
    // Each variance scale is a self-contained scenario build + two plans;
    // fan the scales across workers and flatten in scale order.
    let points: Vec<CurvePoint> = prospector_par::par_map(scales, |_, &scale| {
        let scenario = {
            let mut sc = base.build();
            let scaled = sc.source.with_std_scale(scale);
            let (src, samples, eval) =
                crate::scenarios::warm_up(scaled, base.n, base.k, base.num_samples, base.num_eval);
            sc.source = src;
            sc.samples = samples;
            sc.eval_epochs = eval;
            sc
        };
        let variance = {
            let stds = scenario.source.std_devs();
            stds.iter().map(|s| s * s).sum::<f64>() / stds.len() as f64
        };
        let topo = &scenario.network.topology;
        let mut pts = Vec::new();
        for (name, planner) in
            [("lp-lf", &ProspectorLpNoLf as &dyn Planner), ("lp+lf", &ProspectorLpLf)]
        {
            let ctx = PlanContext::new(topo, &em, &scenario.samples, budget);
            let plan = planner.plan(&ctx).expect("planning succeeds");
            let acc = avg_accuracy_pct(&plan, topo, &scenario.eval_epochs, scenario.k);
            pts.push(CurvePoint::new(name, variance, acc));
        }
        pts
    })
    .into_iter()
    .flatten()
    .collect();
    FigureResult {
        id: "fig4",
        title: "Figure 4: effect of variance (fixed budget)",
        x_label: "variance",
        y_label: "accuracy (% of top k)",
        points,
    }
}

/// Figure 5: contention zones — energy vs accuracy for LP+LF vs LP−LF.
pub fn fig5(fast: bool) -> FigureResult {
    let scenario = ZoneScenario::fig5(fast).build();
    let em = EnergyModel::mica2();
    let topo = &scenario.network.topology;
    let naive_cost =
        avg_exec_mj(&Plan::naive_k(topo, scenario.k), topo, &em, &scenario.eval_epochs, scenario.k);
    let fractions: &[f64] =
        if fast { &[0.2, 0.5, 0.9] } else { &[0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0] };
    let budgets = budget_ladder(naive_cost, fractions);
    let planners: Vec<(&str, &(dyn Planner + Sync))> =
        vec![("lp-lf", &ProspectorLpNoLf), ("lp+lf", &ProspectorLpLf)];
    let points = approx_curves(&scenario, &em, &budgets, &planners);
    FigureResult {
        id: "fig5",
        title: "Figure 5: contention zones (energy vs accuracy)",
        x_label: "energy (mJ)",
        y_label: "accuracy (% of top k)",
        points,
    }
}

/// Figure 7: accuracy vs the number of contention zones at a fixed budget.
pub fn fig7(fast: bool) -> FigureResult {
    let em = EnergyModel::mica2();
    // Budget fixed at the level that shows the largest LP+LF/LP−LF gap in
    // Figure 5 (mid-ladder of the largest network).
    let probe = ZoneScenario::fig5(fast).build();
    let topo = &probe.network.topology;
    let naive_cost =
        avg_exec_mj(&Plan::naive_k(topo, probe.k), topo, &em, &probe.eval_epochs, probe.k);
    let budget = 0.4 * naive_cost;

    let zone_counts: &[usize] = if fast { &[2, 4, 6] } else { &[1, 2, 3, 4, 5, 6] };
    // One scenario build + two plans per zone count; independent, so each
    // zone count runs on its own worker.
    let points: Vec<CurvePoint> = prospector_par::par_map(zone_counts, |_, &z| {
        let scenario = ZoneScenario::fig5(fast).with_zones(z).build();
        let topo = &scenario.network.topology;
        let mut pts = Vec::new();
        for (name, planner) in
            [("lp-lf", &ProspectorLpNoLf as &dyn Planner), ("lp+lf", &ProspectorLpLf)]
        {
            let ctx = PlanContext::new(topo, &em, &scenario.samples, budget);
            let plan = planner.plan(&ctx).expect("planning succeeds");
            let acc = avg_accuracy_pct(&plan, topo, &scenario.eval_epochs, scenario.k);
            pts.push(CurvePoint::new(name, z as f64, acc));
        }
        pts
    })
    .into_iter()
    .flatten()
    .collect();
    FigureResult {
        id: "fig7",
        title: "Figure 7: varying the number of contention zones",
        x_label: "number of contended areas",
        y_label: "accuracy (% of top k)",
        points,
    }
}

/// Figure 8: ProspectorExact phase-1/phase-2 cost breakdown vs NAIVE-k
/// and ORACLE-PROOF across phase-1 budget trials.
pub fn fig8(fast: bool) -> FigureResult {
    let base = if fast {
        GaussianScenario {
            n: 18,
            k: 4,
            num_samples: 5,
            num_eval: 4,
            mean_range: 40.0..60.0,
            std_range: 1.0..4.0,
            seed: 53,
        }
    } else {
        GaussianScenario {
            n: 100,
            k: 25,
            num_samples: 6,
            num_eval: 6,
            mean_range: 40.0..60.0,
            std_range: 1.0..4.0,
            seed: 53,
        }
    };
    let scenario = base.build();
    let em = EnergyModel::mica2();
    let topo = &scenario.network.topology;
    let k = scenario.k;

    let naive_cost = avg_exec_mj(&Plan::naive_k(topo, k), topo, &em, &scenario.eval_epochs, k);
    let oracle_proof_cost: f64 = scenario
        .eval_epochs
        .iter()
        .map(|values| {
            let plan = oracle::oracle_proof_plan(topo, values, k);
            execute_plan(&plan, topo, &em, values, k, None).total_mj()
        })
        .sum::<f64>()
        / scenario.eval_epochs.len() as f64;

    let ctx_probe = PlanContext::new(topo, &em, &scenario.samples, 1.0);
    let min_proof = ctx_probe.min_proof_cost();
    let fracs: &[f64] = if fast { &[0.0, 0.3, 1.0] } else { &[0.0, 0.1, 0.2, 0.3, 0.4, 0.6, 1.0] };
    // Each budget trial plans and replays every epoch independently.
    let points: Vec<CurvePoint> = prospector_par::par_map(fracs, |t, &frac| {
        let phase1_budget = min_proof + frac * (1.15 * naive_cost - min_proof);
        let cfg = ExactConfig { phase1_budget_mj: phase1_budget };
        let ctx = PlanContext::new(topo, &em, &scenario.samples, phase1_budget);
        let plan = cfg.plan_phase1(&ctx).expect("phase-1 plan");
        let (mut p1, mut p2) = (0.0, 0.0);
        for values in &scenario.eval_epochs {
            let r = run_exact(&plan, topo, &em, values, k, None);
            p1 += r.phase1_mj;
            p2 += r.phase2_mj;
        }
        let n_eval = scenario.eval_epochs.len() as f64;
        let x = (t + 1) as f64;
        vec![
            CurvePoint::new("phase-1", x, p1 / n_eval),
            CurvePoint::new("phase-2", x, p2 / n_eval),
            CurvePoint::new("naive-k", x, naive_cost),
            CurvePoint::new("oracle-proof", x, oracle_proof_cost),
        ]
    })
    .into_iter()
    .flatten()
    .collect();
    FigureResult {
        id: "fig8",
        title: "Figure 8: ProspectorExact two-phase cost breakdown",
        x_label: "trial instance",
        y_label: "energy (mJ)",
        points,
    }
}

/// Figure 9: Intel-lab-like data — energy vs accuracy for Greedy, LP−LF
/// and LP+LF (the latter two nearly identical, as in the paper).
pub fn fig9(fast: bool) -> FigureResult {
    let scenario = IntelScenario::fig9(fast).build();
    let em = EnergyModel::mica2();
    let topo = &scenario.network.topology;
    let naive_cost =
        avg_exec_mj(&Plan::naive_k(topo, scenario.k), topo, &em, &scenario.eval_epochs, scenario.k);
    let fractions: &[f64] =
        if fast { &[0.1, 0.3, 0.7] } else { &[0.05, 0.1, 0.18, 0.3, 0.45, 0.65, 0.9] };
    let budgets = budget_ladder(naive_cost, fractions);
    let planners: Vec<(&str, &(dyn Planner + Sync))> = vec![
        ("greedy", &ProspectorGreedy),
        ("lp-lf", &ProspectorLpNoLf),
        ("lp+lf", &ProspectorLpLf),
    ];
    let mut points = approx_curves(&scenario, &em, &budgets, &planners);
    points.push(CurvePoint::new("naive-k", naive_cost, 100.0));
    FigureResult {
        id: "fig9",
        title: "Figure 9: Intel-lab-like dataset",
        x_label: "energy (mJ)",
        y_label: "accuracy (% of top k)",
        points,
    }
}

/// §5 "Other Results": accuracy vs the number of samples used to plan.
pub fn e_samples(fast: bool) -> FigureResult {
    let base = if fast {
        GaussianScenario {
            n: 24,
            k: 5,
            num_samples: 30,
            num_eval: 6,
            mean_range: 40.0..60.0,
            std_range: 1.0..4.0,
            seed: 61,
        }
    } else {
        GaussianScenario {
            n: 60,
            k: 10,
            num_samples: 30,
            num_eval: 10,
            mean_range: 40.0..60.0,
            std_range: 1.0..4.0,
            seed: 61,
        }
    };
    let scenario = base.build();
    let em = EnergyModel::mica2();
    let topo = &scenario.network.topology;
    let naive_cost =
        avg_exec_mj(&Plan::naive_k(topo, scenario.k), topo, &em, &scenario.eval_epochs, scenario.k);
    let budget = 0.35 * naive_cost;

    let counts: &[usize] = if fast { &[1, 3, 8] } else { &[1, 2, 3, 5, 8, 12, 20, 30] };
    // Each sample-window size replays its own warm-up and plans twice;
    // window sizes are independent of one another.
    let points: Vec<CurvePoint> = prospector_par::par_map(counts, |_, &s| {
        // Rebuild a window holding only the first `s` warm-up samples.
        let mut window = SampleSet::new(base.n, base.k, s);
        let mut src = prospector_data::IndependentGaussian::random(
            base.n,
            base.mean_range.clone(),
            base.std_range.clone(),
            base.seed,
        );
        for epoch in 0..s as u64 {
            window.push(src.values(epoch));
        }
        let mut pts = Vec::new();
        for (name, planner) in
            [("lp-lf", &ProspectorLpNoLf as &dyn Planner), ("lp+lf", &ProspectorLpLf)]
        {
            let ctx = PlanContext::new(topo, &em, &window, budget);
            let plan = planner.plan(&ctx).expect("planning succeeds");
            let acc = avg_accuracy_pct(&plan, topo, &scenario.eval_epochs, scenario.k);
            pts.push(CurvePoint::new(name, s as f64, acc));
        }
        pts
    })
    .into_iter()
    .flatten()
    .collect();
    FigureResult {
        id: "esamples",
        title: "Sampling size vs accuracy (Section 5, other results)",
        x_label: "number of samples",
        y_label: "accuracy (% of top k)",
        points,
    }
}

/// §5 "Other Results": LP solve wall time vs the energy constraint.
pub fn e_lp_time(fast: bool) -> FigureResult {
    let scenario = if fast {
        GaussianScenario::fig3(true)
    } else {
        GaussianScenario {
            n: 80,
            k: 15,
            num_samples: 15,
            num_eval: 4,
            mean_range: 40.0..60.0,
            std_range: 1.0..5.0,
            seed: 71,
        }
    }
    .build();
    let em = EnergyModel::mica2();
    let topo = &scenario.network.topology;
    let naive_cost =
        avg_exec_mj(&Plan::naive_k(topo, scenario.k), topo, &em, &scenario.eval_epochs, scenario.k);
    let fractions: &[f64] = if fast { &[0.2, 0.6] } else { &[0.1, 0.25, 0.4, 0.55, 0.7, 0.9] };
    let mut points = Vec::new();
    for &f in fractions {
        let budget = f * naive_cost;
        let ctx = PlanContext::new(topo, &em, &scenario.samples, budget);
        let t0 = Instant::now();
        let _ = ProspectorLpLf.plan(&ctx).expect("lp+lf");
        points.push(CurvePoint::new("lp+lf", budget, t0.elapsed().as_secs_f64()));
    }
    // Proof LP timings on a smaller network (its LP is the largest).
    let proof_scenario = if fast {
        GaussianScenario {
            n: 14,
            k: 3,
            num_samples: 4,
            num_eval: 2,
            mean_range: 40.0..60.0,
            std_range: 1.0..4.0,
            seed: 72,
        }
    } else {
        GaussianScenario {
            n: 30,
            k: 6,
            num_samples: 6,
            num_eval: 2,
            mean_range: 40.0..60.0,
            std_range: 1.0..4.0,
            seed: 72,
        }
    }
    .build();
    let ptopo = &proof_scenario.network.topology;
    let pctx = PlanContext::new(ptopo, &em, &proof_scenario.samples, 1.0);
    let min_proof = pctx.min_proof_cost();
    for &f in fractions {
        let budget = min_proof * (1.0 + f);
        let ctx = PlanContext::new(ptopo, &em, &proof_scenario.samples, budget);
        let t0 = Instant::now();
        let _ = prospector_core::ProspectorProof::default().plan(&ctx).expect("proof lp");
        points.push(CurvePoint::new("proof", budget, t0.elapsed().as_secs_f64()));
    }
    FigureResult {
        id: "elptime",
        title: "LP solve time vs energy constraint (Section 5, other results)",
        x_label: "budget (mJ)",
        y_label: "solve time (s)",
        points,
    }
}

/// §5 text: plan installation costs on the order of one collection phase.
pub fn e_dissemination(fast: bool) -> FigureResult {
    let scenario = GaussianScenario::fig3(fast).build();
    let em = EnergyModel::mica2();
    let topo = &scenario.network.topology;
    let naive_cost =
        avg_exec_mj(&Plan::naive_k(topo, scenario.k), topo, &em, &scenario.eval_epochs, scenario.k);
    let fractions: &[f64] = if fast { &[0.3, 0.8] } else { &[0.1, 0.3, 0.5, 0.8] };
    let mut points = Vec::new();
    for &f in fractions {
        let budget = f * naive_cost;
        let ctx = PlanContext::new(topo, &em, &scenario.samples, budget);
        let plan = ProspectorLpLf.plan(&ctx).expect("lp+lf");
        let collect = avg_exec_mj(&plan, topo, &em, &scenario.eval_epochs, scenario.k);
        let install = install_cost(&plan, topo, &em);
        points.push(CurvePoint::new("collection", budget, collect));
        points.push(CurvePoint::new("install", budget, install));
    }
    FigureResult {
        id: "edissem",
        title: "Plan dissemination vs collection cost (Section 5 text)",
        x_label: "budget (mJ)",
        y_label: "energy (mJ)",
        points,
    }
}

/// Extra shape check used by tests and EXPERIMENTS.md: NAIVE-1's cost at
/// small k already rivals NAIVE-k at large k.
pub fn naive1_vs_naive_k(fast: bool) -> FigureResult {
    let scenario = GaussianScenario::fig3(fast).build();
    let em = EnergyModel::mica2();
    let topo = &scenario.network.topology;
    let values = &scenario.eval_epochs[0];
    let mut points = Vec::new();
    let ks: &[usize] = if fast { &[1, 4, 8] } else { &[1, 5, 10, 15, 20, 25] };
    for &kp in ks {
        let (_, meter) = run_naive1(topo, &em, values, kp);
        points.push(CurvePoint::new("naive-1", kp as f64, meter.total()));
        let plan = Plan::naive_k(topo, kp);
        let cost = execute_plan(&plan, topo, &em, values, kp, None).total_mj();
        points.push(CurvePoint::new("naive-k", kp as f64, cost));
    }
    FigureResult {
        id: "naive1",
        title: "NAIVE-1 vs NAIVE-k cost (Section 2/5 discussion)",
        x_label: "k",
        y_label: "energy (mJ)",
        points,
    }
}

/// Ablation: how the proof planner's budget-fill strategy affects
/// `ProspectorExact` (DESIGN.md §9). The need-aware fill spreads witness
/// margin relative to each subtree's observed top-k load; the naive
/// subtree-deficit fill leaves many subtrees one witness short, and since
/// proofs form a prefix a single missing witness collapses the proven
/// count — phase 2 then pays for it.
pub fn ablation_fill(fast: bool) -> FigureResult {
    use prospector_core::proof_lp::{FillStrategy, ProspectorProof};

    let base = if fast {
        GaussianScenario {
            n: 24,
            k: 6,
            num_samples: 5,
            num_eval: 4,
            mean_range: 40.0..60.0,
            std_range: 1.0..4.0,
            seed: 53,
        }
    } else {
        GaussianScenario {
            n: 70,
            k: 15,
            num_samples: 6,
            num_eval: 6,
            mean_range: 40.0..60.0,
            std_range: 1.0..4.0,
            seed: 53,
        }
    };
    let scenario = base.build();
    let em = EnergyModel::mica2();
    let topo = &scenario.network.topology;
    let k = scenario.k;
    let naive_cost = avg_exec_mj(&Plan::naive_k(topo, k), topo, &em, &scenario.eval_epochs, k);
    let min_proof = PlanContext::new(topo, &em, &scenario.samples, 1.0).min_proof_cost();

    let fracs: &[f64] = if fast { &[0.2, 0.5] } else { &[0.1, 0.2, 0.3, 0.4, 0.55, 0.75] };
    // Fan the (strategy, budget) grid across workers; strategy-major
    // job order keeps the point list identical to the serial loops.
    let jobs: Vec<(&str, FillStrategy, f64)> = [
        ("need-aware", FillStrategy::NeedAware),
        ("subtree-deficit", FillStrategy::SubtreeDeficit),
        ("no-fill", FillStrategy::None),
    ]
    .into_iter()
    .flat_map(|(name, fill)| fracs.iter().map(move |&frac| (name, fill, frac)))
    .collect();
    let mut points = prospector_par::par_map(&jobs, |_, &(name, fill, frac)| {
        let budget = min_proof + frac * (1.15 * naive_cost - min_proof);
        let ctx = PlanContext::new(topo, &em, &scenario.samples, budget);
        let plan = ProspectorProof { fill }.plan(&ctx).expect("proof plan");
        let total: f64 = scenario
            .eval_epochs
            .iter()
            .map(|v| run_exact(&plan, topo, &em, v, k, None).total_mj())
            .sum::<f64>()
            / scenario.eval_epochs.len() as f64;
        CurvePoint::new(name, budget, total)
    });
    for &frac in fracs {
        let budget = min_proof + frac * (1.15 * naive_cost - min_proof);
        points.push(CurvePoint::new("naive-k", budget, naive_cost));
    }
    FigureResult {
        id: "ablation_fill",
        title: "Ablation: proof-plan budget-fill strategy (ProspectorExact total)",
        x_label: "phase-1 budget (mJ)",
        y_label: "total energy (mJ)",
        points,
    }
}

/// Section 4.4 experiment: planning with vs. without the transient-failure
/// cost model, executed under failure injection. Failure-aware plans
/// inflate lossy edges' message costs, so the executed energy (including
/// rerouting) stays near the budget; failure-blind plans overshoot.
pub fn e_failures(fast: bool) -> FigureResult {
    use prospector_net::FailureModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let scenario = GaussianScenario::fig3(fast).build();
    let em = EnergyModel::mica2();
    let topo = &scenario.network.topology;
    let k = scenario.k;
    let n = topo.len();
    let naive_cost = avg_exec_mj(&Plan::naive_k(topo, k), topo, &em, &scenario.eval_epochs, k);
    let budget = 0.45 * naive_cost;
    let reroute_mj = 3.0;

    let probs: &[f64] = if fast { &[0.0, 0.2] } else { &[0.0, 0.05, 0.1, 0.2, 0.35, 0.5] };
    let mut points = Vec::new();
    for &p in probs {
        let fm = FailureModel::uniform(n, p, reroute_mj);
        for (name, aware) in [("failure-aware", true), ("failure-blind", false)] {
            let ctx = if aware {
                PlanContext::new(topo, &em, &scenario.samples, budget).with_failures(&fm)
            } else {
                PlanContext::new(topo, &em, &scenario.samples, budget)
            };
            let plan = ProspectorLpNoLf.plan(&ctx).expect("plan");
            let mut rng = StdRng::seed_from_u64(97);
            let mut energy = 0.0;
            let mut acc = 0.0;
            for values in &scenario.eval_epochs {
                let r = prospector_sim::execute_plan(
                    &plan,
                    topo,
                    &em,
                    values,
                    k,
                    Some((&fm, &mut rng)),
                );
                energy += r.total_mj();
                acc += evaluate::accuracy_on_values(&plan, topo, values, k);
            }
            let n_eval = scenario.eval_epochs.len() as f64;
            points.push(CurvePoint::new(name, p, energy / n_eval));
            points.push(CurvePoint::new(format!("{name}-accuracy"), p, 100.0 * acc / n_eval));
        }
        points.push(CurvePoint::new("budget", p, budget));
    }
    FigureResult {
        id: "efailures",
        title: "Failure-aware planning under transient-failure injection (Section 4.4)",
        x_label: "edge failure probability",
        y_label: "measured energy (mJ) / accuracy (%)",
        points,
    }
}

/// Extension: permanent-failure tolerance (Section 4.4, "Adapting to
/// change"). A growing fraction of non-root nodes dies mid-run; the
/// runner detects each death, repairs the spanning tree, masks the dead
/// out of the sample window and re-plans through the degradation chain.
/// The reproduction target is graceful decay: accuracy over the
/// *survivors* should fall slowly with the death rate, never collapse.
pub fn fault_tolerance(fast: bool) -> FigureResult {
    use prospector_core::FallbackPlanner;
    use prospector_data::SamplePolicy;
    use prospector_net::{ArqPolicy, FailureModel, FaultSchedule, NetworkBuilder, Phase};
    use prospector_sim::{ExperimentConfig, ExperimentRunner};

    let (n, k, epochs) = if fast { (30usize, 4usize, 60u64) } else { (80, 10, 160) };
    let side = 40.0 * (n as f64).sqrt();
    let network =
        NetworkBuilder::new(n, side, side, 70.0).seed(87).build().expect("connected placement");
    let topo = &network.topology;
    let em = EnergyModel::mica2();

    // Budget pinned to a fraction of NAIVE-k's measured cost, as in the
    // accuracy figures.
    let mut probe = prospector_data::IndependentGaussian::random(n, 40.0..60.0, 1.0..4.0, 87);
    let probe_values = probe.values(0);
    let naive_cost =
        execute_plan(&Plan::naive_k(topo, k), topo, &em, &probe_values, k, None).total_mj();

    let rates: &[f64] = if fast { &[0.0, 0.1, 0.25] } else { &[0.0, 0.05, 0.1, 0.2, 0.3] };
    let warmup = 8u64;
    let mut points = Vec::new();
    for &rate in rates {
        let deaths = (rate * (n - 1) as f64).round() as usize;
        // Deaths land strictly after warmup and leave a recovery tail.
        let faults = FaultSchedule::random_deaths(n, deaths, warmup + 2..epochs * 3 / 4, 87);
        let planner = FallbackPlanner::standard();
        // Node deaths ride on top of a constant transient message-loss
        // floor, so every hop runs the per-hop ARQ and the Retransmit
        // phase meters real work at every death rate.
        let config = ExperimentConfig {
            k,
            window: 10,
            policy: SamplePolicy::Periodic { warmup, period: 10 },
            budget_mj: 0.4 * naive_cost,
            replan_every: 8,
            replan_threshold: 0.1,
            failures: Some(FailureModel::uniform(n, 0.08, 0.0)),
            faults,
            install_retries: 2,
            arq: ArqPolicy::default(),
            min_delivered: 0.0,
            max_retry_budget: 8,
            gate: None,
            continuous: None,
            seed: 87,
        };
        let mut source = prospector_data::IndependentGaussian::random(n, 40.0..60.0, 1.0..4.0, 87);
        let mut runner = ExperimentRunner::new(topo, &em, &planner, config);
        let reports = runner.run(&mut source, epochs).expect("fallback chain never aborts");

        let queries: Vec<_> = reports.iter().filter(|r| !r.sampled).collect();
        let acc = 100.0 * queries.iter().map(|r| r.accuracy).sum::<f64>() / queries.len() as f64;
        let repaired = reports.iter().filter(|r| r.repaired).count();
        let fallbacks = reports.iter().filter(|r| r.fallback_used.is_some()).count();
        points.push(CurvePoint::new("query-accuracy", rate, acc));
        points.push(CurvePoint::new("repaired-epochs", rate, repaired as f64));
        points.push(CurvePoint::new("fallback-epochs", rate, fallbacks as f64));
        points.push(CurvePoint::new(
            "repair-energy",
            rate,
            runner.meter().phase_total(Phase::Repair),
        ));
        points.push(CurvePoint::new(
            "retransmit-energy",
            rate,
            runner.meter().phase_total(Phase::Retransmit),
        ));
    }
    FigureResult {
        id: "fault_tolerance",
        title: "Fault tolerance: node-death rate vs accuracy (Section 4.4)",
        x_label: "fraction of non-root nodes killed",
        y_label: "accuracy (%) / epochs / energy (mJ)",
        points,
    }
}

/// Extension (DESIGN.md §14): the faulty-sensor grid behind
/// `BENCH_dfault.json`. A growing fraction of non-root sensors is
/// corrupted mid-run — stuck at a high level, drifting, spiking, or
/// noisy — and every cell is run twice: with the sampling-based
/// plausibility gate off and on. The headline is the accuracy column:
/// ungated runs answer with the corrupted readings (and let them poison
/// the sample window at sweep epochs), while gated runs flag
/// out-of-band readings, substitute the window prediction, and
/// quarantine repeat offenders — recovering most of the lost accuracy.
pub fn dfault(fast: bool) -> FigureResult {
    use prospector_core::{FallbackPlanner, GatePolicy};
    use prospector_data::SamplePolicy;
    use prospector_net::{ArqPolicy, DataFault, FaultSchedule, NetworkBuilder};
    use prospector_sim::{ExperimentConfig, ExperimentRunner};
    use std::fmt::Write as _;

    let (n, k, epochs) = if fast { (30usize, 4usize, 48u64) } else { (60, 8, 120) };
    let side = 40.0 * (n as f64).sqrt();
    let network =
        NetworkBuilder::new(n, side, side, 70.0).seed(55).build().expect("connected placement");
    let topo = &network.topology;
    let em = EnergyModel::mica2();

    let mut probe = prospector_data::IndependentGaussian::random(n, 40.0..60.0, 1.0..4.0, 55);
    let probe_values = probe.values(0);
    let naive_cost =
        execute_plan(&Plan::naive_k(topo, k), topo, &em, &probe_values, k, None).total_mj();

    // Sources sit in 40..60 with σ in 1..4, so each kind lands a
    // different distance outside the z·σ band: stuck-at and spikes are
    // flagrant, drift crosses the band only after several epochs, and
    // uniform noise is out of band only on its larger draws.
    let kinds: &[(&str, DataFault)] = &[
        ("stuck_at", DataFault::StuckAt { level: 95.0 }),
        ("drift", DataFault::Drift { rate: 2.0 }),
        ("spike", DataFault::Spike { magnitude: 40.0 }),
        ("noise", DataFault::Noise { amplitude: 30.0 }),
    ];
    let fractions: &[f64] = if fast { &[0.0, 0.1, 0.2] } else { &[0.0, 0.05, 0.1, 0.2, 0.3] };
    let warmup = 8u64;
    let onset = warmup + 2;
    let mut points = Vec::new();
    let mut dump = String::from("{\n  \"bench\": \"dfault\",\n  \"series\": {");
    let mut first_series = true;
    for &(kind_name, fault) in kinds {
        for gated in [false, true] {
            let series = format!("{kind_name}-{}", if gated { "gated" } else { "ungated" });
            let _ = write!(dump, "{}\n    \"{series}\": [", if first_series { "" } else { "," });
            first_series = false;
            for (fi, &fraction) in fractions.iter().enumerate() {
                let count = (fraction * (n - 1) as f64).round() as usize;
                // Faults switch on after warmup and persist to the end.
                let faults =
                    FaultSchedule::random_data_faults(n, count, onset, epochs - onset, fault, 55);
                let config = ExperimentConfig {
                    k,
                    window: 10,
                    // Sweeps interleave with queries past warmup, so the
                    // ungated window keeps ingesting corrupted readings.
                    policy: SamplePolicy::Periodic { warmup, period: 6 },
                    budget_mj: 0.4 * naive_cost,
                    replan_every: 8,
                    replan_threshold: 0.1,
                    failures: None,
                    faults,
                    install_retries: 2,
                    arq: ArqPolicy::default(),
                    min_delivered: 0.0,
                    max_retry_budget: 8,
                    gate: gated.then(GatePolicy::default),
                    continuous: None,
                    seed: 55,
                };
                let planner = FallbackPlanner::standard();
                let mut source =
                    prospector_data::IndependentGaussian::random(n, 40.0..60.0, 1.0..4.0, 55);
                let mut runner = ExperimentRunner::new(topo, &em, &planner, config);
                let reports = runner.run(&mut source, epochs).expect("dfault run completes");
                let scored: Vec<f64> =
                    reports.iter().filter(|r| r.epoch >= onset).map(|r| r.accuracy).collect();
                let acc = 100.0 * scored.iter().sum::<f64>() / scored.len() as f64;
                points.push(CurvePoint::new(series.clone(), fraction, acc));
                let _ = write!(dump, "{}[{fraction}, {acc:.3}]", if fi > 0 { ", " } else { "" });
            }
            dump.push(']');
        }
    }
    dump.push_str("\n  }\n}\n");
    if !fast {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dfault.json");
        match std::fs::write(path, dump) {
            Ok(()) => println!("[wrote {path}]"),
            Err(e) => eprintln!("[failed to write {path}: {e}]"),
        }
    }
    FigureResult {
        id: "dfault",
        title: "Faulty sensors: corrupted fraction vs accuracy, gated and ungated (DESIGN.md §14)",
        x_label: "fraction of non-root sensors corrupted",
        y_label: "query accuracy (%)",
        points,
    }
}

/// Extension: the loss-rate × retry-budget grid behind `BENCH_loss.json`.
/// For each uniform per-hop loss rate and ARQ retry budget the plan is
/// rebuilt with loss-aware edge costs, scored analytically over the sample
/// window ([`expected_accuracy_under_loss`], parallel but bit-identical to
/// serial) and executed over the eval epochs so Collection + Retransmit
/// energy is metered to the attempt.
pub fn e_loss(fast: bool) -> FigureResult {
    use prospector_core::evaluate::expected_accuracy_under_loss;
    use prospector_net::{epoch_seed, ArqPolicy, FailureModel};
    use prospector_sim::execute_plan_arq;

    let scenario = GaussianScenario::fig3(fast).build();
    let em = EnergyModel::mica2();
    let topo = &scenario.network.topology;
    let k = scenario.k;
    let n = topo.len();
    let naive_cost = avg_exec_mj(&Plan::naive_k(topo, k), topo, &em, &scenario.eval_epochs, k);
    let budget = 0.45 * naive_cost;

    let rates: &[f64] = if fast { &[0.0, 0.1, 0.2] } else { &[0.0, 0.05, 0.1, 0.2, 0.35, 0.5] };
    let retry_budgets: &[u32] = if fast { &[0, 1, 3] } else { &[0, 1, 2, 4] };
    let mut points = Vec::new();
    for &retries in retry_budgets {
        let policy = ArqPolicy { max_retries: retries, ..ArqPolicy::default() };
        for &p in rates {
            let fm = FailureModel::uniform(n, p, 0.0);
            let ctx = PlanContext::new(topo, &em, &scenario.samples, budget)
                .with_failures(&fm)
                .with_arq(policy);
            let plan = ProspectorLpNoLf.plan(&ctx).expect("plan");
            let acc =
                expected_accuracy_under_loss(&plan, topo, &scenario.samples, &fm, &policy, 87);
            let energy: f64 = scenario
                .eval_epochs
                .iter()
                .enumerate()
                .map(|(j, values)| {
                    let seed = epoch_seed(87, j as u64);
                    execute_plan_arq(&plan, topo, &em, values, k, &fm, &policy, seed).total_mj()
                })
                .sum::<f64>()
                / scenario.eval_epochs.len() as f64;
            points.push(CurvePoint::new(format!("accuracy-r{retries}"), p, 100.0 * acc));
            points.push(CurvePoint::new(format!("energy-r{retries}"), p, energy));
        }
    }
    FigureResult {
        id: "eloss",
        title: "Lossy collection: per-hop loss rate × ARQ retry budget",
        x_label: "per-hop message loss probability",
        y_label: "expected accuracy (%) / measured energy (mJ)",
        points,
    }
}

/// Extension: the marginal value of energy (the LP+LF budget row's shadow
/// price) across budgets — a diminishing-returns curve an operator can use
/// to pick a budget. High where energy is scarce, zero once the plan
/// captures every sample answer.
pub fn e_sensitivity(fast: bool) -> FigureResult {
    let scenario = GaussianScenario::fig3(fast).build();
    let em = EnergyModel::mica2();
    let topo = &scenario.network.topology;
    let naive_cost =
        avg_exec_mj(&Plan::naive_k(topo, scenario.k), topo, &em, &scenario.eval_epochs, scenario.k);
    let fractions: &[f64] =
        if fast { &[0.1, 0.4, 1.0] } else { &[0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 1.0, 1.5] };
    let mut points = Vec::new();
    for &f in fractions {
        let budget = f * naive_cost;
        let ctx = PlanContext::new(topo, &em, &scenario.samples, budget);
        let price = prospector_core::budget_shadow_price(&ctx).expect("shadow price");
        points.push(CurvePoint::new("shadow-price", budget, price));
    }
    FigureResult {
        id: "esensitivity",
        title: "Marginal accuracy per mJ (LP+LF budget shadow price)",
        x_label: "budget (mJ)",
        y_label: "expected answer values per mJ",
        points,
    }
}

/// Extension: generalized subset queries (Section 3) — accuracy vs budget
/// for a selection query and a quantile band on the Intel-lab-like data.
pub fn e_subset(fast: bool) -> FigureResult {
    use prospector_core::subset::{plan_subset_query, subset_accuracy, subset_context};
    use prospector_data::subset::{AnswerSpec, SubsetSampleSet};

    let scenario = IntelScenario::fig9(fast).build();
    let topo = &scenario.network.topology;
    let em = EnergyModel::mica2();
    let n = topo.len();

    // Rebuild generalized windows from the same warm-up epochs.
    let specs = [
        ("selection(>23C)", AnswerSpec::AboveThreshold(23.0)),
        ("quantile(40-60%)", AnswerSpec::QuantileBand { lo: 0.4, hi: 0.6 }),
    ];
    let mut placeholder = SampleSet::new(n, 1, 1);
    placeholder.push(vec![0.0; n]);

    let naive_cost =
        avg_exec_mj(&Plan::naive_k(topo, scenario.k), topo, &em, &scenario.eval_epochs, scenario.k);
    let fractions: &[f64] = if fast { &[0.2, 0.6] } else { &[0.1, 0.2, 0.35, 0.55, 0.8] };

    let mut points = Vec::new();
    for (name, spec) in specs {
        let mut window = SubsetSampleSet::new(n, spec.clone(), scenario.samples.len());
        for j in 0..scenario.samples.len() {
            window.push(scenario.samples.values(j).to_vec());
        }
        for &f in fractions {
            let budget = f * naive_cost;
            let ctx = subset_context(topo, &em, &placeholder, budget);
            let plan = plan_subset_query(&ctx, &window).expect("subset plan");
            let acc: f64 = scenario
                .eval_epochs
                .iter()
                .map(|v| subset_accuracy(&plan, topo, &spec, v))
                .sum::<f64>()
                / scenario.eval_epochs.len() as f64;
            points.push(CurvePoint::new(name, budget, 100.0 * acc));
        }
    }
    FigureResult {
        id: "esubset",
        title: "Generalized subset queries (Section 3): accuracy vs budget",
        x_label: "budget (mJ)",
        y_label: "accuracy (% of answer delivered)",
        points,
    }
}

/// Extension: the observability breakdown behind `BENCH_obs.json` —
/// per-phase energy by epoch for each golden scenario, reconstructed
/// purely from the trace stream (DESIGN.md §11). Full (non-fast) runs
/// additionally dump each scenario's cumulative metrics snapshot to
/// `BENCH_obs.json` at the repository root.
pub fn e_obs(fast: bool) -> FigureResult {
    use prospector_obs::TraceEvent;
    use prospector_testutil::golden;
    use std::collections::BTreeMap;
    use std::fmt::Write as _;

    let mut points = Vec::new();
    let mut dump = String::from("{\n  \"bench\": \"obs\",\n  \"scenarios\": {");
    for (si, &name) in golden::SCENARIOS.iter().enumerate() {
        let t0 = Instant::now();
        let (events, snapshot) = golden::golden_run(name);
        let wall = t0.elapsed().as_secs_f64();

        // Attribute every energy charge to the epoch bracketed by
        // EpochStart; BTreeMaps keep series and x in stable order.
        let mut epoch = 0u64;
        let mut by_phase: BTreeMap<&'static str, BTreeMap<u64, f64>> = BTreeMap::new();
        for ev in &events {
            match ev {
                TraceEvent::EpochStart { epoch: e } => epoch = *e,
                TraceEvent::Energy { phase, mj, .. } => {
                    *by_phase.entry(phase).or_default().entry(epoch).or_insert(0.0) += mj;
                }
                _ => {}
            }
        }
        for (phase, epochs) in &by_phase {
            for (&e, &mj) in epochs {
                points.push(CurvePoint::new(format!("{name}:{phase}"), e as f64, mj));
            }
        }

        let _ = write!(
            dump,
            "{}\n    \"{name}\": {{\n      \"wall_s\": {wall:.6},\n      \
             \"events\": {},\n      \"metrics\": {}\n    }}",
            if si > 0 { "," } else { "" },
            events.len(),
            snapshot.to_json()
        );
    }
    dump.push_str("\n  }\n}\n");
    if !fast {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
        match std::fs::write(path, dump) {
            Ok(()) => println!("[wrote {path}]"),
            Err(e) => eprintln!("[failed to write {path}: {e}]"),
        }
    }
    FigureResult {
        id: "obs",
        title: "Observability: per-phase energy by epoch (golden scenarios)",
        x_label: "epoch",
        y_label: "energy (mJ)",
        points,
    }
}

/// Scale validation (beyond the paper, DESIGN.md §13): wall time of the
/// LP+LF planner, the claiming-kernel window evaluator, and topology
/// repair on 1k/10k/50k-node networks. The LP's relevant-edge count is
/// governed by `k·depth·samples`, not `n`, so plan time should stay
/// nearly flat while evaluation and repair grow linearly.
pub fn scale(fast: bool) -> FigureResult {
    let sizes: &[usize] = if fast { &[1_000, 10_000] } else { &[1_000, 10_000, 50_000] };
    let k = 10;
    let num_samples = 10;
    let em = EnergyModel::mica2();
    let mut points = Vec::new();
    for &n in sizes {
        // Deterministic complete ternary tree (depth ~log3 n). Placing a
        // radio `Network` is O(n²) and irrelevant here — every layer
        // under test consumes only the `Topology`.
        let mut parent: Vec<Option<NodeId>> = vec![None];
        parent.extend((1..n).map(|i| Some(NodeId::from_index((i - 1) / 3))));
        let topo = Topology::from_parents(NodeId::from_index(0), parent).expect("ternary tree");
        let mut source = IndependentGaussian::random(n, 40.0..60.0, 2.0..8.0, 9000 + n as u64);
        let mut samples = SampleSet::new(n, k, num_samples);
        for epoch in 0..num_samples as u64 {
            samples.push(source.values(epoch));
        }
        let budget =
            0.25 * PlanContext::new(&topo, &em, &samples, 0.0).plan_cost(&Plan::naive_k(&topo, k));
        let ctx = PlanContext::new(&topo, &em, &samples, budget);

        let t0 = Instant::now();
        let plan = ProspectorLpLf.plan(&ctx).expect("lp+lf at scale");
        points.push(CurvePoint::new("lp_lf_plan_s", n as f64, t0.elapsed().as_secs_f64()));

        let t0 = Instant::now();
        let misses = evaluate::expected_misses(&plan, &topo, &samples);
        points.push(CurvePoint::new("expected_misses_s", n as f64, t0.elapsed().as_secs_f64()));
        assert!((0.0..=k as f64).contains(&misses), "misses {misses} out of range");

        // Repair after a deterministic 2% death wave.
        let dead: Vec<NodeId> = (1..n).filter(|i| i % 50 == 7).map(NodeId::from_index).collect();
        let t0 = Instant::now();
        let repaired = topo.repair(&dead).expect("repair at scale");
        points.push(CurvePoint::new("repair_s", n as f64, t0.elapsed().as_secs_f64()));
        assert_eq!(repaired.len(), topo.len());
    }
    FigureResult {
        id: "scale",
        title: "Scale: plan/evaluate/repair wall time vs network size",
        x_label: "nodes",
        y_label: "wall time (s)",
        points,
    }
}

/// Extension: the continuous-query protocol's message economy behind
/// `BENCH_cont.json` (DESIGN.md §16). A 121-node tree runs the same
/// drifting workload twice — delta protocol (refresh every 16 epochs)
/// against the from-scratch reference (refresh every epoch) — and the
/// steady-state messages per epoch are compared across drift rates. On a
/// quiet network the delta run spends only subtree beacons plus the
/// occasional periodic refresh, so its message bill must stay under 10%
/// of from-scratch collection (the CI regression floor).
pub fn cont(fast: bool) -> FigureResult {
    use prospector_core::{ContinuousPolicy, FallbackPlanner, SketchPrecision};
    use prospector_data::{DriftField, SamplePolicy};
    use prospector_net::{topology, ArqPolicy, FaultSchedule};
    use prospector_sim::{ExperimentConfig, ExperimentRunner};
    use std::fmt::Write as _;

    let topo = topology::balanced(3, 4); // 121 nodes
    let n = topo.len();
    let em = EnergyModel::mica2();
    let epochs: u64 = if fast { 24 } else { 64 };
    // Sweeps only at the two warmup epochs; steady state starts after
    // the first refresh cycle settles.
    let steady_from = 4u64;
    let rates: &[f64] = if fast { &[0.0, 0.2] } else { &[0.0, 0.05, 0.2, 0.5] };

    let run = |refresh_period: u64, rate: f64| -> f64 {
        let config = ExperimentConfig {
            k: 8,
            window: 10,
            policy: SamplePolicy::Periodic { warmup: 2, period: 1_000 },
            budget_mj: 40.0,
            replan_every: 8,
            replan_threshold: 0.1,
            failures: None,
            faults: FaultSchedule::new(),
            install_retries: 2,
            arq: ArqPolicy::default(),
            min_delivered: 0.0,
            max_retry_budget: 8,
            gate: None,
            continuous: Some(ContinuousPolicy {
                tolerance: 0.5,
                refresh_period,
                sketch: Some(SketchPrecision { depth: 10, compression: 16, lo: 0.0, hi: 100.0 }),
            }),
            seed: 16,
        };
        let planner = FallbackPlanner::standard();
        let mut source = DriftField::random(n, 40.0..60.0, 1.0..4.0, rate, 16);
        let mut runner = ExperimentRunner::new(&topo, &em, &planner, config);
        let reports = runner.run(&mut source, epochs).expect("cont run completes");
        let steady: Vec<u32> =
            reports.iter().filter(|r| r.epoch >= steady_from).map(|r| r.messages).collect();
        steady.iter().map(|&m| m as f64).sum::<f64>() / steady.len() as f64
    };

    let cells: Vec<(f64, f64, f64)> = rates
        .iter()
        .map(|&rate| {
            let (delta, full) = (run(16, rate), run(1, rate));
            (rate, delta, full)
        })
        .collect();
    let mut points = Vec::new();
    let mut dump = String::from("{\n  \"bench\": \"cont\",\n  \"series\": {");
    for (si, series) in ["delta", "fromscratch", "ratio"].iter().enumerate() {
        let _ = write!(dump, "{}\n    \"{series}\": [", if si > 0 { "," } else { "" });
        for (ri, &(rate, delta, full)) in cells.iter().enumerate() {
            let y = match *series {
                "delta" => delta,
                "fromscratch" => full,
                _ => delta / full,
            };
            points.push(CurvePoint::new(*series, rate, y));
            let _ = write!(dump, "{}[{rate}, {y:.4}]", if ri > 0 { ", " } else { "" });
        }
        dump.push(']');
    }
    dump.push_str("\n  }\n}\n");
    if !fast {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cont.json");
        match std::fs::write(path, dump) {
            Ok(()) => println!("[wrote {path}]"),
            Err(e) => eprintln!("[failed to write {path}: {e}]"),
        }
    }
    FigureResult {
        id: "cont",
        title:
            "Continuous top-k: steady-state messages/epoch, delta vs from-scratch (DESIGN.md §16)",
        x_label: "drift rate (per-node change probability per epoch)",
        y_label: "messages per epoch",
        points,
    }
}

/// A figure runner: `fast` shrinks sizes for smoke tests.
pub type FigureFn = fn(bool) -> FigureResult;

fn table1_any(_fast: bool) -> FigureResult {
    table1()
}

/// CLI name → runner, in paper order. The `figures` binary resolves
/// requested names here, and [`all`] runs the whole list.
pub const REGISTRY: &[(&str, FigureFn)] = &[
    ("table1", table1_any),
    ("fig3", fig3),
    ("fig4", fig4),
    ("fig5", fig5),
    ("fig7", fig7),
    ("fig8", fig8),
    ("fig9", fig9),
    ("esamples", e_samples),
    ("elptime", e_lp_time),
    ("edissem", e_dissemination),
    ("naive1", naive1_vs_naive_k),
    ("ablation", ablation_fill),
    ("efailures", e_failures),
    ("fault_tolerance", fault_tolerance),
    ("dfault", dfault),
    ("eloss", e_loss),
    ("esensitivity", e_sensitivity),
    ("esubset", e_subset),
    ("obs", e_obs),
    ("cont", cont),
    ("scale", scale),
];

/// Looks up one figure runner by its CLI name.
pub fn by_name(name: &str) -> Option<FigureFn> {
    REGISTRY.iter().find(|&&(n, _)| n == name).map(|&(_, f)| f)
}

/// Every figure in paper order, computed across the worker pool (each
/// figure is independent; results come back in registry order).
pub fn all(fast: bool) -> Vec<FigureResult> {
    prospector_par::par_map(REGISTRY, |_, &(_, f)| f(fast))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_avg(points: &[CurvePoint], series: &str) -> f64 {
        let ys: Vec<f64> = points.iter().filter(|p| p.series == series).map(|p| p.y).collect();
        assert!(!ys.is_empty(), "missing series {series}");
        ys.iter().sum::<f64>() / ys.len() as f64
    }

    #[test]
    fn cont_fast_shape() {
        let f = cont(true);
        // The quiet-network regression floor: steady-state delta traffic
        // under 10% of from-scratch collection (CI re-checks this against
        // the committed BENCH_cont.json).
        let quiet_ratio = f
            .points
            .iter()
            .find(|p| p.series == "ratio" && p.x == 0.0)
            .expect("quiet ratio point")
            .y;
        assert!(quiet_ratio < 0.10, "quiet-drift ratio must stay under 10%: {quiet_ratio}");
        // More drift can only cost more messages, and from-scratch always
        // outspends the delta protocol.
        let ratios: Vec<f64> =
            f.points.iter().filter(|p| p.series == "ratio").map(|p| p.y).collect();
        assert!(ratios.windows(2).all(|w| w[0] <= w[1]), "ratio monotone in drift: {ratios:?}");
        assert!(ratios.iter().all(|&r| r < 1.0), "delta never outspends from-scratch: {ratios:?}");
    }

    #[test]
    fn fig3_fast_shape() {
        let f = fig3(true);
        // Approximate planners must dominate naive-k: higher accuracy at
        // far lower cost. Compare energy needed for the best accuracy.
        let naive_full_cost =
            f.points.iter().filter(|p| p.series == "naive-k").map(|p| p.x).fold(0.0f64, f64::max);
        let lp_costs: Vec<&CurvePoint> = f.points.iter().filter(|p| p.series == "lp+lf").collect();
        let best_lp = lp_costs.iter().max_by(|a, b| a.y.total_cmp(&b.y)).unwrap();
        assert!(
            best_lp.x < naive_full_cost,
            "lp+lf should reach its best accuracy below naive-k's full cost"
        );
        assert!(best_lp.y > 70.0, "lp+lf should reach high accuracy: {}", best_lp.y);
        // Oracle is the cheapest at 100%.
        let oracle_full = f
            .points
            .iter()
            .filter(|p| p.series == "oracle" && p.y >= 99.0)
            .map(|p| p.x)
            .fold(f64::INFINITY, f64::min);
        assert!(oracle_full < naive_full_cost);
    }

    #[test]
    fn fig5_fast_lf_wins_under_contention() {
        let f = fig5(true);
        let lf = series_avg(&f.points, "lp+lf");
        let nolf = series_avg(&f.points, "lp-lf");
        assert!(
            lf + 12.0 >= nolf,
            "LP+LF ({lf}) should not lose badly to LP−LF ({nolf}) under contention"
        );
    }

    #[test]
    fn fig8_fast_exactness_and_bounds() {
        let f = fig8(true);
        for t in 1..=3 {
            let p1 = f.points.iter().find(|p| p.series == "phase-1" && p.x == t as f64).unwrap();
            let p2 = f.points.iter().find(|p| p.series == "phase-2" && p.x == t as f64).unwrap();
            assert!(p1.y > 0.0);
            assert!(p2.y >= 0.0);
        }
        // Later trials (bigger phase-1 budget) spend more in phase 1.
        let p1_first = f.points.iter().find(|p| p.series == "phase-1").unwrap().y;
        let p1_last = f.points.iter().rfind(|p| p.series == "phase-1").unwrap().y;
        assert!(p1_last >= p1_first - 1e-9);
    }

    #[test]
    fn fault_tolerance_fast_shape() {
        let f = fault_tolerance(true);
        let at = |series: &str, x: f64| {
            f.points
                .iter()
                .find(|p| p.series == series && p.x == x)
                .unwrap_or_else(|| panic!("missing {series} at {x}"))
                .y
        };
        // No faults: nothing repaired, no repair energy.
        assert_eq!(at("repaired-epochs", 0.0), 0.0);
        assert_eq!(at("repair-energy", 0.0), 0.0);
        // At the top rate the machinery actually fired and was charged.
        assert!(at("repaired-epochs", 0.25) > 0.0);
        assert!(at("repair-energy", 0.25) > 0.0);
        // Graceful decay: every rate keeps usable accuracy over survivors.
        for &rate in &[0.0, 0.1, 0.25] {
            let acc = at("query-accuracy", rate);
            assert!(acc > 40.0, "accuracy collapsed at death rate {rate}: {acc}");
            // The constant transient-loss floor keeps the per-hop ARQ
            // busy, so retransmissions are metered at every death rate.
            assert!(at("retransmit-energy", rate) > 0.0, "no ARQ work at rate {rate}");
        }
    }

    #[test]
    fn dfault_fast_shape() {
        let f = dfault(true);
        let at = |series: &str, x: f64| {
            f.points
                .iter()
                .find(|p| p.series == series && p.x == x)
                .unwrap_or_else(|| panic!("missing {series} at {x}"))
                .y
        };
        // With no faulty sensors, the gate is observation-only: the gated
        // and ungated runs are the same run, bit for bit.
        for kind in ["stuck_at", "drift", "spike", "noise"] {
            let gated = at(&format!("{kind}-gated"), 0.0);
            let ungated = at(&format!("{kind}-ungated"), 0.0);
            assert_eq!(gated.to_bits(), ungated.to_bits(), "{kind}: gate changed a clean run");
        }
        // The headline: at 10% stuck-at-max sensors, gating recovers a
        // measured margin of the lost accuracy.
        let gated = at("stuck_at-gated", 0.1);
        let ungated = at("stuck_at-ungated", 0.1);
        assert!(
            gated > ungated + 5.0,
            "gating must beat ungated at 10% stuck-at: gated {gated:.1}%, ungated {ungated:.1}%"
        );
        // Gating never hurts, at any fraction, for any fault kind.
        for p in &f.points {
            if let Some(kind) = p.series.strip_suffix("-gated") {
                let ungated = at(&format!("{kind}-ungated"), p.x);
                assert!(
                    p.y >= ungated - 1e-9,
                    "gating hurt {kind} at {}: gated {:.1}%, ungated {ungated:.1}%",
                    p.x,
                    p.y
                );
            }
        }
    }

    #[test]
    fn e_loss_fast_shape() {
        let f = e_loss(true);
        let at = |series: &str, x: f64| {
            f.points
                .iter()
                .find(|p| p.series == series && p.x == x)
                .unwrap_or_else(|| panic!("missing {series} at {x}"))
                .y
        };
        // Zero loss: the retry budget is irrelevant — identical plans,
        // bit-identical accuracy and energy (the zero-loss ≡ reliable
        // invariant at figure scale).
        assert_eq!(at("accuracy-r0", 0.0).to_bits(), at("accuracy-r3", 0.0).to_bits());
        assert_eq!(at("energy-r0", 0.0).to_bits(), at("energy-r3", 0.0).to_bits());
        // At 20% per-hop loss, retries buy real accuracy.
        assert!(
            at("accuracy-r3", 0.2) > at("accuracy-r0", 0.2),
            "retries did not help: r3 {} vs r0 {}",
            at("accuracy-r3", 0.2),
            at("accuracy-r0", 0.2)
        );
        // Loss always hurts relative to the same budget's loss-free run.
        for r in [0i32, 1, 3] {
            let s = format!("accuracy-r{r}");
            assert!(at(&s, 0.2) < at(&s, 0.0) + 1e-9, "loss should not raise accuracy ({s})");
        }
    }

    #[test]
    fn obs_fast_covers_all_scenarios_and_phases() {
        use prospector_testutil::golden;
        let f = e_obs(true);
        for &name in golden::SCENARIOS {
            // Every scenario meters collection work in some epoch.
            let collection = format!("{name}:collection");
            assert!(
                f.points.iter().any(|p| p.series == collection && p.y > 0.0),
                "no collection energy for {name}"
            );
        }
        // Only the lossy scenario pays retransmission energy.
        assert!(f.points.iter().any(|p| p.series == "loss_arq:retransmit" && p.y > 0.0));
        assert!(!f.points.iter().any(|p| p.series == "clean:retransmit"));
        // The death scenario pays repair energy; the clean one never does.
        assert!(f.points.iter().any(|p| p.series == "death_repair:repair" && p.y > 0.0));
        assert!(!f.points.iter().any(|p| p.series == "clean:repair"));
    }

    #[test]
    fn table1_has_mica2_constants() {
        let t = table1();
        assert!(t.points.iter().any(|p| p.series.contains("per-message")));
        assert_eq!(t.points.len(), 6);
    }

    #[test]
    fn naive1_curve_dominates() {
        let f = naive1_vs_naive_k(true);
        // At every k, NAIVE-1 costs more than NAIVE-k under MICA2 costs.
        for kp in [1.0, 4.0, 8.0] {
            let n1 = f.points.iter().find(|p| p.series == "naive-1" && p.x == kp).unwrap().y;
            let nk = f.points.iter().find(|p| p.series == "naive-k" && p.x == kp).unwrap().y;
            assert!(n1 > nk, "k={kp}: naive-1 {n1} <= naive-k {nk}");
        }
    }
}
