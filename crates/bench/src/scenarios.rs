//! Shared experiment setups for the figure harnesses.

use prospector_data::intel::IntelConfig as IntelCfg;
use prospector_data::{SampleSet, ValueSource};
use prospector_net::{Network, NetworkBuilder, Position, ZoneLayout};

pub use prospector_data::intel::IntelConfig;

/// A fully assembled experiment scenario: network, a sample window built
/// from warm-up epochs, and fresh evaluation epochs.
pub struct Scenario<S> {
    pub network: Network,
    pub source: S,
    pub samples: SampleSet,
    /// Value vectors for the evaluation epochs (after the sample window).
    pub eval_epochs: Vec<Vec<f64>>,
    pub k: usize,
}

/// Builds the sample window from `num_samples` warm-up epochs and captures
/// `num_eval` subsequent epochs for evaluation.
pub fn warm_up<S: ValueSource>(
    mut source: S,
    n: usize,
    k: usize,
    num_samples: usize,
    num_eval: usize,
) -> (S, SampleSet, Vec<Vec<f64>>) {
    let mut samples = SampleSet::new(n, k, num_samples.max(1));
    for epoch in 0..num_samples as u64 {
        samples.push(source.values(epoch));
    }
    let eval: Vec<Vec<f64>> =
        (0..num_eval as u64).map(|i| source.values(num_samples as u64 + i)).collect();
    (source, samples, eval)
}

/// Figure 3 / Figure 4 setting: random placement, independent Gaussians.
pub struct GaussianScenario {
    pub n: usize,
    pub k: usize,
    pub num_samples: usize,
    pub num_eval: usize,
    pub mean_range: std::ops::Range<f64>,
    pub std_range: std::ops::Range<f64>,
    pub seed: u64,
}

impl GaussianScenario {
    /// Paper-scale Figure 3 parameters (`fast` shrinks everything for
    /// smoke tests).
    pub fn fig3(fast: bool) -> Self {
        if fast {
            GaussianScenario {
                n: 40,
                k: 8,
                num_samples: 8,
                num_eval: 6,
                mean_range: 40.0..60.0,
                std_range: 1.0..5.0,
                seed: 31,
            }
        } else {
            GaussianScenario {
                n: 120,
                k: 25,
                num_samples: 20,
                num_eval: 12,
                mean_range: 40.0..60.0,
                std_range: 2.0..8.0,
                seed: 31,
            }
        }
    }

    pub fn build(&self) -> Scenario<prospector_data::IndependentGaussian> {
        // Constant density: side ∝ √n with a fixed radio range gives every
        // node ≈ 9.6 expected neighbors regardless of n, and a tree depth
        // growing with √n.
        let side = 40.0 * (self.n as f64).sqrt();
        let network = NetworkBuilder::new(self.n, side, side, 70.0)
            .seed(self.seed)
            .build()
            .expect("connected placement");
        let source = prospector_data::IndependentGaussian::random(
            self.n,
            self.mean_range.clone(),
            self.std_range.clone(),
            self.seed,
        );
        let (source, samples, eval_epochs) =
            warm_up(source, self.n, self.k, self.num_samples, self.num_eval);
        Scenario { network, source, samples, eval_epochs, k: self.k }
    }
}

/// Figures 5–7 setting: contention zones around the perimeter.
pub struct ZoneScenario {
    pub zones: usize,
    pub k: usize,
    pub background: usize,
    pub num_samples: usize,
    pub num_eval: usize,
    pub seed: u64,
}

impl ZoneScenario {
    pub fn fig5(fast: bool) -> Self {
        if fast {
            ZoneScenario { zones: 6, k: 4, background: 40, num_samples: 8, num_eval: 6, seed: 17 }
        } else {
            ZoneScenario {
                zones: 6,
                k: 10,
                background: 140,
                num_samples: 40,
                num_eval: 10,
                seed: 17,
            }
        }
    }

    pub fn with_zones(mut self, zones: usize) -> Self {
        self.zones = zones;
        self
    }

    pub fn build(&self) -> Scenario<prospector_data::ContentionZones> {
        // Zones sit on the perimeter with the root in the center; the
        // radio range is the shortest (from a ladder) that still connects,
        // so reaching a zone takes several hops — the regime where local
        // filtering pays (values saved × hops × c_b).
        let side = 30.0 * ((self.background + self.zones * 2 * self.k) as f64).sqrt();
        let network = (0..10)
            .map(|step| side / 11.0 + step as f64 * side / 20.0)
            .find_map(|range| {
                NetworkBuilder::new(self.background, side, side, range)
                    .seed(self.seed)
                    .zones(ZoneLayout {
                        zones: self.zones,
                        nodes_per_zone: 2 * self.k,
                        zone_radius: side / 14.0,
                    })
                    .build()
                    .ok()
            })
            .expect("connected zoned placement");
        let n = network.len();
        let source = prospector_data::ContentionZones::paper_setup(
            network.zone.clone(),
            self.k,
            100.0,
            self.seed,
        );
        let (source, samples, eval_epochs) =
            warm_up(source, n, self.k, self.num_samples, self.num_eval);
        Scenario { network, source, samples, eval_epochs, k: self.k }
    }
}

/// Figure 9 setting: the Intel-lab-like deployment. 54 motes on a lab
/// footprint, radio range shortened until the tree is properly
/// hierarchical (the paper shortens it to the minimum that keeps the tree
/// connected).
pub struct IntelScenario {
    pub n: usize,
    pub k: usize,
    pub num_samples: usize,
    pub num_eval: usize,
    pub seed: u64,
}

impl IntelScenario {
    pub fn fig9(fast: bool) -> Self {
        if fast {
            IntelScenario { n: 30, k: 3, num_samples: 10, num_eval: 6, seed: 77 }
        } else {
            IntelScenario { n: 54, k: 5, num_samples: 30, num_eval: 20, seed: 77 }
        }
    }

    pub fn build(&self) -> Scenario<prospector_data::IntelLabLike> {
        // Lab footprint ≈ 40 m × 30 m; shrink the radio range to the
        // smallest of a candidate ladder that still connects, forcing a
        // multi-hop hierarchy as the paper does (6 m there).
        let network = (0..)
            .map(|step| 6.0 + step as f64 * 2.0)
            .take(12)
            .find_map(|range| {
                NetworkBuilder::new(self.n, 40.0, 30.0, range).seed(self.seed).build().ok()
            })
            .expect("lab network connects at some radio range");
        let positions: Vec<Position> = network.positions.clone();
        let source = prospector_data::IntelLabLike::new(positions, IntelCfg::default(), self.seed);
        let (source, samples, eval_epochs) =
            warm_up(source, self.n, self.k, self.num_samples, self.num_eval);
        Scenario { network, source, samples, eval_epochs, k: self.k }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_scenario_builds() {
        let s = GaussianScenario::fig3(true).build();
        assert_eq!(s.network.len(), 40);
        assert_eq!(s.samples.len(), 8);
        assert_eq!(s.eval_epochs.len(), 6);
    }

    #[test]
    fn zone_scenario_has_zone_membership() {
        let s = ZoneScenario::fig5(true).build();
        let zone_nodes = s.network.zone.iter().filter(|z| z.is_some()).count();
        assert_eq!(zone_nodes, 6 * 2 * s.k);
    }

    #[test]
    fn intel_scenario_is_hierarchical() {
        let s = IntelScenario::fig9(true).build();
        assert!(s.network.topology.height() >= 3, "radio range must force multi-hop");
    }

    #[test]
    fn warm_up_counts() {
        let src = prospector_data::IndependentGaussian::random(10, 0.0..1.0, 0.1..0.2, 1);
        let (_, samples, eval) = warm_up(src, 10, 2, 5, 3);
        assert_eq!(samples.len(), 5);
        assert_eq!(eval.len(), 3);
    }
}
