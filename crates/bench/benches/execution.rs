//! Criterion benchmarks for plan execution: approximate collection,
//! proof-carrying collection, the NAIVE-1 protocol and the exact
//! two-phase algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use prospector_bench::scenarios::GaussianScenario;
use prospector_core::{run_plan, run_proof_plan, Plan};
use prospector_net::EnergyModel;
use prospector_sim::{execute_plan, run_exact, run_naive1};
use std::hint::black_box;

fn bench_execution(c: &mut Criterion) {
    let scenario = GaussianScenario::fig3(true).build();
    let em = EnergyModel::mica2();
    let topo = &scenario.network.topology;
    let k = scenario.k;
    let values = &scenario.eval_epochs[0];

    let naive = Plan::naive_k(topo, k);
    let mut proof = Plan::naive_k(topo, k);
    proof.proof_carrying = true;

    let mut group = c.benchmark_group("execution");
    group.sample_size(20);

    group.bench_function("run_plan_naive_k", |b| {
        b.iter(|| black_box(run_plan(&naive, topo, values, k)))
    });
    group.bench_function("run_proof_plan", |b| {
        b.iter(|| black_box(run_proof_plan(&proof, topo, values, k)))
    });
    group.bench_function("execute_plan_metered", |b| {
        b.iter(|| black_box(execute_plan(&naive, topo, &em, values, k, None)))
    });
    group.bench_function("naive1_protocol", |b| {
        b.iter(|| black_box(run_naive1(topo, &em, values, k)))
    });

    let mut minimal_proof = Plan::empty(topo.len());
    minimal_proof.proof_carrying = true;
    for e in topo.edges() {
        minimal_proof.set_bandwidth(e, 1);
    }
    group.bench_function("exact_two_phase", |b| {
        b.iter(|| black_box(run_exact(&minimal_proof, topo, &em, values, k, None)))
    });
    group.finish();
}

criterion_group!(benches, bench_execution);
criterion_main!(benches);
