//! Criterion benchmarks for plan construction: one entry per Prospector
//! planner on a fixed fast scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use prospector_bench::scenarios::GaussianScenario;
use prospector_core::{
    PlanContext, Planner, ProspectorGreedy, ProspectorLpLf, ProspectorLpNoLf, ProspectorProof,
};
use prospector_net::EnergyModel;
use std::hint::black_box;

fn bench_planners(c: &mut Criterion) {
    let scenario = GaussianScenario::fig3(true).build();
    let em = EnergyModel::mica2();
    let topo = &scenario.network.topology;
    let budget = 60.0;

    let mut group = c.benchmark_group("planners");
    group.sample_size(10);

    group.bench_function("greedy", |b| {
        b.iter(|| {
            let ctx = PlanContext::new(topo, &em, &scenario.samples, budget);
            black_box(ProspectorGreedy.plan(&ctx).unwrap())
        })
    });
    group.bench_function("lp_no_lf", |b| {
        b.iter(|| {
            let ctx = PlanContext::new(topo, &em, &scenario.samples, budget);
            black_box(ProspectorLpNoLf.plan(&ctx).unwrap())
        })
    });
    group.bench_function("lp_lf", |b| {
        b.iter(|| {
            let ctx = PlanContext::new(topo, &em, &scenario.samples, budget);
            black_box(ProspectorLpLf.plan(&ctx).unwrap())
        })
    });

    // Proof LP on a smaller instance (its program is the biggest).
    let small = GaussianScenario {
        n: 16,
        k: 4,
        num_samples: 4,
        num_eval: 2,
        mean_range: 40.0..60.0,
        std_range: 1.0..4.0,
        seed: 5,
    }
    .build();
    let stopo = &small.network.topology;
    let probe = PlanContext::new(stopo, &em, &small.samples, 1.0);
    let proof_budget = probe.min_proof_cost() * 1.3;
    group.bench_function("proof_lp", |b| {
        b.iter(|| {
            let ctx = PlanContext::new(stopo, &em, &small.samples, proof_budget);
            black_box(ProspectorProof::default().plan(&ctx).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_planners);
criterion_main!(benches);
