//! Criterion wrappers that time the (fast-mode) figure harnesses
//! end-to-end: one benchmark per paper artifact, so `cargo bench`
//! exercises the full reproduction pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use prospector_bench::figures;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_fast");
    group.sample_size(10);
    group.bench_function("table1", |b| b.iter(|| black_box(figures::table1())));
    group.bench_function("fig3", |b| b.iter(|| black_box(figures::fig3(true))));
    group.bench_function("fig4", |b| b.iter(|| black_box(figures::fig4(true))));
    group.bench_function("fig5", |b| b.iter(|| black_box(figures::fig5(true))));
    group.bench_function("fig7", |b| b.iter(|| black_box(figures::fig7(true))));
    group.bench_function("fig8", |b| b.iter(|| black_box(figures::fig8(true))));
    group.bench_function("fig9", |b| b.iter(|| black_box(figures::fig9(true))));
    group.bench_function("esamples", |b| b.iter(|| black_box(figures::e_samples(true))));
    group.bench_function("edissem", |b| b.iter(|| black_box(figures::e_dissemination(true))));
    group.bench_function("naive1", |b| b.iter(|| black_box(figures::naive1_vs_naive_k(true))));
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
