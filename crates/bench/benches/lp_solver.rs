//! Criterion micro-benchmarks for the in-tree simplex solver on
//! Prospector-shaped LPs (dense inverse vs eta file).

use criterion::{criterion_group, criterion_main, Criterion};
use prospector_lp::{solve_with_options, BasisChoice, Cmp, Problem, Sense, SolverOptions};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

/// Builds an LP+LF-shaped instance: x-vars per (sample, top-k slot),
/// bandwidth vars per edge, sparse coupling rows and one budget row.
fn lp_lf_shaped(n_edges: usize, samples: usize, k: usize, seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Problem::new(Sense::Maximize);
    let w: Vec<_> = (0..n_edges).map(|_| p.add_var(0.0, k as f64, 0.0)).collect();
    let y: Vec<_> = (0..n_edges).map(|_| p.add_var(0.0, 1.0, 0.0)).collect();
    for j in 0..samples {
        let _ = j;
        let xs: Vec<_> = (0..k).map(|_| p.add_var(0.0, 1.0, 1.0)).collect();
        for &x in &xs {
            let e = rng.random_range(0..n_edges);
            p.add_constraint([(x, 1.0), (y[e], -1.0)], Cmp::Le, 0.0);
        }
        for &we in w.iter().take(n_edges.min(3 * k)) {
            let members: Vec<_> = xs
                .iter()
                .filter(|_| rng.random_bool(0.3))
                .map(|&x| (x, 1.0))
                .chain(std::iter::once((we, -1.0)))
                .collect();
            if members.len() > 1 {
                p.add_constraint(members, Cmp::Le, 0.0);
            }
        }
    }
    let budget: Vec<_> = w.iter().map(|&v| (v, 0.2)).chain(y.iter().map(|&v| (v, 1.2))).collect();
    p.add_constraint(budget, Cmp::Le, 0.25 * n_edges as f64);
    p
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_solver");
    group.sample_size(10);

    let small = lp_lf_shaped(40, 8, 8, 1);
    group.bench_function("dense_small", |b| {
        let opt = SolverOptions { basis: BasisChoice::Dense, ..Default::default() };
        b.iter(|| black_box(solve_with_options(&small, &opt).unwrap()))
    });
    group.bench_function("eta_small", |b| {
        let opt = SolverOptions { basis: BasisChoice::Eta, ..Default::default() };
        b.iter(|| black_box(solve_with_options(&small, &opt).unwrap()))
    });

    let medium = lp_lf_shaped(120, 15, 20, 2);
    group.bench_function("dense_medium", |b| {
        let opt = SolverOptions { basis: BasisChoice::Dense, ..Default::default() };
        b.iter(|| black_box(solve_with_options(&medium, &opt).unwrap()))
    });
    group.bench_function("eta_medium", |b| {
        let opt = SolverOptions { basis: BasisChoice::Eta, ..Default::default() };
        b.iter(|| black_box(solve_with_options(&medium, &opt).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
