//! Serial vs parallel evaluation: `expected_misses` across thread counts
//! and the fast Figure-3 harness end-to-end.
//!
//! Besides the criterion timings, a plain `cargo bench --bench parallel`
//! run re-times the same workloads with `Instant`, checks that every
//! thread count returns a bit-identical result, and writes the numbers to
//! `BENCH_parallel.json` at the repository root. Speedup only shows on
//! multicore hosts — the snapshot records `host_parallelism` so a 1-CPU
//! CI number isn't mistaken for a regression.

use criterion::{criterion_group, Criterion};
use prospector_bench::{figures, scenarios::GaussianScenario};
use prospector_core::{evaluate, Plan, PlanContext, Planner, ProspectorLpLf};
use prospector_data::{IndependentGaussian, SampleSet, ValueSource};
use prospector_net::{EnergyModel, NodeId, Topology};
use std::hint::black_box;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_parallel(c: &mut Criterion) {
    let scenario = GaussianScenario::fig3(false).build();
    let topo = &scenario.network.topology;
    let plan = Plan::naive_k(topo, scenario.k);

    let mut group = c.benchmark_group("expected_misses");
    for threads in THREAD_COUNTS {
        group.bench_function(&format!("{threads}-threads"), |b| {
            b.iter(|| {
                black_box(evaluate::expected_misses_with(&plan, topo, &scenario.samples, threads))
            })
        });
    }
    group.finish();

    c.bench_function("fig3-fast", |b| b.iter(|| black_box(figures::fig3(true))));
}

criterion_group!(benches, bench_parallel);

/// Times `f` over `reps` passes (after one warm-up) and returns the mean
/// seconds per pass plus the last result.
fn time_mean<R>(reps: u32, mut f: impl FnMut() -> R) -> (f64, R) {
    black_box(f());
    let start = Instant::now();
    let mut last = f();
    for _ in 1..reps {
        last = f();
    }
    (start.elapsed().as_secs_f64() / reps as f64, last)
}

/// One large-n row: complete ternary tree + Gaussian window, timing the
/// LP+LF planner and the claiming-kernel evaluator at 1 and 8 threads
/// (bit-identity asserted). Mirrors the `scale` figure's setup.
fn scale_row(n: usize) -> String {
    let k = 10;
    let num_samples = 10;
    let mut parent: Vec<Option<NodeId>> = vec![None];
    parent.extend((1..n).map(|i| Some(NodeId::from_index((i - 1) / 3))));
    let topo = Topology::from_parents(NodeId::from_index(0), parent).expect("ternary tree");
    let mut source = IndependentGaussian::random(n, 40.0..60.0, 2.0..8.0, 9000 + n as u64);
    let mut samples = SampleSet::new(n, k, num_samples);
    for epoch in 0..num_samples as u64 {
        samples.push(source.values(epoch));
    }
    let em = EnergyModel::mica2();
    let budget =
        0.25 * PlanContext::new(&topo, &em, &samples, 0.0).plan_cost(&Plan::naive_k(&topo, k));
    let ctx = PlanContext::new(&topo, &em, &samples, budget);
    let (plan_s, plan) = time_mean(3, || ProspectorLpLf.plan(&ctx).expect("lp+lf at scale"));
    let (eval1_s, m1) = time_mean(5, || evaluate::expected_misses_with(&plan, &topo, &samples, 1));
    let (eval8_s, m8) = time_mean(5, || evaluate::expected_misses_with(&plan, &topo, &samples, 8));
    assert_eq!(m1.to_bits(), m8.to_bits(), "scale n={n}: 1 vs 8 threads diverged");
    let dead: Vec<NodeId> = (1..n).filter(|i| i % 50 == 7).map(NodeId::from_index).collect();
    let (repair_s, repaired) = time_mean(3, || topo.repair(&dead).expect("repair at scale"));
    assert_eq!(repaired.len(), topo.len());
    format!(
        "    {{ \"n\": {n}, \"lp_lf_plan_s\": {plan_s:.6}, \"expected_misses_1t_s\": \
         {eval1_s:.6}, \"expected_misses_8t_s\": {eval8_s:.6}, \"repair_s\": {repair_s:.6}, \
         \"bit_identical\": true }}"
    )
}

fn write_snapshot() {
    let scenario = GaussianScenario::fig3(false).build();
    let topo = &scenario.network.topology;
    let plan = Plan::naive_k(topo, scenario.k);

    let (serial_s, baseline) =
        time_mean(5, || evaluate::expected_misses_with(&plan, topo, &scenario.samples, 1));
    let mut rows = Vec::new();
    for threads in THREAD_COUNTS {
        let (mean_s, result) = time_mean(5, || {
            evaluate::expected_misses_with(&plan, topo, &scenario.samples, threads)
        });
        assert_eq!(
            result.to_bits(),
            baseline.to_bits(),
            "expected_misses must be bit-identical at {threads} threads"
        );
        rows.push(format!(
            "    {{ \"threads\": {threads}, \"mean_s\": {mean_s:.6}, \
             \"speedup_vs_serial\": {:.3}, \"bit_identical\": true }}",
            serial_s / mean_s
        ));
    }

    let scale_rows: Vec<String> = [1_000usize, 10_000, 50_000].map(scale_row).to_vec();

    let (fig3_s, _) = time_mean(2, || figures::fig3(true));
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"parallel\",\n  \"workload\": \"expected_misses on the paper-scale \
         fig3 scenario (n=120, k=25, 20 samples), naive-k plan\",\n  \
         \"host_parallelism\": {host},\n  \
         \"note\": \"speedup is bounded by host_parallelism; on a 1-CPU host every thread \
         count degrades to serial throughput\",\n  \
         \"expected_misses\": [\n{}\n  ],\n  \
         \"scale\": [\n{}\n  ],\n  \"fig3_fast_wall_s\": {fig3_s:.6}\n}}\n",
        rows.join(",\n"),
        scale_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, json).expect("write BENCH_parallel.json");
    println!("[wrote {path}]");
}

fn main() {
    benches();
    // `cargo test --benches` passes `--test`; only full bench runs
    // refresh the committed snapshot.
    if !std::env::args().any(|a| a == "--test") {
        write_snapshot();
    }
}
