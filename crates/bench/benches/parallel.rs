//! Serial vs parallel evaluation: `expected_misses` across thread counts
//! and the fast Figure-3 harness end-to-end.
//!
//! Besides the criterion timings, a plain `cargo bench --bench parallel`
//! run re-times the same workloads with `Instant`, checks that every
//! thread count returns a bit-identical result, and writes the numbers to
//! `BENCH_parallel.json` at the repository root. Speedup only shows on
//! multicore hosts — the snapshot records `host_parallelism` so a 1-CPU
//! CI number isn't mistaken for a regression.

use criterion::{criterion_group, Criterion};
use prospector_bench::{figures, scenarios::GaussianScenario};
use prospector_core::{evaluate, Plan};
use std::hint::black_box;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_parallel(c: &mut Criterion) {
    let scenario = GaussianScenario::fig3(false).build();
    let topo = &scenario.network.topology;
    let plan = Plan::naive_k(topo, scenario.k);

    let mut group = c.benchmark_group("expected_misses");
    for threads in THREAD_COUNTS {
        group.bench_function(&format!("{threads}-threads"), |b| {
            b.iter(|| {
                black_box(evaluate::expected_misses_with(&plan, topo, &scenario.samples, threads))
            })
        });
    }
    group.finish();

    c.bench_function("fig3-fast", |b| b.iter(|| black_box(figures::fig3(true))));
}

criterion_group!(benches, bench_parallel);

/// Times `f` over `reps` passes (after one warm-up) and returns the mean
/// seconds per pass plus the last result.
fn time_mean<R>(reps: u32, mut f: impl FnMut() -> R) -> (f64, R) {
    black_box(f());
    let start = Instant::now();
    let mut last = f();
    for _ in 1..reps {
        last = f();
    }
    (start.elapsed().as_secs_f64() / reps as f64, last)
}

fn write_snapshot() {
    let scenario = GaussianScenario::fig3(false).build();
    let topo = &scenario.network.topology;
    let plan = Plan::naive_k(topo, scenario.k);

    let (serial_s, baseline) =
        time_mean(5, || evaluate::expected_misses_with(&plan, topo, &scenario.samples, 1));
    let mut rows = Vec::new();
    for threads in THREAD_COUNTS {
        let (mean_s, result) = time_mean(5, || {
            evaluate::expected_misses_with(&plan, topo, &scenario.samples, threads)
        });
        assert_eq!(
            result.to_bits(),
            baseline.to_bits(),
            "expected_misses must be bit-identical at {threads} threads"
        );
        rows.push(format!(
            "    {{ \"threads\": {threads}, \"mean_s\": {mean_s:.6}, \
             \"speedup_vs_serial\": {:.3}, \"bit_identical\": true }}",
            serial_s / mean_s
        ));
    }

    let (fig3_s, _) = time_mean(2, || figures::fig3(true));
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"parallel\",\n  \"workload\": \"expected_misses on the paper-scale \
         fig3 scenario (n=120, k=25, 20 samples), naive-k plan\",\n  \
         \"host_parallelism\": {host},\n  \
         \"note\": \"speedup is bounded by host_parallelism; on a 1-CPU host every thread \
         count degrades to serial throughput\",\n  \
         \"expected_misses\": [\n{}\n  ],\n  \"fig3_fast_wall_s\": {fig3_s:.6}\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, json).expect("write BENCH_parallel.json");
    println!("[wrote {path}]");
}

fn main() {
    benches();
    // `cargo test --benches` passes `--test`; only full bench runs
    // refresh the committed snapshot.
    if !std::env::args().any(|a| a == "--test") {
        write_snapshot();
    }
}
