//! Criterion benchmarks for the extensions: subset-query planning,
//! cluster-query planning, proof-fill strategies and the adaptive loop.

use criterion::{criterion_group, criterion_main, Criterion};
use prospector_bench::scenarios::GaussianScenario;
use prospector_core::cluster::{plan_cluster_query, Clustering};
use prospector_core::proof_lp::{FillStrategy, ProspectorProof};
use prospector_core::subset::{plan_subset_query, subset_context};
use prospector_core::{budget_shadow_price, PlanContext, Planner};
use prospector_data::subset::{AnswerSpec, SubsetSampleSet};
use prospector_data::SampleSet;
use prospector_net::EnergyModel;
use std::hint::black_box;

fn bench_extensions(c: &mut Criterion) {
    let scenario = GaussianScenario::fig3(true).build();
    let em = EnergyModel::mica2();
    let topo = &scenario.network.topology;
    let n = topo.len();

    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);

    // Subset-query planning (selection).
    let mut window = SubsetSampleSet::new(n, AnswerSpec::AboveThreshold(55.0), 8);
    for j in 0..scenario.samples.len() {
        window.push(scenario.samples.values(j).to_vec());
    }
    let mut placeholder = SampleSet::new(n, 1, 1);
    placeholder.push(vec![0.0; n]);
    group.bench_function("subset_selection_plan", |b| {
        b.iter(|| {
            let ctx = subset_context(topo, &em, &placeholder, 25.0);
            black_box(plan_subset_query(&ctx, &window).unwrap())
        })
    });

    // Cluster-query planning: 8 clusters over the non-root nodes.
    let assignment: Vec<Option<usize>> =
        (0..n).map(|i| if i == 0 { None } else { Some((i - 1) % 8) }).collect();
    let clustering = Clustering::new(assignment);
    group.bench_function("cluster_topk_plan", |b| {
        b.iter(|| {
            let ctx = PlanContext::new(topo, &em, &scenario.samples, 40.0);
            black_box(plan_cluster_query(&ctx, &clustering, &scenario.samples, 2).unwrap())
        })
    });

    // Budget shadow price (one LP+LF solve without rounding/repair).
    group.bench_function("budget_shadow_price", |b| {
        b.iter(|| {
            let ctx = PlanContext::new(topo, &em, &scenario.samples, 30.0);
            black_box(budget_shadow_price(&ctx).unwrap())
        })
    });

    // Proof planning under each fill strategy (small instance).
    let small = GaussianScenario {
        n: 16,
        k: 4,
        num_samples: 4,
        num_eval: 2,
        mean_range: 40.0..60.0,
        std_range: 1.0..4.0,
        seed: 5,
    }
    .build();
    let stopo = &small.network.topology;
    let budget = PlanContext::new(stopo, &em, &small.samples, 1.0).min_proof_cost() * 1.3;
    for (name, fill) in [
        ("proof_fill_need_aware", FillStrategy::NeedAware),
        ("proof_fill_deficit", FillStrategy::SubtreeDeficit),
        ("proof_fill_none", FillStrategy::None),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let ctx = PlanContext::new(stopo, &em, &small.samples, budget);
                black_box(ProspectorProof { fill }.plan(&ctx).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
