//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of criterion's API its benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `sample_size` / `finish`,
//! `Bencher::iter`, [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical sampling it
//! runs each benchmark a handful of iterations (one when `--test` is
//! passed, as `cargo test --benches` does) and prints the mean wall-clock
//! time — enough to compare orders of magnitude and to smoke-test that the
//! benchmarked code paths run.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Number of timed iterations per benchmark (1 in `--test` mode).
fn iterations() -> u32 {
    if std::env::args().any(|a| a == "--test") {
        1
    } else {
        3
    }
}

/// Drives one benchmark's iterations.
pub struct Bencher {
    iters: u32,
    /// Mean time per iteration, recorded by [`Bencher::iter`].
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this bencher's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up pass.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed() / self.iters;
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters: iterations(), elapsed: Duration::ZERO };
    f(&mut b);
    println!("bench {label:<40} {:>12.3?}/iter", b.elapsed);
}

/// Entry point mirroring criterion's `Criterion` struct.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_string() }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).bench_function("one", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
