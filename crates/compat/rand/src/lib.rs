//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand` 0.10 API that prospector actually
//! uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] extension methods [`RngExt::random_range`] /
//! [`RngExt::random_bool`]. The generator is xoshiro256** (public domain,
//! Blackman & Vigna) seeded through SplitMix64 — the same construction the
//! real crate's small RNGs use — so statistical quality is more than
//! adequate for simulation workloads. Streams are deterministic per seed
//! but are **not** bit-compatible with the real `rand` crate.

/// Core interface: a source of 64 random bits.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface. Only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** generator — the workspace's standard RNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// The generator's full internal state. Offline-shim extension
        /// (the real `rand` crate has no such accessor): checkpointing a
        /// simulation mid-stream needs the exact state so a resumed run
        /// replays the same draws.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`]. The all-zero state is invalid for
        /// xoshiro256** and is remapped to the same fallback state
        /// `seed_from_u64` uses, so the generator can never get stuck.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                StdRng { s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3] }
            } else {
                StdRng { s }
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the small RNG is the same generator here.
    pub type SmallRng = StdRng;
}

/// A type that can be sampled uniformly from a range by an RNG.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts 64 random bits into a uniform f64 in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_float_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    };
}

impl_float_range!(f64);
impl_float_range!(f32);

macro_rules! impl_int_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    };
}

impl_int_range!(u8);
impl_int_range!(u16);
impl_int_range!(u32);
impl_int_range!(u64);
impl_int_range!(usize);
impl_int_range!(i8);
impl_int_range!(i16);
impl_int_range!(i32);
impl_int_range!(i64);
impl_int_range!(isize);

/// Convenience sampling methods, mirroring `rand`'s extension trait.
pub trait RngExt: RngCore {
    /// Uniform draw from `range` (half-open or inclusive, ints or floats).
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        // u ∈ [0, 1): always true for p = 1, never true for p = 0.
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Alias kept so `use rand::Rng` keeps compiling.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1_000_000), b.random_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100)
            .filter(|_| {
                StdRng::seed_from_u64(7).random_range(0u64..1000) == c.random_range(0u64..1000)
            })
            .count();
        assert!(same < 100, "different seeds must differ");
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3.0..7.0);
            assert!((3.0..7.0).contains(&v));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 should appear");
        for _ in 0..1000 {
            let v = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 50_000;
        let hits = (0..trials).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.01, "observed {rate}");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }
}
