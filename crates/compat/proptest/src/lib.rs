//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of proptest's API its tests use: the [`proptest!`]
//! macro, range/`Just`/tuple/`Vec` strategies, `prop_map` / `prop_flat_map`
//! / `boxed`, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberate for an offline test shim:
//!
//! * cases are generated from a deterministic RNG seeded from the test's
//!   module path and name, so runs are reproducible;
//! * there is **no shrinking** — a failing case panics with the generated
//!   arguments left to the assertion message;
//! * `prop_assert*` are plain `assert*` (they panic instead of returning
//!   `Err`).

#[doc(hidden)]
pub use rand as __rand;

/// Test-runner configuration. Only `cases` is honoured.
pub mod test_runner {
    /// Controls how many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; 64 keeps offline CI fast
            // while still exercising the properties broadly.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(move |rng: &mut StdRng| self.generate(rng)))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut StdRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// A `Vec` of strategies generates element-wise.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// FNV-1a hash of a string; seeds each property's RNG from its name.
#[doc(hidden)]
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes an ordinary test running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>
                    ::seed_from_u64(seed);
                for __case in 0..config.cases {
                    $( let $arg = ($strat).generate(&mut rng); )+
                    $body
                }
            }
        )*
    };
}

/// Property assertion; panics on failure (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion; panics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion; panics on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The usual glob import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..9, y in 0.0..1.0f64) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn flat_map_and_boxed_compose() {
        use rand::{rngs::StdRng, SeedableRng};
        let strat = (2usize..=5)
            .prop_flat_map(|n| {
                let elems: Vec<BoxedStrategy<u32>> =
                    (0..n).map(|i| (0..(i + 1) as u32).boxed()).collect();
                (Just(n), elems)
            })
            .prop_map(|(n, elems)| {
                assert_eq!(elems.len(), n);
                elems
            });
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            for (i, &e) in v.iter().enumerate() {
                assert!(e <= i as u32);
            }
        }
    }
}
