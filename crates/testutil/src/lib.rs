//! Shared seeded fixtures for the Prospector test suites.
//!
//! The integration suites (`tests/chaos.rs`, `tests/fault_recovery.rs`,
//! `crates/sim/tests/`) used to each carry their own copy of the seeded
//! topology / experiment-config builders; this crate is the single home
//! for those, plus the golden-trace scenarios byte-diffed by
//! `tests/golden_trace.rs`.

pub mod golden;

use prospector_core::{GatePolicy, Plan, PlanContext, PlanError, Planner};
use prospector_data::SamplePolicy;
use prospector_net::{
    ArqPolicy, Backoff, EnergyMeter, FailureModel, FaultSchedule, Network, NetworkBuilder, NodeId,
    Phase,
};
use prospector_obs::MetricsSnapshot;
use prospector_sim::{EpochReport, ExperimentConfig};

/// A seeded random network of `n` nodes. Density is held constant as `n`
/// grows by scaling the field with `sqrt(n)` (the same construction the
/// chaos and fault-recovery suites used inline).
pub fn network(n: usize, seed: u64) -> Network {
    let side = 40.0 * (n as f64).sqrt();
    NetworkBuilder::new(n, side, side, 70.0).seed(seed).build().expect("seeded placement connects")
}

/// The fault-recovery suite's experiment configuration: loss-free links,
/// periodic sampling, seeded at 9.
pub fn recovery_config(faults: FaultSchedule) -> ExperimentConfig {
    ExperimentConfig {
        k: 4,
        window: 10,
        policy: SamplePolicy::Periodic { warmup: 6, period: 10 },
        budget_mj: 25.0,
        replan_every: 8,
        replan_threshold: 0.1,
        failures: None,
        faults,
        install_retries: 2,
        arq: ArqPolicy::default(),
        min_delivered: 0.0,
        max_retry_budget: 8,
        // Gating stays on in the shared fixtures: on fault-free runs it
        // is observation-only, and the golden traces prove it stays so.
        gate: Some(GatePolicy::default()),
        continuous: None,
        seed: 9,
    }
}

/// The chaos suite's experiment configuration: `p` uniform loss on every
/// link, a `max_retries` ARQ budget with mica2 backoff, escalation
/// enabled, seeded at 87.
pub fn lossy_config(n: usize, p: f64, max_retries: u32, faults: FaultSchedule) -> ExperimentConfig {
    ExperimentConfig {
        k: 3,
        window: 10,
        policy: SamplePolicy::Periodic { warmup: 5, period: 12 },
        budget_mj: 30.0,
        replan_every: 6,
        replan_threshold: 0.1,
        failures: Some(FailureModel::uniform(n, p, 0.0)),
        faults,
        install_retries: 2,
        arq: ArqPolicy { max_retries, backoff: Backoff::mica2() },
        min_delivered: 0.8,
        max_retry_budget: max_retries + 3,
        gate: Some(GatePolicy::default()),
        continuous: None,
        seed: 87,
    }
}

/// True when two meters agree bit-for-bit on total, per-node and
/// per-phase sums over `n` nodes.
pub fn meters_bit_identical(a: &EnergyMeter, b: &EnergyMeter, n: usize) -> bool {
    if a.total().to_bits() != b.total().to_bits() {
        return false;
    }
    for i in 0..n {
        let node = NodeId::from_index(i);
        if a.node_total(node).to_bits() != b.node_total(node).to_bits() {
            return false;
        }
    }
    Phase::ALL.iter().all(|&p| a.phase_total(p).to_bits() == b.phase_total(p).to_bits())
}

/// Asserts [`meters_bit_identical`], with a per-node diagnostic.
pub fn assert_meters_bit_identical(a: &EnergyMeter, b: &EnergyMeter, n: usize) {
    assert_eq!(a.total().to_bits(), b.total().to_bits(), "meter totals differ");
    for node in 0..n {
        let id = NodeId::from_index(node);
        assert_eq!(
            a.node_total(id).to_bits(),
            b.node_total(id).to_bits(),
            "node {node} totals differ"
        );
    }
    for &p in Phase::ALL.iter() {
        assert_eq!(a.phase_total(p).to_bits(), b.phase_total(p).to_bits(), "{} differs", p.name());
    }
}

/// A metrics snapshot with its wall-clock histogram removed. Every field
/// of an epoch report is a pure function of config + seed *except* the
/// `plan_latency_ms` histogram, which measures real elapsed time; this
/// strips it so the rest of the snapshot can be compared exactly.
pub fn scrub_wall_clock(snapshot: &MetricsSnapshot) -> MetricsSnapshot {
    let mut s = snapshot.clone();
    s.histograms.remove("plan_latency_ms");
    s
}

/// Asserts two epoch-report sequences are equivalent: every field equal,
/// floats compared bit-for-bit, metrics snapshots compared after
/// [`scrub_wall_clock`]. This is the resume-equivalence check used by
/// `tests/crash_resume.rs` — a resumed run must produce the same reports
/// as the uninterrupted one, modulo wall clock.
pub fn assert_reports_equivalent(a: &[EpochReport], b: &[EpochReport]) {
    assert_eq!(a.len(), b.len(), "report counts differ");
    for (x, y) in a.iter().zip(b) {
        let e = x.epoch;
        assert_eq!(x.epoch, y.epoch, "epoch numbering diverged at {e}");
        assert_eq!(x.sampled, y.sampled, "epoch {e}: sampled");
        assert_eq!(x.replanned, y.replanned, "epoch {e}: replanned");
        assert_eq!(x.accuracy.to_bits(), y.accuracy.to_bits(), "epoch {e}: accuracy");
        assert_eq!(x.energy_mj.to_bits(), y.energy_mj.to_bits(), "epoch {e}: energy");
        assert_eq!(x.deaths, y.deaths, "epoch {e}: deaths");
        assert_eq!(x.repaired, y.repaired, "epoch {e}: repaired");
        assert_eq!(x.fallback_used, y.fallback_used, "epoch {e}: fallback_used");
        assert_eq!(x.lost_edges, y.lost_edges, "epoch {e}: lost_edges");
        assert_eq!(x.retransmissions, y.retransmissions, "epoch {e}: retransmissions");
        assert_eq!(
            x.delivered_fraction.to_bits(),
            y.delivered_fraction.to_bits(),
            "epoch {e}: delivered_fraction"
        );
        assert_eq!(x.backfilled, y.backfilled, "epoch {e}: backfilled");
        assert_eq!(x.flagged, y.flagged, "epoch {e}: flagged");
        assert_eq!(x.quarantined, y.quarantined, "epoch {e}: quarantined");
        assert_eq!(x.readmitted, y.readmitted, "epoch {e}: readmitted");
        assert_eq!(x.retry_budget, y.retry_budget, "epoch {e}: retry_budget");
        assert_eq!(x.install_undelivered, y.install_undelivered, "epoch {e}: install_undelivered");
        assert_eq!(x.deltas_shipped, y.deltas_shipped, "epoch {e}: deltas_shipped");
        assert_eq!(x.full_refresh, y.full_refresh, "epoch {e}: full_refresh");
        assert_eq!(x.messages, y.messages, "epoch {e}: messages");
        match (&x.metrics, &y.metrics) {
            (Some(m), Some(n)) => assert_eq!(
                scrub_wall_clock(m).to_json(),
                scrub_wall_clock(n).to_json(),
                "epoch {e}: metrics"
            ),
            (None, None) => {}
            _ => panic!("epoch {e}: metrics presence differs"),
        }
    }
}

/// A planner that always fails, for driving fallback chains in tests: the
/// error it returns is deterministic, so its stringified form is safe to
/// pin in golden traces.
pub struct FailingPlanner;

impl Planner for FailingPlanner {
    fn name(&self) -> &'static str {
        "FAILING"
    }

    fn plan(&self, _ctx: &PlanContext<'_>) -> Result<Plan, PlanError> {
        Err(PlanError::BudgetTooSmall { required_mj: 1.0, budget_mj: 0.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_is_deterministic() {
        let a = network(30, 5);
        let b = network(30, 5);
        assert_eq!(a.topology.len(), 30);
        for i in 0..30 {
            let n = NodeId::from_index(i);
            assert_eq!(a.topology.parent(n), b.topology.parent(n));
        }
    }

    #[test]
    fn failing_planner_always_fails() {
        use prospector_data::SampleSet;
        use prospector_net::{topology, EnergyModel};
        let t = topology::star(4);
        let em = EnergyModel::mica2();
        let mut s = SampleSet::new(4, 2, 4);
        s.push(vec![0.0, 1.0, 2.0, 3.0]);
        let ctx = PlanContext::new(&t, &em, &s, 10.0);
        assert!(FailingPlanner.plan(&ctx).is_err());
    }
}
