//! The canonical golden-trace scenarios.
//!
//! Each scenario is a fully seeded multi-epoch experiment whose event
//! stream is a pure function of its configuration: `tests/golden_trace.rs`
//! byte-diffs the serialized JSONL against files blessed under
//! `tests/golden/`, and the `trace` CLI replays the same scenarios for
//! inspection. Anything nondeterministic (wall clock, map order, pointer
//! values) is banned from events by construction — see the
//! `prospector-obs` crate docs.

use crate::{lossy_config, recovery_config, FailingPlanner};
use prospector_ckpt::Checkpoint;
use prospector_core::{FallbackPlanner, GatePolicy, NaiveK, ProspectorGreedy};
use prospector_data::IndependentGaussian;
use prospector_net::{topology, DataFault, EnergyModel, FaultSchedule, NodeId, Topology};
use prospector_obs::{event, MetricsSnapshot, RingTracer, TraceEvent};
use prospector_sim::{ExperimentConfig, ExperimentRunner, ResumeError};

/// Names of the canonical scenarios, in blessing order.
pub const SCENARIOS: &[&str] = &["clean", "loss_arq", "death_repair", "data_fault"];

/// Epochs every scenario runs for.
pub const EPOCHS: u64 = 16;

/// Ring capacity used for scenario runs: far above any scenario's event
/// count, so nothing is ever evicted.
const RING_CAP: usize = 1 << 16;

fn tree() -> Topology {
    topology::balanced(3, 2) // 13 nodes
}

/// One canonical scenario, decomposed into its ingredients so harnesses
/// beyond `golden_run` (the kill-and-resume suite, the `trace` CLI) can
/// build, checkpoint and resume runners against the exact same setup.
pub struct Scenario {
    pub name: &'static str,
    pub topology: Topology,
    pub energy: EnergyModel,
    pub planner: FallbackPlanner,
    pub config: ExperimentConfig,
}

impl Scenario {
    /// A fresh metrics-enabled runner over this scenario.
    pub fn runner(&self) -> ExperimentRunner<'_> {
        let mut runner =
            ExperimentRunner::new(&self.topology, &self.energy, &self.planner, self.config.clone());
        runner.enable_metrics();
        runner
    }

    /// A runner resumed from `ckpt`, borrowing this scenario's energy
    /// model and planner.
    pub fn resume(&self, ckpt: Checkpoint) -> Result<ExperimentRunner<'_>, ResumeError> {
        ExperimentRunner::resume(ckpt, &self.energy, &self.planner)
    }

    /// The scenario's value source. Sources are epoch-deterministic
    /// (stateless per epoch), which is what lets a resumed runner skip
    /// straight to its next epoch without fast-forwarding.
    pub fn source(&self) -> IndependentGaussian {
        IndependentGaussian::random(self.topology.len(), 40.0..60.0, 1.0..4.0, 13)
    }
}

/// Builds one named scenario. Panics on an unknown name; `SCENARIOS`
/// lists the valid ones.
pub fn scenario(name: &str) -> Scenario {
    let t = tree();
    let energy = EnergyModel::mica2();
    match name {
        // Loss-free links, no faults: sampling, planning, installation
        // and reliable collection only.
        "clean" => Scenario {
            name: "clean",
            config: recovery_config(FaultSchedule::new()),
            planner: FallbackPlanner::standard(),
            topology: t,
            energy,
        },
        // 8% uniform loss with a 2-retry ARQ budget: lossy dissemination,
        // retransmissions, occasional lost edges and backfill.
        "loss_arq" => Scenario {
            name: "loss_arq",
            config: lossy_config(t.len(), 0.08, 2, FaultSchedule::new()),
            planner: FallbackPlanner::standard(),
            topology: t,
            energy,
        },
        // A failing primary planner (every replan walks the fallback
        // chain) plus a mid-run node death: repair, forced replanning and
        // plan-attempt errors all appear in the stream.
        "death_repair" => {
            let victim = t.children(t.root())[0];
            Scenario {
                name: "death_repair",
                config: recovery_config(FaultSchedule::new().with_death(8, victim)),
                planner: FallbackPlanner::new(Box::new(FailingPlanner))
                    .or(Box::new(ProspectorGreedy))
                    .or(Box::new(NaiveK)),
                topology: t,
                energy,
            }
        }
        // Two data faults against a tight gate: the node with the highest
        // source mean (always in the historical top-k, so its edge always
        // carries bandwidth and its readings always reach the root) sticks
        // at 1000 for epochs 7..=12, earning quarantine after two strikes;
        // the runner-up takes a single +400 spike at epoch 8, which flags
        // once without quarantine. The fault clears after epoch 12, so the
        // stuck node is still quarantined at the epoch-12 boundary (the
        // crash-resume kill point) and earns parole in-window.
        "data_fault" => {
            let source = IndependentGaussian::random(t.len(), 40.0..60.0, 1.0..4.0, 13);
            let (stuck, runner_up) = top_two_means(&source, t.root());
            let mut config = recovery_config(
                FaultSchedule::new()
                    .with_data_fault(7, stuck, DataFault::StuckAt { level: 1000.0 }, 6)
                    .with_data_fault(8, runner_up, DataFault::Spike { magnitude: 400.0 }, 1),
            );
            config.gate =
                Some(GatePolicy { quarantine_after: 2, parole_after: 2, ..GatePolicy::default() });
            Scenario {
                name: "data_fault",
                config,
                planner: FallbackPlanner::standard(),
                topology: t,
                energy,
            }
        }
        other => panic!("unknown golden scenario {other:?}; valid: {SCENARIOS:?}"),
    }
}

/// The two non-root nodes with the highest source means, highest first.
fn top_two_means(source: &IndependentGaussian, root: NodeId) -> (NodeId, NodeId) {
    let mut nodes: Vec<usize> = (0..source.means().len()).filter(|&i| i != root.index()).collect();
    nodes.sort_by(|&a, &b| source.means()[b].total_cmp(&source.means()[a]));
    (NodeId::from_index(nodes[0]), NodeId::from_index(nodes[1]))
}

/// Runs one named scenario with metrics enabled and returns its full
/// event stream plus the final cumulative metrics snapshot.
///
/// Panics on an unknown name; `SCENARIOS` lists the valid ones. The
/// trace is identical with or without metrics — the registry only
/// aggregates, it never feeds events — which the golden byte-diff pins.
pub fn golden_run(name: &str) -> (Vec<TraceEvent>, MetricsSnapshot) {
    let sc = scenario(name);
    let mut source = sc.source();
    let mut tracer = RingTracer::new(RING_CAP);
    let mut runner = sc.runner();
    runner.run_traced(&mut source, EPOCHS, &mut tracer).unwrap_or_else(|e| {
        panic!("{name} scenario runs: {e}");
    });
    let snapshot = runner.metrics().expect("metrics enabled").snapshot();
    assert_eq!(tracer.dropped(), 0, "ring capacity must cover the whole scenario");
    (tracer.take(), snapshot)
}

/// The event stream of one named scenario (metrics snapshot discarded).
pub fn golden_events(name: &str) -> Vec<TraceEvent> {
    golden_run(name).0
}

/// The serialized JSONL for one named scenario (what the golden files
/// store byte-for-byte).
pub fn golden_trace(name: &str) -> String {
    event::to_jsonl(&golden_events(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_produce_bracketed_epochs() {
        for &name in SCENARIOS {
            let events = golden_events(name);
            let starts =
                events.iter().filter(|e| matches!(e, TraceEvent::EpochStart { .. })).count();
            let ends = events.iter().filter(|e| matches!(e, TraceEvent::EpochEnd { .. })).count();
            assert_eq!(starts, EPOCHS as usize, "{name}");
            assert_eq!(ends, EPOCHS as usize, "{name}");
            assert!(matches!(events.first(), Some(TraceEvent::EpochStart { epoch: 0 })), "{name}");
            assert!(matches!(events.last(), Some(TraceEvent::EpochEnd { .. })), "{name}");
        }
    }

    #[test]
    fn scenarios_are_reproducible_in_process() {
        for &name in SCENARIOS {
            assert_eq!(golden_trace(name), golden_trace(name), "{name}");
        }
    }

    #[test]
    fn data_fault_exercises_the_whole_gate_lifecycle() {
        let events = golden_events("data_fault");
        assert!(events.iter().any(|e| matches!(e, TraceEvent::DataFault { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::ReadingFlagged { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::NodeQuarantined { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::NodeReadmitted { .. })));
    }

    #[test]
    fn death_repair_walks_the_fallback_chain() {
        let events = golden_events("death_repair");
        assert!(events.iter().any(|e| matches!(e, TraceEvent::NodeDeath { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::TreeRepaired { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::PlanAttempt { error: Some(_), .. })));
    }
}
