//! The canonical golden-trace scenarios.
//!
//! Each scenario is a fully seeded multi-epoch experiment whose event
//! stream is a pure function of its configuration: `tests/golden_trace.rs`
//! byte-diffs the serialized JSONL against files blessed under
//! `tests/golden/`, and the `trace` CLI replays the same scenarios for
//! inspection. Anything nondeterministic (wall clock, map order, pointer
//! values) is banned from events by construction — see the
//! `prospector-obs` crate docs.

use crate::{lossy_config, recovery_config, FailingPlanner};
use prospector_ckpt::Checkpoint;
use prospector_core::{
    ContinuousPolicy, FallbackPlanner, GatePolicy, NaiveK, ProspectorGreedy, SketchPrecision,
};
use prospector_data::{IndependentGaussian, PiecewiseConstant, SamplePolicy, ValueSource};
use prospector_net::{topology, DataFault, EnergyModel, FaultSchedule, NodeId, Topology};
use prospector_obs::{event, MetricsSnapshot, RingTracer, TraceEvent};
use prospector_sim::{ExperimentConfig, ExperimentRunner, ResumeError};

/// Names of the canonical scenarios, in blessing order.
pub const SCENARIOS: &[&str] =
    &["clean", "loss_arq", "death_repair", "data_fault", "continuous_drift"];

/// Epochs every scenario runs for.
pub const EPOCHS: u64 = 16;

/// Ring capacity used for scenario runs: far above any scenario's event
/// count, so nothing is ever evicted.
const RING_CAP: usize = 1 << 16;

fn tree() -> Topology {
    topology::balanced(3, 2) // 13 nodes
}

/// One canonical scenario, decomposed into its ingredients so harnesses
/// beyond `golden_run` (the kill-and-resume suite, the `trace` CLI) can
/// build, checkpoint and resume runners against the exact same setup.
pub struct Scenario {
    pub name: &'static str,
    pub topology: Topology,
    pub energy: EnergyModel,
    pub planner: FallbackPlanner,
    pub config: ExperimentConfig,
}

impl Scenario {
    /// A fresh metrics-enabled runner over this scenario.
    pub fn runner(&self) -> ExperimentRunner<'_> {
        let mut runner =
            ExperimentRunner::new(&self.topology, &self.energy, &self.planner, self.config.clone());
        runner.enable_metrics();
        runner
    }

    /// A runner resumed from `ckpt`, borrowing this scenario's energy
    /// model and planner.
    pub fn resume(&self, ckpt: Checkpoint) -> Result<ExperimentRunner<'_>, ResumeError> {
        ExperimentRunner::resume(ckpt, &self.energy, &self.planner)
    }

    /// The scenario's value source. Sources are epoch-deterministic
    /// (stateless per epoch), which is what lets a resumed runner skip
    /// straight to its next epoch without fast-forwarding.
    pub fn source(&self) -> ScenarioSource {
        match self.name {
            // Scripted drift: node i starts at 50 - i (so the top 4 are
            // the root and its children, k-th threshold 47), then node 10
            // steps to 48.5 at epoch 9 — crossing the threshold from
            // below, which must ship exactly one delta.
            "continuous_drift" => {
                let base = (0..self.topology.len()).map(|i| 50.0 - i as f64).collect();
                ScenarioSource::Piecewise(PiecewiseConstant::new(base, vec![(9, 10, 48.5)]))
            }
            _ => ScenarioSource::Gaussian(IndependentGaussian::random(
                self.topology.len(),
                40.0..60.0,
                1.0..4.0,
                13,
            )),
        }
    }
}

/// A scenario's value source: scenarios predating the continuous mode
/// all share one seeded Gaussian family, the continuous scenario scripts
/// its drift by hand.
pub enum ScenarioSource {
    Gaussian(IndependentGaussian),
    Piecewise(PiecewiseConstant),
}

impl ValueSource for ScenarioSource {
    fn num_nodes(&self) -> usize {
        match self {
            ScenarioSource::Gaussian(s) => s.num_nodes(),
            ScenarioSource::Piecewise(s) => s.num_nodes(),
        }
    }

    fn values(&mut self, epoch: u64) -> Vec<f64> {
        match self {
            ScenarioSource::Gaussian(s) => s.values(epoch),
            ScenarioSource::Piecewise(s) => s.values(epoch),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            ScenarioSource::Gaussian(s) => s.name(),
            ScenarioSource::Piecewise(s) => s.name(),
        }
    }
}

/// Builds one named scenario. Panics on an unknown name; `SCENARIOS`
/// lists the valid ones.
pub fn scenario(name: &str) -> Scenario {
    let t = tree();
    let energy = EnergyModel::mica2();
    match name {
        // Loss-free links, no faults: sampling, planning, installation
        // and reliable collection only.
        "clean" => Scenario {
            name: "clean",
            config: recovery_config(FaultSchedule::new()),
            planner: FallbackPlanner::standard(),
            topology: t,
            energy,
        },
        // 8% uniform loss with a 2-retry ARQ budget: lossy dissemination,
        // retransmissions, occasional lost edges and backfill.
        "loss_arq" => Scenario {
            name: "loss_arq",
            config: lossy_config(t.len(), 0.08, 2, FaultSchedule::new()),
            planner: FallbackPlanner::standard(),
            topology: t,
            energy,
        },
        // A failing primary planner (every replan walks the fallback
        // chain) plus a mid-run node death: repair, forced replanning and
        // plan-attempt errors all appear in the stream.
        "death_repair" => {
            let victim = t.children(t.root())[0];
            Scenario {
                name: "death_repair",
                config: recovery_config(FaultSchedule::new().with_death(8, victim)),
                planner: FallbackPlanner::new(Box::new(FailingPlanner))
                    .or(Box::new(ProspectorGreedy))
                    .or(Box::new(NaiveK)),
                topology: t,
                energy,
            }
        }
        // Two data faults against a tight gate: the node with the highest
        // source mean (always in the historical top-k, so its edge always
        // carries bandwidth and its readings always reach the root) sticks
        // at 1000 for epochs 7..=12, earning quarantine after two strikes;
        // the runner-up takes a single +400 spike at epoch 8, which flags
        // once without quarantine. The fault clears after epoch 12, so the
        // stuck node is still quarantined at the epoch-12 boundary (the
        // crash-resume kill point) and earns parole in-window.
        "data_fault" => {
            let source = IndependentGaussian::random(t.len(), 40.0..60.0, 1.0..4.0, 13);
            let (stuck, runner_up) = top_two_means(&source, t.root());
            let mut config = recovery_config(
                FaultSchedule::new()
                    .with_data_fault(7, stuck, DataFault::StuckAt { level: 1000.0 }, 6)
                    .with_data_fault(8, runner_up, DataFault::Spike { magnitude: 400.0 }, 1),
            );
            config.gate =
                Some(GatePolicy { quarantine_after: 2, parole_after: 2, ..GatePolicy::default() });
            Scenario {
                name: "data_fault",
                config,
                planner: FallbackPlanner::standard(),
                topology: t,
                energy,
            }
        }
        // Continuous mode over scripted drift: two warmup sweeps seed the
        // threshold, then quiet delta epochs ship nothing but beacons;
        // node 10 crosses the threshold at epoch 9 (exactly one delta +
        // one threshold broadcast), and its parent — root child 3 — dies
        // at epoch 12, forcing a pinned `full_refresh` with reason
        // "repair" that re-learns the orphaned subtree. The gate is off:
        // the scripted source has zero variance, so a plausibility band
        // would flag the genuine step as a data fault.
        "continuous_drift" => {
            let victim = t.children(t.root())[2]; // node 3, parent of node 10
            let mut config = recovery_config(FaultSchedule::new().with_death(12, victim));
            config.policy = SamplePolicy::Periodic { warmup: 2, period: 100 };
            config.gate = None;
            config.continuous = Some(ContinuousPolicy {
                tolerance: 0.5,
                refresh_period: 100,
                sketch: Some(SketchPrecision { depth: 10, compression: 16, lo: 0.0, hi: 100.0 }),
            });
            Scenario {
                name: "continuous_drift",
                config,
                planner: FallbackPlanner::standard(),
                topology: t,
                energy,
            }
        }
        other => panic!("unknown golden scenario {other:?}; valid: {SCENARIOS:?}"),
    }
}

/// The two non-root nodes with the highest source means, highest first.
fn top_two_means(source: &IndependentGaussian, root: NodeId) -> (NodeId, NodeId) {
    let mut nodes: Vec<usize> = (0..source.means().len()).filter(|&i| i != root.index()).collect();
    nodes.sort_by(|&a, &b| source.means()[b].total_cmp(&source.means()[a]));
    (NodeId::from_index(nodes[0]), NodeId::from_index(nodes[1]))
}

/// Runs one named scenario with metrics enabled and returns its full
/// event stream plus the final cumulative metrics snapshot.
///
/// Panics on an unknown name; `SCENARIOS` lists the valid ones. The
/// trace is identical with or without metrics — the registry only
/// aggregates, it never feeds events — which the golden byte-diff pins.
pub fn golden_run(name: &str) -> (Vec<TraceEvent>, MetricsSnapshot) {
    let sc = scenario(name);
    let mut source = sc.source();
    let mut tracer = RingTracer::new(RING_CAP);
    let mut runner = sc.runner();
    runner.run_traced(&mut source, EPOCHS, &mut tracer).unwrap_or_else(|e| {
        panic!("{name} scenario runs: {e}");
    });
    let snapshot = runner.metrics().expect("metrics enabled").snapshot();
    assert_eq!(tracer.dropped(), 0, "ring capacity must cover the whole scenario");
    (tracer.take(), snapshot)
}

/// The event stream of one named scenario (metrics snapshot discarded).
pub fn golden_events(name: &str) -> Vec<TraceEvent> {
    golden_run(name).0
}

/// The serialized JSONL for one named scenario (what the golden files
/// store byte-for-byte).
pub fn golden_trace(name: &str) -> String {
    event::to_jsonl(&golden_events(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_produce_bracketed_epochs() {
        for &name in SCENARIOS {
            let events = golden_events(name);
            let starts =
                events.iter().filter(|e| matches!(e, TraceEvent::EpochStart { .. })).count();
            let ends = events.iter().filter(|e| matches!(e, TraceEvent::EpochEnd { .. })).count();
            assert_eq!(starts, EPOCHS as usize, "{name}");
            assert_eq!(ends, EPOCHS as usize, "{name}");
            assert!(matches!(events.first(), Some(TraceEvent::EpochStart { epoch: 0 })), "{name}");
            assert!(matches!(events.last(), Some(TraceEvent::EpochEnd { .. })), "{name}");
        }
    }

    #[test]
    fn scenarios_are_reproducible_in_process() {
        for &name in SCENARIOS {
            assert_eq!(golden_trace(name), golden_trace(name), "{name}");
        }
    }

    #[test]
    fn data_fault_exercises_the_whole_gate_lifecycle() {
        let events = golden_events("data_fault");
        assert!(events.iter().any(|e| matches!(e, TraceEvent::DataFault { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::ReadingFlagged { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::NodeQuarantined { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::NodeReadmitted { .. })));
    }

    #[test]
    fn continuous_drift_pins_the_delta_story() {
        let events = golden_events("continuous_drift");
        let mut epoch = 0u64;
        let mut deltas = Vec::new();
        let mut refreshes = Vec::new();
        let mut broadcasts = Vec::new();
        for e in &events {
            match e {
                TraceEvent::EpochStart { epoch: ep } => epoch = *ep,
                TraceEvent::DeltaShipped { node, value } => deltas.push((epoch, *node, *value)),
                TraceEvent::FullRefresh { reason } => refreshes.push((epoch, *reason)),
                TraceEvent::ThresholdBroadcast { threshold } => {
                    broadcasts.push((epoch, *threshold))
                }
                _ => {}
            }
        }
        // Quiet epochs ship nothing; the one scripted step ships exactly
        // one delta, when node 10 crosses the threshold at epoch 9.
        assert_eq!(deltas, vec![(9, 10, 48.5)]);
        // Full refreshes: the two warmup sweeps, then the repair-forced
        // refresh after node 3 dies at epoch 12. Nothing else.
        assert_eq!(refreshes, vec![(0, "sweep"), (1, "sweep"), (12, "repair")]);
        // The threshold is first learned at epoch 0 (top-4 of 50,49,48,47)
        // and moves to 48 when node 10's 48.5 displaces node 3's 47.
        assert_eq!(broadcasts, vec![(0, 47.0), (9, 48.0)]);
    }

    #[test]
    fn death_repair_walks_the_fallback_chain() {
        let events = golden_events("death_repair");
        assert!(events.iter().any(|e| matches!(e, TraceEvent::NodeDeath { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::TreeRepaired { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::PlanAttempt { error: Some(_), .. })));
    }
}
