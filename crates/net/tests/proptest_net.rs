//! Property-based tests for the network substrate: every random placement
//! that builds must satisfy the topology invariants the planners rely on.

use proptest::prelude::*;
use prospector_net::topology::{balanced, chain, star};
use prospector_net::{NetworkBuilder, NodeId, Topology};

fn check_invariants(t: &Topology) {
    let n = t.len();
    // Subtree sizes sum correctly: root's subtree is everything.
    assert_eq!(t.subtree_size(t.root()), n);
    // Each node's subtree size = 1 + children's.
    for i in 0..n {
        let u = NodeId::from_index(i);
        let from_children: usize =
            t.children(u).iter().map(|&c| t.subtree_size(c)).sum::<usize>() + 1;
        assert_eq!(t.subtree_size(u), from_children);
        // depth(child) = depth(parent) + 1
        for &c in t.children(u) {
            assert_eq!(t.depth(c), t.depth(u) + 1);
        }
        // path_to_root terminates at the root and has depth+1 nodes.
        let path: Vec<NodeId> = t.path_to_root(u).collect();
        assert_eq!(path.len() as u32, t.depth(u) + 1);
        assert_eq!(*path.last().unwrap(), t.root());
        // edges_to_root excludes the root.
        assert_eq!(t.edges_to_root(u).count() as u32, t.depth(u));
    }
    // Post order covers every node exactly once.
    let mut seen = vec![false; n];
    for &u in t.post_order() {
        assert!(!seen[u.index()], "duplicate in post order");
        seen[u.index()] = true;
    }
    assert!(seen.iter().all(|&s| s));
    // Subtrees partition under siblings.
    for i in 0..n {
        let u = NodeId::from_index(i);
        let kids = t.children(u);
        let total: usize = kids.iter().map(|&c| t.subtree(c).len()).sum();
        assert_eq!(total + 1, t.subtree_size(u));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_placements_yield_valid_topologies(
        n in 5usize..80,
        seed in 0u64..500,
    ) {
        let side = 40.0 * (n as f64).sqrt();
        if let Ok(net) = NetworkBuilder::new(n, side, side, 70.0).seed(seed).build() {
            prop_assert_eq!(net.len(), n);
            check_invariants(&net.topology);
            // Every edge respects the radio range.
            for e in net.topology.edges() {
                let p = net.topology.parent(e).unwrap();
                let d = net.positions[e.index()].distance(&net.positions[p.index()]);
                prop_assert!(d <= 70.0 + 1e-9);
            }
        }
    }

    #[test]
    fn repair_is_idempotent_over_seeded_death_patterns(
        parents in proptest::collection::vec(0u32..40, 4..40),
        raw_dead in proptest::collection::vec(1u32..40, 1..10),
    ) {
        let mut arr: Vec<Option<NodeId>> = vec![None];
        for (i, &p) in parents.iter().enumerate() {
            arr.push(Some(NodeId(p % (i as u32 + 1))));
        }
        let t = Topology::from_parents(NodeId(0), arr).unwrap();
        let n = t.len();
        // Seeded death pattern: non-root ids, clamped into range, deduped.
        let mut dead: Vec<NodeId> = raw_dead
            .iter()
            .map(|&d| NodeId(1 + d % (n as u32 - 1)))
            .collect();
        dead.sort_unstable_by_key(|d| d.index());
        dead.dedup();

        let once = t.repair(&dead).expect("non-root deaths repair");
        check_invariants(&once);
        let twice = once.repair(&dead).expect("repair of repaired tree");
        // Repair is a projection: a repaired tree is already a fixed
        // point for the same death set. Structure must be bit-identical —
        // parents, roots, and every derived cost (depth, subtree size).
        prop_assert_eq!(once.root(), twice.root());
        for i in 0..n {
            let u = NodeId::from_index(i);
            prop_assert_eq!(once.parent(u), twice.parent(u));
            prop_assert_eq!(once.children(u), twice.children(u));
            prop_assert_eq!(once.depth(u), twice.depth(u));
            prop_assert_eq!(once.subtree_size(u), twice.subtree_size(u));
        }
        prop_assert_eq!(once.post_order(), twice.post_order());
        // And the dead really are parked inert leaves under the root.
        for &d in &dead {
            prop_assert_eq!(once.parent(d), Some(once.root()));
            prop_assert!(once.children(d).is_empty());
        }
    }

    #[test]
    fn random_parent_arrays_yield_valid_topologies(
        parents in proptest::collection::vec(0u32..30, 1..30),
    ) {
        // Parent of node i+1 drawn from 0..=i: always a tree.
        let n = parents.len() + 1;
        let mut arr: Vec<Option<NodeId>> = vec![None];
        for (i, &p) in parents.iter().enumerate() {
            arr.push(Some(NodeId(p % (i as u32 + 1))));
        }
        let t = Topology::from_parents(NodeId(0), arr).unwrap();
        prop_assert_eq!(t.len(), n);
        check_invariants(&t);
    }
}

#[test]
fn synthetic_shapes_pass_invariants() {
    for t in [chain(1), chain(7), star(9), balanced(2, 4), balanced(4, 2)] {
        check_invariants(&t);
    }
}
