//! Communication energy model (Section 2 of the paper).
//!
//! The total energy to send **and** receive one unicast message with `s`
//! bytes of content is `c_m + c_b · s`: a fixed per-message cost `c_m`
//! (handshake of the reliable protocol plus the message header) and a
//! per-byte cost `c_b`. The paper's MICA2 table is unreadable in the OCR'd
//! source; we substitute the standard Crossbow MICA2 figures (see DESIGN.md
//! §3): TX 81 mW, RX 30 mW, 2400 effective bytes/s, which give
//! `c_b = (81 + 30) / 2400 ≈ 0.046 mJ/byte`, with a per-message overhead of
//! `1.2 mJ` — large relative to `c_b`, exactly the property the paper's
//! argument for approximate plans relies on.

/// Transmit power of a MICA2 mote radio (27 mA at 3 V), milliwatts.
pub const MICA2_TX_MW: f64 = 81.0;
/// Receive power of a MICA2 mote radio (10 mA at 3 V), milliwatts.
pub const MICA2_RX_MW: f64 = 30.0;
/// Effective payload rate of the 38.4 kBaud Manchester-coded MICA2 radio.
pub const MICA2_BYTES_PER_SEC: f64 = 2400.0;
/// Handshake + header overhead charged per reliable unicast message, mJ.
pub const MICA2_PER_MESSAGE_MJ: f64 = 1.2;

/// Energy model for all communication in the network.
///
/// ```
/// use prospector_net::EnergyModel;
///
/// let em = EnergyModel::mica2();
/// // One message with 3 values: handshake/header plus 3 × 4 bytes.
/// let mj = em.unicast_values(3);
/// assert!((mj - (em.per_message_mj + 3.0 * em.per_value())).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Per-message cost `c_m` (mJ): handshake + header of a reliable
    /// unicast.
    pub per_message_mj: f64,
    /// Per-byte send+receive cost `c_b` (mJ/byte).
    pub per_byte_mj: f64,
    /// Encoded size of one (node id, reading) pair in a message body.
    pub value_bytes: u32,
    /// Cost of a header-only broadcast (query re-execution trigger);
    /// broadcasts skip the unicast handshake.
    pub broadcast_mj: f64,
    /// Encoded size of a phase-2 mop-up request `(t, lower, upper)`.
    pub request_bytes: u32,
    /// Encoded size of the per-message "number of proven values" field of
    /// proof-carrying plans.
    pub proven_count_bytes: u32,
    /// Bytes of subplan state unicast to each participating node when a new
    /// plan is installed (initial distribution phase).
    pub subplan_bytes: u32,
}

impl EnergyModel {
    /// MICA2-derived defaults (see module docs and DESIGN.md §3).
    pub fn mica2() -> Self {
        EnergyModel {
            per_message_mj: MICA2_PER_MESSAGE_MJ,
            per_byte_mj: (MICA2_TX_MW + MICA2_RX_MW) / MICA2_BYTES_PER_SEC,
            value_bytes: 4,
            broadcast_mj: MICA2_PER_MESSAGE_MJ / 2.0,
            request_bytes: 10,
            proven_count_bytes: 1,
            subplan_bytes: 6,
        }
    }

    /// Cost of one unicast carrying `n_values` (node, reading) pairs.
    pub fn unicast_values(&self, n_values: usize) -> f64 {
        self.per_message_mj + self.per_byte_mj * (self.value_bytes as f64) * n_values as f64
    }

    /// Cost of one unicast carrying `bytes` of arbitrary payload.
    pub fn unicast_bytes(&self, bytes: usize) -> f64 {
        self.per_message_mj + self.per_byte_mj * bytes as f64
    }

    /// Cost of a header-only trigger broadcast.
    pub fn broadcast(&self) -> f64 {
        self.broadcast_mj
    }

    /// Cost of a broadcast carrying `bytes` of payload (e.g. a mop-up
    /// request forwarded to all children at once).
    pub fn broadcast_bytes(&self, bytes: usize) -> f64 {
        self.broadcast_mj + self.per_byte_mj * bytes as f64
    }

    /// Cost of installing a subplan at one node (initial distribution).
    pub fn subplan_install(&self) -> f64 {
        self.unicast_bytes(self.subplan_bytes as usize)
    }

    /// Cost of re-attaching one orphaned node during spanning-tree repair:
    /// a neighbor-discovery broadcast plus the two-message parent/child
    /// handshake that establishes the new reliable link.
    pub fn repair_handshake(&self) -> f64 {
        self.broadcast() + 2.0 * self.per_message_mj
    }

    /// Marginal cost of shipping one value across one edge, ignoring the
    /// per-message overhead. Used by the LP objective/budget rows.
    pub fn per_value(&self) -> f64 {
        self.per_byte_mj * self.value_bytes as f64
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::mica2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mica2_constants_are_consistent() {
        let m = EnergyModel::mica2();
        assert!((m.per_byte_mj - 0.04625).abs() < 1e-9);
        // The defining property used throughout the paper: contacting a
        // node at all costs much more than shipping one extra value.
        assert!(m.per_message_mj > 5.0 * m.per_value());
    }

    #[test]
    fn unicast_costs_scale_linearly() {
        let m = EnergyModel::mica2();
        let c0 = m.unicast_values(0);
        let c5 = m.unicast_values(5);
        assert!((c0 - m.per_message_mj).abs() < 1e-12);
        assert!((c5 - c0 - 5.0 * m.per_value()).abs() < 1e-12);
    }

    #[test]
    fn broadcast_cheaper_than_unicast() {
        let m = EnergyModel::mica2();
        assert!(m.broadcast() < m.unicast_values(0));
        assert!(m.broadcast_bytes(4) > m.broadcast());
    }

    #[test]
    fn subplan_install_cost() {
        let m = EnergyModel::mica2();
        assert!((m.subplan_install() - (m.per_message_mj + 6.0 * m.per_byte_mj)).abs() < 1e-12);
    }
}
