//! Per-node, per-phase energy accounting.

use crate::node::NodeId;

/// Query-processing phase an energy charge belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Installing a plan (initial distribution phase).
    PlanInstall,
    /// Triggering re-execution (subsequent distribution phases).
    Trigger,
    /// Routing values up to the root.
    Collection,
    /// Exact algorithm's mop-up phase.
    MopUp,
    /// Full-network sweeps that feed the sample window.
    Sampling,
    /// Retransmissions/rerouting after transient failures.
    Rerouting,
    /// Spanning-tree rebuild after a permanent node failure: failure
    /// probes, re-attachment handshakes and plan re-dissemination triggers.
    Repair,
    /// Link-layer ARQ during collection: retry transmissions, backoff
    /// idle-listening and the header-only acks confirming a retried
    /// delivery. First attempts stay under [`Phase::Collection`].
    Retransmit,
}

impl Phase {
    /// All phases, in charge-index order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::PlanInstall,
        Phase::Trigger,
        Phase::Collection,
        Phase::MopUp,
        Phase::Sampling,
        Phase::Rerouting,
        Phase::Repair,
        Phase::Retransmit,
    ];

    /// Stable lowercase name, used as the `phase` field of trace events
    /// and as a JSON key in metrics snapshots.
    pub fn name(self) -> &'static str {
        match self {
            Phase::PlanInstall => "plan_install",
            Phase::Trigger => "trigger",
            Phase::Collection => "collection",
            Phase::MopUp => "mop_up",
            Phase::Sampling => "sampling",
            Phase::Rerouting => "rerouting",
            Phase::Repair => "repair",
            Phase::Retransmit => "retransmit",
        }
    }
}

/// Number of charge phases ([`Phase::ALL`]'s length), public so
/// checkpoint codecs can name the per-phase array type.
pub const NUM_PHASES: usize = 8;

fn phase_index(p: Phase) -> usize {
    match p {
        Phase::PlanInstall => 0,
        Phase::Trigger => 1,
        Phase::Collection => 2,
        Phase::MopUp => 3,
        Phase::Sampling => 4,
        Phase::Rerouting => 5,
        Phase::Repair => 6,
        Phase::Retransmit => 7,
    }
}

/// Two meters could not be merged because they describe networks of
/// different sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeterMergeError {
    pub self_nodes: usize,
    pub other_nodes: usize,
}

impl std::fmt::Display for MeterMergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot merge meters of different sizes: {} vs {} nodes",
            self.self_nodes, self.other_nodes
        )
    }
}

impl std::error::Error for MeterMergeError {}

/// Accumulates energy charges attributed to nodes and phases.
///
/// A charge on an edge is attributed to the *child* node (the sender); the
/// receiver's share is already folded into the cost model's per-byte and
/// per-message figures.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    per_node: Vec<f64>,
    per_phase: [f64; NUM_PHASES],
    total: f64,
}

impl EnergyMeter {
    /// Creates a meter for a network of `n` nodes.
    pub fn new(n: usize) -> Self {
        EnergyMeter { per_node: vec![0.0; n], per_phase: [0.0; NUM_PHASES], total: 0.0 }
    }

    /// Rebuilds a meter from previously captured totals (see
    /// [`EnergyMeter::node_totals`], [`EnergyMeter::phase_total`] and
    /// [`EnergyMeter::total`]), for checkpoint restore. The grand total is
    /// stored, not recomputed: re-summing would accumulate in a different
    /// order than the original charge sequence and so could differ in the
    /// last ulp, breaking bit-identical resume.
    pub fn from_parts(per_node: Vec<f64>, per_phase: [f64; NUM_PHASES], total: f64) -> Self {
        EnergyMeter { per_node, per_phase, total }
    }

    /// Per-phase totals (mJ), indexed in [`Phase::ALL`] order. The
    /// counterpart of [`EnergyMeter::node_totals`] for checkpointing.
    pub fn phase_totals(&self) -> &[f64; NUM_PHASES] {
        &self.per_phase
    }

    /// Charges `mj` millijoules to `node` under `phase`.
    pub fn charge(&mut self, node: NodeId, phase: Phase, mj: f64) {
        debug_assert!(mj >= 0.0, "negative energy charge");
        self.per_node[node.index()] += mj;
        self.per_phase[phase_index(phase)] += mj;
        self.total += mj;
    }

    /// Total energy consumed so far (mJ).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Energy consumed by one node (mJ).
    pub fn node_total(&self, node: NodeId) -> f64 {
        self.per_node[node.index()]
    }

    /// Energy consumed under one phase (mJ).
    pub fn phase_total(&self, phase: Phase) -> f64 {
        self.per_phase[phase_index(phase)]
    }

    /// The node that has spent the most energy, with its total; `None` for
    /// an empty network. Network lifetime is governed by this node.
    pub fn hottest_node(&self) -> Option<(NodeId, f64)> {
        self.per_node
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &e)| (NodeId::from_index(i), e))
    }

    /// Per-node totals (mJ), indexed by node index. Exposed for skew
    /// statistics (Gini) without cloning the meter.
    pub fn node_totals(&self) -> &[f64] {
        &self.per_node
    }

    /// Adds all of `other`'s charges into `self`, failing without
    /// mutating `self` if the two meters describe networks of different
    /// sizes.
    pub fn try_merge(&mut self, other: &EnergyMeter) -> Result<(), MeterMergeError> {
        if self.per_node.len() != other.per_node.len() {
            return Err(MeterMergeError {
                self_nodes: self.per_node.len(),
                other_nodes: other.per_node.len(),
            });
        }
        for (a, b) in self.per_node.iter_mut().zip(&other.per_node) {
            *a += b;
        }
        for (a, b) in self.per_phase.iter_mut().zip(&other.per_phase) {
            *a += b;
        }
        self.total += other.total;
        Ok(())
    }

    /// Adds all of `other`'s charges into `self`.
    ///
    /// Merging meters of different sizes is a bug in the caller: it is a
    /// `debug_assert` in debug builds, while release builds stay
    /// panic-free by growing `self` to the larger size so no charge is
    /// silently dropped. Callers that want to handle the mismatch use
    /// [`EnergyMeter::try_merge`].
    pub fn merge(&mut self, other: &EnergyMeter) {
        if let Err(e) = self.try_merge(other) {
            debug_assert!(false, "{e}");
            if self.per_node.len() < other.per_node.len() {
                self.per_node.resize(other.per_node.len(), 0.0);
            }
            for (a, b) in self.per_node.iter_mut().zip(&other.per_node) {
                *a += b;
            }
            for (a, b) in self.per_phase.iter_mut().zip(&other.per_phase) {
                *a += b;
            }
            self.total += other.total;
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.per_node.iter_mut().for_each(|v| *v = 0.0);
        self.per_phase.iter_mut().for_each(|v| *v = 0.0);
        self.total = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_by_node_and_phase() {
        let mut m = EnergyMeter::new(3);
        m.charge(NodeId(0), Phase::Collection, 1.5);
        m.charge(NodeId(1), Phase::Collection, 2.0);
        m.charge(NodeId(1), Phase::Trigger, 0.5);
        assert!((m.total() - 4.0).abs() < 1e-12);
        assert!((m.node_total(NodeId(1)) - 2.5).abs() < 1e-12);
        assert!((m.phase_total(Phase::Collection) - 3.5).abs() < 1e-12);
        assert_eq!(m.hottest_node().unwrap().0, NodeId(1));
    }

    #[test]
    fn merge_and_reset() {
        let mut a = EnergyMeter::new(2);
        let mut b = EnergyMeter::new(2);
        a.charge(NodeId(0), Phase::Sampling, 1.0);
        b.charge(NodeId(1), Phase::MopUp, 2.0);
        a.merge(&b);
        assert!((a.total() - 3.0).abs() < 1e-12);
        assert!((a.phase_total(Phase::MopUp) - 2.0).abs() < 1e-12);
        a.reset();
        assert_eq!(a.total(), 0.0);
        assert_eq!(a.node_total(NodeId(1)), 0.0);
    }

    #[test]
    fn try_merge_rejects_size_mismatch_without_mutation() {
        let mut a = EnergyMeter::new(2);
        a.charge(NodeId(0), Phase::Collection, 1.0);
        let mut b = EnergyMeter::new(3);
        b.charge(NodeId(2), Phase::Collection, 5.0);
        let err = a.try_merge(&b).unwrap_err();
        assert_eq!(err, MeterMergeError { self_nodes: 2, other_nodes: 3 });
        assert_eq!(a.total(), 1.0);
        assert_eq!(a.node_totals().len(), 2);
        // Same-size merge still succeeds.
        assert!(a.try_merge(&EnergyMeter::new(2)).is_ok());
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "cannot merge meters"))]
    fn merge_size_mismatch_is_loud_but_lossless() {
        let mut a = EnergyMeter::new(2);
        a.charge(NodeId(1), Phase::Collection, 1.0);
        let mut b = EnergyMeter::new(4);
        b.charge(NodeId(3), Phase::Sampling, 2.0);
        // Debug builds panic here (debug_assert); release builds grow the
        // meter so no energy is lost.
        a.merge(&b);
        assert_eq!(a.node_totals().len(), 4);
        assert!((a.total() - 3.0).abs() < 1e-12);
        assert!((a.node_total(NodeId(3)) - 2.0).abs() < 1e-12);
        assert!((a.phase_total(Phase::Sampling) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn phase_names_are_unique_and_ordered() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), Phase::ALL.len());
        assert_eq!(names[0], "plan_install");
        assert_eq!(names[7], "retransmit");
    }
}
