//! Fault injection: permanent failures (Section 4.4) and data faults.
//!
//! The paper distinguishes two failure regimes: transient link failures,
//! folded into the planners' cost model ([`crate::failure`]), and permanent
//! node failures, which "require rebuilding the spanning tree and
//! re-optimizing the query plan". This module provides the *injection* side
//! of the permanent regime: a deterministic, seeded schedule of node deaths
//! and link degradations keyed by epoch, which the experiment runner
//! consumes to exercise tree repair and re-planning.
//!
//! A third family, [`DataFault`], models sensors that keep responding but
//! lie: stuck-at readings, additive drift, transient spikes, and noise
//! bursts. Data faults corrupt values where they are *sourced* (via
//! [`FaultSchedule::corrupt_values`]), so every execution path — reliable,
//! ARQ, naive — sees the same corrupted readings.
//!
//! The schedule is plain data — it never consumes randomness at run time,
//! so an empty schedule leaves a simulation's RNG stream (and therefore its
//! output) bit-for-bit unchanged. Noise bursts honor the same contract by
//! drawing from a private RNG re-seeded per (schedule seed, epoch, node)
//! rather than from any caller stream.

use crate::node::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A deterministic sensor-data corruption: what a faulty sensor reports
/// instead of the truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataFault {
    /// The sensor reports `level` regardless of the true value (the classic
    /// stuck-at-max/min failure).
    StuckAt { level: f64 },
    /// Calibration drift: the reported value gains `rate` more error every
    /// active epoch (error = `rate × (age + 1)`).
    Drift { rate: f64 },
    /// A transient additive spike of `magnitude` on every active epoch
    /// (schedule with duration 1 for a one-shot glitch).
    Spike { magnitude: f64 },
    /// A noise burst: additive error uniform in `[-amplitude, amplitude)`,
    /// drawn deterministically per (schedule noise seed, epoch, node).
    Noise { amplitude: f64 },
}

impl DataFault {
    /// A stable snake_case tag for traces and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            DataFault::StuckAt { .. } => "stuck_at",
            DataFault::Drift { .. } => "drift",
            DataFault::Spike { .. } => "spike",
            DataFault::Noise { .. } => "noise",
        }
    }

    /// The fault's single numeric parameter (level, rate, magnitude, or
    /// amplitude) — the wire codec round-trips `(kind, param)`.
    pub fn param(&self) -> f64 {
        match self {
            DataFault::StuckAt { level } => *level,
            DataFault::Drift { rate } => *rate,
            DataFault::Spike { magnitude } => *magnitude,
            DataFault::Noise { amplitude } => *amplitude,
        }
    }

    fn check(&self) -> Result<(), &'static str> {
        match self {
            DataFault::StuckAt { level } if !level.is_finite() => Err("non-finite stuck-at level"),
            DataFault::Drift { rate } if !rate.is_finite() => Err("non-finite drift rate"),
            DataFault::Spike { magnitude } if !magnitude.is_finite() => {
                Err("non-finite spike magnitude")
            }
            DataFault::Noise { amplitude } if !(amplitude.is_finite() && *amplitude > 0.0) => {
                Err("noise amplitude must be finite and positive")
            }
            _ => Ok(()),
        }
    }
}

/// One injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// The node stops responding permanently: its readings cease and its
    /// subtree must be re-parented around it.
    NodeDeath(NodeId),
    /// The link above `child` permanently worsens: its transient failure
    /// probability increases by `added_prob` (clamped to 1.0).
    LinkDegrade { child: NodeId, added_prob: f64 },
    /// `node` reports corrupted readings for `duration` epochs starting at
    /// the event's epoch; the node stays alive and routable throughout.
    Data { node: NodeId, fault: DataFault, duration: u64 },
}

impl FaultEvent {
    /// The node this event concerns.
    pub fn node(&self) -> NodeId {
        match self {
            FaultEvent::NodeDeath(n) => *n,
            FaultEvent::LinkDegrade { child, .. } => *child,
            FaultEvent::Data { node, .. } => *node,
        }
    }
}

/// A rejected [`FaultSchedule`] build step, naming the offending event.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultScheduleError {
    /// A degradation probability was NaN, negative, or above 1.
    BadDegradation { epoch: u64, child: NodeId, added_prob: f64 },
    /// The same node was already scheduled to die at the same epoch.
    DuplicateDeath { epoch: u64, node: NodeId },
    /// A data fault had an invalid parameter or a zero duration.
    BadDataFault { epoch: u64, node: NodeId, why: &'static str },
}

impl fmt::Display for FaultScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultScheduleError::BadDegradation { epoch, child, added_prob } => write!(
                f,
                "degradation of {child:?} at epoch {epoch}: added probability {added_prob} \
                 outside [0, 1]"
            ),
            FaultScheduleError::DuplicateDeath { epoch, node } => {
                write!(f, "{node:?} is already scheduled to die at epoch {epoch}")
            }
            FaultScheduleError::BadDataFault { epoch, node, why } => {
                write!(f, "data fault on {node:?} at epoch {epoch}: {why}")
            }
        }
    }
}

impl Error for FaultScheduleError {}

/// One data corruption actually applied by [`FaultSchedule::corrupt_values`],
/// for tracing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppliedDataFault {
    /// The corrupted node.
    pub node: NodeId,
    /// The fault kind tag ([`DataFault::kind`]).
    pub kind: &'static str,
    /// The honest reading before corruption.
    pub clean: f64,
    /// The reading the sensor actually reports.
    pub corrupted: f64,
}

/// A deterministic schedule of [`FaultEvent`]s keyed by epoch.
///
/// ```
/// use prospector_net::{FaultSchedule, NodeId};
///
/// let sched = FaultSchedule::new()
///     .with_death(10, NodeId(3))
///     .with_degradation(10, NodeId(5), 0.2);
/// assert_eq!(sched.deaths_at(10), vec![NodeId(3)]);
/// assert!(sched.deaths_at(11).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    events: BTreeMap<u64, Vec<FaultEvent>>,
    /// Seed for noise-burst draws; part of the schedule (plain data), not a
    /// runtime RNG stream.
    noise_seed: u64,
}

impl FaultSchedule {
    /// An empty schedule (no faults ever fire).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// True when the schedule contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.values().map(Vec::len).sum()
    }

    /// Schedules `node` to die at the start of `epoch`.
    ///
    /// Panicking convenience over [`FaultSchedule::try_with_death`] for
    /// literal schedules in tests and figures.
    pub fn with_death(self, epoch: u64, node: NodeId) -> Self {
        self.try_with_death(epoch, node).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Schedules `node` to die at the start of `epoch`, rejecting a second
    /// death of the same node at the same epoch.
    pub fn try_with_death(mut self, epoch: u64, node: NodeId) -> Result<Self, FaultScheduleError> {
        let events = self.events.entry(epoch).or_default();
        if events.iter().any(|e| matches!(e, FaultEvent::NodeDeath(n) if *n == node)) {
            return Err(FaultScheduleError::DuplicateDeath { epoch, node });
        }
        events.push(FaultEvent::NodeDeath(node));
        Ok(self)
    }

    /// Schedules the link above `child` to degrade at the start of `epoch`.
    ///
    /// Panicking convenience over [`FaultSchedule::try_with_degradation`].
    pub fn with_degradation(self, epoch: u64, child: NodeId, added_prob: f64) -> Self {
        self.try_with_degradation(epoch, child, added_prob).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Schedules the link above `child` to degrade at the start of `epoch`,
    /// rejecting NaN or out-of-range probabilities.
    pub fn try_with_degradation(
        mut self,
        epoch: u64,
        child: NodeId,
        added_prob: f64,
    ) -> Result<Self, FaultScheduleError> {
        if !(0.0..=1.0).contains(&added_prob) {
            return Err(FaultScheduleError::BadDegradation { epoch, child, added_prob });
        }
        self.events.entry(epoch).or_default().push(FaultEvent::LinkDegrade { child, added_prob });
        Ok(self)
    }

    /// Schedules `node` to report corrupted readings for `duration` epochs
    /// starting at `epoch`.
    ///
    /// Panicking convenience over [`FaultSchedule::try_with_data_fault`].
    pub fn with_data_fault(
        self,
        epoch: u64,
        node: NodeId,
        fault: DataFault,
        duration: u64,
    ) -> Self {
        self.try_with_data_fault(epoch, node, fault, duration).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Schedules a data fault, rejecting non-finite parameters,
    /// non-positive noise amplitudes, and zero durations.
    pub fn try_with_data_fault(
        mut self,
        epoch: u64,
        node: NodeId,
        fault: DataFault,
        duration: u64,
    ) -> Result<Self, FaultScheduleError> {
        if duration == 0 {
            return Err(FaultScheduleError::BadDataFault { epoch, node, why: "zero duration" });
        }
        fault.check().map_err(|why| FaultScheduleError::BadDataFault { epoch, node, why })?;
        self.events.entry(epoch).or_default().push(FaultEvent::Data { node, fault, duration });
        Ok(self)
    }

    /// Sets the seed for noise-burst draws (plain data; defaults to 0).
    pub fn with_noise_seed(mut self, seed: u64) -> Self {
        self.noise_seed = seed;
        self
    }

    /// The seed noise bursts are drawn from.
    pub fn noise_seed(&self) -> u64 {
        self.noise_seed
    }

    /// A schedule killing `deaths` distinct non-root nodes of an `n`-node
    /// network at epochs drawn uniformly from `epoch_range`, deterministic
    /// in `seed`. Node ids are drawn from `1..n` (the root never dies).
    pub fn random_deaths(
        n: usize,
        deaths: usize,
        epoch_range: std::ops::Range<u64>,
        seed: u64,
    ) -> Self {
        assert!(n >= 2, "need at least one non-root node");
        assert!(deaths < n, "cannot kill {deaths} of {} non-root nodes", n - 1);
        assert!(!epoch_range.is_empty(), "empty epoch range");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_5C8E_D01E_u64);
        let mut chosen: Vec<NodeId> = Vec::with_capacity(deaths);
        while chosen.len() < deaths {
            let candidate = NodeId::from_index(rng.random_range(1..n));
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        let mut sched = FaultSchedule::new();
        for node in chosen {
            let epoch = rng.random_range(epoch_range.clone());
            sched = sched.with_death(epoch, node);
        }
        sched
    }

    /// A schedule giving `count` distinct non-root nodes of an `n`-node
    /// network the same `fault` from `epoch` for `duration` epochs,
    /// deterministic in `seed`. The node choice reuses the
    /// [`FaultSchedule::random_deaths`] draw discipline; `seed` also
    /// becomes the schedule's noise seed.
    pub fn random_data_faults(
        n: usize,
        count: usize,
        epoch: u64,
        duration: u64,
        fault: DataFault,
        seed: u64,
    ) -> Self {
        assert!(n >= 2, "need at least one non-root node");
        assert!(count < n, "cannot corrupt {count} of {} non-root nodes", n - 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDA7A_FA17_u64);
        let mut chosen: Vec<NodeId> = Vec::with_capacity(count);
        while chosen.len() < count {
            let candidate = NodeId::from_index(rng.random_range(1..n));
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        let mut sched = FaultSchedule::new().with_noise_seed(seed);
        for node in chosen {
            sched = sched.with_data_fault(epoch, node, fault, duration);
        }
        sched
    }

    /// True when any scheduled event is a [`FaultEvent::Data`].
    pub fn has_data_faults(&self) -> bool {
        self.events.values().flatten().any(|e| matches!(e, FaultEvent::Data { .. }))
    }

    /// Data faults active at `epoch` (scheduled at `start ≤ epoch` with
    /// `start + duration > epoch`), as `(node, fault, age)` where `age` is
    /// `epoch − start`.
    pub fn data_faults_at(&self, epoch: u64) -> Vec<(NodeId, DataFault, u64)> {
        let mut active = Vec::new();
        for (&start, events) in self.events.range(..=epoch) {
            let age = epoch - start;
            for e in events {
                if let FaultEvent::Data { node, fault, duration } = e {
                    if age < *duration {
                        active.push((*node, *fault, age));
                    }
                }
            }
        }
        active
    }

    /// Applies every data fault active at `epoch` to `values` in place and
    /// reports what changed. Non-finite entries (dead or masked nodes) are
    /// skipped: a dead sensor reports nothing, corrupted or not. Fully
    /// deterministic — noise draws come from a private RNG seeded per
    /// (noise seed, epoch, node), never from a caller stream.
    pub fn corrupt_values(&self, epoch: u64, values: &mut [f64]) -> Vec<AppliedDataFault> {
        let mut applied = Vec::new();
        for (node, fault, age) in self.data_faults_at(epoch) {
            let i = node.index();
            if i >= values.len() || !values[i].is_finite() {
                continue;
            }
            let clean = values[i];
            let corrupted = match fault {
                DataFault::StuckAt { level } => level,
                DataFault::Drift { rate } => clean + rate * (age + 1) as f64,
                DataFault::Spike { magnitude } => clean + magnitude,
                DataFault::Noise { amplitude } => {
                    let stream = self
                        .noise_seed
                        .wrapping_add(epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        .wrapping_add((node.index() as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
                    let mut rng = StdRng::seed_from_u64(stream);
                    clean + rng.random_range(-amplitude..amplitude)
                }
            };
            values[i] = corrupted;
            applied.push(AppliedDataFault { node, kind: fault.kind(), clean, corrupted });
        }
        applied
    }

    /// All events scheduled for `epoch`.
    pub fn events_at(&self, epoch: u64) -> &[FaultEvent] {
        self.events.get(&epoch).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Nodes scheduled to die at `epoch`.
    pub fn deaths_at(&self, epoch: u64) -> Vec<NodeId> {
        self.events_at(epoch)
            .iter()
            .filter_map(|e| match e {
                FaultEvent::NodeDeath(n) => Some(*n),
                _ => None,
            })
            .collect()
    }

    /// Link degradations scheduled for `epoch`, as `(child, added_prob)`.
    pub fn degradations_at(&self, epoch: u64) -> Vec<(NodeId, f64)> {
        self.events_at(epoch)
            .iter()
            .filter_map(|e| match e {
                FaultEvent::LinkDegrade { child, added_prob } => Some((*child, *added_prob)),
                _ => None,
            })
            .collect()
    }

    /// All scheduled deaths over the schedule's lifetime, in epoch order.
    pub fn all_deaths(&self) -> Vec<(u64, NodeId)> {
        self.events
            .iter()
            .flat_map(|(&epoch, events)| {
                events.iter().filter_map(move |e| match e {
                    FaultEvent::NodeDeath(n) => Some((epoch, *n)),
                    _ => None,
                })
            })
            .collect()
    }

    /// Epochs that have at least one scheduled event, in order.
    pub fn epochs(&self) -> impl Iterator<Item = u64> + '_ {
        self.events.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_has_no_events() {
        let s = FaultSchedule::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.deaths_at(0).is_empty());
        assert!(s.degradations_at(5).is_empty());
        assert!(s.all_deaths().is_empty());
    }

    #[test]
    fn builders_key_by_epoch() {
        let s = FaultSchedule::new()
            .with_death(4, NodeId(2))
            .with_death(4, NodeId(7))
            .with_degradation(9, NodeId(3), 0.25);
        assert_eq!(s.len(), 3);
        assert_eq!(s.deaths_at(4), vec![NodeId(2), NodeId(7)]);
        assert!(s.deaths_at(9).is_empty());
        assert_eq!(s.degradations_at(9), vec![(NodeId(3), 0.25)]);
        assert_eq!(s.all_deaths(), vec![(4, NodeId(2)), (4, NodeId(7))]);
        assert_eq!(s.epochs().collect::<Vec<_>>(), vec![4, 9]);
    }

    #[test]
    fn random_deaths_are_deterministic_and_distinct() {
        let a = FaultSchedule::random_deaths(20, 5, 10..40, 3);
        let b = FaultSchedule::random_deaths(20, 5, 10..40, 3);
        assert_eq!(a.all_deaths(), b.all_deaths());
        let deaths = a.all_deaths();
        assert_eq!(deaths.len(), 5);
        let mut nodes: Vec<NodeId> = deaths.iter().map(|&(_, n)| n).collect();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 5, "deaths must hit distinct nodes");
        for (epoch, node) in deaths {
            assert!((10..40).contains(&epoch));
            assert_ne!(node, NodeId(0), "the root never dies");
        }
    }

    #[test]
    fn random_deaths_vary_with_seed() {
        let a = FaultSchedule::random_deaths(30, 6, 0..100, 1);
        let b = FaultSchedule::random_deaths(30, 6, 0..100, 2);
        assert_ne!(a.all_deaths(), b.all_deaths());
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_degradation() {
        let _ = FaultSchedule::new().with_degradation(0, NodeId(1), 1.5);
    }

    #[test]
    fn try_builders_reject_bad_events_with_typed_errors() {
        let nan = f64::NAN;
        assert_eq!(
            FaultSchedule::new().try_with_degradation(3, NodeId(1), -0.1).unwrap_err(),
            FaultScheduleError::BadDegradation { epoch: 3, child: NodeId(1), added_prob: -0.1 }
        );
        assert!(matches!(
            FaultSchedule::new().try_with_degradation(3, NodeId(1), nan).unwrap_err(),
            FaultScheduleError::BadDegradation { .. }
        ));
        assert_eq!(
            FaultSchedule::new().with_death(7, NodeId(2)).try_with_death(7, NodeId(2)).unwrap_err(),
            FaultScheduleError::DuplicateDeath { epoch: 7, node: NodeId(2) }
        );
        // The same node may still die at a *different* epoch (repair can
        // resurrect nothing, but the schedule itself stays permissive).
        assert!(FaultSchedule::new().with_death(7, NodeId(2)).try_with_death(8, NodeId(2)).is_ok());
        for (fault, why) in [
            (DataFault::StuckAt { level: nan }, "non-finite stuck-at level"),
            (DataFault::Drift { rate: f64::INFINITY }, "non-finite drift rate"),
            (DataFault::Spike { magnitude: nan }, "non-finite spike magnitude"),
            (DataFault::Noise { amplitude: 0.0 }, "noise amplitude must be finite and positive"),
            (DataFault::Noise { amplitude: -2.0 }, "noise amplitude must be finite and positive"),
        ] {
            assert_eq!(
                FaultSchedule::new().try_with_data_fault(1, NodeId(4), fault, 5).unwrap_err(),
                FaultScheduleError::BadDataFault { epoch: 1, node: NodeId(4), why }
            );
        }
        assert_eq!(
            FaultSchedule::new()
                .try_with_data_fault(1, NodeId(4), DataFault::Spike { magnitude: 1.0 }, 0)
                .unwrap_err(),
            FaultScheduleError::BadDataFault { epoch: 1, node: NodeId(4), why: "zero duration" }
        );
    }

    #[test]
    fn data_faults_activate_for_their_duration_only() {
        let s = FaultSchedule::new().with_data_fault(
            5,
            NodeId(2),
            DataFault::StuckAt { level: 99.0 },
            3,
        );
        assert!(s.has_data_faults());
        assert!(s.data_faults_at(4).is_empty());
        for epoch in 5..8 {
            assert_eq!(s.data_faults_at(epoch).len(), 1, "epoch {epoch}");
        }
        assert!(s.data_faults_at(8).is_empty());
        // Deaths and degradations are invisible to the data-fault view.
        let s = FaultSchedule::new().with_death(1, NodeId(1)).with_degradation(1, NodeId(2), 0.5);
        assert!(!s.has_data_faults());
        assert!(s.data_faults_at(1).is_empty());
    }

    #[test]
    fn corruption_math_per_kind() {
        let stuck = FaultSchedule::new().with_data_fault(
            0,
            NodeId(1),
            DataFault::StuckAt { level: 99.0 },
            10,
        );
        let mut v = vec![10.0, 20.0, 30.0];
        let applied = stuck.corrupt_values(2, &mut v);
        assert_eq!(v, vec![10.0, 99.0, 30.0]);
        assert_eq!(applied.len(), 1);
        assert_eq!(applied[0].node, NodeId(1));
        assert_eq!(applied[0].kind, "stuck_at");
        assert_eq!(applied[0].clean, 20.0);
        assert_eq!(applied[0].corrupted, 99.0);

        let drift =
            FaultSchedule::new().with_data_fault(4, NodeId(0), DataFault::Drift { rate: 2.0 }, 10);
        let mut v = vec![10.0];
        drift.corrupt_values(4, &mut v); // age 0 → one epoch of drift
        assert_eq!(v, vec![12.0]);
        let mut v = vec![10.0];
        drift.corrupt_values(7, &mut v); // age 3 → four epochs of drift
        assert_eq!(v, vec![18.0]);

        let spike = FaultSchedule::new().with_data_fault(
            1,
            NodeId(0),
            DataFault::Spike { magnitude: -5.0 },
            1,
        );
        let mut v = vec![10.0];
        spike.corrupt_values(1, &mut v);
        assert_eq!(v, vec![5.0]);
        let mut v = vec![10.0];
        spike.corrupt_values(2, &mut v); // duration 1: over by epoch 2
        assert_eq!(v, vec![10.0]);
    }

    #[test]
    fn noise_is_deterministic_bounded_and_seed_sensitive() {
        let mk = |seed| {
            FaultSchedule::new()
                .with_data_fault(0, NodeId(1), DataFault::Noise { amplitude: 3.0 }, 20)
                .with_noise_seed(seed)
        };
        let mut a = vec![50.0, 50.0];
        let mut b = vec![50.0, 50.0];
        mk(9).corrupt_values(5, &mut a);
        mk(9).corrupt_values(5, &mut b);
        assert_eq!(a, b, "same seed, same epoch: identical noise");
        assert!((a[1] - 50.0).abs() < 3.0, "noise bounded by amplitude: {}", a[1]);
        let mut c = vec![50.0, 50.0];
        mk(9).corrupt_values(6, &mut c);
        assert_ne!(a[1], c[1], "noise varies across epochs");
        let mut d = vec![50.0, 50.0];
        mk(10).corrupt_values(5, &mut d);
        assert_ne!(a[1], d[1], "noise varies with the schedule seed");
    }

    #[test]
    fn corruption_skips_dead_and_out_of_range_nodes() {
        let s = FaultSchedule::new()
            .with_data_fault(0, NodeId(1), DataFault::StuckAt { level: 99.0 }, 10)
            .with_data_fault(0, NodeId(7), DataFault::StuckAt { level: 99.0 }, 10);
        let mut v = vec![10.0, f64::NEG_INFINITY, 30.0];
        let applied = s.corrupt_values(3, &mut v);
        assert!(applied.is_empty(), "masked and out-of-range nodes are untouched");
        assert_eq!(v[1], f64::NEG_INFINITY);
    }

    #[test]
    fn random_data_faults_are_deterministic_and_distinct() {
        let fault = DataFault::Drift { rate: 1.5 };
        let a = FaultSchedule::random_data_faults(20, 5, 8, 30, fault, 3);
        let b = FaultSchedule::random_data_faults(20, 5, 8, 30, fault, 3);
        assert_eq!(a.data_faults_at(8), b.data_faults_at(8));
        assert_eq!(a.noise_seed(), 3);
        let hit = a.data_faults_at(8);
        assert_eq!(hit.len(), 5);
        let mut nodes: Vec<NodeId> = hit.iter().map(|&(n, _, _)| n).collect();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 5, "faults must hit distinct nodes");
        assert!(!nodes.contains(&NodeId(0)), "the root sources no readings");
    }
}
