//! Permanent-failure injection (Section 4.4, "permanent failures").
//!
//! The paper distinguishes two failure regimes: transient link failures,
//! folded into the planners' cost model ([`crate::failure`]), and permanent
//! node failures, which "require rebuilding the spanning tree and
//! re-optimizing the query plan". This module provides the *injection* side
//! of the permanent regime: a deterministic, seeded schedule of node deaths
//! and link degradations keyed by epoch, which the experiment runner
//! consumes to exercise tree repair and re-planning.
//!
//! The schedule is plain data — it never consumes randomness at run time,
//! so an empty schedule leaves a simulation's RNG stream (and therefore its
//! output) bit-for-bit unchanged.

use crate::node::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// One injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// The node stops responding permanently: its readings cease and its
    /// subtree must be re-parented around it.
    NodeDeath(NodeId),
    /// The link above `child` permanently worsens: its transient failure
    /// probability increases by `added_prob` (clamped to 1.0).
    LinkDegrade { child: NodeId, added_prob: f64 },
}

impl FaultEvent {
    /// The node this event concerns.
    pub fn node(&self) -> NodeId {
        match self {
            FaultEvent::NodeDeath(n) => *n,
            FaultEvent::LinkDegrade { child, .. } => *child,
        }
    }
}

/// A deterministic schedule of [`FaultEvent`]s keyed by epoch.
///
/// ```
/// use prospector_net::{FaultSchedule, NodeId};
///
/// let sched = FaultSchedule::new()
///     .with_death(10, NodeId(3))
///     .with_degradation(10, NodeId(5), 0.2);
/// assert_eq!(sched.deaths_at(10), vec![NodeId(3)]);
/// assert!(sched.deaths_at(11).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    events: BTreeMap<u64, Vec<FaultEvent>>,
}

impl FaultSchedule {
    /// An empty schedule (no faults ever fire).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// True when the schedule contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.values().map(Vec::len).sum()
    }

    /// Schedules `node` to die at the start of `epoch`.
    pub fn with_death(mut self, epoch: u64, node: NodeId) -> Self {
        self.events.entry(epoch).or_default().push(FaultEvent::NodeDeath(node));
        self
    }

    /// Schedules the link above `child` to degrade at the start of `epoch`.
    pub fn with_degradation(mut self, epoch: u64, child: NodeId, added_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&added_prob), "added probability out of range");
        self.events.entry(epoch).or_default().push(FaultEvent::LinkDegrade { child, added_prob });
        self
    }

    /// A schedule killing `deaths` distinct non-root nodes of an `n`-node
    /// network at epochs drawn uniformly from `epoch_range`, deterministic
    /// in `seed`. Node ids are drawn from `1..n` (the root never dies).
    pub fn random_deaths(
        n: usize,
        deaths: usize,
        epoch_range: std::ops::Range<u64>,
        seed: u64,
    ) -> Self {
        assert!(n >= 2, "need at least one non-root node");
        assert!(deaths < n, "cannot kill {deaths} of {} non-root nodes", n - 1);
        assert!(!epoch_range.is_empty(), "empty epoch range");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_5C8E_D01E_u64);
        let mut chosen: Vec<NodeId> = Vec::with_capacity(deaths);
        while chosen.len() < deaths {
            let candidate = NodeId::from_index(rng.random_range(1..n));
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        let mut sched = FaultSchedule::new();
        for node in chosen {
            let epoch = rng.random_range(epoch_range.clone());
            sched = sched.with_death(epoch, node);
        }
        sched
    }

    /// All events scheduled for `epoch`.
    pub fn events_at(&self, epoch: u64) -> &[FaultEvent] {
        self.events.get(&epoch).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Nodes scheduled to die at `epoch`.
    pub fn deaths_at(&self, epoch: u64) -> Vec<NodeId> {
        self.events_at(epoch)
            .iter()
            .filter_map(|e| match e {
                FaultEvent::NodeDeath(n) => Some(*n),
                _ => None,
            })
            .collect()
    }

    /// Link degradations scheduled for `epoch`, as `(child, added_prob)`.
    pub fn degradations_at(&self, epoch: u64) -> Vec<(NodeId, f64)> {
        self.events_at(epoch)
            .iter()
            .filter_map(|e| match e {
                FaultEvent::LinkDegrade { child, added_prob } => Some((*child, *added_prob)),
                _ => None,
            })
            .collect()
    }

    /// All scheduled deaths over the schedule's lifetime, in epoch order.
    pub fn all_deaths(&self) -> Vec<(u64, NodeId)> {
        self.events
            .iter()
            .flat_map(|(&epoch, events)| {
                events.iter().filter_map(move |e| match e {
                    FaultEvent::NodeDeath(n) => Some((epoch, *n)),
                    _ => None,
                })
            })
            .collect()
    }

    /// Epochs that have at least one scheduled event, in order.
    pub fn epochs(&self) -> impl Iterator<Item = u64> + '_ {
        self.events.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_has_no_events() {
        let s = FaultSchedule::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.deaths_at(0).is_empty());
        assert!(s.degradations_at(5).is_empty());
        assert!(s.all_deaths().is_empty());
    }

    #[test]
    fn builders_key_by_epoch() {
        let s = FaultSchedule::new()
            .with_death(4, NodeId(2))
            .with_death(4, NodeId(7))
            .with_degradation(9, NodeId(3), 0.25);
        assert_eq!(s.len(), 3);
        assert_eq!(s.deaths_at(4), vec![NodeId(2), NodeId(7)]);
        assert!(s.deaths_at(9).is_empty());
        assert_eq!(s.degradations_at(9), vec![(NodeId(3), 0.25)]);
        assert_eq!(s.all_deaths(), vec![(4, NodeId(2)), (4, NodeId(7))]);
        assert_eq!(s.epochs().collect::<Vec<_>>(), vec![4, 9]);
    }

    #[test]
    fn random_deaths_are_deterministic_and_distinct() {
        let a = FaultSchedule::random_deaths(20, 5, 10..40, 3);
        let b = FaultSchedule::random_deaths(20, 5, 10..40, 3);
        assert_eq!(a.all_deaths(), b.all_deaths());
        let deaths = a.all_deaths();
        assert_eq!(deaths.len(), 5);
        let mut nodes: Vec<NodeId> = deaths.iter().map(|&(_, n)| n).collect();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 5, "deaths must hit distinct nodes");
        for (epoch, node) in deaths {
            assert!((10..40).contains(&epoch));
            assert_ne!(node, NodeId(0), "the root never dies");
        }
    }

    #[test]
    fn random_deaths_vary_with_seed() {
        let a = FaultSchedule::random_deaths(30, 6, 0..100, 1);
        let b = FaultSchedule::random_deaths(30, 6, 0..100, 2);
        assert_ne!(a.all_deaths(), b.all_deaths());
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_degradation() {
        let _ = FaultSchedule::new().with_degradation(0, NodeId(1), 1.5);
    }
}
