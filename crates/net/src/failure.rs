//! Transient link failures (Section 4.4 of the paper).
//!
//! Permanent failures are handled by rebuilding the spanning tree and
//! re-optimizing; transient failures are frequent and are instead folded
//! into the cost model: "we simply increase the cost of each edge by the
//! product of its failure probability and the extra cost incurred by
//! re-routing". This module provides both the statistical model used by
//! planners and the sampling hook used by the execution simulator to
//! inject actual failures.

use crate::node::NodeId;
use rand::rngs::StdRng;
use rand::RngExt;
use std::fmt;

/// Errors from building a [`FailureModel`].
#[derive(Debug, Clone, PartialEq)]
pub enum FailureModelError {
    /// The per-edge probability vector does not cover every node of the
    /// topology it is meant for.
    LengthMismatch { expected: usize, got: usize },
    /// A probability is outside `[0, 1]`.
    ProbOutOfRange { index: usize, prob: f64 },
}

impl fmt::Display for FailureModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureModelError::LengthMismatch { expected, got } => {
                write!(f, "failure model covers {got} nodes but the topology has {expected}")
            }
            FailureModelError::ProbOutOfRange { index, prob } => {
                write!(f, "failure probability {prob} at node {index} is outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for FailureModelError {}

/// Per-edge transient failure statistics.
#[derive(Debug, Clone)]
pub struct FailureModel {
    /// Probability that a unicast on edge `e` (identified by child node)
    /// fails and must be rerouted. Indexed by node id; the root's entry is
    /// unused.
    fail_prob: Vec<f64>,
    /// Extra energy (mJ) spent rerouting one failed message around an edge.
    reroute_penalty_mj: f64,
}

impl FailureModel {
    /// A model in which no edge ever fails.
    pub fn none(n: usize) -> Self {
        FailureModel { fail_prob: vec![0.0; n], reroute_penalty_mj: 0.0 }
    }

    /// The same failure probability on every edge.
    pub fn uniform(n: usize, prob: f64, reroute_penalty_mj: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        FailureModel { fail_prob: vec![prob; n], reroute_penalty_mj }
    }

    /// Per-edge probabilities (collected as statistics by the network).
    /// `n` is the node count of the topology this model is for; the vector
    /// must have exactly one entry per node (the root's entry is unused)
    /// and every probability must lie in `[0, 1]`.
    pub fn per_edge(
        n: usize,
        fail_prob: Vec<f64>,
        reroute_penalty_mj: f64,
    ) -> Result<Self, FailureModelError> {
        if fail_prob.len() != n {
            return Err(FailureModelError::LengthMismatch { expected: n, got: fail_prob.len() });
        }
        for (index, &prob) in fail_prob.iter().enumerate() {
            if !(0.0..=1.0).contains(&prob) {
                return Err(FailureModelError::ProbOutOfRange { index, prob });
            }
        }
        Ok(FailureModel { fail_prob, reroute_penalty_mj })
    }

    /// Number of nodes this model covers.
    pub fn len(&self) -> usize {
        self.fail_prob.len()
    }

    /// True when the model covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.fail_prob.is_empty()
    }

    /// Permanently worsens the link above `child` by `added_prob`
    /// (saturating at probability 1), e.g. after a
    /// [`FaultEvent::LinkDegrade`](crate::fault::FaultEvent) fires.
    ///
    /// Mirrors [`FailureModel::per_edge`]'s validation: a non-finite or
    /// out-of-range `added_prob` is rejected rather than poisoning the
    /// model (NaN would propagate into every later `sample_failure` and
    /// cost estimate).
    pub fn degrade(&mut self, child: NodeId, added_prob: f64) -> Result<(), FailureModelError> {
        if !added_prob.is_finite() || !(0.0..=1.0).contains(&added_prob) {
            return Err(FailureModelError::ProbOutOfRange {
                index: child.index(),
                prob: added_prob,
            });
        }
        let p = &mut self.fail_prob[child.index()];
        *p = (*p + added_prob).min(1.0);
        Ok(())
    }

    /// Failure probability of the edge above `child`.
    pub fn prob(&self, child: NodeId) -> f64 {
        self.fail_prob[child.index()]
    }

    /// Extra energy charged when a message on this edge must be rerouted.
    pub fn reroute_penalty(&self) -> f64 {
        self.reroute_penalty_mj
    }

    /// Expected extra cost per message on the edge above `child`; planners
    /// add this to the per-message cost (Section 4.4).
    pub fn expected_extra_cost(&self, child: NodeId) -> f64 {
        self.prob(child) * self.reroute_penalty_mj
    }

    /// Samples whether a message on the edge above `child` fails.
    pub fn sample_failure(&self, child: NodeId, rng: &mut StdRng) -> bool {
        let p = self.prob(child);
        p > 0.0 && rng.random_bool(p)
    }

    /// True when the model can never produce a failure.
    pub fn is_trivial(&self) -> bool {
        self.fail_prob.iter().all(|&p| p == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn none_never_fails() {
        let m = FailureModel::none(4);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(m.is_trivial());
        for _ in 0..100 {
            assert!(!m.sample_failure(NodeId(2), &mut rng));
        }
        assert_eq!(m.expected_extra_cost(NodeId(1)), 0.0);
    }

    #[test]
    fn uniform_sampling_matches_probability() {
        let m = FailureModel::uniform(4, 0.3, 2.0);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 20_000;
        let fails = (0..trials).filter(|_| m.sample_failure(NodeId(1), &mut rng)).count();
        let rate = fails as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed rate {rate}");
        assert!((m.expected_extra_cost(NodeId(1)) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn per_edge_probabilities() {
        let m = FailureModel::per_edge(3, vec![0.0, 0.5, 1.0], 1.0).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.prob(NodeId(0)), 0.0);
        assert_eq!(m.prob(NodeId(2)), 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(m.sample_failure(NodeId(2), &mut rng));
        assert!(!m.sample_failure(NodeId(0), &mut rng));
    }

    #[test]
    fn per_edge_rejects_length_mismatch() {
        assert_eq!(
            FailureModel::per_edge(4, vec![0.1; 3], 1.0).unwrap_err(),
            FailureModelError::LengthMismatch { expected: 4, got: 3 }
        );
    }

    #[test]
    fn per_edge_rejects_bad_probability() {
        assert_eq!(
            FailureModel::per_edge(2, vec![0.1, 1.5], 1.0).unwrap_err(),
            FailureModelError::ProbOutOfRange { index: 1, prob: 1.5 }
        );
    }

    #[test]
    fn degrade_accumulates_and_clamps() {
        let mut m = FailureModel::uniform(3, 0.2, 1.0);
        m.degrade(NodeId(1), 0.3).unwrap();
        assert!((m.prob(NodeId(1)) - 0.5).abs() < 1e-12);
        assert!((m.prob(NodeId(2)) - 0.2).abs() < 1e-12, "other edges untouched");
        m.degrade(NodeId(1), 0.9).unwrap();
        assert_eq!(m.prob(NodeId(1)), 1.0, "clamped to certainty");
        assert!(!m.is_trivial());
    }

    #[test]
    fn degrade_rejects_invalid_added_probability() {
        // Regression: `degrade` must mirror `per_edge`'s validation —
        // out-of-range and non-finite increments are errors, and a failed
        // call leaves the model untouched.
        let mut m = FailureModel::uniform(3, 0.2, 1.0);
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = m.degrade(NodeId(1), bad).unwrap_err();
            match err {
                FailureModelError::ProbOutOfRange { index, prob } => {
                    assert_eq!(index, 1);
                    assert!(prob.is_nan() == bad.is_nan() && (prob.is_nan() || prob == bad));
                }
                other => panic!("unexpected error {other:?}"),
            }
            assert!((m.prob(NodeId(1)) - 0.2).abs() < 1e-12, "model unchanged after {bad}");
        }
        assert!(m.prob(NodeId(1)).is_finite());
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_probability() {
        FailureModel::uniform(2, 1.5, 0.0);
    }
}
