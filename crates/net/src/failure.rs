//! Transient link failures (Section 4.4 of the paper).
//!
//! Permanent failures are handled by rebuilding the spanning tree and
//! re-optimizing; transient failures are frequent and are instead folded
//! into the cost model: "we simply increase the cost of each edge by the
//! product of its failure probability and the extra cost incurred by
//! re-routing". This module provides both the statistical model used by
//! planners and the sampling hook used by the execution simulator to
//! inject actual failures.

use crate::node::NodeId;
use rand::rngs::StdRng;
use rand::RngExt;

/// Per-edge transient failure statistics.
#[derive(Debug, Clone)]
pub struct FailureModel {
    /// Probability that a unicast on edge `e` (identified by child node)
    /// fails and must be rerouted. Indexed by node id; the root's entry is
    /// unused.
    fail_prob: Vec<f64>,
    /// Extra energy (mJ) spent rerouting one failed message around an edge.
    reroute_penalty_mj: f64,
}

impl FailureModel {
    /// A model in which no edge ever fails.
    pub fn none(n: usize) -> Self {
        FailureModel { fail_prob: vec![0.0; n], reroute_penalty_mj: 0.0 }
    }

    /// The same failure probability on every edge.
    pub fn uniform(n: usize, prob: f64, reroute_penalty_mj: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        FailureModel { fail_prob: vec![prob; n], reroute_penalty_mj }
    }

    /// Per-edge probabilities (collected as statistics by the network).
    pub fn per_edge(fail_prob: Vec<f64>, reroute_penalty_mj: f64) -> Self {
        assert!(fail_prob.iter().all(|p| (0.0..=1.0).contains(p)));
        FailureModel { fail_prob, reroute_penalty_mj }
    }

    /// Failure probability of the edge above `child`.
    pub fn prob(&self, child: NodeId) -> f64 {
        self.fail_prob[child.index()]
    }

    /// Extra energy charged when a message on this edge must be rerouted.
    pub fn reroute_penalty(&self) -> f64 {
        self.reroute_penalty_mj
    }

    /// Expected extra cost per message on the edge above `child`; planners
    /// add this to the per-message cost (Section 4.4).
    pub fn expected_extra_cost(&self, child: NodeId) -> f64 {
        self.prob(child) * self.reroute_penalty_mj
    }

    /// Samples whether a message on the edge above `child` fails.
    pub fn sample_failure(&self, child: NodeId, rng: &mut StdRng) -> bool {
        let p = self.prob(child);
        p > 0.0 && rng.random_bool(p)
    }

    /// True when the model can never produce a failure.
    pub fn is_trivial(&self) -> bool {
        self.fail_prob.iter().all(|&p| p == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn none_never_fails() {
        let m = FailureModel::none(4);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(m.is_trivial());
        for _ in 0..100 {
            assert!(!m.sample_failure(NodeId(2), &mut rng));
        }
        assert_eq!(m.expected_extra_cost(NodeId(1)), 0.0);
    }

    #[test]
    fn uniform_sampling_matches_probability() {
        let m = FailureModel::uniform(4, 0.3, 2.0);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 20_000;
        let fails = (0..trials).filter(|_| m.sample_failure(NodeId(1), &mut rng)).count();
        let rate = fails as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed rate {rate}");
        assert!((m.expected_extra_cost(NodeId(1)) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn per_edge_probabilities() {
        let m = FailureModel::per_edge(vec![0.0, 0.5, 1.0], 1.0);
        assert_eq!(m.prob(NodeId(0)), 0.0);
        assert_eq!(m.prob(NodeId(2)), 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(m.sample_failure(NodeId(2), &mut rng));
        assert!(!m.sample_failure(NodeId(0), &mut rng));
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_probability() {
        FailureModel::uniform(2, 1.5, 0.0);
    }
}
