//! Node placement and spanning-tree construction.
//!
//! Following Section 5: "we start with a given rectangular space and a root
//! node, place a number of nodes randomly within the space, and then, while
//! adhering to mote radio distance limits, build a spanning tree over them
//! where each node is as few hops from the root as possible" — i.e. a BFS
//! (min-hop) tree over the radio-connectivity graph.

use crate::node::NodeId;
use crate::topology::{RepairError, Topology, TopologyError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// A point in the deployment field (meters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Position {
    pub x: f64,
    pub y: f64,
}

impl Position {
    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A deployed network: positions plus the routing tree built over them.
#[derive(Debug, Clone)]
pub struct Network {
    pub topology: Topology,
    pub positions: Vec<Position>,
    /// Zone id per node for contention-zone layouts (`None` = background).
    pub zone: Vec<Option<usize>>,
}

impl Network {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.topology.len()
    }

    /// True when the network has no nodes (never for a built network).
    pub fn is_empty(&self) -> bool {
        self.topology.is_empty()
    }

    /// Rebuilds the routing tree around permanently dead nodes using the
    /// deployment geometry.
    ///
    /// Unlike [`Topology::repair`], which re-parents orphans onto their
    /// nearest surviving *ancestor*, this uses node positions: each orphaned
    /// subtree re-attaches at its root to the Euclidean-nearest node already
    /// connected to the query station, greedily nearest-subtree-first, so
    /// repaired links mirror what a real re-discovery pass would find.
    /// Attachment ignores the original radio range — after a failure a
    /// deployment raises transmit power or accepts a marginal link rather
    /// than stay partitioned. Dead nodes are parked as inert leaves under
    /// the root exactly as in [`Topology::repair`]; all ids are preserved.
    pub fn repair(&self, dead: &[NodeId]) -> Result<Network, RepairError> {
        let n = self.len();
        let root = self.topology.root();
        let mut is_dead = vec![false; n];
        for &d in dead {
            if d.index() >= n {
                return Err(RepairError::NodeOutOfRange(d));
            }
            if d == root {
                return Err(RepairError::RootDead);
            }
            is_dead[d.index()] = true;
        }

        let mut parent: Vec<Option<NodeId>> = self.topology.parent_vec();
        for i in 0..n {
            if is_dead[i] {
                parent[i] = Some(root);
            }
        }

        // Survivors still reachable from the root through surviving nodes.
        let mut connected = vec![false; n];
        let mut stack = vec![root];
        connected[root.index()] = true;
        while let Some(u) = stack.pop() {
            for &c in self.topology.children(u) {
                if !is_dead[c.index()] && !connected[c.index()] {
                    connected[c.index()] = true;
                    stack.push(c);
                }
            }
        }

        // Orphaned subtree roots: survivors whose parent died.
        let mut pending: Vec<NodeId> = (0..n)
            .map(NodeId::from_index)
            .filter(|&u| {
                !is_dead[u.index()]
                    && !connected[u.index()]
                    && self.topology.parent(u).is_some_and(|p| is_dead[p.index()])
            })
            .collect();

        // Greedy: repeatedly attach the subtree whose root is closest to
        // the connected component, then let the newly attached subtree
        // serve as an attachment point for the rest. Ties break on node
        // index, keeping the repair fully deterministic.
        while !pending.is_empty() {
            let mut best: Option<(f64, usize, NodeId)> = None; // (dist, pending idx, target)
            for (pi, &o) in pending.iter().enumerate() {
                for (c, &conn) in connected.iter().enumerate() {
                    if !conn {
                        continue;
                    }
                    let d = self.positions[o.index()].distance(&self.positions[c]);
                    let beats = match best {
                        None => true,
                        Some((bd, bpi, bc)) => {
                            d < bd
                                || (d == bd && (o.index(), c) < (pending[bpi].index(), bc.index()))
                        }
                    };
                    if beats {
                        best = Some((d, pi, NodeId::from_index(c)));
                    }
                }
            }
            let (_, pi, target) = best.expect("root is always connected");
            let o = pending.swap_remove(pi);
            parent[o.index()] = Some(target);
            for u in self.topology.subtree(o) {
                if !is_dead[u.index()] {
                    connected[u.index()] = true;
                }
            }
        }

        let topology =
            Topology::from_parents(root, parent).expect("greedy re-attachment preserves treeness");
        Ok(Network { topology, positions: self.positions.clone(), zone: self.zone.clone() })
    }
}

/// Errors from network construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// The radio graph is disconnected even after the configured retries.
    Disconnected { attempts: usize },
    /// Invalid tree structure (should not happen for BFS construction).
    Topology(TopologyError),
    /// Parameters out of range (e.g. zero nodes).
    BadParameters(&'static str),
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::Disconnected { attempts } => {
                write!(f, "radio graph disconnected after {attempts} placement attempts")
            }
            PlacementError::Topology(e) => write!(f, "topology error: {e}"),
            PlacementError::BadParameters(s) => write!(f, "bad parameters: {s}"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Builds the min-hop (BFS) spanning tree over the unit-disk radio graph.
/// Node 0 is the root. Returns `None` when the graph is disconnected.
pub fn min_hop_tree(positions: &[Position], radio_range: f64) -> Option<Topology> {
    let n = positions.len();
    if n == 0 {
        return None;
    }
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[0] = true;
    queue.push_back(0usize);
    let mut count = 1;
    while let Some(u) = queue.pop_front() {
        // Deterministic neighbor order: index order.
        for v in 0..n {
            if !visited[v] && positions[u].distance(&positions[v]) <= radio_range {
                visited[v] = true;
                parent[v] = Some(NodeId::from_index(u));
                queue.push_back(v);
                count += 1;
            }
        }
    }
    if count != n {
        return None;
    }
    Topology::from_parents(NodeId(0), parent).ok()
}

/// Contention-zone layout parameters (Figures 5–7 of the paper): zones are
/// "spaced evenly around its perimeter with the query root in the center".
#[derive(Debug, Clone)]
pub struct ZoneLayout {
    /// Number of contention zones.
    pub zones: usize,
    /// Nodes per zone (the paper uses `2k`).
    pub nodes_per_zone: usize,
    /// Radius of the cluster each zone's nodes are scattered in.
    pub zone_radius: f64,
}

/// Builder for random deployments.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    n: usize,
    width: f64,
    height: f64,
    radio_range: f64,
    seed: u64,
    max_attempts: usize,
    zone_layout: Option<ZoneLayout>,
}

impl NetworkBuilder {
    /// `n` nodes (including the root) in a `width × height` field.
    pub fn new(n: usize, width: f64, height: f64, radio_range: f64) -> Self {
        NetworkBuilder {
            n,
            width,
            height,
            radio_range,
            seed: 0,
            max_attempts: 64,
            zone_layout: None,
        }
    }

    /// RNG seed (placements are fully deterministic given the seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// How many placements to try before giving up on connectivity.
    pub fn max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Adds contention zones around the perimeter (root in the center);
    /// `n` then counts only the background nodes.
    pub fn zones(mut self, layout: ZoneLayout) -> Self {
        self.zone_layout = Some(layout);
        self
    }

    /// Places nodes and builds the min-hop tree, retrying placement with
    /// fresh randomness until the radio graph is connected.
    pub fn build(&self) -> Result<Network, PlacementError> {
        if self.n == 0 {
            return Err(PlacementError::BadParameters("n must be positive"));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        for attempt in 0..self.max_attempts {
            let _ = attempt;
            let (positions, zone) = self.place(&mut rng);
            if let Some(topology) = min_hop_tree(&positions, self.radio_range) {
                return Ok(Network { topology, positions, zone });
            }
        }
        Err(PlacementError::Disconnected { attempts: self.max_attempts })
    }

    fn place(&self, rng: &mut StdRng) -> (Vec<Position>, Vec<Option<usize>>) {
        let mut positions = Vec::new();
        let mut zone = Vec::new();

        match &self.zone_layout {
            None => {
                // Root in the middle of the field, the rest uniform.
                positions.push(Position { x: self.width / 2.0, y: self.height / 2.0 });
                zone.push(None);
                for _ in 1..self.n {
                    positions.push(Position {
                        x: rng.random_range(0.0..self.width),
                        y: rng.random_range(0.0..self.height),
                    });
                    zone.push(None);
                }
            }
            Some(layout) => {
                let cx = self.width / 2.0;
                let cy = self.height / 2.0;
                positions.push(Position { x: cx, y: cy });
                zone.push(None);
                // Background nodes fill the field so zones stay connected.
                for _ in 1..self.n {
                    positions.push(Position {
                        x: rng.random_range(0.0..self.width),
                        y: rng.random_range(0.0..self.height),
                    });
                    zone.push(None);
                }
                // Zones evenly spaced on an inscribed ellipse near the
                // perimeter.
                let rx = self.width * 0.42;
                let ry = self.height * 0.42;
                for z in 0..layout.zones {
                    let angle = std::f64::consts::TAU * z as f64 / layout.zones as f64;
                    let zx = cx + rx * angle.cos();
                    let zy = cy + ry * angle.sin();
                    for _ in 0..layout.nodes_per_zone {
                        let a = rng.random_range(0.0..std::f64::consts::TAU);
                        let r = layout.zone_radius * rng.random_range(0.0f64..1.0).sqrt();
                        positions.push(Position { x: zx + r * a.cos(), y: zy + r * a.sin() });
                        zone.push(Some(z));
                    }
                }
            }
        }
        (positions, zone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_connected_network_deterministically() {
        let a = NetworkBuilder::new(60, 100.0, 100.0, 20.0).seed(7).build().unwrap();
        let b = NetworkBuilder::new(60, 100.0, 100.0, 20.0).seed(7).build().unwrap();
        assert_eq!(a.len(), 60);
        assert_eq!(a.topology.root(), NodeId(0));
        for i in 0..a.len() {
            assert_eq!(a.positions[i], b.positions[i], "same seed must reproduce placement");
            assert_eq!(
                a.topology.parent(NodeId::from_index(i)),
                b.topology.parent(NodeId::from_index(i))
            );
        }
    }

    #[test]
    fn tree_respects_radio_range() {
        let net = NetworkBuilder::new(80, 100.0, 100.0, 18.0).seed(3).build().unwrap();
        for e in net.topology.edges() {
            let p = net.topology.parent(e).unwrap();
            let d = net.positions[e.index()].distance(&net.positions[p.index()]);
            assert!(d <= 18.0 + 1e-9, "edge {e} spans {d} > range");
        }
    }

    #[test]
    fn bfs_tree_is_min_hop() {
        // In a BFS tree, a child's depth is exactly its parent's + 1 and no
        // neighbor of a node can be more than one level shallower.
        let net = NetworkBuilder::new(50, 80.0, 80.0, 20.0).seed(11).build().unwrap();
        let t = &net.topology;
        for i in 0..net.len() {
            let u = NodeId::from_index(i);
            for j in 0..net.len() {
                let v = NodeId::from_index(j);
                if net.positions[i].distance(&net.positions[j]) <= 20.0 {
                    assert!(
                        t.depth(u) + 1 >= t.depth(v),
                        "neighbor {v} is ≥2 hops shallower than {u}: BFS violated"
                    );
                }
            }
        }
    }

    #[test]
    fn disconnected_when_range_too_small() {
        let err = NetworkBuilder::new(30, 1000.0, 1000.0, 1.0)
            .seed(5)
            .max_attempts(3)
            .build()
            .unwrap_err();
        assert!(matches!(err, PlacementError::Disconnected { attempts: 3 }));
    }

    #[test]
    fn zone_layout_tags_members() {
        let net = NetworkBuilder::new(40, 100.0, 100.0, 25.0)
            .seed(9)
            .zones(ZoneLayout { zones: 6, nodes_per_zone: 10, zone_radius: 5.0 })
            .build()
            .unwrap();
        assert_eq!(net.len(), 40 + 60);
        let zone_counts: Vec<usize> =
            (0..6).map(|z| net.zone.iter().filter(|&&q| q == Some(z)).count()).collect();
        assert_eq!(zone_counts, vec![10; 6]);
        assert_eq!(net.zone[0], None, "root is not in a zone");
        // Zone members are clustered: all within 2×radius of each other.
        for z in 0..6 {
            let members: Vec<usize> = (0..net.len()).filter(|&i| net.zone[i] == Some(z)).collect();
            for &a in &members {
                for &b in &members {
                    assert!(net.positions[a].distance(&net.positions[b]) <= 10.0 + 1e-9);
                }
            }
        }
    }

    #[test]
    fn rejects_empty() {
        assert!(NetworkBuilder::new(0, 10.0, 10.0, 5.0).build().is_err());
    }

    #[test]
    fn repair_reconnects_all_survivors() {
        let net = NetworkBuilder::new(40, 100.0, 100.0, 25.0).seed(13).build().unwrap();
        // Kill the root's highest-fanout child to orphan a real subtree.
        let victim = *net
            .topology
            .children(NodeId(0))
            .iter()
            .max_by_key(|&&c| net.topology.subtree_size(c))
            .unwrap();
        assert!(net.topology.subtree_size(victim) > 1, "victim must have a subtree");
        let repaired = net.repair(&[victim]).unwrap();

        assert_eq!(repaired.len(), net.len(), "node ids preserved");
        assert_eq!(repaired.topology.parent(victim), Some(NodeId(0)), "dead node parked");
        assert!(repaired.topology.is_leaf(victim));
        // Every survivor reaches the root without passing through the dead
        // node (from_parents already guarantees connectivity).
        for i in 1..repaired.len() {
            let u = NodeId::from_index(i);
            if u == victim {
                continue;
            }
            assert!(
                repaired.topology.path_to_root(u).all(|v| v != victim),
                "survivor {u} still routes through the dead node"
            );
        }
    }

    #[test]
    fn repair_attaches_orphans_to_geometric_neighbors() {
        // Hand-built line: root at x=0, then nodes at x=10,20,30; node at
        // x=20 dies. Its child (x=30) is nearer to x=20's neighbor... with
        // everything on a line the nearest connected node to x=30 is x=10.
        let positions = vec![
            Position { x: 0.0, y: 0.0 },
            Position { x: 10.0, y: 0.0 },
            Position { x: 20.0, y: 0.0 },
            Position { x: 30.0, y: 0.0 },
        ];
        let topology = min_hop_tree(&positions, 12.0).unwrap();
        let net = Network { topology, positions, zone: vec![None; 4] };
        let repaired = net.repair(&[NodeId(2)]).unwrap();
        assert_eq!(
            repaired.topology.parent(NodeId(3)),
            Some(NodeId(1)),
            "orphan re-attaches to the nearest surviving connected node"
        );
        assert_eq!(repaired.topology.parent(NodeId(2)), Some(NodeId(0)));
    }

    #[test]
    fn repair_is_deterministic() {
        let net = NetworkBuilder::new(50, 120.0, 120.0, 25.0).seed(21).build().unwrap();
        let dead = [NodeId(5), NodeId(12), NodeId(30)];
        let a = net.repair(&dead).unwrap();
        let b = net.repair(&dead).unwrap();
        for i in 0..net.len() {
            let u = NodeId::from_index(i);
            assert_eq!(a.topology.parent(u), b.topology.parent(u));
        }
    }

    #[test]
    fn repair_rejects_dead_root_and_out_of_range() {
        let net = NetworkBuilder::new(10, 50.0, 50.0, 30.0).seed(2).build().unwrap();
        assert_eq!(net.repair(&[NodeId(0)]).unwrap_err(), RepairError::RootDead);
        assert_eq!(net.repair(&[NodeId(99)]).unwrap_err(), RepairError::NodeOutOfRange(NodeId(99)));
    }

    #[test]
    fn position_distance() {
        let a = Position { x: 0.0, y: 0.0 };
        let b = Position { x: 3.0, y: 4.0 };
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }
}
