//! The routing spanning tree.
//!
//! Following Section 2 of the paper, the network is organized as a spanning
//! tree rooted at the query station. Every query plan is an assignment of
//! bandwidth to tree edges; an edge is identified by its child node.

use crate::node::NodeId;
use std::fmt;

/// Errors detected while building a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The root node must have `parent == None`.
    RootHasParent(NodeId),
    /// A non-root node is missing a parent.
    MissingParent(NodeId),
    /// A parent index is out of range.
    ParentOutOfRange { node: NodeId, parent: NodeId },
    /// The parent pointers contain a cycle or a component detached from the
    /// root.
    NotATree,
    /// The node set is empty.
    Empty,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::RootHasParent(n) => write!(f, "root {n} has a parent"),
            TopologyError::MissingParent(n) => write!(f, "non-root node {n} has no parent"),
            TopologyError::ParentOutOfRange { node, parent } => {
                write!(f, "node {node} has out-of-range parent {parent}")
            }
            TopologyError::NotATree => write!(f, "parent pointers do not form a tree"),
            TopologyError::Empty => write!(f, "topology has no nodes"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Errors from [`Topology::repair`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairError {
    /// The root (query station) is in the dead set; there is nothing to
    /// re-parent onto, the deployment is lost.
    RootDead,
    /// A dead node id is outside the topology.
    NodeOutOfRange(NodeId),
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::RootDead => write!(f, "cannot repair: the root node is dead"),
            RepairError::NodeOutOfRange(n) => write!(f, "dead node {n} is out of range"),
        }
    }
}

impl std::error::Error for RepairError {}

/// Rooted spanning tree over `n` nodes with precomputed traversal orders
/// and subtree metadata.
///
/// ```
/// use prospector_net::{NodeId, Topology};
///
/// // 0 <- 1 <- 2 plus 0 <- 3
/// let t = Topology::from_parents(
///     NodeId(0),
///     vec![None, Some(NodeId(0)), Some(NodeId(1)), Some(NodeId(0))],
/// ).unwrap();
/// assert_eq!(t.subtree_size(NodeId(1)), 2);
/// assert_eq!(t.depth(NodeId(2)), 2);
/// assert_eq!(t.edges_to_root(NodeId(2)).count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    /// Children in CSR layout: node `i`'s children are
    /// `child_arena[child_off[i]..child_off[i+1]]`, in ascending child id.
    /// One arena allocation for the whole tree instead of a `Vec` per node
    /// — at 50k nodes the per-node-vec layout cost one heap allocation and
    /// one pointer chase per node on every traversal.
    child_arena: Vec<NodeId>,
    child_off: Vec<u32>,
    depth: Vec<u32>,
    /// Nodes in an order where every child precedes its parent.
    post_order: Vec<NodeId>,
    subtree_size: Vec<u32>,
}

impl Topology {
    /// Builds a topology from parent pointers. `parent[root] == None`,
    /// every other entry points at the node's parent.
    pub fn from_parents(root: NodeId, parent: Vec<Option<NodeId>>) -> Result<Self, TopologyError> {
        let n = parent.len();
        if n == 0 {
            return Err(TopologyError::Empty);
        }
        if parent[root.index()].is_some() {
            return Err(TopologyError::RootHasParent(root));
        }
        // Children in CSR form: count per parent, prefix-sum into offsets,
        // fill in ascending child id (the same per-parent order the old
        // per-node `Vec::push` loop produced, so traversal — and with it
        // every merge order and trace — is unchanged).
        let mut counts = vec![0u32; n];
        for (i, p) in parent.iter().enumerate() {
            let node = NodeId::from_index(i);
            match p {
                None if node != root => return Err(TopologyError::MissingParent(node)),
                None => {}
                Some(p) => {
                    if p.index() >= n {
                        return Err(TopologyError::ParentOutOfRange { node, parent: *p });
                    }
                    counts[p.index()] += 1;
                }
            }
        }
        let mut child_off = vec![0u32; n + 1];
        for i in 0..n {
            child_off[i + 1] = child_off[i] + counts[i];
        }
        let mut cursor = child_off[..n].to_vec();
        let mut child_arena = vec![NodeId(0); n - 1];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                child_arena[cursor[p.index()] as usize] = NodeId::from_index(i);
                cursor[p.index()] += 1;
            }
        }

        // BFS from the root verifies connectivity/acyclicity and yields the
        // level order; reversing it gives a valid post order (children
        // before parents).
        let mut order = Vec::with_capacity(n);
        let mut depth = vec![0u32; n];
        order.push(root);
        let mut head = 0;
        while head < order.len() {
            let u = order[head];
            head += 1;
            let (lo, hi) = (child_off[u.index()] as usize, child_off[u.index() + 1] as usize);
            for &c in &child_arena[lo..hi] {
                depth[c.index()] = depth[u.index()] + 1;
                order.push(c);
            }
        }
        if order.len() != n {
            return Err(TopologyError::NotATree);
        }
        let post_order: Vec<NodeId> = order.iter().rev().copied().collect();

        let mut subtree_size = vec![1u32; n];
        for &u in &post_order {
            if let Some(p) = parent[u.index()] {
                subtree_size[p.index()] += subtree_size[u.index()];
            }
        }

        Ok(Topology { root, parent, child_arena, child_off, depth, post_order, subtree_size })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the tree has no nodes (never true for a built topology).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The root node (the query station).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `n`, or `None` for the root.
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.parent[n.index()]
    }

    /// A copy of the full parent-pointer vector, e.g. as the starting point
    /// for building a modified tree.
    pub fn parent_vec(&self) -> Vec<Option<NodeId>> {
        self.parent.clone()
    }

    /// Children of `n` (a slice of the CSR arena, in ascending child id).
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        let i = n.index();
        &self.child_arena[self.child_off[i] as usize..self.child_off[i + 1] as usize]
    }

    /// Number of tree edges between `n` and the root; this also equals the
    /// number of edges a value from `n` crosses to reach the query station.
    pub fn depth(&self, n: NodeId) -> u32 {
        self.depth[n.index()]
    }

    /// Height of the tree (max depth).
    pub fn height(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// True when `n` has no children.
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.child_off[n.index()] == self.child_off[n.index() + 1]
    }

    /// Nodes in post order (every child precedes its parent); collection
    /// phases traverse this order.
    pub fn post_order(&self) -> &[NodeId] {
        &self.post_order
    }

    /// Nodes in level (BFS) order; distribution phases traverse this order.
    pub fn level_order(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.post_order.iter().rev().copied()
    }

    /// Number of nodes in the subtree rooted at `n` (including `n`).
    pub fn subtree_size(&self, n: NodeId) -> usize {
        self.subtree_size[n.index()] as usize
    }

    /// Path of nodes from `n` to the root, inclusive on both ends.
    pub fn path_to_root(&self, n: NodeId) -> PathToRoot<'_> {
        PathToRoot { topo: self, cur: Some(n) }
    }

    /// Edges (identified by child node) crossed by a value travelling from
    /// `n` to the root: `n`, `parent(n)`, … down to the child of the root.
    pub fn edges_to_root(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.path_to_root(n).filter(move |&u| u != self.root)
    }

    /// All nodes of the subtree rooted at `n` (preorder).
    pub fn subtree(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.subtree_size(n));
        let mut stack = vec![n];
        while let Some(u) = stack.pop() {
            out.push(u);
            stack.extend_from_slice(self.children(u));
        }
        out
    }

    /// True when `anc` lies on the path from `node` to the root
    /// (`anc == node` counts).
    pub fn is_ancestor(&self, anc: NodeId, node: NodeId) -> bool {
        self.path_to_root(node).any(|u| u == anc)
    }

    /// Total number of edges (`len() - 1`).
    pub fn num_edges(&self) -> usize {
        self.len() - 1
    }

    /// Iterates over all edges, identified by their child node.
    pub fn edges(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len() as u32).map(NodeId).filter(move |&n| n != self.root)
    }

    /// Rebuilds the tree around permanently failed nodes (Section 4.4:
    /// permanent failures "require rebuilding the spanning tree").
    ///
    /// Every surviving node whose path to the root passes through a dead
    /// node is re-parented onto its nearest surviving ancestor, so whole
    /// orphaned subtrees re-attach in one step and all node ids are
    /// preserved. The dead nodes themselves are parked as inert leaves
    /// under the root — they keep their ids so plans, meters and sample
    /// windows stay index-compatible, but they have no children and it is
    /// the caller's job to keep them out of plans and answers.
    ///
    /// Fails with [`RepairError::RootDead`] when the root is in `dead`
    /// (the query station is gone; no repair can reconnect the deployment)
    /// and [`RepairError::NodeOutOfRange`] for ids outside the tree.
    pub fn repair(&self, dead: &[NodeId]) -> Result<Topology, RepairError> {
        let n = self.len();
        let mut is_dead = vec![false; n];
        for &d in dead {
            if d.index() >= n {
                return Err(RepairError::NodeOutOfRange(d));
            }
            if d == self.root {
                return Err(RepairError::RootDead);
            }
            is_dead[d.index()] = true;
        }

        // Memoized surviving-ancestor resolution: `resolved[i]` is the
        // nearest surviving ancestor of `i` (itself when alive). Computed
        // in level order so a node's parent is always resolved first —
        // one O(1) step per node instead of the old per-node climb up
        // `self.parent`, which was O(n·depth) (quadratic on a chain of
        // deaths: every survivor re-walked the same dead prefix).
        let mut resolved: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        for u in self.level_order() {
            if is_dead[u.index()] {
                // The root was rejected above, so `u` has a parent, and
                // level order guarantees it is already resolved.
                let p = self.parent[u.index()].expect("dead root was rejected above");
                resolved[u.index()] = resolved[p.index()];
            }
        }

        let mut parent = self.parent.clone();
        for i in 0..n {
            let node = NodeId::from_index(i);
            if node == self.root {
                continue;
            }
            if is_dead[i] {
                // Parked: an inert leaf hanging off the root.
                parent[i] = Some(self.root);
                continue;
            }
            let p = self.parent[i].expect("non-root has a parent");
            parent[i] = Some(resolved[p.index()]);
        }

        Ok(Topology::from_parents(self.root, parent)
            .expect("re-parenting onto surviving ancestors preserves treeness"))
    }
}

/// Iterator for [`Topology::path_to_root`].
pub struct PathToRoot<'a> {
    topo: &'a Topology,
    cur: Option<NodeId>,
}

impl Iterator for PathToRoot<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.cur?;
        self.cur = self.topo.parent(cur);
        Some(cur)
    }
}

/// Builds a chain `0 ← 1 ← 2 ← …` rooted at node 0 (each node's parent is
/// its predecessor). Useful in tests.
pub fn chain(n: usize) -> Topology {
    let parent =
        (0..n).map(|i| if i == 0 { None } else { Some(NodeId::from_index(i - 1)) }).collect();
    Topology::from_parents(NodeId(0), parent).expect("chain is a valid tree")
}

/// Builds a star: node 0 is the root, all others are its children.
pub fn star(n: usize) -> Topology {
    let parent = (0..n).map(|i| if i == 0 { None } else { Some(NodeId(0)) }).collect();
    Topology::from_parents(NodeId(0), parent).expect("star is a valid tree")
}

/// Builds a complete `fanout`-ary tree of the given `depth` (depth 0 = just
/// the root). Node 0 is the root; children are allocated level by level.
pub fn balanced(fanout: usize, depth: usize) -> Topology {
    assert!(fanout >= 1);
    let mut parent: Vec<Option<NodeId>> = vec![None];
    let mut level: Vec<usize> = vec![0];
    for _ in 0..depth {
        let mut next = Vec::new();
        for &p in &level {
            for _ in 0..fanout {
                let id = parent.len();
                parent.push(Some(NodeId::from_index(p)));
                next.push(id);
            }
        }
        level = next;
    }
    Topology::from_parents(NodeId(0), parent).expect("balanced tree is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let t = chain(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(2)));
        assert_eq!(t.depth(NodeId(3)), 3);
        assert_eq!(t.height(), 3);
        assert_eq!(t.subtree_size(NodeId(1)), 3);
        assert_eq!(t.num_edges(), 3);
        let path: Vec<_> = t.path_to_root(NodeId(3)).collect();
        assert_eq!(path, vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]);
        let edges: Vec<_> = t.edges_to_root(NodeId(3)).collect();
        assert_eq!(edges, vec![NodeId(3), NodeId(2), NodeId(1)]);
    }

    #[test]
    fn star_shape() {
        let t = star(5);
        assert_eq!(t.children(NodeId(0)).len(), 4);
        assert!(t.is_leaf(NodeId(4)));
        assert!(!t.is_leaf(NodeId(0)));
        assert_eq!(t.height(), 1);
        assert_eq!(t.subtree_size(NodeId(0)), 5);
    }

    #[test]
    fn balanced_counts() {
        let t = balanced(2, 3);
        assert_eq!(t.len(), 1 + 2 + 4 + 8);
        assert_eq!(t.height(), 3);
        // all leaves at depth 3
        let leaves = (0..t.len()).filter(|&i| t.is_leaf(NodeId::from_index(i))).count();
        assert_eq!(leaves, 8);
    }

    #[test]
    fn post_order_children_before_parents() {
        let t = balanced(3, 2);
        let mut seen = vec![false; t.len()];
        for &u in t.post_order() {
            for &c in t.children(u) {
                assert!(seen[c.index()], "child {c} must precede parent {u}");
            }
            seen[u.index()] = true;
        }
    }

    #[test]
    fn subtree_contents() {
        let t = chain(5);
        let mut sub = t.subtree(NodeId(2));
        sub.sort();
        assert_eq!(sub, vec![NodeId(2), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn is_ancestor_works() {
        let t = chain(4);
        assert!(t.is_ancestor(NodeId(1), NodeId(3)));
        assert!(t.is_ancestor(NodeId(3), NodeId(3)));
        assert!(!t.is_ancestor(NodeId(3), NodeId(1)));
    }

    #[test]
    fn rejects_cycle() {
        // 0 is root; 1 and 2 point at each other.
        let parent = vec![None, Some(NodeId(2)), Some(NodeId(1))];
        assert_eq!(Topology::from_parents(NodeId(0), parent).unwrap_err(), TopologyError::NotATree);
    }

    #[test]
    fn rejects_missing_parent() {
        let parent = vec![None, None];
        assert_eq!(
            Topology::from_parents(NodeId(0), parent).unwrap_err(),
            TopologyError::MissingParent(NodeId(1))
        );
    }

    #[test]
    fn rejects_root_with_parent() {
        let parent = vec![Some(NodeId(1)), None];
        assert_eq!(
            Topology::from_parents(NodeId(0), parent).unwrap_err(),
            TopologyError::RootHasParent(NodeId(0))
        );
    }

    #[test]
    fn rejects_out_of_range_parent() {
        let parent = vec![None, Some(NodeId(9))];
        assert!(matches!(
            Topology::from_parents(NodeId(0), parent),
            Err(TopologyError::ParentOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Topology::from_parents(NodeId(0), vec![]).unwrap_err(), TopologyError::Empty);
    }

    #[test]
    fn repair_leaf_death_parks_it_under_root() {
        let t = chain(4); // 0 <- 1 <- 2 <- 3
        let r = t.repair(&[NodeId(3)]).unwrap();
        assert_eq!(r.len(), 4, "node ids are preserved");
        assert_eq!(r.parent(NodeId(3)), Some(NodeId(0)), "dead leaf parked under root");
        assert!(r.is_leaf(NodeId(3)));
        // The surviving chain is untouched.
        assert_eq!(r.parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(r.parent(NodeId(2)), Some(NodeId(1)));
    }

    #[test]
    fn repair_interior_death_reattaches_deep_subtree() {
        // 0 <- 1 <- 2 <- 3 <- 4: killing 1 must lift 2 (and with it the
        // whole 2 <- 3 <- 4 chain) to the nearest surviving ancestor, 0.
        let t = chain(5);
        let r = t.repair(&[NodeId(1)]).unwrap();
        assert_eq!(r.parent(NodeId(2)), Some(NodeId(0)), "orphan re-parents past the dead node");
        assert_eq!(r.parent(NodeId(3)), Some(NodeId(2)), "deep subtree stays intact");
        assert_eq!(r.parent(NodeId(4)), Some(NodeId(3)));
        assert_eq!(r.depth(NodeId(4)), 3, "subtree is one hop shallower");
        assert!(r.is_leaf(NodeId(1)), "dead interior node keeps no children");
    }

    #[test]
    fn repair_consecutive_dead_ancestors_skips_both() {
        let t = chain(5);
        let r = t.repair(&[NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(r.parent(NodeId(3)), Some(NodeId(0)), "climbs past both dead ancestors");
        assert_eq!(r.parent(NodeId(4)), Some(NodeId(3)));
    }

    #[test]
    fn repair_all_root_children_rehomes_every_subtree() {
        // Star-of-chains: 0 <- {1 <- 3, 2 <- 4}. Kill both of root's
        // children; the grandchildren must all re-attach directly to root.
        let t = Topology::from_parents(
            NodeId(0),
            vec![None, Some(NodeId(0)), Some(NodeId(0)), Some(NodeId(1)), Some(NodeId(2))],
        )
        .unwrap();
        let r = t.repair(&[NodeId(1), NodeId(2)]).unwrap();
        for g in [NodeId(3), NodeId(4)] {
            assert_eq!(r.parent(g), Some(NodeId(0)));
            assert_eq!(r.depth(g), 1);
        }
        assert_eq!(r.children(NodeId(0)).len(), 4, "dead nodes parked + survivors re-homed");
    }

    #[test]
    fn repair_rejects_dead_root() {
        let t = star(4);
        assert_eq!(t.repair(&[NodeId(0)]).unwrap_err(), RepairError::RootDead);
        // Even mixed in with valid deaths.
        assert_eq!(t.repair(&[NodeId(2), NodeId(0)]).unwrap_err(), RepairError::RootDead);
    }

    #[test]
    fn repair_rejects_out_of_range() {
        let t = star(4);
        assert_eq!(t.repair(&[NodeId(9)]).unwrap_err(), RepairError::NodeOutOfRange(NodeId(9)));
    }

    #[test]
    fn repair_with_no_deaths_is_identity() {
        let t = balanced(3, 2);
        let r = t.repair(&[]).unwrap();
        for e in t.edges() {
            assert_eq!(r.parent(e), t.parent(e));
        }
    }

    /// The old per-node ancestor climb, kept as the reference semantics
    /// for [`Topology::repair`]'s memoized resolution.
    fn repair_reference_climb(t: &Topology, dead: &[NodeId]) -> Vec<Option<NodeId>> {
        let mut is_dead = vec![false; t.len()];
        for &d in dead {
            is_dead[d.index()] = true;
        }
        let mut parent = t.parent_vec();
        for i in 0..t.len() {
            let node = NodeId::from_index(i);
            if node == t.root() {
                continue;
            }
            if is_dead[i] {
                parent[i] = Some(t.root());
                continue;
            }
            let mut p = t.parent(node).expect("non-root has a parent");
            while is_dead[p.index()] {
                p = t.parent(p).expect("root is alive");
            }
            parent[i] = Some(p);
        }
        parent
    }

    #[test]
    fn repair_chain_of_deaths_matches_reference_climb() {
        // A chain with long dead runs is the memoization's worst case:
        // every survivor's old parent sits deep inside a dead prefix. The
        // memoized repair must re-parent identically to the old climb.
        let n = 400;
        let t = chain(n);
        // Kill runs of 37 dead followed by 3 survivors, plus the whole
        // stretch right below the root.
        let dead: Vec<NodeId> =
            (1..n).filter(|&i| i < 60 || i % 40 < 37).map(NodeId::from_index).collect();
        let r = t.repair(&dead).unwrap();
        let expect = repair_reference_climb(&t, &dead);
        for (i, &want) in expect.iter().enumerate() {
            assert_eq!(r.parent(NodeId::from_index(i)), want, "node {i}");
        }
        // Also on a branchier shape with scattered deaths.
        let t = balanced(3, 5);
        let dead: Vec<NodeId> =
            (1..t.len()).filter(|&i| i % 3 == 1 || i % 7 == 0).map(NodeId::from_index).collect();
        let r = t.repair(&dead).unwrap();
        let expect = repair_reference_climb(&t, &dead);
        for (i, &want) in expect.iter().enumerate() {
            assert_eq!(r.parent(NodeId::from_index(i)), want, "balanced node {i}");
        }
    }

    #[test]
    fn repair_is_linear_on_a_chain_of_deaths() {
        // Regression for the O(n·depth) climb: with every interior node of
        // a 30k chain dead, the old code walked ~4.5e8 parent hops; the
        // memoized repair does one hop per node and finishes in
        // milliseconds. The generous ceiling only trips on the quadratic
        // behaviour, not on a slow CI host.
        let n = 30_000;
        let t = chain(n);
        let dead: Vec<NodeId> = (1..n - 1).map(NodeId::from_index).collect();
        let start = std::time::Instant::now();
        let r = t.repair(&dead).unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "repair took {:?} on a chain of deaths — quadratic climb is back",
            start.elapsed()
        );
        assert_eq!(r.parent(NodeId::from_index(n - 1)), Some(NodeId(0)));
        assert_eq!(r.children(NodeId(0)).len(), n - 1);
        assert_eq!(r.depth(NodeId::from_index(n - 1)), 1);
    }

    #[test]
    fn level_order_is_reverse_post_order() {
        let t = balanced(2, 2);
        let lvl: Vec<_> = t.level_order().collect();
        assert_eq!(lvl[0], t.root());
        let mut rev = t.post_order().to_vec();
        rev.reverse();
        assert_eq!(lvl, rev);
    }
}
