//! Node identifiers.

use std::fmt;

/// Identifier of a sensor node; also indexes every per-node vector in the
/// workspace. Edges of the routing tree are identified by their *child*
/// node (the root has no edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Position of the node in per-node vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a vector index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n, NodeId(42));
        assert_eq!(n.to_string(), "n42");
    }

    #[test]
    fn ordering_follows_raw_id() {
        assert!(NodeId(3) < NodeId(10));
    }
}
