//! Sensor-network substrate for the Prospector reproduction.
//!
//! This crate models the parts of a wireless sensor network that the paper's
//! evaluation depends on:
//!
//! * [`topology`] — the routing spanning tree (parents, children, depths,
//!   subtree queries) over which every query plan is expressed;
//! * [`placement`] — random node placement in a rectangular field and
//!   min-hop (BFS) spanning-tree construction under a radio-range limit,
//!   plus the contention-zone layout of Section 5 and synthetic layouts for
//!   tests;
//! * [`energy`] — the MICA2-style communication cost model (per-message
//!   handshake/header cost `c_m`, per-byte cost `c_b`) of Section 2;
//! * [`meter`] — per-node, per-phase energy accounting;
//! * [`failure`] — the transient link-failure model of Section 4.4;
//! * [`fault`] — deterministic permanent-failure injection (node deaths and
//!   link degradations keyed by epoch), paired with tree repair
//!   ([`Topology::repair`], [`Network::repair`]);
//! * [`arq`] — the per-hop retry policy (bounded retransmissions, seeded
//!   backoff, header-only acks) that prices reliable delivery on lossy
//!   links during collection.

pub mod arq;
pub mod energy;
pub mod failure;
pub mod fault;
pub mod meter;
pub mod node;
pub mod placement;
pub mod topology;

pub use arq::{epoch_seed, link_rng, ArqPolicy, Backoff, BackoffError, LinkAttempts};
pub use energy::EnergyModel;
pub use failure::{FailureModel, FailureModelError};
pub use fault::{AppliedDataFault, DataFault, FaultEvent, FaultSchedule, FaultScheduleError};
pub use meter::{EnergyMeter, MeterMergeError, Phase, NUM_PHASES};
pub use node::NodeId;
pub use placement::{Network, NetworkBuilder, Position, ZoneLayout};
pub use topology::{RepairError, Topology, TopologyError};
