//! Link-layer ARQ (automatic repeat request) for the collection phase.
//!
//! The paper's collection semantics assume every upward unicast arrives;
//! on a lossy radio each hop instead pays for reliability explicitly:
//! a failed transmission is retried after a backoff, up to a bounded
//! retry budget, and a successful retry is confirmed with a header-only
//! ack. [`ArqPolicy`] captures that contract. All randomness flows
//! through explicitly seeded [`StdRng`] streams — one per (epoch, edge) —
//! so sweeps are reproducible and a larger retry budget replays the same
//! failure prefix (delivered links stay delivered when the budget grows).

use crate::failure::FailureModel;
use crate::node::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministic backoff cost schedule for retries.
///
/// Retry `i` (1-based) costs `base_mj * factor^(i-1)` millijoules of
/// idle listening, optionally scaled by a seeded jitter factor drawn
/// uniformly from `[1 - jitter, 1 + jitter)`. The jitter draw is skipped
/// entirely when it cannot change the cost (zero jitter or zero nominal
/// cost), so a jitter-free policy consumes no randomness on the backoff
/// path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Idle-listen cost of the first retry's backoff window (mJ).
    pub base_mj: f64,
    /// Multiplicative growth of the window per retry (≥ 1 for classic
    /// binary exponential backoff).
    pub factor: f64,
    /// Relative jitter amplitude in `[0, 1)`; 0 disables jitter.
    pub jitter: f64,
}

/// A backoff schedule whose parameters cannot describe a physical
/// idle-listen cost (see [`Backoff::try_new`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackoffError {
    /// `base_mj` must be a finite, strictly positive cost; a free
    /// schedule is spelled [`Backoff::none`] explicitly.
    BadBase { base_mj: f64 },
    /// `factor` must be finite and at least 1 (windows never shrink).
    BadFactor { factor: f64 },
    /// `jitter` must lie in `[0, 1)` so jittered costs stay positive.
    BadJitter { jitter: f64 },
}

impl std::fmt::Display for BackoffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackoffError::BadBase { base_mj } => write!(
                f,
                "backoff base cost must be finite and positive, got {base_mj} \
                 (use Backoff::none() for a free schedule)"
            ),
            BackoffError::BadFactor { factor } => {
                write!(f, "backoff growth factor must be finite and >= 1, got {factor}")
            }
            BackoffError::BadJitter { jitter } => {
                write!(f, "backoff jitter must lie in [0, 1), got {jitter}")
            }
        }
    }
}

impl std::error::Error for BackoffError {}

impl Backoff {
    /// No backoff cost at all (retries are free to wait).
    pub fn none() -> Self {
        Backoff { base_mj: 0.0, factor: 1.0, jitter: 0.0 }
    }

    /// MICA2-flavoured binary exponential backoff: a ~10 ms initial
    /// window at ~30 mW receive/idle draw ≈ 0.3 mJ, doubling per retry,
    /// with ±50% jitter.
    pub fn mica2() -> Self {
        Backoff { base_mj: 0.3, factor: 2.0, jitter: 0.5 }
    }

    /// Validated constructor: rejects zero/negative/non-finite base
    /// costs (a free schedule is spelled [`Backoff::none`]), shrinking or
    /// non-finite growth factors, and jitter outside `[0, 1)`. Schedules
    /// whose windows *overflow* at deep retries are fine — the cost
    /// saturates at `f64::MAX` (see [`Backoff::cost`]), mirroring how
    /// [`FailureModel::degrade`] clamps instead of wrapping.
    pub fn try_new(base_mj: f64, factor: f64, jitter: f64) -> Result<Self, BackoffError> {
        if !base_mj.is_finite() || base_mj <= 0.0 {
            return Err(BackoffError::BadBase { base_mj });
        }
        if !factor.is_finite() || factor < 1.0 {
            return Err(BackoffError::BadFactor { factor });
        }
        if !jitter.is_finite() || !(0.0..1.0).contains(&jitter) {
            return Err(BackoffError::BadJitter { jitter });
        }
        Ok(Backoff { base_mj, factor, jitter })
    }

    /// The nominal (jitter-free) window cost of retry `retry`, saturated
    /// at `f64::MAX`: `base · factor^(retry-1)` overflows to `inf` for
    /// deep retries under aggressive growth factors, and an infinite
    /// charge would poison every meter total it merges into.
    fn nominal_cost(&self, retry: u32) -> f64 {
        debug_assert!(retry >= 1, "retry numbering is 1-based");
        let nominal = self.base_mj * self.factor.powi(retry as i32 - 1);
        if nominal.is_finite() {
            nominal
        } else {
            f64::MAX
        }
    }

    /// Cost (mJ) of the backoff window preceding retry `retry` (1-based).
    /// Draws one uniform jitter sample from `rng` iff the nominal cost is
    /// positive and jitter is enabled. Saturates at `f64::MAX` instead of
    /// overflowing to infinity.
    pub fn cost(&self, retry: u32, rng: &mut StdRng) -> f64 {
        let nominal = self.nominal_cost(retry);
        if self.jitter > 0.0 && nominal > 0.0 {
            let jittered = nominal * rng.random_range(1.0 - self.jitter..1.0 + self.jitter);
            if jittered.is_finite() {
                jittered
            } else {
                f64::MAX
            }
        } else {
            nominal
        }
    }

    /// Expected cost (mJ) of the backoff window preceding retry `retry`
    /// (the jitter distribution is symmetric around 1). Saturates at
    /// `f64::MAX` like [`Backoff::cost`].
    pub fn expected_cost(&self, retry: u32) -> f64 {
        self.nominal_cost(retry)
    }
}

/// Per-hop retry policy for upward unicasts during collection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArqPolicy {
    /// Retries allowed after the initial attempt (0 = send once).
    pub max_retries: u32,
    /// Backoff cost schedule between attempts.
    pub backoff: Backoff,
}

impl Default for ArqPolicy {
    /// Three retries with MICA2-style exponential backoff — the 802.15.4
    /// macMaxFrameRetries default.
    fn default() -> Self {
        ArqPolicy { max_retries: 3, backoff: Backoff::mica2() }
    }
}

/// What happened on one logical hop: how many transmissions it took,
/// whether the batch ultimately got through, and the backoff energy
/// burned between attempts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkAttempts {
    /// Total transmissions (1 = delivered or lost on the first try).
    pub attempts: u32,
    /// Whether any attempt succeeded within the retry budget.
    pub delivered: bool,
    /// Total backoff idle-listen cost accrued across retries (mJ).
    pub backoff_mj: f64,
}

impl LinkAttempts {
    /// A hop that succeeded on the first try (the reliable-path outcome).
    pub fn first_try() -> Self {
        LinkAttempts { attempts: 1, delivered: true, backoff_mj: 0.0 }
    }

    /// Retransmissions beyond the initial attempt.
    pub fn retries(&self) -> u32 {
        self.attempts - 1
    }
}

impl ArqPolicy {
    /// A policy that never retries (plain lossy unicast).
    pub fn no_retries() -> Self {
        ArqPolicy { max_retries: 0, backoff: Backoff::none() }
    }

    /// Validated constructor: the backoff schedule goes through
    /// [`Backoff::try_new`], so zero-base or otherwise unphysical
    /// schedules are rejected here instead of surfacing as silent
    /// zero-cost retries mid-run.
    pub fn try_new(max_retries: u32, backoff: Backoff) -> Result<Self, BackoffError> {
        let backoff = Backoff::try_new(backoff.base_mj, backoff.factor, backoff.jitter)?;
        Ok(ArqPolicy { max_retries, backoff })
    }

    /// Plays out the delivery of one upward message on the edge above
    /// `child`: sample the initial attempt, then retry (with backoff)
    /// while it keeps failing and budget remains.
    ///
    /// At failure probability 0 this consumes **no** randomness
    /// ([`FailureModel::sample_failure`] short-circuits), which is what
    /// makes the zero-loss ARQ path bit-identical to reliable execution.
    pub fn attempt_delivery(
        &self,
        failures: &FailureModel,
        child: NodeId,
        rng: &mut StdRng,
    ) -> LinkAttempts {
        let mut attempts = 1u32;
        let mut backoff_mj = 0.0;
        let mut delivered = !failures.sample_failure(child, rng);
        while !delivered && attempts <= self.max_retries {
            backoff_mj += self.backoff.cost(attempts, rng);
            delivered = !failures.sample_failure(child, rng);
            attempts += 1;
        }
        LinkAttempts { attempts, delivered, backoff_mj }
    }

    /// Probability that a message on an edge with failure probability `p`
    /// is delivered within the retry budget: `1 - p^(r+1)`.
    pub fn delivery_prob(&self, p: f64) -> f64 {
        1.0 - p.powi(self.max_retries as i32 + 1)
    }

    /// Expected number of transmissions per message on an edge with
    /// failure probability `p`: `(1 - p^(r+1)) / (1 - p)`, i.e. a
    /// truncated geometric mean; `r + 1` when `p = 1`.
    pub fn expected_attempts(&self, p: f64) -> f64 {
        if p >= 1.0 {
            (self.max_retries + 1) as f64
        } else if p <= 0.0 {
            1.0
        } else {
            (1.0 - p.powi(self.max_retries as i32 + 1)) / (1.0 - p)
        }
    }

    /// Expected backoff energy per message on an edge with failure
    /// probability `p`: retry `i` happens iff the first `i` attempts all
    /// failed, so `Σ_{i=1..r} p^i · base · factor^(i-1)`.
    pub fn expected_backoff_mj(&self, p: f64) -> f64 {
        let mut total = 0.0;
        for i in 1..=self.max_retries {
            total += p.powi(i as i32) * self.backoff.expected_cost(i);
        }
        total
    }
}

/// Mixes an experiment's base seed with an epoch number into the seed for
/// that epoch's collection randomness (SplitMix64-style finalizer, so
/// nearby epochs land far apart).
pub fn epoch_seed(base: u64, epoch: u64) -> u64 {
    let mut z = base ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Independent RNG stream for one edge's deliveries within one epoch.
///
/// Keying the stream by (epoch seed, child id) means each edge replays
/// the same failure sequence regardless of how many draws *other* edges
/// consumed — the property behind "accuracy is monotone in the retry
/// budget": raising `max_retries` extends each edge's draw sequence
/// without perturbing any other edge.
pub fn link_rng(epoch_seed: u64, child: NodeId) -> StdRng {
    let salt = (child.0 as u64).wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    StdRng::seed_from_u64(epoch_seed ^ salt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_loss_delivers_first_try_without_randomness() {
        let fm = FailureModel::none(4);
        let policy = ArqPolicy::default();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let out = policy.attempt_delivery(&fm, NodeId(2), &mut a);
        assert_eq!(out, LinkAttempts::first_try());
        // The stream is untouched: both clones produce identical draws.
        assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
    }

    #[test]
    fn certain_loss_exhausts_the_budget() {
        let fm = FailureModel::uniform(3, 1.0, 0.0);
        let policy = ArqPolicy { max_retries: 2, backoff: Backoff::none() };
        let mut rng = StdRng::seed_from_u64(1);
        let out = policy.attempt_delivery(&fm, NodeId(1), &mut rng);
        assert!(!out.delivered);
        assert_eq!(out.attempts, 3, "initial attempt + 2 retries");
        assert_eq!(out.backoff_mj, 0.0);
    }

    #[test]
    fn backoff_grows_exponentially_and_is_charged_per_retry() {
        let fm = FailureModel::uniform(3, 1.0, 0.0);
        let policy = ArqPolicy {
            max_retries: 3,
            backoff: Backoff { base_mj: 0.5, factor: 2.0, jitter: 0.0 },
        };
        let mut rng = StdRng::seed_from_u64(1);
        let out = policy.attempt_delivery(&fm, NodeId(1), &mut rng);
        assert!((out.backoff_mj - (0.5 + 1.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn jitter_stays_within_band_and_is_deterministic() {
        let b = Backoff { base_mj: 1.0, factor: 1.0, jitter: 0.5 };
        let mut rng = StdRng::seed_from_u64(3);
        let mut again = StdRng::seed_from_u64(3);
        for retry in 1..=20 {
            let c = b.cost(retry, &mut rng);
            assert!((0.5..1.5).contains(&c), "jittered cost {c} out of band");
            assert_eq!(c, b.cost(retry, &mut again), "same seed, same cost");
        }
    }

    #[test]
    fn delivery_improves_with_budget() {
        let fm = FailureModel::uniform(3, 0.4, 0.0);
        let trials = 4000;
        let mut rates = Vec::new();
        for retries in [0u32, 1, 3] {
            let policy = ArqPolicy { max_retries: retries, backoff: Backoff::none() };
            let delivered = (0..trials)
                .filter(|&t| {
                    let mut rng = link_rng(epoch_seed(9, t), NodeId(1));
                    policy.attempt_delivery(&fm, NodeId(1), &mut rng).delivered
                })
                .count();
            rates.push(delivered as f64 / trials as f64);
        }
        assert!(rates[0] < rates[1] && rates[1] < rates[2], "rates {rates:?}");
        // Empirical rate tracks the analytic 1 - p^(r+1).
        let policy = ArqPolicy { max_retries: 3, backoff: Backoff::none() };
        assert!((rates[2] - policy.delivery_prob(0.4)).abs() < 0.03);
    }

    #[test]
    fn larger_budget_replays_the_same_prefix() {
        // Monotonicity-by-construction: on the same per-edge stream, a
        // delivery under budget r is bit-identical under budget r+1.
        let fm = FailureModel::uniform(3, 0.5, 0.0);
        for seed in 0..200u64 {
            let mut prev: Option<LinkAttempts> = None;
            for retries in 0..5u32 {
                let policy = ArqPolicy { max_retries: retries, backoff: Backoff::none() };
                let mut rng = link_rng(seed, NodeId(2));
                let out = policy.attempt_delivery(&fm, NodeId(2), &mut rng);
                if let Some(p) = prev {
                    if p.delivered {
                        assert_eq!(out, p, "delivered outcome must be stable");
                    }
                }
                prev = Some(out);
            }
        }
    }

    #[test]
    fn expected_attempts_matches_closed_form_edges() {
        let policy = ArqPolicy { max_retries: 2, backoff: Backoff::none() };
        assert_eq!(policy.expected_attempts(0.0), 1.0);
        assert_eq!(policy.expected_attempts(1.0), 3.0);
        // p = 0.5, r = 2: 1 + 0.5 + 0.25.
        assert!((policy.expected_attempts(0.5) - 1.75).abs() < 1e-12);
        assert!((policy.delivery_prob(0.5) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn expected_backoff_sums_survival_weighted_windows() {
        let policy = ArqPolicy {
            max_retries: 2,
            backoff: Backoff { base_mj: 1.0, factor: 2.0, jitter: 0.5 },
        };
        // retry 1 with prob p, retry 2 with prob p²: p·1 + p²·2.
        let p: f64 = 0.3;
        assert!((policy.expected_backoff_mj(p) - (p + p * p * 2.0)).abs() < 1e-12);
        assert_eq!(policy.expected_backoff_mj(0.0), 0.0);
    }

    #[test]
    fn try_new_rejects_unphysical_schedules() {
        for bad in [0.0, -0.3, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                Backoff::try_new(bad, 2.0, 0.0),
                Err(BackoffError::BadBase { base_mj }) if base_mj.is_nan() == bad.is_nan()
            ));
        }
        for bad in [0.5, 0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(Backoff::try_new(0.3, bad, 0.0), Err(BackoffError::BadFactor { .. })));
        }
        for bad in [-0.1, 1.0, 1.5, f64::NAN] {
            assert!(matches!(Backoff::try_new(0.3, 2.0, bad), Err(BackoffError::BadJitter { .. })));
        }
        // The stock schedules pass their own validation.
        let m = Backoff::mica2();
        assert_eq!(Backoff::try_new(m.base_mj, m.factor, m.jitter), Ok(m));
        assert_eq!(ArqPolicy::try_new(3, m), Ok(ArqPolicy { max_retries: 3, backoff: m }));
        assert!(ArqPolicy::try_new(3, Backoff { base_mj: 0.0, factor: 1.0, jitter: 0.0 }).is_err());
    }

    #[test]
    fn overflowing_backoff_saturates_at_f64_max() {
        // factor^(retry-1) overflows f64 somewhere past retry 1024 at
        // factor 2: pin the exact boundary where saturation kicks in.
        // 2^1023 * base is the largest finite window for base = 1.
        let b = Backoff::try_new(1.0, 2.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(b.expected_cost(1024), 2f64.powi(1023));
        assert!(b.expected_cost(1024).is_finite());
        assert_eq!(b.expected_cost(1025), f64::MAX, "first overflowing retry saturates");
        assert_eq!(b.cost(1025, &mut rng), f64::MAX);
        // Jittered overflow saturates too instead of producing inf.
        let j = Backoff::try_new(1.0, 2.0, 0.5).unwrap();
        assert_eq!(j.expected_cost(2000), f64::MAX);
        assert!(j.cost(2000, &mut rng).is_finite());
        // A saturated charge keeps downstream expectations finite.
        let policy = ArqPolicy { max_retries: 2000, backoff: b };
        assert!(policy.expected_backoff_mj(0.99).is_finite());
    }

    #[test]
    fn link_streams_are_independent() {
        let fm = FailureModel::uniform(4, 0.5, 0.0);
        let policy = ArqPolicy::no_retries();
        // Consuming draws for one edge must not change another edge's
        // outcome: both edges derive their own stream from the seed.
        let seed = epoch_seed(42, 7);
        let mut solo = link_rng(seed, NodeId(3));
        let solo_out = policy.attempt_delivery(&fm, NodeId(3), &mut solo);
        let mut other = link_rng(seed, NodeId(1));
        for _ in 0..17 {
            policy.attempt_delivery(&fm, NodeId(1), &mut other);
        }
        let mut after = link_rng(seed, NodeId(3));
        assert_eq!(policy.attempt_delivery(&fm, NodeId(3), &mut after), solo_out);
    }
}
