//! q-digest contract tests: the three properties the continuous-query
//! protocol leans on (DESIGN.md §16).
//!
//! * **Rank error ≤ ε·n, two-sided.** A `quantile(phi)` answer covers at
//!   least `⌈phi·n⌉` values and overshoots the target rank by at most
//!   `ε·n` — on random multisets and on the adversarial shapes that
//!   stress compression (all-identical values, tight clusters).
//! * **Merge associativity.** `(a ∪ b) ∪ c` and `a ∪ (b ∪ c)` are the
//!   same sketch, byte-for-byte — so subtree summaries can be combined
//!   in routing-tree order without the result depending on that order.
//! * **Byte-deterministic encoding.** Equal multisets encode to equal
//!   bytes no matter how the sketch was assembled, and
//!   encode → decode → encode is a fixed point.

use proptest::prelude::*;
use prospector_core::{QDigest, SketchPrecision};

fn prec() -> SketchPrecision {
    SketchPrecision { depth: 8, compression: 16, lo: 0.0, hi: 256.0 }
}

/// Exact number of values quantizing to a bucket `<= b`.
fn exact_rank(d: &QDigest, values: &[f64], b: u64) -> u64 {
    values.iter().filter(|&&v| d.bucket_of(v) <= b).count() as u64
}

/// The two-sided rank-error check for one multiset at one phi.
///
/// With `b = quantile(phi)` and `target = ⌈phi·n⌉`:
/// * at least `target` values quantize to a bucket `<= b` (the answer
///   never undershoots), and
/// * fewer than `target + ε·n + 1` values quantize *strictly below* `b`
///   (the answer never overshoots by more than the q-digest slack — the
///   `+1` absorbs the `⌈·⌉` boundary).
fn assert_rank_error_bounded(values: &[f64], phi: f64) {
    let d = QDigest::from_values(prec(), values);
    let n = values.len() as f64;
    let slack = d.epsilon() * n;
    let target = (phi * n).ceil() as u64;
    let (b, _, _) = d.quantile(phi).expect("non-empty");
    let at_or_below = exact_rank(&d, values, b);
    assert!(
        at_or_below >= target,
        "phi={phi}: bucket {b} covers {at_or_below} values, target {target}"
    );
    if b > 0 {
        let strictly_below = exact_rank(&d, values, b - 1);
        assert!(
            (strictly_below as f64) < target as f64 + slack + 1.0,
            "phi={phi}: {strictly_below} values below bucket {b}, \
             target {target}, slack {slack}"
        );
    }
}

const PHIS: &[f64] = &[0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];

#[test]
fn rank_error_bounded_on_identical_values() {
    // Everything lands in one leaf: compression collapses the whole
    // digest toward the root, the worst case for spanning-node error.
    let values = vec![117.3; 1000];
    for &phi in PHIS {
        assert_rank_error_bounded(&values, phi);
    }
}

#[test]
fn rank_error_bounded_on_tight_clusters() {
    // Two dense clusters at opposite domain edges plus a sparse middle:
    // adjacent-leaf pileups merge aggressively while the middle stays
    // exact, so queries straddle compressed and uncompressed regions.
    let mut values = Vec::new();
    for i in 0..400 {
        values.push(1.0 + (i % 7) as f64 * 0.1);
        values.push(254.0 + (i % 5) as f64 * 0.2);
    }
    for i in 0..40 {
        values.push(64.0 + i as f64);
    }
    for &phi in PHIS {
        assert_rank_error_bounded(&values, phi);
    }
}

#[test]
fn rank_error_bounded_on_geometric_pileup() {
    // Exponentially skewed: half the mass in the lowest bucket, a long
    // thin tail upward. Low-phi answers must stay pinned at the pileup.
    let mut values = Vec::new();
    for i in 0..10u32 {
        let copies = 1usize << (10 - i);
        for _ in 0..copies {
            values.push((1u64 << i) as f64 / 4.0);
        }
    }
    for &phi in PHIS {
        assert_rank_error_bounded(&values, phi);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rank_error_bounded_on_random_multisets(
        values in proptest::collection::vec(0.0..256.0f64, 1..600),
        phi in 0.0..1.0f64,
    ) {
        assert_rank_error_bounded(&values, phi);
    }

    #[test]
    fn merge_is_associative_and_commutative_to_the_byte(
        xs in proptest::collection::vec(0.0..256.0f64, 0..120),
        ys in proptest::collection::vec(0.0..256.0f64, 0..120),
        zs in proptest::collection::vec(0.0..256.0f64, 0..120),
    ) {
        let a = QDigest::from_values(prec(), &xs);
        let b = QDigest::from_values(prec(), &ys);
        let c = QDigest::from_values(prec(), &zs);

        // (a ∪ b) ∪ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ∪ (b ∪ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        // c ∪ (b ∪ a)
        let mut ba = b.clone();
        ba.merge(&a);
        let mut rev = c.clone();
        rev.merge(&ba);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &rev);
        prop_assert_eq!(left.encode(), right.encode());
        prop_assert_eq!(right.encode(), rev.encode());
    }

    #[test]
    fn encoding_is_deterministic_across_assembly_orders(
        values in proptest::collection::vec(0.0..256.0f64, 1..300),
        pivot in 0usize..300,
    ) {
        // One pass, reverse insertion order, and a two-digest merge at an
        // arbitrary split point must all encode identically.
        let one_pass = QDigest::from_values(prec(), &values);

        let mut reversed = QDigest::new(prec());
        for &v in values.iter().rev() {
            reversed.insert(v);
        }

        let cut = pivot.min(values.len());
        let mut split = QDigest::from_values(prec(), &values[..cut]);
        split.merge(&QDigest::from_values(prec(), &values[cut..]));

        let bytes = one_pass.encode();
        prop_assert_eq!(&bytes, &reversed.encode());
        prop_assert_eq!(&bytes, &split.encode());

        // encode → decode → encode is a fixed point (compression is
        // canonical and idempotent).
        let back = QDigest::decode(&bytes).unwrap();
        prop_assert_eq!(back.total(), one_pass.total());
        prop_assert_eq!(back.encode(), bytes);
    }
}
