//! Serial ≡ parallel: evaluation through the `prospector-par` worker pool
//! must be **bit-identical** to the serial fold at every thread count, on
//! arbitrary topologies, plans and sample windows. This is the determinism
//! contract DESIGN.md §9 documents and the CI byte-diff gate relies on.

use proptest::prelude::*;
use prospector_core::{evaluate, Plan};
use prospector_data::SampleSet;
use prospector_net::{NodeId, Topology};

/// Random tree over n nodes: each node's parent is a random earlier node.
fn arb_topology(max_n: usize) -> impl Strategy<Value = Topology> {
    (2..=max_n)
        .prop_flat_map(|n| {
            let parents: Vec<BoxedStrategy<u32>> = (1..n).map(|i| (0..i as u32).boxed()).collect();
            (Just(n), parents)
        })
        .prop_map(|(n, parents)| {
            let mut parent = vec![None];
            parent.extend(parents.into_iter().map(|p| Some(NodeId(p))));
            let _ = n;
            Topology::from_parents(NodeId(0), parent).expect("random parents form a tree")
        })
}

/// A random valid plan: bandwidths within subtree sizes, connectivity
/// repaired.
fn make_plan(topology: &Topology, raw: &[u32], proof: bool) -> Plan {
    let mut plan = Plan::empty(topology.len());
    for e in topology.edges() {
        let cap = topology.subtree_size(e) as u32;
        let lo = u32::from(proof);
        let w = (raw[e.index()] % (cap + 1)).max(lo);
        plan.set_bandwidth(e, w);
    }
    plan.repair_connectivity(topology);
    plan.proof_carrying = proof;
    plan
}

/// Deterministic pseudo-random reading for node `i` of sample `j`.
fn reading(seed: u64, j: u64, i: u64) -> f64 {
    let h =
        seed.wrapping_add(j.wrapping_mul(0x9E3779B9)).wrapping_mul(i + 1).wrapping_mul(2654435761);
    (h % 10_000) as f64
}

fn sample_window(n: usize, k: usize, num_samples: usize, seed: u64) -> SampleSet {
    let mut samples = SampleSet::new(n, k, num_samples);
    for j in 0..num_samples as u64 {
        samples.push((0..n as u64).map(|i| reading(seed, j, i)).collect());
    }
    samples
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn expected_misses_is_bit_identical_across_thread_counts(
        topo in arb_topology(20),
        raw in proptest::collection::vec(0u32..6, 20),
        seed in 0u64..1000,
        num_samples in 1usize..12,
        k in 1usize..6,
    ) {
        let n = topo.len();
        let samples = sample_window(n, k.min(n), num_samples, seed);
        let plan = make_plan(&topo, &raw, false);
        plan.validate(&topo).unwrap();

        let misses = evaluate::expected_misses_with(&plan, &topo, &samples, 1);
        let accuracy = evaluate::expected_accuracy_with(&plan, &topo, &samples, 1);
        for threads in [2usize, 8] {
            let m = evaluate::expected_misses_with(&plan, &topo, &samples, threads);
            prop_assert_eq!(m.to_bits(), misses.to_bits(),
                "expected_misses diverged at {} threads: {} vs {}", threads, m, misses);
            let a = evaluate::expected_accuracy_with(&plan, &topo, &samples, threads);
            prop_assert_eq!(a.to_bits(), accuracy.to_bits(),
                "expected_accuracy diverged at {} threads: {} vs {}", threads, a, accuracy);
        }
    }

    #[test]
    fn expected_proven_is_bit_identical_across_thread_counts(
        topo in arb_topology(16),
        raw in proptest::collection::vec(1u32..5, 16),
        seed in 0u64..1000,
        num_samples in 1usize..10,
        k in 1usize..5,
    ) {
        let n = topo.len();
        let samples = sample_window(n, k.min(n), num_samples, seed);
        let plan = make_plan(&topo, &raw, true);
        plan.validate(&topo).unwrap();

        let proven = evaluate::expected_proven_with(&plan, &topo, &samples, 1);
        for threads in [2usize, 8] {
            let p = evaluate::expected_proven_with(&plan, &topo, &samples, threads);
            prop_assert_eq!(p.to_bits(), proven.to_bits(),
                "expected_proven diverged at {} threads: {} vs {}", threads, p, proven);
        }
    }
}
