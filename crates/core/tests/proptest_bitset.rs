//! Packed-bitset / claiming-kernel ≡ scalar simulation: the fast window
//! evaluators (`hits_on_sample` rank-order slot claiming, packed-row truth
//! membership in the lossy evaluator) must be **bit-identical** to the
//! plan-simulation path on arbitrary topologies, plans, k values and
//! windows, at 1/2/8 threads. This is the bit-identity contract of
//! DESIGN.md §13 that the CI golden byte-diffs rest on.

use proptest::prelude::*;
use prospector_core::{evaluate, Plan};
use prospector_data::SampleSet;
use prospector_net::{ArqPolicy, Backoff, FailureModel, NodeId, Topology};

/// Random tree over n nodes: each node's parent is a random earlier node.
fn arb_topology(max_n: usize) -> impl Strategy<Value = Topology> {
    (2..=max_n)
        .prop_flat_map(|n| {
            let parents: Vec<BoxedStrategy<u32>> = (1..n).map(|i| (0..i as u32).boxed()).collect();
            (Just(n), parents)
        })
        .prop_map(|(n, parents)| {
            let mut parent = vec![None];
            parent.extend(parents.into_iter().map(|p| Some(NodeId(p))));
            let _ = n;
            Topology::from_parents(NodeId(0), parent).expect("random parents form a tree")
        })
}

/// A random plan: bandwidths within subtree sizes, including unused edges
/// (disconnected subtrees are part of the execution semantics the kernel
/// must reproduce, so no connectivity repair here).
fn make_plan(topology: &Topology, raw: &[u32]) -> Plan {
    let mut plan = Plan::empty(topology.len());
    for e in topology.edges() {
        let cap = topology.subtree_size(e) as u32;
        plan.set_bandwidth(e, raw[e.index()] % (cap + 1));
    }
    plan
}

/// Deterministic pseudo-random reading for node `i` of sample `j`. A
/// coarse modulus forces plenty of exact ties, exercising the id
/// tie-break on both paths.
fn reading(seed: u64, j: u64, i: u64) -> f64 {
    let h =
        seed.wrapping_add(j.wrapping_mul(0x9E3779B9)).wrapping_mul(i + 1).wrapping_mul(2654435761);
    (h % 97) as f64
}

fn sample_window(n: usize, k: usize, num_samples: usize, seed: u64) -> SampleSet {
    let mut samples = SampleSet::new(n, k, num_samples);
    for j in 0..num_samples as u64 {
        samples.push((0..n as u64).map(|i| reading(seed, j, i)).collect());
    }
    samples
}

/// `expected_misses` as the scalar path computes it: simulate the plan
/// per sample and count the answer against the stored window truth.
fn expected_misses_scalar(plan: &Plan, topo: &Topology, samples: &SampleSet) -> f64 {
    let k = samples.k();
    let total: usize = (0..samples.len())
        .map(|j| k - evaluate::hits_on_sample_via_simulation(plan, topo, samples, j))
        .sum();
    total as f64 / samples.len() as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn claiming_kernel_is_bit_identical_to_simulation(
        topo in arb_topology(24),
        raw in proptest::collection::vec(0u32..7, 24),
        seed in 0u64..1000,
        num_samples in 1usize..10,
        k in 1usize..7,
        mask in proptest::collection::vec(1u32..24, 0..3),
    ) {
        let n = topo.len();
        let k = k.min(n);
        let mut samples = sample_window(n, k, num_samples, seed);
        // Masked windows (post-death) are the state the repair loops
        // actually score against; include them.
        let dead: Vec<NodeId> = mask.iter().map(|&d| NodeId(d % n as u32)).filter(|&d| d != NodeId(0)).collect();
        samples.mask_nodes(&dead);
        let plan = make_plan(&topo, &raw);

        for j in 0..samples.len() {
            prop_assert_eq!(
                evaluate::hits_on_sample(&plan, &topo, &samples, j),
                evaluate::hits_on_sample_via_simulation(&plan, &topo, &samples, j),
                "kernel vs simulation diverged on sample {}", j
            );
        }

        let scalar = expected_misses_scalar(&plan, &topo, &samples);
        for threads in [1usize, 2, 8] {
            let fast = evaluate::expected_misses_with(&plan, &topo, &samples, threads);
            prop_assert_eq!(fast.to_bits(), scalar.to_bits(),
                "expected_misses diverged at {} threads: {} vs {}", threads, fast, scalar);
            let acc = evaluate::expected_accuracy_with(&plan, &topo, &samples, threads);
            let scalar_acc = 1.0 - scalar / samples.k() as f64;
            prop_assert_eq!(acc.to_bits(), scalar_acc.to_bits());
        }
    }

    #[test]
    fn lossy_packed_truth_is_bit_identical_to_scalar(
        topo in arb_topology(16),
        raw in proptest::collection::vec(0u32..5, 16),
        seed in 0u64..500,
        num_samples in 1usize..8,
        k in 1usize..5,
        loss_pct in 0u32..60,
        retries in 0u32..3,
    ) {
        let n = topo.len();
        let k = k.min(n);
        let samples = sample_window(n, k, num_samples, seed);
        let plan = make_plan(&topo, &raw);
        let fm = FailureModel::uniform(n, loss_pct as f64 / 100.0, 0.0);
        let policy = ArqPolicy { max_retries: retries, backoff: Backoff::none() };

        // Scalar reference: identical loss realization (same seeds), truth
        // membership by sorted scan over the stored ones list.
        let scalar: f64 = {
            let total: usize = (0..samples.len()).map(|j| {
                let mut truth: Vec<NodeId> = samples.ones(j).to_vec();
                truth.sort_unstable();
                let out = prospector_core::run_plan_lossy(
                    &plan, &topo, samples.values(j), k, &fm, &policy,
                    prospector_net::epoch_seed(seed, j as u64),
                );
                out.answer.iter().filter(|r| truth.binary_search(&r.node).is_ok()).count()
            }).sum();
            total as f64 / (samples.len() * k) as f64
        };
        for threads in [1usize, 2, 8] {
            let fast = evaluate::expected_accuracy_under_loss_with(
                &plan, &topo, &samples, &fm, &policy, seed, threads);
            prop_assert_eq!(fast.to_bits(), scalar.to_bits(),
                "lossy accuracy diverged at {} threads: {} vs {}", threads, fast, scalar);
        }
    }
}
