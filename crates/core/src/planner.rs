//! The planner abstraction and shared planning context.

use crate::error::PlanError;
use crate::plan::Plan;
use prospector_data::SampleSet;
use prospector_net::{ArqPolicy, EnergyModel, FailureModel, NodeId, Topology};

/// Everything a planner needs: topology, cost model, the sample window and
/// the energy budget for one collection phase.
pub struct PlanContext<'a> {
    pub topology: &'a Topology,
    pub energy: &'a EnergyModel,
    pub samples: &'a SampleSet,
    /// Energy budget (mJ) for the collection phase of one query execution.
    pub budget_mj: f64,
    /// Transient-failure statistics; when present, per-edge message costs
    /// are inflated by the expected rerouting cost (Section 4.4) — or,
    /// when an [`ArqPolicy`] is also present, by the expected
    /// retransmission cost of reliable delivery on that edge.
    pub failures: Option<&'a FailureModel>,
    /// Per-hop ARQ policy collection will run under. With both `failures`
    /// and `arq` set, edge costs price the truncated-geometric expected
    /// attempt count, the backoff windows and the retry ack, so planners
    /// route bandwidth around bad links.
    pub arq: Option<ArqPolicy>,
}

impl<'a> PlanContext<'a> {
    /// Context without failure statistics.
    pub fn new(
        topology: &'a Topology,
        energy: &'a EnergyModel,
        samples: &'a SampleSet,
        budget_mj: f64,
    ) -> Self {
        PlanContext { topology, energy, samples, budget_mj, failures: None, arq: None }
    }

    /// Adds failure statistics to the context.
    pub fn with_failures(mut self, failures: &'a FailureModel) -> Self {
        self.failures = Some(failures);
        self
    }

    /// Adds the ARQ policy collection will execute under, switching edge
    /// costs from the reroute-penalty model to the retransmission model.
    pub fn with_arq(mut self, arq: ArqPolicy) -> Self {
        self.arq = Some(arq);
        self
    }

    /// Query parameter `k`.
    pub fn k(&self) -> usize {
        self.samples.k()
    }

    /// Expected transmissions per message on the edge above `child`
    /// (1 when no failures or no ARQ policy are configured).
    fn edge_attempts(&self, child: NodeId) -> f64 {
        match (self.failures, &self.arq) {
            (Some(f), Some(policy)) => policy.expected_attempts(f.prob(child)),
            _ => 1.0,
        }
    }

    /// Effective per-message cost on the edge above `child`. Under the
    /// reroute model this is the expected rerouting overhead
    /// (Section 4.4); under ARQ it is the header cost of every expected
    /// attempt, the expected backoff idle-listening, and the header-only
    /// ack sent when a retry finally succeeds.
    pub fn edge_message_cost(&self, child: NodeId) -> f64 {
        let per_message = self.energy.per_message_mj;
        match (self.failures, &self.arq) {
            (Some(f), Some(policy)) => {
                let p = f.prob(child);
                // P(delivered on a retry) = (1 - p^(r+1)) - (1 - p).
                let ack_prob = policy.delivery_prob(p) - (1.0 - p);
                per_message * policy.expected_attempts(p)
                    + policy.expected_backoff_mj(p)
                    + ack_prob * per_message
            }
            (Some(f), None) => per_message + f.expected_extra_cost(child),
            _ => per_message,
        }
    }

    /// Effective per-value payload cost on the edge above `child`: every
    /// retransmission resends the whole batch, so under ARQ the payload
    /// is paid once per expected attempt.
    pub fn edge_value_cost(&self, child: NodeId) -> f64 {
        self.energy.per_value() * self.edge_attempts(child)
    }

    /// Collection-phase cost of a plan under this context's cost model:
    /// one message per used edge plus the per-value payload. This is an
    /// upper bound — execution may ship fewer values than the bandwidth
    /// allows — and is the quantity planners budget against.
    pub fn plan_cost(&self, plan: &Plan) -> f64 {
        self.topology
            .edges()
            .filter(|&e| plan.is_used(e))
            .map(|e| self.edge_message_cost(e) + self.edge_value_cost(e) * plan.bandwidth(e) as f64)
            .sum()
    }

    /// Cost of the proven-count side channel of a proof-carrying plan: one
    /// extra field per non-leaf edge (Section 4.3 step 4).
    pub fn proof_overhead(&self) -> f64 {
        self.topology.edges().filter(|&e| !self.topology.is_leaf(e)).count() as f64
            * self.energy.per_byte_mj
            * self.energy.proven_count_bytes as f64
    }

    /// Minimum possible cost of a proof-carrying plan: every edge carries
    /// at least one value.
    pub fn min_proof_cost(&self) -> f64 {
        self.topology
            .edges()
            .map(|e| self.edge_message_cost(e) + self.edge_value_cost(e))
            .sum::<f64>()
            + self.proof_overhead()
    }
}

/// Solver statistics of an LP-backed plan, for observability: how hard
/// the simplex worked and what objective the relaxation reached before
/// rounding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LpStats {
    /// Simplex pivots of the solve.
    pub iterations: usize,
    /// Objective value of the LP relaxation (expected sample hits, before
    /// rounding and budget repair).
    pub objective: f64,
}

/// One link of a planning attempt chain: which planner was tried and, if
/// it failed, why (the [`PlanError`] rendered through `Display`).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanAttempt {
    /// [`Planner::name`] of the link.
    pub planner: &'static str,
    /// `None` for the link that produced the plan.
    pub error: Option<String>,
}

/// A plan together with provenance: which algorithm actually produced it.
///
/// Produced by [`Planner::plan_traced`]; combinators like
/// `FallbackPlanner` use it to report *which* link of their chain
/// succeeded without resorting to interior mutability.
#[derive(Debug, Clone)]
pub struct PlannedWith {
    pub plan: Plan,
    /// [`Planner::name`] of the algorithm that produced the plan.
    pub planner: &'static str,
    /// How many planners failed before this one succeeded (0 = the
    /// primary planner worked).
    pub fallback_depth: usize,
    /// Solver statistics when the producing planner solved an LP.
    pub lp: Option<LpStats>,
    /// Every link tried, in order, ending with the one that succeeded.
    /// Plain planners report the single successful attempt.
    pub attempts: Vec<PlanAttempt>,
}

/// A query-plan construction algorithm.
pub trait Planner {
    /// Algorithm name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Builds a plan whose collection cost stays within `ctx.budget_mj`.
    fn plan(&self, ctx: &PlanContext<'_>) -> Result<Plan, PlanError>;

    /// Like [`Planner::plan`] but also reports which algorithm produced
    /// the plan. For a plain planner that is simply itself at depth 0;
    /// combinators override this to attribute the plan to the chain link
    /// that actually succeeded.
    fn plan_traced(&self, ctx: &PlanContext<'_>) -> Result<PlannedWith, PlanError> {
        Ok(PlannedWith {
            plan: self.plan(ctx)?,
            planner: self.name(),
            fallback_depth: 0,
            lp: None,
            attempts: vec![PlanAttempt { planner: self.name(), error: None }],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_net::topology::chain;

    fn samples(n: usize, k: usize) -> SampleSet {
        let mut s = SampleSet::new(n, k, 8);
        s.push((0..n).map(|i| i as f64).collect());
        s
    }

    #[test]
    fn plan_cost_counts_messages_and_values() {
        let t = chain(3);
        let em = EnergyModel::mica2();
        let s = samples(3, 1);
        let ctx = PlanContext::new(&t, &em, &s, 100.0);
        let mut p = Plan::empty(3);
        p.set_bandwidth(NodeId(1), 2);
        p.set_bandwidth(NodeId(2), 1);
        let expect = 2.0 * em.per_message_mj + 3.0 * em.per_value();
        assert!((ctx.plan_cost(&p) - expect).abs() < 1e-9);
    }

    #[test]
    fn failures_inflate_edge_costs() {
        let t = chain(3);
        let em = EnergyModel::mica2();
        let s = samples(3, 1);
        let fm = FailureModel::uniform(3, 0.5, 2.0);
        let ctx = PlanContext::new(&t, &em, &s, 100.0).with_failures(&fm);
        assert!((ctx.edge_message_cost(NodeId(1)) - (em.per_message_mj + 1.0)).abs() < 1e-12);
        let mut p = Plan::empty(3);
        p.set_bandwidth(NodeId(1), 1);
        let base_ctx = PlanContext::new(&t, &em, &s, 100.0);
        assert!(ctx.plan_cost(&p) > base_ctx.plan_cost(&p));
    }

    #[test]
    fn arq_inflates_both_message_and_value_costs() {
        let t = chain(3);
        let em = EnergyModel::mica2();
        let s = samples(3, 1);
        let fm = FailureModel::uniform(3, 0.5, 2.0);
        let policy = prospector_net::ArqPolicy {
            max_retries: 2,
            backoff: prospector_net::Backoff { base_mj: 0.4, factor: 2.0, jitter: 0.0 },
        };
        let ctx = PlanContext::new(&t, &em, &s, 100.0).with_failures(&fm).with_arq(policy);
        // p = 0.5, r = 2: E[attempts] = 1.75, E[backoff] = 0.5·0.4 + 0.25·0.8,
        // P(ack) = (1 - 0.125) - 0.5 = 0.375.
        let expect_msg = em.per_message_mj * 1.75 + 0.4 + 0.375 * em.per_message_mj;
        assert!((ctx.edge_message_cost(NodeId(1)) - expect_msg).abs() < 1e-12);
        assert!((ctx.edge_value_cost(NodeId(1)) - em.per_value() * 1.75).abs() < 1e-12);
        // A clean edge prices exactly like the reliable model.
        let clean = FailureModel::none(3);
        let clean_ctx = PlanContext::new(&t, &em, &s, 100.0).with_failures(&clean).with_arq(policy);
        assert_eq!(clean_ctx.edge_message_cost(NodeId(1)), em.per_message_mj);
        assert_eq!(clean_ctx.edge_value_cost(NodeId(1)), em.per_value());
    }

    #[test]
    fn min_proof_cost_covers_every_edge() {
        let t = chain(4);
        let em = EnergyModel::mica2();
        let s = samples(4, 2);
        let ctx = PlanContext::new(&t, &em, &s, 100.0);
        // 3 edges × (message + 1 value) + proven-count bytes on the 2
        // non-leaf edges.
        let expect = 3.0 * (em.per_message_mj + em.per_value())
            + 2.0 * em.per_byte_mj * em.proven_count_bytes as f64;
        assert!((ctx.min_proof_cost() - expect).abs() < 1e-9);
    }

    #[test]
    fn k_comes_from_samples() {
        let t = chain(5);
        let em = EnergyModel::mica2();
        let s = samples(5, 3);
        let ctx = PlanContext::new(&t, &em, &s, 10.0);
        assert_eq!(ctx.k(), 3);
    }
}
