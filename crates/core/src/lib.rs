//! The Prospector top-k query planners — the primary contribution of
//! "A Sampling-Based Approach to Optimizing Top-k Queries in Sensor
//! Networks" (Silberstein, Braynard, Ellis, Munagala, Yang — ICDE 2006).
//!
//! A **query plan** assigns a bandwidth `w_e` to every edge of the routing
//! tree: the number of values node `e` may forward to its parent during a
//! collection phase ([`plan`]). Planners construct plans from a window of
//! past samples under an energy budget:
//!
//! * [`naive`] — the exact baseline `NAIVE-k` (every node forwards the top
//!   k of its subtree);
//! * [`oracle`] — non-realizable baselines that know the answer's
//!   locations: [`oracle::oracle_plan`] (lower bound for approximate
//!   algorithms) and [`oracle::oracle_proof_plan`] (lower bound for exact
//!   algorithms);
//! * [`greedy`] — `ProspectorGreedy`: highest top-k appearance counts
//!   first;
//! * [`lp_no_lf`] — `ProspectorLpNoLf` ("LP−LF"): topology-aware linear
//!   program without local filtering;
//! * [`lp_lf`] — `ProspectorLpLf` ("LP+LF"): per-sample variables capture
//!   local filtering;
//! * [`proof_lp`] — `ProspectorProof`: maximizes the expected number of
//!   top-k values *proven* at the root;
//! * [`exact`] — `ProspectorExact`: proof-carrying phase 1 plus a mop-up
//!   phase-2 specification.
//!
//! [`exec`] implements the paper's execution semantics as pure functions
//! (Section 2 for plain plans, Section 4.3 steps 1–4 for proof-carrying
//! plans); the `prospector-sim` crate layers energy metering, failures and
//! protocols on top. [`evaluate`] scores plans against samples or ground
//! truth, [`gate`] holds the root-side plausibility-gating trust machinery
//! (prediction bands, strike counters, quarantine/parole), and [`theory`]
//! demonstrates the Simple-Top-K ⊂ Stochastic-Steiner-Tree reduction of
//! Section 3.1 executably.

pub mod cluster;
pub mod continuous;
pub mod error;
pub mod evaluate;
pub mod exact;
pub mod exec;
pub mod fallback;
pub mod gate;
pub mod greedy;
pub mod lp_lf;
pub mod lp_no_lf;
pub mod naive;
pub mod oracle;
pub mod plan;
pub mod planner;
pub mod proof_lp;
pub mod sketch;
pub mod subset;
pub mod theory;

pub use cluster::{plan_cluster_query, Clustering};
pub use continuous::{ContinuousPolicy, ContinuousPolicyError};
pub use error::PlanError;
pub use exact::ExactConfig;
pub use exec::{
    proven_on_values, run_plan, run_plan_lossy, run_proof_plan, CollectionOutcome,
    LossyCollectionOutcome, ProofOutcome,
};
pub use fallback::FallbackPlanner;
pub use gate::{GatePolicy, GatePolicyError, TrustState, TrustTransition};
pub use greedy::ProspectorGreedy;
pub use lp_lf::{budget_shadow_price, ProspectorLpLf};
pub use lp_no_lf::ProspectorLpNoLf;
pub use naive::NaiveK;
pub use plan::Plan;
pub use planner::{LpStats, PlanAttempt, PlanContext, PlannedWith, Planner};
pub use proof_lp::ProspectorProof;
pub use sketch::{QDigest, SketchConfigError, SketchDecodeError, SketchPrecision};
pub use subset::{deliver_chosen, plan_subset_query, subset_accuracy};
