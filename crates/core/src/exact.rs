//! `ProspectorExact` planning (Section 4.3, "From ProspectorProof to
//! ProspectorExact").
//!
//! The exact algorithm runs in two phases: phase 1 executes a
//! proof-carrying plan under a chosen energy budget; if the root proves
//! all k values, done — otherwise a mop-up phase (implemented in
//! `prospector-sim::exact_exec`) retrieves the missing values using the
//! per-node `retrieved`/`proven` state of phase 1. This module holds the
//! configuration and the phase-1 planner; the interesting tradeoff is the
//! phase-1 budget: too small and the mop-up is expensive, too large and
//! phase 1 over-collects (Figure 8's U-shape).

use crate::error::PlanError;
use crate::plan::Plan;
use crate::planner::{PlanContext, Planner};
use crate::proof_lp::ProspectorProof;

/// Configuration of the two-phase exact algorithm.
#[derive(Debug, Clone, Copy)]
pub struct ExactConfig {
    /// Energy budget allocated to the proof-carrying first phase.
    pub phase1_budget_mj: f64,
}

impl ExactConfig {
    /// Builds the phase-1 proof-carrying plan under this config's budget
    /// (the rest of the context — topology, samples, energy — is shared
    /// with the caller's context).
    pub fn plan_phase1(&self, ctx: &PlanContext<'_>) -> Result<Plan, PlanError> {
        let phase1_ctx = PlanContext {
            topology: ctx.topology,
            energy: ctx.energy,
            samples: ctx.samples,
            budget_mj: self.phase1_budget_mj,
            failures: ctx.failures,
            arq: ctx.arq,
        };
        ProspectorProof::default().plan(&phase1_ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_data::SampleSet;
    use prospector_net::topology::balanced;
    use prospector_net::EnergyModel;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn phase1_uses_its_own_budget() {
        let t = balanced(2, 3);
        let em = EnergyModel::mica2();
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = SampleSet::new(t.len(), 2, 4);
        for _ in 0..4 {
            s.push((0..t.len()).map(|_| rng.random_range(0.0..10.0)).collect());
        }
        // Outer context has a huge budget; phase 1 gets a tight one.
        let ctx = PlanContext::new(&t, &em, &s, 1e9);
        let tight = PlanContext::new(&t, &em, &s, 1.0).min_proof_cost() + 3.0;
        let cfg = ExactConfig { phase1_budget_mj: tight };
        let plan = cfg.plan_phase1(&ctx).unwrap();
        assert!(ctx.plan_cost(&plan) + ctx.proof_overhead() <= tight + 1e-9);
        assert!(plan.proof_carrying);
    }
}
