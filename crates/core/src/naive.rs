//! The `NAIVE-k` exact baseline (Section 2).
//!
//! "Each node simply collects the top k values from each of its children,
//! computes the top k among all such values and its own, and passes them on
//! to its parent." It visits every node (mandatory for exactness) but
//! wastes bandwidth: a node with fan-out f receives f·k values of which at
//! least (f−1)·k cannot all be in the final result.
//!
//! The pipelined `NAIVE-1` baseline is a *protocol*, not a bandwidth plan;
//! it lives in `prospector-sim::naive1`.

use crate::error::PlanError;
use crate::plan::Plan;
use crate::planner::{PlanContext, Planner};

/// Exact one-pass baseline; ignores the energy budget (exactness is
/// non-negotiable for it).
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveK;

impl Planner for NaiveK {
    fn name(&self) -> &'static str {
        "naive-k"
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> Result<Plan, PlanError> {
        Ok(Plan::naive_k(ctx.topology, ctx.k()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::expected_misses;
    use prospector_data::SampleSet;
    use prospector_net::topology::balanced;
    use prospector_net::EnergyModel;

    #[test]
    fn always_exact_on_any_sample() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let mut s = SampleSet::new(t.len(), 4, 8);
        for e in 0..5u64 {
            s.push((0..t.len()).map(|i| ((i as u64 * 7 + e * 13) % 31) as f64).collect());
        }
        let ctx = PlanContext::new(&t, &em, &s, 1.0); // budget irrelevant
        let plan = NaiveK.plan(&ctx).unwrap();
        plan.validate(&t).unwrap();
        assert_eq!(expected_misses(&plan, &t, &s), 0.0);
    }

    #[test]
    fn visits_every_node() {
        let t = balanced(2, 3);
        let em = EnergyModel::mica2();
        let mut s = SampleSet::new(t.len(), 2, 2);
        s.push((0..t.len()).map(|i| i as f64).collect());
        let ctx = PlanContext::new(&t, &em, &s, 0.0);
        let plan = NaiveK.plan(&ctx).unwrap();
        assert_eq!(plan.num_visited(&t), t.len());
    }
}
