//! `ProspectorLpNoLf` — the paper's "LP−LF" formulation (Section 4.1).
//!
//! One variable `x_i` per candidate node (does its value travel to the
//! root?) and one variable `y_e` per edge (is the edge used?). The plan is
//! topology-aware: values clustered under one subtree share per-message
//! costs — but there is no local filtering; a chosen value always travels
//! the whole path.
//!
//! The paper's constraint family `x_i ≤ y_e ∀e ∈ anc(i)` is encoded in the
//! equivalent, much sparser form `x_i ≤ y_{e(i)}` plus the edge-use
//! monotonicity `y_e ≤ y_{parent(e)}` (a used edge's parent edge is used in
//! any meaningful plan).

use crate::error::PlanError;
use crate::greedy::{greedy_extend, ChosenSet};
use crate::plan::Plan;
use crate::planner::{LpStats, PlanAttempt, PlanContext, PlannedWith, Planner};
use prospector_lp::{Cmp, Problem, Sense, Status, VarId};
use prospector_net::NodeId;

/// The LP−LF planner.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProspectorLpNoLf;

impl Planner for ProspectorLpNoLf {
    fn name(&self) -> &'static str {
        "lp-lf(-)"
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> Result<Plan, PlanError> {
        if ctx.samples.is_empty() {
            return Err(PlanError::NoSamples);
        }
        plan_with_counts(ctx, ctx.samples.column_counts())
    }

    fn plan_traced(&self, ctx: &PlanContext<'_>) -> Result<PlannedWith, PlanError> {
        if ctx.samples.is_empty() {
            return Err(PlanError::NoSamples);
        }
        let (plan, lp) = plan_with_counts_stats(ctx, ctx.samples.column_counts())?;
        Ok(PlannedWith {
            plan,
            planner: self.name(),
            fallback_depth: 0,
            lp,
            attempts: vec![PlanAttempt { planner: self.name(), error: None }],
        })
    }
}

/// The LP−LF construction over arbitrary per-node answer counts — shared
/// with the generalized subset planner of [`crate::subset`] (the paper's
/// Section 3 notes the framework only needs "the total number of 1's in
/// the matrix missed by the plan", whatever query defines the 1's).
pub(crate) fn plan_with_counts(ctx: &PlanContext<'_>, counts: &[u32]) -> Result<Plan, PlanError> {
    plan_with_counts_stats(ctx, counts).map(|(plan, _)| plan)
}

/// Like [`plan_with_counts`], also reporting LP solver statistics (`None`
/// when the LP was skipped because no candidates exist).
pub(crate) fn plan_with_counts_stats(
    ctx: &PlanContext<'_>,
    counts: &[u32],
) -> Result<(Plan, Option<LpStats>), PlanError> {
    {
        let topo = ctx.topology;
        let n = topo.len();

        // Candidate nodes: appear in at least one sample's top k and are
        // not the root (whose value is free).
        let candidates: Vec<NodeId> = (0..n)
            .map(NodeId::from_index)
            .filter(|&i| i != topo.root() && counts[i.index()] > 0)
            .collect();
        if candidates.is_empty() {
            return Ok((Plan::empty(n), None));
        }

        // Relevant edges: subtree contains at least one candidate.
        let mut relevant = vec![false; n];
        for &c in &candidates {
            for e in topo.edges_to_root(c) {
                relevant[e.index()] = true;
            }
        }

        let mut lp = Problem::new(Sense::Maximize);
        let mut x: Vec<Option<VarId>> = vec![None; n];
        let mut y: Vec<Option<VarId>> = vec![None; n];
        for &i in &candidates {
            x[i.index()] = Some(lp.add_var(0.0, 1.0, counts[i.index()] as f64));
        }
        for e in topo.edges() {
            if relevant[e.index()] {
                y[e.index()] = Some(lp.add_var(0.0, 1.0, 0.0));
            }
        }

        // x_i ≤ y_{e(i)} — the candidate's own edge.
        for &i in &candidates {
            let xi = x[i.index()].expect("candidate has a variable");
            let yi = y[i.index()].expect("candidate's edge is relevant");
            lp.add_constraint([(xi, 1.0), (yi, -1.0)], Cmp::Le, 0.0);
        }
        // y_e ≤ y_parent(e) for non-root-adjacent relevant edges.
        for e in topo.edges() {
            let Some(ye) = y[e.index()] else { continue };
            if let Some(p) = topo.parent(e) {
                if p != topo.root() {
                    let yp = y[p.index()].expect("parent of a relevant edge is relevant");
                    lp.add_constraint([(ye, 1.0), (yp, -1.0)], Cmp::Le, 0.0);
                }
            }
        }
        // Budget row.
        let mut budget_terms: Vec<(VarId, f64)> = Vec::new();
        for e in topo.edges() {
            if let Some(ye) = y[e.index()] {
                budget_terms.push((ye, ctx.edge_message_cost(e)));
            }
        }
        for &i in &candidates {
            let xi = x[i.index()].expect("candidate has a variable");
            // Without local filtering the value travels every edge to the
            // root, paying each edge's (possibly retransmission-inflated)
            // payload cost.
            let path_value_cost: f64 = topo.edges_to_root(i).map(|e| ctx.edge_value_cost(e)).sum();
            budget_terms.push((xi, path_value_cost));
        }
        lp.add_constraint(budget_terms, Cmp::Le, ctx.budget_mj);

        let sol = lp.solve()?;
        if sol.status != Status::Optimal {
            return Err(PlanError::UnexpectedLpStatus(match sol.status {
                Status::Infeasible => "infeasible",
                Status::Unbounded => "unbounded",
                _ => "iteration limit",
            }));
        }
        let stats = LpStats { iterations: sol.iterations, objective: sol.objective };

        // Round at 1/2, then repair to the budget, then fill leftovers.
        let mut set = ChosenSet::new(n);
        let mut rounded: Vec<NodeId> = candidates
            .iter()
            .copied()
            .filter(|&i| sol.value(x[i.index()].expect("candidate")) > 0.5)
            .collect();
        // Deterministic addition order: best counts first.
        rounded.sort_unstable_by_key(|&i| (std::cmp::Reverse(counts[i.index()]), i.0));
        for i in rounded {
            // Skip nodes that no longer fit (the ×2 rounding slack).
            if set.cost + set.marginal_cost(ctx, i) <= ctx.budget_mj {
                set.add(ctx, i);
            }
        }
        greedy_extend(&mut set, ctx, counts, ctx.budget_mj);
        Ok((Plan::from_chosen(ctx.topology, &set.chosen), Some(stats)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::expected_misses;
    use crate::greedy::ProspectorGreedy;
    use prospector_data::SampleSet;
    use prospector_net::topology::{balanced, chain, star};
    use prospector_net::{EnergyModel, Topology};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn gaussianish_samples(n: usize, k: usize, rows: usize, seed: u64) -> SampleSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let means: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..100.0)).collect();
        let mut s = SampleSet::new(n, k, rows);
        for _ in 0..rows {
            s.push(means.iter().map(|m| m + rng.random_range(-5.0..5.0)).collect());
        }
        s
    }

    #[test]
    fn respects_budget() {
        let t = balanced(3, 3);
        let em = EnergyModel::mica2();
        let s = gaussianish_samples(t.len(), 5, 10, 1);
        for budget in [5.0, 20.0, 60.0, 200.0] {
            let ctx = PlanContext::new(&t, &em, &s, budget);
            let plan = ProspectorLpNoLf.plan(&ctx).unwrap();
            plan.validate(&t).unwrap();
            assert!(
                ctx.plan_cost(&plan) <= budget + 1e-9,
                "budget {budget} exceeded: {}",
                ctx.plan_cost(&plan)
            );
        }
    }

    #[test]
    fn exact_when_budget_ample() {
        let t = balanced(2, 3);
        let em = EnergyModel::mica2();
        let s = gaussianish_samples(t.len(), 3, 8, 2);
        let ctx = PlanContext::new(&t, &em, &s, 1e6);
        let plan = ProspectorLpNoLf.plan(&ctx).unwrap();
        assert_eq!(expected_misses(&plan, &t, &s), 0.0);
    }

    #[test]
    fn prefers_clustered_values_over_scattered() {
        // Two subtrees: a chain holding two frequent top-k nodes (shared
        // path = one message chain), versus an equally-frequent node on a
        // separate long chain. With budget for one chain only, the LP must
        // take the clustered pair.
        //
        //      0
        //     / \
        //    1   4
        //    |   |
        //    2   5
        //    |   |
        //    3   6
        let parent = vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(1)),
            Some(NodeId(2)),
            Some(NodeId(0)),
            Some(NodeId(4)),
            Some(NodeId(5)),
        ];
        let t = Topology::from_parents(NodeId(0), parent).unwrap();
        let em = EnergyModel::mica2();
        let mut s = SampleSet::new(7, 2, 4);
        // top-2 always node 2 and node 3 (left chain); node 6 also high
        // once in a while — but we keep it simple: nodes 2, 3 always win.
        s.push(vec![0.0, 1.0, 9.0, 8.0, 1.0, 1.0, 7.0]);
        s.push(vec![0.0, 1.0, 9.0, 8.0, 1.0, 1.0, 7.0]);
        // Budget: the left chain costs 3 messages + (2+3) values… choose
        // budget tight enough for one chain.
        let budget = 3.0 * em.per_message_mj + 5.0 * em.per_value() + 1e-6;
        let ctx = PlanContext::new(&t, &em, &s, budget);
        let plan = ProspectorLpNoLf.plan(&ctx).unwrap();
        assert!(plan.is_used(NodeId(3)) && plan.is_used(NodeId(2)), "clustered pair chosen");
        assert!(!plan.is_used(NodeId(6)), "scattered node not worth a separate chain");
        assert!(ctx.plan_cost(&plan) <= budget);
    }

    #[test]
    fn at_least_as_good_as_greedy_on_average() {
        // Topology-awareness should not lose to greedy across seeds.
        let em = EnergyModel::mica2();
        let mut lp_wins = 0usize;
        let mut ties = 0usize;
        let trials = 6;
        for seed in 0..trials {
            let t = balanced(3, 3);
            let s = gaussianish_samples(t.len(), 5, 10, seed);
            let budget = 25.0;
            let ctx = PlanContext::new(&t, &em, &s, budget);
            let lp_plan = ProspectorLpNoLf.plan(&ctx).unwrap();
            let greedy_plan = ProspectorGreedy.plan(&ctx).unwrap();
            let ml = expected_misses(&lp_plan, &t, &s);
            let mg = expected_misses(&greedy_plan, &t, &s);
            if ml < mg - 1e-9 {
                lp_wins += 1;
            } else if (ml - mg).abs() <= 1e-9 {
                ties += 1;
            }
        }
        assert!(
            lp_wins + ties >= trials as usize - 1,
            "LP−LF lost to greedy too often: wins={lp_wins} ties={ties}"
        );
    }

    #[test]
    fn empty_candidates_give_empty_plan() {
        // Root holds the top value in every sample → nothing to plan.
        let t = star(3);
        let em = EnergyModel::mica2();
        let mut s = SampleSet::new(3, 1, 2);
        s.push(vec![9.0, 1.0, 2.0]);
        let ctx = PlanContext::new(&t, &em, &s, 100.0);
        let plan = ProspectorLpNoLf.plan(&ctx).unwrap();
        assert_eq!(plan.total_bandwidth(), 0);
    }

    #[test]
    fn errors_without_samples() {
        let t = chain(3);
        let em = EnergyModel::mica2();
        let s = SampleSet::new(3, 1, 2);
        let ctx = PlanContext::new(&t, &em, &s, 10.0);
        assert!(matches!(ProspectorLpNoLf.plan(&ctx), Err(PlanError::NoSamples)));
    }
}
