//! Oracle baselines (Section 5).
//!
//! `ORACLE` "knows the exact location of the top k values beforehand; its
//! cost serves as a baseline for comparison of the approximate
//! algorithms". `ORACLE-PROOF` also knows the locations "but still accesses
//! all nodes to provide a proof for the solution" — the baseline for exact
//! algorithms. Neither is realizable; both are built directly from the true
//! epoch values.

use crate::plan::Plan;
use prospector_data::top_k_nodes;
use prospector_net::Topology;

/// The `ORACLE` plan for one epoch: ship exactly the true top-k values to
/// the root (`w_e = |top-k ∩ desc(e)|`), visiting only the nodes on their
/// paths.
pub fn oracle_plan(topology: &Topology, values: &[f64], k: usize) -> Plan {
    let top = top_k_nodes(values, k);
    let mut bw = vec![0u32; topology.len()];
    for node in top {
        for e in topology.edges_to_root(node) {
            bw[e.index()] += 1;
        }
    }
    Plan::from_bandwidths(bw, false)
}

/// The `ORACLE-PROOF` plan: every subtree forwards its top-k members plus
/// one witness value (`w_e = min(|desc(e)|, m_e + 1)`), which provably
/// proves the entire answer at the root (see the tests and DESIGN.md §4).
pub fn oracle_proof_plan(topology: &Topology, values: &[f64], k: usize) -> Plan {
    let top = top_k_nodes(values, k);
    let mut members = vec![0u32; topology.len()];
    for node in top {
        for e in topology.edges_to_root(node) {
            members[e.index()] += 1;
        }
    }
    let mut bw = vec![0u32; topology.len()];
    for e in topology.edges() {
        bw[e.index()] = (members[e.index()] + 1).min(topology.subtree_size(e) as u32);
    }
    Plan::from_bandwidths(bw, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::accuracy_on_values;
    use crate::exec::run_proof_plan;
    use prospector_net::topology::{balanced, chain, star};
    use prospector_net::NodeId;

    #[test]
    fn oracle_is_always_exact() {
        let t = balanced(3, 2);
        let values: Vec<f64> = (0..t.len()).map(|i| ((i * 29 + 3) % 41) as f64).collect();
        for k in [1, 3, 7] {
            let p = oracle_plan(&t, &values, k);
            p.validate(&t).unwrap();
            assert_eq!(accuracy_on_values(&p, &t, &values, k), 1.0, "k={k}");
        }
    }

    #[test]
    fn oracle_visits_only_necessary_paths() {
        let t = star(6);
        let values = vec![0.0, 9.0, 8.0, 1.0, 2.0, 3.0];
        let p = oracle_plan(&t, &values, 2);
        assert_eq!(p.num_visited(&t), 3, "root + the two top nodes");
        assert_eq!(p.bandwidth(NodeId(1)), 1);
        assert_eq!(p.bandwidth(NodeId(3)), 0);
    }

    #[test]
    fn oracle_stacks_bandwidth_on_shared_paths() {
        let t = chain(4);
        let values = vec![0.0, 1.0, 8.0, 9.0];
        let p = oracle_plan(&t, &values, 2);
        assert_eq!(p.bandwidth(NodeId(3)), 1);
        assert_eq!(p.bandwidth(NodeId(2)), 2);
        assert_eq!(p.bandwidth(NodeId(1)), 2);
    }

    #[test]
    fn oracle_proof_proves_full_answer() {
        // The m_e + 1 witness rule must yield a fully proven answer on a
        // variety of shapes and value assignments.
        for (t, seed) in [(balanced(2, 3), 11u64), (balanced(3, 2), 5), (chain(9), 3), (star(9), 7)]
        {
            let values: Vec<f64> =
                (0..t.len()).map(|i| ((i as u64 * 131 + seed * 17) % 97) as f64).collect();
            for k in [1, 2, 4] {
                let p = oracle_proof_plan(&t, &values, k);
                p.validate(&t).unwrap();
                let out = run_proof_plan(&p, &t, &values, k);
                assert_eq!(out.proven, k.min(t.len()), "k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn oracle_proof_visits_all_nodes() {
        let t = balanced(2, 2);
        let values: Vec<f64> = (0..t.len()).map(|i| i as f64).collect();
        let p = oracle_proof_plan(&t, &values, 2);
        assert_eq!(p.num_visited(&t), t.len());
    }

    #[test]
    fn oracle_proof_cheaper_than_naive_k() {
        // Its whole point: proofs with ~1 extra value per subtree instead
        // of k per subtree.
        let t = balanced(3, 3);
        let values: Vec<f64> = (0..t.len()).map(|i| ((i * 53) % 101) as f64).collect();
        let k = 8;
        let proof = oracle_proof_plan(&t, &values, k);
        let naive = Plan::naive_k(&t, k);
        assert!(proof.total_bandwidth() < naive.total_bandwidth());
    }
}
