//! `ProspectorLpLf` — the paper's "LP+LF" formulation (Section 4.2).
//!
//! Local filtering lets a node receive more values than it forwards, so
//! the plan can hedge across negatively correlated nodes (contention
//! zones): visit many, forward few. To capture this the LP uses one
//! variable `x_{j,i}` per **1-entry of the sample matrix** (does the plan
//! deliver node i's value for sample j?) instead of one per node, plus a
//! bandwidth variable `w_e` per edge; the bandwidth rows
//! `Σ_{i ∈ ones(j) ∩ desc(e)} x_{j,i} ≤ w_e` express that an edge can
//! forward only `w_e` of a sample's top values no matter how many its
//! subtree holds.

use crate::error::PlanError;
use crate::evaluate::{expected_misses, expected_misses_with};
use crate::plan::Plan;
use crate::planner::{LpStats, PlanAttempt, PlanContext, PlannedWith, Planner};
use prospector_lp::{Cmp, Problem, Sense, Status, VarId};
use prospector_net::NodeId;
use std::collections::BTreeMap;

/// The LP+LF planner.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProspectorLpLf;

impl ProspectorLpLf {
    /// The full construction, also reporting solver statistics for
    /// observability (surfaced through [`Planner::plan_traced`]).
    fn plan_with_stats(&self, ctx: &PlanContext<'_>) -> Result<(Plan, LpStats), PlanError> {
        if ctx.samples.is_empty() {
            return Err(PlanError::NoSamples);
        }
        let topo = ctx.topology;
        let n = topo.len();
        let k = ctx.k();
        let (lp, w) = build_lp(ctx);

        let sol = lp.solve()?;
        if sol.status != Status::Optimal {
            return Err(PlanError::UnexpectedLpStatus(match sol.status {
                Status::Infeasible => "infeasible",
                Status::Unbounded => "unbounded",
                _ => "iteration limit",
            }));
        }
        let stats = LpStats { iterations: sol.iterations, objective: sol.objective };

        // Round bandwidths to the nearest integer and restore plan
        // structure.
        let mut plan = Plan::empty(n);
        for e in topo.edges() {
            if let Some(we) = w[e.index()] {
                let ub = topo.subtree_size(e).min(k) as u32;
                let rounded = sol.value(we).round().max(0.0) as u32;
                plan.set_bandwidth(e, rounded.min(ub));
            }
        }
        plan.repair_connectivity(topo);
        repair_budget(&mut plan, ctx);
        Ok((plan, stats))
    }
}

impl Planner for ProspectorLpLf {
    fn name(&self) -> &'static str {
        "lp+lf"
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> Result<Plan, PlanError> {
        self.plan_with_stats(ctx).map(|(plan, _)| plan)
    }

    fn plan_traced(&self, ctx: &PlanContext<'_>) -> Result<PlannedWith, PlanError> {
        let (plan, stats) = self.plan_with_stats(ctx)?;
        Ok(PlannedWith {
            plan,
            planner: self.name(),
            fallback_depth: 0,
            lp: Some(stats),
            attempts: vec![PlanAttempt { planner: self.name(), error: None }],
        })
    }
}

/// The marginal value of energy at the current budget: the shadow price of
/// the LP+LF budget row, in expected sample-hits per millijoule. High
/// while the budget starves the plan; zero once every sample's top-k is
/// captured (diminishing-returns diagnostics for operators choosing a
/// budget).
pub fn budget_shadow_price(ctx: &PlanContext<'_>) -> Result<f64, PlanError> {
    if ctx.samples.is_empty() {
        return Err(PlanError::NoSamples);
    }
    let (lp, _) = build_lp(ctx);
    let sol = lp.solve()?;
    if sol.status != Status::Optimal {
        return Err(PlanError::UnexpectedLpStatus("shadow-price solve"));
    }
    // The budget row is added last by build_lp. Normalize per sample so
    // the price reads as "expected answer values per mJ per query".
    let row = lp.num_constraints() - 1;
    Ok(sol.dual(row) / ctx.samples.len() as f64)
}

/// Builds the LP+LF program; the budget row is always the LAST constraint
/// (relied upon by [`budget_shadow_price`]). Returns the per-edge
/// bandwidth variables.
fn build_lp(ctx: &PlanContext<'_>) -> (Problem, Vec<Option<VarId>>) {
    {
        let topo = ctx.topology;
        let n = topo.len();
        let k = ctx.k();
        let num_samples = ctx.samples.len();

        // Relevant edges: lie on a path from some sample's top-k node.
        let mut relevant = vec![false; n];
        for j in 0..num_samples {
            for &i in ctx.samples.ones(j) {
                for e in topo.edges_to_root(i) {
                    relevant[e.index()] = true;
                }
            }
        }

        let mut lp = Problem::new(Sense::Maximize);
        let mut w: Vec<Option<VarId>> = vec![None; n];
        let mut y: Vec<Option<VarId>> = vec![None; n];
        for e in topo.edges() {
            if relevant[e.index()] {
                let ub = (topo.subtree_size(e).min(k)) as f64;
                w[e.index()] = Some(lp.add_var(0.0, ub, 0.0));
                y[e.index()] = Some(lp.add_var(0.0, 1.0, 0.0));
            }
        }

        // x_{j,i} variables and the per-(sample, edge) groupings for the
        // bandwidth rows. Ordered maps: their iteration order below fixes
        // the constraint order, and with it the simplex pivot sequence —
        // a hash map would make iteration counts (and the trace) vary
        // from run to run.
        let mut x: BTreeMap<(usize, u32), VarId> = BTreeMap::new();
        let mut through: BTreeMap<(usize, u32), Vec<VarId>> = BTreeMap::new();
        for j in 0..num_samples {
            for &i in ctx.samples.ones(j) {
                if i == topo.root() {
                    continue; // the root's value is delivered for free
                }
                let xi = lp.add_var(0.0, 1.0, 1.0);
                x.insert((j, i.0), xi);
                for e in topo.edges_to_root(i) {
                    through.entry((j, e.0)).or_default().push(xi);
                }
            }
        }

        // x_{j,i} ≤ y_{e(i)}.
        for (&(_, i), &xi) in &x {
            let yi = y[i as usize].expect("top-k node's edge is relevant");
            lp.add_constraint([(xi, 1.0), (yi, -1.0)], Cmp::Le, 0.0);
        }
        // y monotone up the tree.
        for e in topo.edges() {
            let Some(ye) = y[e.index()] else { continue };
            if let Some(p) = topo.parent(e) {
                if p != topo.root() {
                    let yp = y[p.index()].expect("parent of relevant edge is relevant");
                    lp.add_constraint([(ye, 1.0), (yp, -1.0)], Cmp::Le, 0.0);
                }
            }
        }
        // Bandwidth rows.
        for (&(_, e), xs) in &through {
            let we = w[e as usize].expect("edge with top-k traffic is relevant");
            let mut terms: Vec<(VarId, f64)> = xs.iter().map(|&v| (v, 1.0)).collect();
            terms.push((we, -1.0));
            lp.add_constraint(terms, Cmp::Le, 0.0);
        }
        // Budget row.
        let mut budget_terms: Vec<(VarId, f64)> = Vec::new();
        for e in topo.edges() {
            if let (Some(we), Some(ye)) = (w[e.index()], y[e.index()]) {
                budget_terms.push((we, ctx.edge_value_cost(e)));
                budget_terms.push((ye, ctx.edge_message_cost(e)));
            }
        }
        lp.add_constraint(budget_terms, Cmp::Le, ctx.budget_mj);
        (lp, w)
    }
}

/// Greedily decrements bandwidths until the plan fits the budget, dropping
/// the capacity whose removal costs the fewest expected sample hits.
///
/// Candidate drops are scored on the worker pool; each worker evaluates
/// its candidates serially (the outer fan-out already saturates the pool).
/// Scores are reduced in edge order with the same strict comparison as the
/// old serial loop, so the chosen drop — and therefore the final plan — is
/// identical at any thread count. Each score is an `expected_misses` call,
/// which `evaluate::hits_on_sample` serves from the window's stored top-k
/// sets in O(k·depth) per sample — this loop visits every used edge per
/// round, so the old per-candidate re-simulation was the piece that made
/// LP+LF planning collapse beyond a few thousand nodes.
fn repair_budget(plan: &mut Plan, ctx: &PlanContext<'_>) {
    let topo = ctx.topology;
    loop {
        let cost = ctx.plan_cost(plan);
        if cost <= ctx.budget_mj || plan.total_bandwidth() == 0 {
            return;
        }
        let base_misses = expected_misses(plan, topo, ctx.samples);
        let current: &Plan = plan;
        let used: Vec<NodeId> = topo.edges().filter(|&e| current.is_used(e)).collect();
        let scored = prospector_par::par_map(&used, |_, &e| {
            let candidate = decremented(current, topo, e);
            let loss = expected_misses_with(&candidate, topo, ctx.samples, 1) - base_misses;
            let saving = cost - ctx.plan_cost(&candidate);
            (loss, -saving)
        });
        let mut best: Option<((f64, f64), NodeId)> = None;
        for (&e, &key) in used.iter().zip(&scored) {
            if best.is_none_or(|(bk, _)| key < bk) {
                best = Some((key, e));
            }
        }
        let Some((_, e)) = best else { return };
        *plan = decremented(plan, topo, e);
    }
}

/// `plan` with one unit of bandwidth removed from edge `e`; when the edge
/// drops to zero its whole subtree is disconnected and zeroed.
fn decremented(plan: &Plan, topo: &prospector_net::Topology, e: NodeId) -> Plan {
    let mut p = plan.clone();
    let w = p.bandwidth(e);
    debug_assert!(w > 0);
    p.set_bandwidth(e, w - 1);
    if w == 1 {
        for d in topo.subtree(e) {
            p.set_bandwidth(d, 0);
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_no_lf::ProspectorLpNoLf;
    use prospector_data::SampleSet;
    use prospector_net::topology::{balanced, star};
    use prospector_net::{EnergyModel, Topology};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// A miniature contention zone: one subtree of `m` nodes where exactly
    /// one (random per sample) spikes above everything else.
    fn zone_samples(n_zone: usize, rows: usize, seed: u64) -> (Topology, SampleSet) {
        // 0 = root, 1 = zone head, 2..=n_zone+1 = zone members under 1.
        let mut parent = vec![None, Some(NodeId(0))];
        for _ in 0..n_zone {
            parent.push(Some(NodeId(1)));
        }
        let t = Topology::from_parents(NodeId(0), parent).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = SampleSet::new(t.len(), 1, rows);
        for _ in 0..rows {
            let mut v = vec![1.0; t.len()];
            v[0] = 0.0;
            let spike = 2 + rng.random_range(0..n_zone);
            v[spike] = 100.0;
            s.push(v);
        }
        (t, s)
    }

    #[test]
    fn respects_budget() {
        let t = balanced(3, 3);
        let em = EnergyModel::mica2();
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = SampleSet::new(t.len(), 5, 10);
        let means: Vec<f64> = (0..t.len()).map(|_| rng.random_range(0.0..100.0)).collect();
        for _ in 0..10 {
            s.push(means.iter().map(|m| m + rng.random_range(-10.0..10.0)).collect());
        }
        for budget in [10.0, 30.0, 80.0, 300.0] {
            let ctx = PlanContext::new(&t, &em, &s, budget);
            let plan = ProspectorLpLf.plan(&ctx).unwrap();
            plan.validate(&t).unwrap();
            assert!(
                ctx.plan_cost(&plan) <= budget + 1e-9,
                "budget {budget} exceeded: {}",
                ctx.plan_cost(&plan)
            );
        }
    }

    #[test]
    fn uses_local_filtering_under_contention() {
        // One zone of 8 nodes, exactly one of which spikes per sample. The
        // LF plan should visit all zone members but forward only ~1 value
        // from the zone head — bandwidth(zone head) < Σ bandwidth(members).
        let (t, s) = zone_samples(8, 12, 5);
        let em = EnergyModel::mica2();
        // Budget: all 9 edges used + a handful of values, but far less
        // than shipping 8 values through the head.
        let budget = 9.0 * em.per_message_mj + 12.0 * em.per_value();
        let ctx = PlanContext::new(&t, &em, &s, budget);
        let plan = ProspectorLpLf.plan(&ctx).unwrap();
        plan.validate(&t).unwrap();
        let member_bw: u32 = (2..t.len()).map(|i| plan.bandwidth(NodeId::from_index(i))).sum();
        let head_bw = plan.bandwidth(NodeId(1));
        assert!(head_bw < member_bw, "no filtering: head {head_bw} vs members {member_bw}");
        // And it must actually deliver the spike in most samples.
        let misses = expected_misses(&plan, &t, &s);
        assert!(misses < 0.2, "misses {misses}");
    }

    #[test]
    fn beats_no_lf_under_contention() {
        let (t, s) = zone_samples(10, 12, 7);
        let em = EnergyModel::mica2();
        let budget = 11.0 * em.per_message_mj + 14.0 * em.per_value();
        let ctx = PlanContext::new(&t, &em, &s, budget);
        let lf = ProspectorLpLf.plan(&ctx).unwrap();
        let nolf = ProspectorLpNoLf.plan(&ctx).unwrap();
        let m_lf = expected_misses(&lf, &t, &s);
        let m_nolf = expected_misses(&nolf, &t, &s);
        assert!(
            m_lf <= m_nolf + 1e-9,
            "LP+LF ({m_lf}) should not lose to LP−LF ({m_nolf}) under contention"
        );
    }

    #[test]
    fn exact_when_budget_ample() {
        let t = balanced(2, 3);
        let em = EnergyModel::mica2();
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = SampleSet::new(t.len(), 3, 6);
        for _ in 0..6 {
            s.push((0..t.len()).map(|_| rng.random_range(0.0..50.0)).collect());
        }
        let ctx = PlanContext::new(&t, &em, &s, 1e6);
        let plan = ProspectorLpLf.plan(&ctx).unwrap();
        assert_eq!(expected_misses(&plan, &t, &s), 0.0);
    }

    #[test]
    fn zero_budget_gives_empty_plan() {
        let t = star(4);
        let em = EnergyModel::mica2();
        let mut s = SampleSet::new(4, 1, 2);
        s.push(vec![0.0, 3.0, 2.0, 1.0]);
        let ctx = PlanContext::new(&t, &em, &s, 0.0);
        let plan = ProspectorLpLf.plan(&ctx).unwrap();
        assert_eq!(plan.total_bandwidth(), 0);
    }

    #[test]
    fn errors_without_samples() {
        let t = star(3);
        let em = EnergyModel::mica2();
        let s = SampleSet::new(3, 1, 2);
        let ctx = PlanContext::new(&t, &em, &s, 10.0);
        assert!(matches!(ProspectorLpLf.plan(&ctx), Err(PlanError::NoSamples)));
        assert!(matches!(budget_shadow_price(&ctx), Err(PlanError::NoSamples)));
    }

    #[test]
    fn shadow_price_shows_diminishing_returns() {
        let t = balanced(2, 3);
        let em = EnergyModel::mica2();
        let mut rng = StdRng::seed_from_u64(17);
        let mut s = SampleSet::new(t.len(), 3, 6);
        for _ in 0..6 {
            s.push((0..t.len()).map(|_| rng.random_range(0.0..50.0)).collect());
        }
        // Starved budget: energy is precious.
        let tight = budget_shadow_price(&PlanContext::new(&t, &em, &s, 3.0)).unwrap();
        // Saturated budget: extra energy buys nothing.
        let loose = budget_shadow_price(&PlanContext::new(&t, &em, &s, 1e5)).unwrap();
        assert!(tight > 0.0, "tight budget must have positive shadow price: {tight}");
        assert!(loose.abs() < 1e-9, "saturated budget price must vanish: {loose}");
        assert!(tight > loose);
    }
}
