//! Query-plan representation (Section 2).
//!
//! "A single-pass approximate plan is an assignment of bandwidth `w_e` to
//! each edge in the network. This bandwidth represents the number of values
//! that should be transmitted on `e` in a collection phase."

use prospector_net::{NodeId, Topology};
use std::fmt;

/// Validation failures for a [`Plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanInvariant {
    /// `w_e` exceeds the number of nodes in the subtree under `e`.
    BandwidthExceedsSubtree { edge: NodeId, bandwidth: u32, subtree: u32 },
    /// An edge carries values but its parent edge does not, so the values
    /// can never reach the root.
    OrphanedEdge { edge: NodeId },
    /// A proof-carrying plan must use every edge.
    ProofPlanSkipsEdge { edge: NodeId },
    /// The bandwidth vector length does not match the topology.
    SizeMismatch { plan: usize, topology: usize },
}

impl fmt::Display for PlanInvariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanInvariant::BandwidthExceedsSubtree { edge, bandwidth, subtree } => {
                write!(f, "edge {edge} has bandwidth {bandwidth} > subtree size {subtree}")
            }
            PlanInvariant::OrphanedEdge { edge } => {
                write!(f, "edge {edge} is used but its parent edge is not")
            }
            PlanInvariant::ProofPlanSkipsEdge { edge } => {
                write!(f, "proof-carrying plan leaves edge {edge} unused")
            }
            PlanInvariant::SizeMismatch { plan, topology } => {
                write!(f, "plan covers {plan} nodes but topology has {topology}")
            }
        }
    }
}

/// An approximate (or proof-carrying) top-k query plan: one bandwidth per
/// edge, indexed by the edge's child node (the root's slot is unused).
///
/// ```
/// use prospector_core::{run_plan, Plan};
/// use prospector_net::{topology, NodeId};
///
/// let t = topology::chain(4); // 0 <- 1 <- 2 <- 3
/// let mut plan = Plan::empty(4);
/// for i in 1..4 {
///     plan.set_bandwidth(NodeId(i), 1); // one value per hop
/// }
/// plan.validate(&t).unwrap();
/// let out = run_plan(&plan, &t, &[0.0, 1.0, 2.0, 3.0], 2);
/// // Only the subtree max survives each hop; the root adds its own value.
/// assert_eq!(out.answer[0].node, NodeId(3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    bandwidth: Vec<u32>,
    /// Proof-carrying plans execute the proving protocol of Section 4.3.
    pub proof_carrying: bool,
}

impl Plan {
    /// The empty plan (no edge carries anything) over `n` nodes.
    pub fn empty(n: usize) -> Self {
        Plan { bandwidth: vec![0; n], proof_carrying: false }
    }

    /// A plan from explicit bandwidths.
    pub fn from_bandwidths(bandwidth: Vec<u32>, proof_carrying: bool) -> Self {
        Plan { bandwidth, proof_carrying }
    }

    /// The `NAIVE-k` plan: every node forwards the top `k` of its subtree.
    pub fn naive_k(topology: &Topology, k: usize) -> Self {
        let mut bw = vec![0u32; topology.len()];
        for e in topology.edges() {
            bw[e.index()] = topology.subtree_size(e).min(k) as u32;
        }
        Plan { bandwidth: bw, proof_carrying: false }
    }

    /// The full sweep: every edge carries its entire subtree (used to
    /// collect samples).
    pub fn full_sweep(topology: &Topology) -> Self {
        let mut bw = vec![0u32; topology.len()];
        for e in topology.edges() {
            bw[e.index()] = topology.subtree_size(e) as u32;
        }
        Plan { bandwidth: bw, proof_carrying: false }
    }

    /// Builds a no-local-filtering plan from a set of chosen nodes: each
    /// chosen node's value travels the whole path to the root, so
    /// `w_e = |chosen ∩ desc(e)|`.
    pub fn from_chosen(topology: &Topology, chosen: &[bool]) -> Self {
        assert_eq!(chosen.len(), topology.len());
        let mut bw = vec![0u32; topology.len()];
        for &u in topology.post_order() {
            let mut below = u32::from(chosen[u.index()] && u != topology.root());
            for &c in topology.children(u) {
                below += bw[c.index()];
            }
            if u != topology.root() {
                bw[u.index()] = below;
            }
        }
        Plan { bandwidth: bw, proof_carrying: false }
    }

    /// Bandwidth of the edge above `edge`'s child node.
    pub fn bandwidth(&self, edge: NodeId) -> u32 {
        self.bandwidth[edge.index()]
    }

    /// Sets the bandwidth of an edge.
    pub fn set_bandwidth(&mut self, edge: NodeId, w: u32) {
        self.bandwidth[edge.index()] = w;
    }

    /// True when the edge carries at least one value.
    pub fn is_used(&self, edge: NodeId) -> bool {
        self.bandwidth[edge.index()] > 0
    }

    /// True when `node` participates in the plan (the root always does).
    pub fn visits(&self, topology: &Topology, node: NodeId) -> bool {
        node == topology.root() || self.is_used(node)
    }

    /// Number of visited nodes (root included).
    pub fn num_visited(&self, topology: &Topology) -> usize {
        1 + topology.edges().filter(|&e| self.is_used(e)).count()
    }

    /// Total bandwidth across all edges (upper bound on values shipped).
    pub fn total_bandwidth(&self) -> u64 {
        self.bandwidth.iter().map(|&w| w as u64).sum()
    }

    /// Checks structural invariants against a topology.
    pub fn validate(&self, topology: &Topology) -> Result<(), PlanInvariant> {
        if self.bandwidth.len() != topology.len() {
            return Err(PlanInvariant::SizeMismatch {
                plan: self.bandwidth.len(),
                topology: topology.len(),
            });
        }
        for e in topology.edges() {
            let w = self.bandwidth[e.index()];
            let sub = topology.subtree_size(e) as u32;
            if w > sub {
                return Err(PlanInvariant::BandwidthExceedsSubtree {
                    edge: e,
                    bandwidth: w,
                    subtree: sub,
                });
            }
            if self.proof_carrying && w == 0 {
                return Err(PlanInvariant::ProofPlanSkipsEdge { edge: e });
            }
            if w > 0 {
                if let Some(p) = topology.parent(e) {
                    if p != topology.root() && !self.is_used(p) {
                        return Err(PlanInvariant::OrphanedEdge { edge: e });
                    }
                }
            }
        }
        Ok(())
    }

    /// Raises ancestors of every used edge to bandwidth ≥ 1 so no value is
    /// stranded (used after rounding LP solutions).
    pub fn repair_connectivity(&mut self, topology: &Topology) {
        // Level order guarantees parents are fixed before children are
        // inspected, but we propagate bottom-up instead: walk post order
        // and push usage upward.
        for &u in topology.post_order() {
            if u != topology.root() && self.is_used(u) {
                if let Some(p) = topology.parent(u) {
                    if p != topology.root() && !self.is_used(p) {
                        self.bandwidth[p.index()] = 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_net::topology::{balanced, chain, star};

    #[test]
    fn naive_k_caps_at_subtree_size() {
        let t = chain(5); // subtrees under edges: 4,3,2,1
        let p = Plan::naive_k(&t, 3);
        assert_eq!(p.bandwidth(NodeId(1)), 3);
        assert_eq!(p.bandwidth(NodeId(3)), 2);
        assert_eq!(p.bandwidth(NodeId(4)), 1);
        p.validate(&t).unwrap();
    }

    #[test]
    fn full_sweep_carries_everything() {
        let t = star(4);
        let p = Plan::full_sweep(&t);
        assert_eq!(p.total_bandwidth(), 3);
        let t = chain(4);
        let p = Plan::full_sweep(&t);
        assert_eq!(p.total_bandwidth(), 3 + 2 + 1);
    }

    #[test]
    fn from_chosen_counts_descendants() {
        let t = chain(4); // 0 <- 1 <- 2 <- 3
        let chosen = vec![false, false, true, true];
        let p = Plan::from_chosen(&t, &chosen);
        assert_eq!(p.bandwidth(NodeId(1)), 2);
        assert_eq!(p.bandwidth(NodeId(2)), 2);
        assert_eq!(p.bandwidth(NodeId(3)), 1);
        p.validate(&t).unwrap();
    }

    #[test]
    fn chosen_root_costs_nothing() {
        let t = star(3);
        let chosen = vec![true, false, false];
        let p = Plan::from_chosen(&t, &chosen);
        assert_eq!(p.total_bandwidth(), 0);
    }

    #[test]
    fn validate_catches_oversized_bandwidth() {
        let t = chain(3);
        let mut p = Plan::empty(3);
        p.set_bandwidth(NodeId(2), 5);
        assert!(matches!(p.validate(&t), Err(PlanInvariant::BandwidthExceedsSubtree { .. })));
    }

    #[test]
    fn validate_catches_orphans() {
        let t = chain(3); // 0 <- 1 <- 2
        let mut p = Plan::empty(3);
        p.set_bandwidth(NodeId(2), 1); // edge 2 used, edge 1 not
        assert_eq!(p.validate(&t), Err(PlanInvariant::OrphanedEdge { edge: NodeId(2) }));
        p.repair_connectivity(&t);
        p.validate(&t).unwrap();
        assert_eq!(p.bandwidth(NodeId(1)), 1);
    }

    #[test]
    fn validate_proof_plans_use_all_edges() {
        let t = star(3);
        let mut p = Plan::empty(3);
        p.proof_carrying = true;
        p.set_bandwidth(NodeId(1), 1);
        assert_eq!(p.validate(&t), Err(PlanInvariant::ProofPlanSkipsEdge { edge: NodeId(2) }));
    }

    #[test]
    fn repair_connectivity_deep_chain() {
        let t = balanced(2, 3);
        let mut p = Plan::empty(t.len());
        // pick a leaf and mark only its edge
        let leaf = (0..t.len()).map(NodeId::from_index).find(|&n| t.is_leaf(n)).unwrap();
        p.set_bandwidth(leaf, 1);
        p.repair_connectivity(&t);
        p.validate(&t).unwrap();
        assert!(p.num_visited(&t) >= 3);
    }

    #[test]
    fn visits_and_counts() {
        let t = star(3);
        let mut p = Plan::empty(3);
        assert!(p.visits(&t, NodeId(0)));
        assert!(!p.visits(&t, NodeId(1)));
        p.set_bandwidth(NodeId(1), 1);
        assert!(p.visits(&t, NodeId(1)));
        assert_eq!(p.num_visited(&t), 2);
    }
}
