//! Pure execution semantics of query plans.
//!
//! These functions implement what the network *does* with a plan, with no
//! energy accounting (the `prospector-sim` crate prices the outcomes):
//!
//! * [`run_plan`] — Section 2: each visited node sorts the values received
//!   from its children together with its own reading and forwards the top
//!   `w_e`;
//! * [`run_proof_plan`] — Section 4.3 steps 1–4: additionally computes, at
//!   every node, how many of the forwarded values are *proven* (conditions
//!   c.1–c.3), retaining the per-node state the exact algorithm's mop-up
//!   phase needs;
//! * [`run_plan_lossy`] — [`run_plan`] over a lossy radio: each upward
//!   batch is delivered (or not) by a per-hop ARQ policy, and a hop that
//!   exhausts its retry budget genuinely loses its subtree's merged batch.

use crate::plan::Plan;
use prospector_data::Reading;
use prospector_net::{link_rng, ArqPolicy, FailureModel, LinkAttempts, NodeId, Topology};

/// Result of executing an approximate plan on one epoch's values.
#[derive(Debug, Clone)]
pub struct CollectionOutcome {
    /// The query answer: the root's top-k merged readings, in rank order.
    pub answer: Vec<Reading>,
    /// Values actually sent on each edge (≤ the edge's bandwidth), indexed
    /// by child node.
    pub sent: Vec<u32>,
}

/// Result of executing an approximate plan over a lossy radio.
#[derive(Debug, Clone)]
pub struct LossyCollectionOutcome {
    /// The root's answer over whatever actually arrived, in rank order
    /// (≤ k entries when batches were lost).
    pub answer: Vec<Reading>,
    /// Batch size transmitted on each edge (every retransmission resends
    /// the whole batch), indexed by child node.
    pub sent: Vec<u32>,
    /// Per used edge (indexed by child node): how delivery went. `None`
    /// for unused edges and the root.
    pub links: Vec<Option<LinkAttempts>>,
    /// Used edges whose batch was lost after exhausting the retry budget,
    /// in [`Topology::edges`] order.
    pub lost_edges: Vec<NodeId>,
    /// Fraction of plan-visited non-root nodes whose batch survived every
    /// hop to the root (1.0 when the plan visits nobody).
    pub delivered_fraction: f64,
}

impl LossyCollectionOutcome {
    /// Total retransmissions across all edges (attempts beyond the first).
    pub fn retransmissions(&self) -> u32 {
        self.links.iter().flatten().map(LinkAttempts::retries).sum()
    }
}

/// Result of executing a proof-carrying plan on one epoch's values.
#[derive(Debug, Clone)]
pub struct ProofOutcome {
    /// The root's answer (top k), in rank order.
    pub answer: Vec<Reading>,
    /// How many leading answer values are proven to be the true top values
    /// of the whole network.
    pub proven: usize,
    /// Values sent per edge.
    pub sent: Vec<u32>,
    /// Per node: its own reading plus everything it received, rank-sorted
    /// (`retrieved(n)` in Section 4.3's mop-up description).
    pub retrieved: Vec<Vec<Reading>>,
    /// Per node: how many leading values of what it *sent* are proven by
    /// it (`|proven(n)|`). For the root this counts over the answer.
    pub proven_count: Vec<u32>,
}

fn reading(values: &[f64], node: NodeId) -> Reading {
    Reading { node, value: values[node.index()] }
}

/// Executes an approximate plan (Section 2 semantics): returns the root's
/// answer and the per-edge message sizes.
///
/// Nodes whose edge has zero bandwidth are not visited and contribute
/// nothing (together with their whole subtree, when intermediate edges are
/// unused). The root always contributes its own reading.
pub fn run_plan(plan: &Plan, topology: &Topology, values: &[f64], k: usize) -> CollectionOutcome {
    assert_eq!(values.len(), topology.len());
    let n = topology.len();
    let mut outbox: Vec<Vec<Reading>> = vec![Vec::new(); n];
    let mut sent = vec![0u32; n];
    let mut answer = Vec::new();

    for &u in topology.post_order() {
        let is_root = u == topology.root();
        if !is_root && !plan.is_used(u) {
            continue;
        }
        let mut merged = vec![reading(values, u)];
        for &c in topology.children(u) {
            merged.append(&mut outbox[c.index()]);
        }
        merged.sort_unstable_by(Reading::rank_cmp);
        if is_root {
            merged.truncate(k);
            answer = merged;
        } else {
            merged.truncate(plan.bandwidth(u) as usize);
            sent[u.index()] = merged.len() as u32;
            outbox[u.index()] = merged;
        }
    }

    CollectionOutcome { answer, sent }
}

/// Executes an approximate plan over a lossy radio: [`run_plan`]'s merge
/// semantics, but every upward batch must survive its hop. Each used edge
/// samples its deliveries from an **independent** RNG stream keyed by
/// `(seed, child)` ([`link_rng`]), so outcomes are reproducible and one
/// edge's draws never perturb another's — and raising `policy.max_retries`
/// only *extends* each edge's draw sequence, which makes delivery (and
/// hence the answer's hit count against any fixed truth) monotone
/// non-decreasing in the retry budget.
///
/// A lost batch removes the child's entire merged contribution: ancestors
/// merge without it and a partial answer propagates to the root. With a
/// zero-loss `failures` model no randomness is consumed and the outcome is
/// exactly [`run_plan`]'s.
pub fn run_plan_lossy(
    plan: &Plan,
    topology: &Topology,
    values: &[f64],
    k: usize,
    failures: &FailureModel,
    policy: &ArqPolicy,
    seed: u64,
) -> LossyCollectionOutcome {
    assert_eq!(values.len(), topology.len());
    let n = topology.len();
    let mut outbox: Vec<Vec<Reading>> = vec![Vec::new(); n];
    let mut sent = vec![0u32; n];
    let mut links: Vec<Option<LinkAttempts>> = vec![None; n];
    let mut answer = Vec::new();

    for &u in topology.post_order() {
        let is_root = u == topology.root();
        if !is_root && !plan.is_used(u) {
            continue;
        }
        let mut merged = vec![reading(values, u)];
        for &c in topology.children(u) {
            // A lost child's outbox was cleared below; appending the empty
            // vec keeps the merge order identical to `run_plan`.
            merged.append(&mut outbox[c.index()]);
        }
        merged.sort_unstable_by(Reading::rank_cmp);
        if is_root {
            merged.truncate(k);
            answer = merged;
        } else {
            merged.truncate(plan.bandwidth(u) as usize);
            sent[u.index()] = merged.len() as u32;
            let mut rng = link_rng(seed, u);
            let link = policy.attempt_delivery(failures, u, &mut rng);
            links[u.index()] = Some(link);
            if link.delivered {
                outbox[u.index()] = merged;
            }
        }
    }

    let lost_edges: Vec<NodeId> =
        topology.edges().filter(|&e| links[e.index()].is_some_and(|l| !l.delivered)).collect();

    // A node's batch reaches the root iff every hop on its path delivered.
    // Walk parents-before-children so `covered[parent]` is final when the
    // child consults it.
    let mut covered = vec![false; n];
    let mut used_edges = 0usize;
    let mut covered_edges = 0usize;
    for &u in topology.post_order().iter().rev() {
        let Some(link) = links[u.index()] else { continue };
        let parent = topology.parent(u).expect("non-root edge has a parent");
        covered[u.index()] =
            link.delivered && (parent == topology.root() || covered[parent.index()]);
        used_edges += 1;
        covered_edges += covered[u.index()] as usize;
    }
    let delivered_fraction =
        if used_edges == 0 { 1.0 } else { covered_edges as f64 / used_edges as f64 };

    LossyCollectionOutcome { answer, sent, links, lost_edges, delivered_fraction }
}

/// Executes a proof-carrying plan (Section 4.3 steps 1–4).
///
/// Every edge must have bandwidth ≥ 1 (any unvisited node could hold the
/// maximum). Besides the answer, the outcome reports how many answer
/// values are proven and retains each node's `retrieved`/`proven` state
/// for the exact algorithm's mop-up phase.
pub fn run_proof_plan(plan: &Plan, topology: &Topology, values: &[f64], k: usize) -> ProofOutcome {
    run_proof_plan_impl(plan, topology, values, k, true)
}

/// How many answer values a proof-carrying plan proves at the root for one
/// epoch's values — the hot path of `evaluate::expected_proven`.
///
/// Unlike [`run_proof_plan`] this skips retaining the per-node `retrieved`
/// lists (only the exact algorithm's mop-up phase consumes them), so no
/// full merged reading list is ever kept per node per simulated epoch.
pub fn proven_on_values(plan: &Plan, topology: &Topology, values: &[f64], k: usize) -> usize {
    run_proof_plan_impl(plan, topology, values, k, false).proven
}

fn run_proof_plan_impl(
    plan: &Plan,
    topology: &Topology,
    values: &[f64],
    k: usize,
    keep_retrieved: bool,
) -> ProofOutcome {
    assert_eq!(values.len(), topology.len());
    debug_assert!(
        topology.edges().all(|e| plan.is_used(e)),
        "proof-carrying plans must use every edge"
    );
    let n = topology.len();
    let mut outbox: Vec<Vec<Reading>> = vec![Vec::new(); n];
    let mut sent = vec![0u32; n];
    let mut proven_count = vec![0u32; n];
    let mut retrieved: Vec<Vec<Reading>> = vec![Vec::new(); n];
    let mut answer = Vec::new();
    let mut root_proven = 0usize;

    // Membership test for "value v originated in subtree(c)": the child of
    // u on the path from v up to u, or None when v is not a proper
    // descendant. Depths bound the walk — climb v to depth(u)+1 and check
    // that one candidate — instead of walking non-descendants all the way
    // to the root (O(depth) wasted per probe on deep trees).
    let origin_child = |u: NodeId, v: NodeId| -> Option<NodeId> {
        let target = topology.depth(u) + 1;
        if topology.depth(v) < target {
            return None;
        }
        let mut cur = v;
        while topology.depth(cur) > target {
            cur = topology.parent(cur).expect("depth > 0 implies a parent");
        }
        (topology.parent(cur) == Some(u)).then_some(cur)
    };

    for &u in topology.post_order() {
        let is_root = u == topology.root();

        // Step 1 + 2: receive and sort.
        let mut merged = vec![reading(values, u)];
        for &c in topology.children(u) {
            merged.extend_from_slice(&outbox[c.index()]);
        }
        merged.sort_unstable_by(Reading::rank_cmp);

        let send_len = if is_root {
            k.min(merged.len())
        } else {
            (plan.bandwidth(u) as usize).min(merged.len())
        };
        let to_send = &merged[..send_len];

        // Step 3: prove values. A value v (possibly u's own) is proven at
        // u iff for every child c one of the following holds:
        //   (c.1) v originated in subtree(c) and is within c's proven
        //         prefix;
        //   (c.2) c's proven prefix contains a value ranked worse than v;
        //   (c.3) c forwarded its entire subtree.
        let children = topology.children(u);
        let prove_one = |v: &Reading| -> bool {
            children.iter().all(|&c| {
                if sent[c.index()] as usize == topology.subtree_size(c) {
                    return true; // (c.3)
                }
                let proven_prefix = &outbox[c.index()][..proven_count[c.index()] as usize];
                if origin_child(u, v.node) == Some(c) {
                    // (c.1): v itself proven by c, or (c.2) below.
                    if proven_prefix.iter().any(|x| x.node == v.node) {
                        return true;
                    }
                }
                // (c.2): some proven value of c ranks strictly worse.
                proven_prefix.iter().any(|x| x.rank_cmp(v) == std::cmp::Ordering::Greater)
            })
        };

        let mut proven = 0usize;
        for v in to_send {
            if prove_one(v) {
                proven += 1;
            } else {
                break; // proofs form a prefix of the rank order
            }
        }
        // Sanity: nothing after the first unproven value can be proven —
        // matches the paper's "if v is proven, then all values greater
        // than v in the top w_e are proven as well".
        debug_assert!(to_send.iter().skip(proven).all(|v| !prove_one(v)));

        if is_root {
            answer = to_send.to_vec();
            root_proven = proven;
            proven_count[u.index()] = proven as u32;
        } else {
            proven_count[u.index()] = proven as u32;
            sent[u.index()] = send_len as u32;
            outbox[u.index()] = merged[..send_len].to_vec();
        }
        // Only the exact algorithm's mop-up phase reads `retrieved`;
        // moving the merged list (instead of the former unconditional
        // clone per node per epoch) keeps the eval hot path allocation-
        // light.
        if keep_retrieved {
            retrieved[u.index()] = merged;
        }
    }

    ProofOutcome { answer, proven: root_proven, sent, retrieved, proven_count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_data::top_k_nodes;
    use prospector_net::topology::{balanced, chain, star};

    #[test]
    fn naive_k_returns_exact_answer() {
        let t = balanced(3, 2); // 13 nodes
        let values: Vec<f64> = (0..t.len()).map(|i| ((i * 37) % 23) as f64).collect();
        let k = 4;
        let plan = Plan::naive_k(&t, k);
        let out = run_plan(&plan, &t, &values, k);
        let expect = top_k_nodes(&values, k);
        let got: Vec<NodeId> = out.answer.iter().map(|r| r.node).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn zero_plan_returns_only_root() {
        let t = star(5);
        let values = vec![1.0, 5.0, 4.0, 3.0, 2.0];
        let out = run_plan(&Plan::empty(5), &t, &values, 3);
        assert_eq!(out.answer.len(), 1);
        assert_eq!(out.answer[0].node, NodeId(0));
        assert!(out.sent.iter().all(|&s| s == 0));
    }

    #[test]
    fn bandwidth_limits_what_flows() {
        // Chain 0 <- 1 <- 2 <- 3 with big values at the leaf: bandwidth 1
        // on every edge means only the per-subtree max flows up.
        let t = chain(4);
        let values = vec![0.0, 1.0, 2.0, 3.0];
        let mut plan = Plan::empty(4);
        for i in 1..4 {
            plan.set_bandwidth(NodeId(i), 1);
        }
        let out = run_plan(&plan, &t, &values, 2);
        let got: Vec<NodeId> = out.answer.iter().map(|r| r.node).collect();
        // node3's 3.0 survives each hop; node 2's and 1's are filtered.
        assert_eq!(got, vec![NodeId(3), NodeId(0)]);
        assert_eq!(out.sent, vec![0, 1, 1, 1]);
    }

    #[test]
    fn local_filtering_merges_before_truncation() {
        // Star root with 3 children, each bandwidth 1, k = 2: the two best
        // children values reach the root.
        let t = star(4);
        let values = vec![0.0, 9.0, 7.0, 8.0];
        let mut plan = Plan::empty(4);
        for i in 1..4 {
            plan.set_bandwidth(NodeId(i), 1);
        }
        let out = run_plan(&plan, &t, &values, 2);
        let got: Vec<NodeId> = out.answer.iter().map(|r| r.node).collect();
        assert_eq!(got, vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn sent_counts_respect_availability() {
        // Leaf edges can only carry one value no matter the bandwidth.
        let t = chain(3);
        let mut plan = Plan::empty(3);
        plan.set_bandwidth(NodeId(1), 2);
        plan.set_bandwidth(NodeId(2), 2);
        let out = run_plan(&plan, &t, &[0.0, 1.0, 2.0], 3);
        assert_eq!(out.sent[2], 1, "leaf has a single value");
        assert_eq!(out.sent[1], 2);
    }

    #[test]
    fn full_sweep_proof_proves_everything() {
        let t = balanced(2, 3);
        let values: Vec<f64> = (0..t.len()).map(|i| ((i * 31) % 17) as f64).collect();
        let k = 5;
        let mut plan = Plan::full_sweep(&t);
        plan.proof_carrying = true;
        let out = run_proof_plan(&plan, &t, &values, k);
        assert_eq!(out.proven, k, "full sweep proves the entire answer");
        let expect = top_k_nodes(&values, k);
        let got: Vec<NodeId> = out.answer.iter().map(|r| r.node).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn bandwidth_one_proves_only_prefix() {
        // Star with 3 children, each sending its 1 value (= everything,
        // c.3), so all proven. Then a deeper case where bandwidth hides
        // values and proofs stop.
        let t = star(4);
        let mut plan = Plan::empty(4);
        for i in 1..4 {
            plan.set_bandwidth(NodeId(i), 1);
        }
        plan.proof_carrying = true;
        let out = run_proof_plan(&plan, &t, &[0.0, 3.0, 2.0, 1.0], 3);
        assert_eq!(out.proven, 3, "leaves forward everything → all proven");

        // Chain 0 <- 1 <- 2 <- 3, w=1 everywhere: node 1 forwards only the
        // max of {v1,v2,v3}; the root can prove its first value (witness:
        // none needed beyond child 1's proven max?) — child 1 proves its
        // top-1 only, so the root's second answer value (its own reading)
        // is unproven because child 1 might hide something bigger.
        let t = chain(4);
        let mut plan = Plan::empty(4);
        for i in 1..4 {
            plan.set_bandwidth(NodeId(i), 1);
        }
        plan.proof_carrying = true;
        let out = run_proof_plan(&plan, &t, &[0.5, 1.0, 2.0, 3.0], 2);
        // answer: [3.0 (node3), 0.5 (root)]
        assert_eq!(out.answer[0].node, NodeId(3));
        assert_eq!(out.proven, 1, "only the subtree max is provable");
    }

    #[test]
    fn proof_example_from_figure_2() {
        // Reproduces the paper's Figure 2: a node with local value 7
        // receives (9,8,7?…) style lists; we model: root u with three
        // child subtrees returning [9,4,2], [8,6], [7,3] (all proven by
        // the children), own value 5, k = 5.
        // Expected: top five at u are 9,8,7,6,5; the first four are
        // provable, the fifth (5 = u's own) is provable only if every
        // child proves something smaller — child lists contain 2, 6?No:
        // witnesses: child1 proves 2 < 5 ✓, child2 proves 6 > 5 ✗ … so 5
        // is unproven, mirroring the paper's example where the last value
        // cannot be proven because the middle subtree may hide a value.
        //
        // Build: root 0 with children 1, 2, 3; under 1 two extra nodes
        // (4, 5), under 2 one extra (6), under 3 one extra (7).
        let parent = vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(0)),
            Some(NodeId(0)),
            Some(NodeId(1)),
            Some(NodeId(1)),
            Some(NodeId(2)),
            Some(NodeId(3)),
        ];
        let t = Topology::from_parents(NodeId(0), parent).unwrap();
        //        values:  u=5   c1=9  c2=8  c3=7  .=4  .=2  .=6  .=3
        let values = vec![5.0, 9.0, 8.0, 7.0, 4.0, 2.0, 6.0, 3.0];
        let mut plan = Plan::empty(8);
        plan.proof_carrying = true;
        // subtree(1) = {1,4,5} sends all 3 (c.3); subtree(2) = {2,6} sends
        // only 2 of 2 → everything; subtree(3) = {3,7} sends both.
        plan.set_bandwidth(NodeId(1), 3);
        plan.set_bandwidth(NodeId(4), 1);
        plan.set_bandwidth(NodeId(5), 1);
        plan.set_bandwidth(NodeId(2), 2);
        plan.set_bandwidth(NodeId(6), 1);
        plan.set_bandwidth(NodeId(3), 2);
        plan.set_bandwidth(NodeId(7), 1);
        let out = run_proof_plan(&plan, &t, &values, 5);
        let vals: Vec<f64> = out.answer.iter().map(|r| r.value).collect();
        assert_eq!(vals, vec![9.0, 8.0, 7.0, 6.0, 5.0]);
        assert_eq!(out.proven, 5, "every subtree returned everything here");

        // Now restrict subtree(2) to 1 value: 8 flows, 6 is hidden. The
        // top five become 9,8,7,5,4; proofs must stop before 7 — value 7
        // needs a witness < 7 from subtree(2), but subtree(2) proved only
        // {8}.
        plan.set_bandwidth(NodeId(2), 1);
        let out = run_proof_plan(&plan, &t, &values, 5);
        let vals: Vec<f64> = out.answer.iter().map(|r| r.value).collect();
        assert_eq!(vals, vec![9.0, 8.0, 7.0, 5.0, 4.0]);
        assert_eq!(out.proven, 2, "proofs stop once subtree(2) may hide values");
    }

    #[test]
    fn lossy_with_zero_loss_matches_reliable_run() {
        let t = balanced(3, 2);
        let values: Vec<f64> = (0..t.len()).map(|i| ((i * 37) % 23) as f64).collect();
        let k = 4;
        let plan = Plan::naive_k(&t, k);
        let reliable = run_plan(&plan, &t, &values, k);
        let fm = prospector_net::FailureModel::none(t.len());
        let lossy =
            run_plan_lossy(&plan, &t, &values, k, &fm, &prospector_net::ArqPolicy::default(), 99);
        assert_eq!(lossy.answer, reliable.answer);
        assert_eq!(lossy.sent, reliable.sent);
        assert!(lossy.lost_edges.is_empty());
        assert_eq!(lossy.retransmissions(), 0);
        assert_eq!(lossy.delivered_fraction, 1.0);
        assert!(lossy
            .links
            .iter()
            .flatten()
            .all(|l| *l == prospector_net::LinkAttempts::first_try()));
    }

    #[test]
    fn certain_loss_drops_the_subtree() {
        // Chain 0 <- 1 <- 2: edge above node 1 always fails, so nothing
        // from {1, 2} reaches the root even though 2 -> 1 delivered.
        let t = chain(3);
        let mut probs = vec![0.0; 3];
        probs[1] = 1.0;
        let fm = prospector_net::FailureModel::per_edge(3, probs, 0.0).unwrap();
        let policy =
            prospector_net::ArqPolicy { max_retries: 2, backoff: prospector_net::Backoff::none() };
        let plan = Plan::naive_k(&t, 2);
        let out = run_plan_lossy(&plan, &t, &[0.0, 5.0, 9.0], 2, &fm, &policy, 7);
        assert_eq!(out.answer.len(), 1, "only the root's own reading survives");
        assert_eq!(out.answer[0].node, NodeId(0));
        assert_eq!(out.lost_edges, vec![NodeId(1)]);
        assert_eq!(out.retransmissions(), 2, "the lost hop burned its budget");
        // Node 2 delivered to node 1, but its path to the root is cut.
        assert_eq!(out.delivered_fraction, 0.0);
        // The transmissions still happened and are visible for pricing.
        assert_eq!(out.sent[1], 2);
        assert_eq!(out.sent[2], 1);
    }

    #[test]
    fn lossy_hits_are_monotone_in_retry_budget() {
        let t = balanced(3, 2);
        let values: Vec<f64> = (0..t.len()).map(|i| ((i * 29 + 3) % 31) as f64).collect();
        let k = 4;
        let plan = Plan::naive_k(&t, k);
        let fm = prospector_net::FailureModel::uniform(t.len(), 0.3, 0.0);
        let mut truth = top_k_nodes(&values, k);
        truth.sort_unstable();
        for seed in 0..50u64 {
            let mut prev = 0usize;
            for retries in 0..4u32 {
                let policy = prospector_net::ArqPolicy {
                    max_retries: retries,
                    backoff: prospector_net::Backoff::none(),
                };
                let out = run_plan_lossy(&plan, &t, &values, k, &fm, &policy, seed);
                let hits =
                    out.answer.iter().filter(|r| truth.binary_search(&r.node).is_ok()).count();
                assert!(hits >= prev, "seed {seed}: hits dropped {prev} -> {hits}");
                prev = hits;
            }
        }
    }

    #[test]
    fn retrieved_state_is_complete_for_mopup() {
        let t = chain(3);
        let mut plan = Plan::full_sweep(&t);
        plan.proof_carrying = true;
        let out = run_proof_plan(&plan, &t, &[1.0, 2.0, 3.0], 1);
        // node 1 retrieved its own value and node 2's.
        let vals: Vec<f64> = out.retrieved[1].iter().map(|r| r.value).collect();
        assert_eq!(vals, vec![3.0, 2.0]);
        // root retrieved everything.
        assert_eq!(out.retrieved[0].len(), 3);
    }

    #[test]
    fn proven_set_is_subtree_top_prefix() {
        // Lemma 1: the proven values of a node are exactly the top values
        // of its subtree.
        let t = balanced(2, 3);
        let values: Vec<f64> = (0..t.len()).map(|i| ((i * 13 + 5) % 29) as f64).collect();
        let mut plan = Plan::empty(t.len());
        for e in t.edges() {
            let w = 1 + (e.0 % 2);
            plan.set_bandwidth(e, w.min(t.subtree_size(e) as u32));
        }
        plan.proof_carrying = true;
        let out = run_proof_plan(&plan, &t, &values, 4);
        for u in 0..t.len() {
            let u = NodeId::from_index(u);
            if u == t.root() {
                continue;
            }
            let p = out.proven_count[u.index()] as usize;
            if p == 0 {
                continue;
            }
            let mut subtree: Vec<Reading> = t
                .subtree(u)
                .iter()
                .map(|&n| Reading { node: n, value: values[n.index()] })
                .collect();
            subtree.sort_unstable_by(Reading::rank_cmp);
            // The node's first p sent values must equal the subtree's true
            // top p.
            let sent_prefix = &out.retrieved[u.index()][..p];
            for (a, b) in sent_prefix.iter().zip(subtree.iter()) {
                assert_eq!(a.node, b.node, "Lemma 1 violated at {u}");
            }
        }
    }
}
