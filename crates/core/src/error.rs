//! Planner errors.

use prospector_lp::LpError;
use prospector_net::RepairError;
use std::fmt;

/// Errors raised while constructing a query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The LP solver failed (numerics).
    Lp(LpError),
    /// The sample window is empty; sampling-based planners need at least
    /// one sample.
    NoSamples,
    /// The energy budget cannot cover even the mandatory communication
    /// (e.g. a proof-carrying plan must visit every node).
    BudgetTooSmall { required_mj: f64, budget_mj: f64 },
    /// The LP reported an unexpected status (infeasible/unbounded), which
    /// indicates a formulation bug for these always-feasible programs.
    UnexpectedLpStatus(&'static str),
    /// A permanent failure could not be repaired (e.g. the query station
    /// itself died), so no plan can be executed at all.
    Repair(RepairError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Lp(e) => write!(f, "LP solver error: {e}"),
            PlanError::NoSamples => write!(f, "sample window is empty"),
            PlanError::BudgetTooSmall { required_mj, budget_mj } => write!(
                f,
                "budget {budget_mj} mJ below the {required_mj} mJ this plan type requires"
            ),
            PlanError::UnexpectedLpStatus(s) => write!(f, "unexpected LP status: {s}"),
            PlanError::Repair(e) => write!(f, "unrepairable permanent failure: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<LpError> for PlanError {
    fn from(e: LpError) -> Self {
        PlanError::Lp(e)
    }
}

impl From<RepairError> for PlanError {
    fn from(e: RepairError) -> Self {
        PlanError::Repair(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_budget() {
        let e = PlanError::BudgetTooSmall { required_mj: 10.0, budget_mj: 5.0 };
        let s = e.to_string();
        assert!(s.contains("5") && s.contains("10"));
    }

    #[test]
    fn converts_lp_error() {
        let e: PlanError = LpError::SingularBasis.into();
        assert!(matches!(e, PlanError::Lp(LpError::SingularBasis)));
    }
}
