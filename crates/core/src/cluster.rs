//! Cluster-level top-k queries (Section 1's motivating refinement).
//!
//! "The researchers might want to group nearby feeders into clusters for
//! purposes of observation, and obtain the top k clusters ordered by
//! average bird count. Nevertheless, the basic form of the query remains
//! top-k."
//!
//! A cluster's score is the *average* of its members' readings, so a
//! cluster can only be scored by fetching **all** of its members. Planning
//! therefore happens at cluster granularity: the LP picks whole clusters
//! whose historical top-k-cluster frequency is highest, subject to the
//! usual budget with shared per-message path costs.

use crate::error::PlanError;
use crate::plan::Plan;
use crate::planner::PlanContext;
use prospector_data::SampleSet;
use prospector_lp::{Cmp, Problem, Sense, Status, VarId};
use prospector_net::{NodeId, Topology};

/// A partition of (some) nodes into clusters.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster id per node (`None` = unclustered, e.g. the root/backbone).
    pub assignment: Vec<Option<usize>>,
    num_clusters: usize,
}

impl Clustering {
    /// Builds a clustering from a per-node assignment.
    pub fn new(assignment: Vec<Option<usize>>) -> Self {
        let num_clusters = assignment.iter().flatten().copied().max().map_or(0, |c| c + 1);
        Clustering { assignment, num_clusters }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.num_clusters
    }

    /// True when no node is clustered.
    pub fn is_empty(&self) -> bool {
        self.num_clusters == 0
    }

    /// Members of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, a)| *a == Some(c))
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Mean reading per cluster (NaN-free: empty clusters score -inf).
    pub fn cluster_means(&self, values: &[f64]) -> Vec<f64> {
        let mut sum = vec![0.0; self.num_clusters];
        let mut cnt = vec![0u32; self.num_clusters];
        for (i, a) in self.assignment.iter().enumerate() {
            if let Some(c) = a {
                sum[*c] += values[i];
                cnt[*c] += 1;
            }
        }
        sum.iter()
            .zip(&cnt)
            .map(|(s, &c)| if c == 0 { f64::NEG_INFINITY } else { s / c as f64 })
            .collect()
    }

    /// The k clusters with the highest mean readings (ties by lower id).
    pub fn top_clusters(&self, values: &[f64], k: usize) -> Vec<usize> {
        let means = self.cluster_means(values);
        let mut ids: Vec<usize> = (0..self.num_clusters).collect();
        ids.sort_by(|&a, &b| means[b].total_cmp(&means[a]).then(a.cmp(&b)));
        ids.truncate(k.min(self.num_clusters));
        ids
    }
}

/// Plans a top-k-clusters query: selects whole clusters by their
/// historical top-k-cluster frequency, under the energy budget, via a
/// cluster-granular LP (one 0/1 variable per cluster, shared edge usage).
pub fn plan_cluster_query(
    ctx: &PlanContext<'_>,
    clustering: &Clustering,
    samples: &SampleSet,
    k: usize,
) -> Result<Plan, PlanError> {
    if samples.is_empty() {
        return Err(PlanError::NoSamples);
    }
    let topo = ctx.topology;
    let n = topo.len();

    // Cluster appearance counts over the sample window.
    let mut counts = vec![0u32; clustering.len()];
    for j in 0..samples.len() {
        for c in clustering.top_clusters(samples.values(j), k) {
            counts[c] += 1;
        }
    }

    let candidates: Vec<usize> = (0..clustering.len()).filter(|&c| counts[c] > 0).collect();
    if candidates.is_empty() {
        return Ok(Plan::empty(n));
    }

    // Edges relevant to each candidate cluster (union of member paths).
    let mut cluster_edges: Vec<Vec<NodeId>> = Vec::with_capacity(candidates.len());
    let mut relevant = vec![false; n];
    for &c in &candidates {
        let mut edges = Vec::new();
        let mut seen = vec![false; n];
        for m in clustering.members(c) {
            for e in topo.edges_to_root(m) {
                if !seen[e.index()] {
                    seen[e.index()] = true;
                    edges.push(e);
                    relevant[e.index()] = true;
                }
            }
        }
        cluster_edges.push(edges);
    }

    let mut lp = Problem::new(Sense::Maximize);
    let x: Vec<VarId> =
        candidates.iter().map(|&c| lp.add_var(0.0, 1.0, counts[c] as f64)).collect();
    let mut y: Vec<Option<VarId>> = vec![None; n];
    for e in topo.edges() {
        if relevant[e.index()] {
            y[e.index()] = Some(lp.add_var(0.0, 1.0, 0.0));
        }
    }
    // Selecting a cluster uses every edge on its members' paths.
    for (ci, edges) in cluster_edges.iter().enumerate() {
        for &e in edges {
            let ye = y[e.index()].expect("cluster edge is relevant");
            lp.add_constraint([(x[ci], 1.0), (ye, -1.0)], Cmp::Le, 0.0);
        }
    }
    // Budget: messages per used edge + per-member transport.
    let mut budget_terms: Vec<(VarId, f64)> = Vec::new();
    for e in topo.edges() {
        if let Some(ye) = y[e.index()] {
            budget_terms.push((ye, ctx.edge_message_cost(e)));
        }
    }
    for (ci, &c) in candidates.iter().enumerate() {
        // Each member's value travels its whole path to the root, paying
        // every edge's (possibly retransmission-inflated) payload cost.
        let transport: f64 = clustering
            .members(c)
            .iter()
            .map(|&m| topo.edges_to_root(m).map(|e| ctx.edge_value_cost(e)).sum::<f64>())
            .sum();
        budget_terms.push((x[ci], transport));
    }
    lp.add_constraint(budget_terms, Cmp::Le, ctx.budget_mj);

    let sol = lp.solve()?;
    if sol.status != Status::Optimal {
        return Err(PlanError::UnexpectedLpStatus("cluster LP"));
    }

    // Round, then repair to the budget by dropping the weakest clusters.
    let mut picked: Vec<usize> = candidates
        .iter()
        .enumerate()
        .filter(|&(ci, _)| sol.value(x[ci]) > 0.5)
        .map(|(_, &c)| c)
        .collect();
    picked.sort_by_key(|&c| std::cmp::Reverse(counts[c]));
    loop {
        let plan = plan_for_clusters(topo, clustering, &picked);
        if ctx.plan_cost(&plan) <= ctx.budget_mj || picked.is_empty() {
            return Ok(plan);
        }
        picked.pop(); // weakest count last
    }
}

/// The chosen-set plan fetching every member of the given clusters.
pub fn plan_for_clusters(topology: &Topology, clustering: &Clustering, clusters: &[usize]) -> Plan {
    let mut chosen = vec![false; topology.len()];
    for &c in clusters {
        for m in clustering.members(c) {
            chosen[m.index()] = true;
        }
    }
    Plan::from_chosen(topology, &chosen)
}

/// Fraction of the true top-k clusters whose means the plan can compute
/// exactly (all members delivered) *and* rank into its answer.
pub fn cluster_accuracy(
    plan: &Plan,
    topology: &Topology,
    clustering: &Clustering,
    values: &[f64],
    k: usize,
) -> f64 {
    let truth = clustering.top_clusters(values, k);
    if truth.is_empty() {
        return 1.0;
    }
    // Clusters fully covered by the plan.
    let covered: Vec<usize> = (0..clustering.len())
        .filter(|&c| {
            let members = clustering.members(c);
            !members.is_empty() && members.iter().all(|&m| plan.visits(topology, m))
        })
        .collect();
    // Answer: top k of the covered clusters by true mean.
    let means = clustering.cluster_means(values);
    let mut answer = covered;
    answer.sort_by(|&a, &b| means[b].total_cmp(&means[a]).then(a.cmp(&b)));
    answer.truncate(k);
    let hits = truth.iter().filter(|c| answer.contains(c)).count();
    hits as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_net::topology::star;
    use prospector_net::EnergyModel;

    fn three_cluster_star() -> (Topology, Clustering) {
        // Root + 9 leaves in 3 clusters of 3.
        let t = star(10);
        let mut assignment = vec![None];
        for c in 0..3 {
            for _ in 0..3 {
                assignment.push(Some(c));
            }
        }
        (t, Clustering::new(assignment))
    }

    #[test]
    fn means_and_top_clusters() {
        let (_, cl) = three_cluster_star();
        let values = vec![0.0, 1.0, 2.0, 3.0, 10.0, 10.0, 10.0, 5.0, 5.0, 5.0];
        let means = cl.cluster_means(&values);
        assert_eq!(means, vec![2.0, 10.0, 5.0]);
        assert_eq!(cl.top_clusters(&values, 2), vec![1, 2]);
    }

    #[test]
    fn planning_picks_frequent_clusters() {
        let (t, cl) = three_cluster_star();
        let em = EnergyModel::mica2();
        let mut samples = SampleSet::new(10, 1, 8);
        // Cluster 1 always wins; cluster 2 second.
        for _ in 0..5 {
            samples.push(vec![0.0, 1.0, 2.0, 3.0, 10.0, 10.0, 10.0, 5.0, 5.0, 5.0]);
        }
        // Budget for two clusters (6 leaves × (message + value)).
        let budget = 6.0 * (em.per_message_mj + em.per_value()) + 1e-6;
        let ctx = PlanContext::new(&t, &em, &samples, budget);
        let plan = plan_cluster_query(&ctx, &cl, &samples, 2).unwrap();
        plan.validate(&t).unwrap();
        // Clusters 1 and 2 fully covered, cluster 0 not.
        for m in cl.members(1).iter().chain(cl.members(2).iter()) {
            assert!(plan.visits(&t, *m));
        }
        assert!(!plan.visits(&t, cl.members(0)[0]));
        let acc = cluster_accuracy(
            &plan,
            &t,
            &cl,
            &[0.0, 1.0, 2.0, 3.0, 10.0, 10.0, 10.0, 5.0, 5.0, 5.0],
            2,
        );
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn budget_constrains_cluster_count() {
        let (t, cl) = three_cluster_star();
        let em = EnergyModel::mica2();
        let mut samples = SampleSet::new(10, 1, 4);
        samples.push(vec![0.0, 9.0, 9.0, 9.0, 8.0, 8.0, 8.0, 7.0, 7.0, 7.0]);
        // Budget for one cluster only.
        let budget = 3.0 * (em.per_message_mj + em.per_value()) + 1e-6;
        let ctx = PlanContext::new(&t, &em, &samples, budget);
        let plan = plan_cluster_query(&ctx, &cl, &samples, 2).unwrap();
        assert!(ctx.plan_cost(&plan) <= budget + 1e-9);
        let covered = (0..3).filter(|&c| cl.members(c).iter().all(|&m| plan.visits(&t, m))).count();
        assert_eq!(covered, 1);
    }

    #[test]
    fn partial_cluster_coverage_scores_zero_for_that_cluster() {
        let (t, cl) = three_cluster_star();
        let mut plan = Plan::empty(10);
        // Only 2 of cluster 1's 3 members: its mean cannot be computed.
        plan.set_bandwidth(NodeId(4), 1);
        plan.set_bandwidth(NodeId(5), 1);
        let values = vec![0.0, 1.0, 1.0, 1.0, 9.0, 9.0, 9.0, 2.0, 2.0, 2.0];
        assert_eq!(cluster_accuracy(&plan, &t, &cl, &values, 1), 0.0);
    }

    #[test]
    fn empty_clustering() {
        let _t = star(3);
        let cl = Clustering::new(vec![None, None, None]);
        assert!(cl.is_empty());
        assert_eq!(cl.top_clusters(&[1.0, 2.0, 3.0], 2), Vec::<usize>::new());
    }
}
