//! Scoring plans against samples or ground truth.
//!
//! The optimization objective (Section 2): "find a plan that minimizes the
//! expected number of top-k values not returned", with the expectation
//! taken over the sample window. Accuracy in the figures is "the
//! percentage of actual top-k values returned by the query".
//!
//! The `expected_*` functions fan the per-sample work out across the
//! `prospector-par` worker pool (width: `PROSPECTOR_THREADS`, default
//! [`std::thread::available_parallelism`]). Each sample contributes an
//! **integer** (hits or proven count), and integer addition is associative
//! and commutative, so the parallel reduction is bit-identical to the
//! serial one at any thread count — the determinism contract the planners,
//! figures and CI gate rely on. The `_with` variants take an explicit
//! thread count for benchmarks and equivalence tests.
//!
//! Inside the sample window, [`expected_misses`] no longer re-simulates
//! the plan per sample: [`hits_on_sample`] claims bandwidth slots in rank
//! order over the window's stored top-k sets (O(k·depth) per sample), and
//! the lossy evaluator tests truth membership against the window's packed
//! bit rows in O(1) per answer reading. Both are proven bit-identical to
//! the scalar simulation path by `tests/proptest_bitset.rs` and the CI
//! golden byte-diffs.

use crate::exec::{proven_on_values, run_plan, run_plan_lossy};
use crate::plan::Plan;
use prospector_data::{top_k_nodes, SampleSet};
use prospector_net::{epoch_seed, ArqPolicy, FailureModel, Topology};
use std::collections::HashMap;

/// Number of true top-k values a plan returns for one epoch's values.
///
/// This is the *fresh-values* path (figure accuracy over eval epochs,
/// runner reports): truth is recomputed from the raw readings. Inside the
/// sample window use [`hits_on_sample`], which serves truth from the
/// window's stored top-k membership instead of rebuilding it per call.
pub fn hits_on_values(plan: &Plan, topology: &Topology, values: &[f64], k: usize) -> usize {
    // Membership by binary search over node ids: `truth` is tiny, but this
    // runs once per sample per candidate plan in the repair loops, so the
    // O(k²) `contains` scan it replaces was measurable.
    let mut truth = top_k_nodes(values, k);
    truth.sort_unstable();
    let out = run_plan(plan, topology, values, k);
    out.answer.iter().filter(|r| truth.binary_search(&r.node).is_ok()).count()
}

/// Number of window-truth values `plan` delivers for sample `j` — the hot
/// kernel of [`expected_misses`] — computed **without simulating the
/// plan**, by rank-order slot claiming over the stored top-k set:
///
/// Truth is the sample's global top k under the total rank order
/// (descending value, ascending id), so every truth value outranks every
/// non-truth value. At any edge the merged batch is rank-sorted before
/// truncation to `w_e`, hence the truth values crossing an edge are
/// exactly the best-ranked `min(w_e, arrivals)` truth values entering it
/// — fillers never displace truth. Walking `ones(j)` in rank order and
/// claiming one slot per edge up the root path therefore reproduces
/// [`run_plan`]'s answer ∩ truth exactly: a value blocked at a full or
/// unused edge dies there (its claims on the edges *below* stand — it was
/// merged and forwarded that far), and everything that clears its whole
/// path survives the root's truncation because at most k truth values
/// exist.
///
/// O(k·depth) per sample against the old O(n log n) re-simulation — the
/// change that lets the LP+LF / proof repair loops score thousands of
/// candidate plans at n=50k. Truth here is the window's stored membership
/// (dead nodes masked out by [`SampleSet::mask_nodes`] never count),
/// matching the planners' objective.
pub fn hits_on_sample(plan: &Plan, topology: &Topology, samples: &SampleSet, j: usize) -> usize {
    let truth = samples.ones(j);
    let root = topology.root();
    // Loads of the edges touched by truth paths (≤ k·depth entries, vs an
    // O(n) scratch row that would dominate the kernel at 50k nodes).
    let mut load: HashMap<u32, u32> = HashMap::with_capacity(truth.len() * 4);
    let mut hits = 0usize;
    'truth: for &i in truth {
        if i == root {
            hits += 1; // the root's own reading is always in the answer
            continue;
        }
        for e in topology.edges_to_root(i) {
            let w = plan.bandwidth(e);
            if w == 0 {
                continue 'truth; // unused edge: the value dies here
            }
            let slot = load.entry(e.0).or_insert(0);
            if *slot >= w {
                continue 'truth; // truncated out by better truth values
            }
            *slot += 1;
        }
        hits += 1;
    }
    hits
}

/// Reference implementation of [`hits_on_sample`] by full plan simulation,
/// counting via a popcount intersection against the window's packed top-k
/// row. Used by the equivalence tests (and CI) that pin the claiming
/// kernel bit-identical to the scalar path; not a hot path.
pub fn hits_on_sample_via_simulation(
    plan: &Plan,
    topology: &Topology,
    samples: &SampleSet,
    j: usize,
) -> usize {
    let out = run_plan(plan, topology, samples.values(j), samples.k());
    let mut answer_bits = vec![0u64; samples.words_per_row()];
    for r in &out.answer {
        answer_bits[r.node.index() >> 6] |= 1u64 << (r.node.index() & 63);
    }
    samples.intersect_count(j, &answer_bits)
}

/// Fraction of the true top k returned for one epoch's values (`∈ [0,1]`).
pub fn accuracy_on_values(plan: &Plan, topology: &Topology, values: &[f64], k: usize) -> f64 {
    hits_on_values(plan, topology, values, k) as f64 / k as f64
}

/// Expected number of top-k values *missed* by the plan, averaged over the
/// sample window — the quantity the LPs minimize.
pub fn expected_misses(plan: &Plan, topology: &Topology, samples: &SampleSet) -> f64 {
    expected_misses_with(plan, topology, samples, prospector_par::configured_threads())
}

/// [`expected_misses`] with an explicit worker count (1 = serial). The
/// result is bit-identical for every `threads` value.
pub fn expected_misses_with(
    plan: &Plan,
    topology: &Topology,
    samples: &SampleSet,
    threads: usize,
) -> f64 {
    assert!(!samples.is_empty(), "no samples to evaluate against");
    let k = samples.k();
    let per_sample = prospector_par::par_map_range_in(threads, samples.len(), |j| {
        k - hits_on_sample(plan, topology, samples, j)
    });
    let total: usize = per_sample.into_iter().sum();
    total as f64 / samples.len() as f64
}

/// Expected accuracy over the sample window (`1 - misses/k`).
pub fn expected_accuracy(plan: &Plan, topology: &Topology, samples: &SampleSet) -> f64 {
    expected_accuracy_with(plan, topology, samples, prospector_par::configured_threads())
}

/// [`expected_accuracy`] with an explicit worker count (1 = serial).
pub fn expected_accuracy_with(
    plan: &Plan,
    topology: &Topology,
    samples: &SampleSet,
    threads: usize,
) -> f64 {
    1.0 - expected_misses_with(plan, topology, samples, threads) / samples.k() as f64
}

/// Expected accuracy of a plan when collection runs over a lossy radio
/// under `failures` with per-hop ARQ `policy`, averaged over the sample
/// window. Each sample replays a deterministic loss realization seeded by
/// `(seed, sample index)`, so the estimate is reproducible and — because
/// per-edge draw streams only *extend* when `policy.max_retries` grows —
/// monotone non-decreasing in the retry budget.
pub fn expected_accuracy_under_loss(
    plan: &Plan,
    topology: &Topology,
    samples: &SampleSet,
    failures: &FailureModel,
    policy: &ArqPolicy,
    seed: u64,
) -> f64 {
    expected_accuracy_under_loss_with(
        plan,
        topology,
        samples,
        failures,
        policy,
        seed,
        prospector_par::configured_threads(),
    )
}

/// [`expected_accuracy_under_loss`] with an explicit worker count
/// (1 = serial). Each sample contributes an integer hit count, so the
/// parallel reduction is bit-identical for every `threads` value.
#[allow(clippy::too_many_arguments)]
pub fn expected_accuracy_under_loss_with(
    plan: &Plan,
    topology: &Topology,
    samples: &SampleSet,
    failures: &FailureModel,
    policy: &ArqPolicy,
    seed: u64,
    threads: usize,
) -> f64 {
    assert!(!samples.is_empty(), "no samples to evaluate against");
    let k = samples.k();
    let per_sample = prospector_par::par_map_range_in(threads, samples.len(), |j| {
        // Per-edge RNG loss means the plan genuinely has to run; the win
        // here is truth membership: an O(1) bit test on the window's
        // packed top-k row per answer reading, instead of rebuilding and
        // sorting the truth set per (sample, candidate plan) call.
        let values = samples.values(j);
        let out =
            run_plan_lossy(plan, topology, values, k, failures, policy, epoch_seed(seed, j as u64));
        out.answer.iter().filter(|r| samples.is_one(j, r.node)).count()
    });
    let total: usize = per_sample.into_iter().sum();
    total as f64 / (samples.len() * k) as f64
}

/// Expected number of answer values a proof-carrying plan *proves* at the
/// root, averaged over the sample window — the proof LP's objective.
pub fn expected_proven(plan: &Plan, topology: &Topology, samples: &SampleSet) -> f64 {
    expected_proven_with(plan, topology, samples, prospector_par::configured_threads())
}

/// [`expected_proven`] with an explicit worker count (1 = serial). The
/// result is bit-identical for every `threads` value.
pub fn expected_proven_with(
    plan: &Plan,
    topology: &Topology,
    samples: &SampleSet,
    threads: usize,
) -> f64 {
    assert!(!samples.is_empty(), "no samples to evaluate against");
    let k = samples.k();
    let per_sample = prospector_par::par_map_range_in(threads, samples.len(), |j| {
        proven_on_values(plan, topology, samples.values(j), k)
    });
    let total: usize = per_sample.into_iter().sum();
    total as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_net::topology::{chain, star};
    use prospector_net::NodeId;

    fn sample_set(rows: Vec<Vec<f64>>, k: usize) -> SampleSet {
        let n = rows[0].len();
        let mut s = SampleSet::new(n, k, rows.len());
        for r in rows {
            s.push(r);
        }
        s
    }

    #[test]
    fn naive_k_has_zero_misses() {
        let t = chain(6);
        let s = sample_set(
            vec![vec![1.0, 5.0, 2.0, 8.0, 3.0, 9.0], vec![9.0, 1.0, 8.0, 2.0, 7.0, 3.0]],
            2,
        );
        let p = Plan::naive_k(&t, 2);
        assert_eq!(expected_misses(&p, &t, &s), 0.0);
        assert_eq!(expected_accuracy(&p, &t, &s), 1.0);
    }

    #[test]
    fn empty_plan_misses_everything_but_root() {
        let t = star(4);
        // root (node 0) never holds a top-2 value here.
        let s = sample_set(vec![vec![0.0, 5.0, 6.0, 7.0]], 2);
        let p = Plan::empty(4);
        assert_eq!(expected_misses(&p, &t, &s), 2.0);
    }

    #[test]
    fn root_contributes_for_free() {
        let t = star(3);
        let s = sample_set(vec![vec![9.0, 1.0, 2.0]], 1);
        let p = Plan::empty(3);
        assert_eq!(expected_misses(&p, &t, &s), 0.0, "root's own value needs no plan");
    }

    #[test]
    fn partial_plans_score_between() {
        let t = star(5);
        let s = sample_set(vec![vec![0.0, 4.0, 3.0, 2.0, 1.0]], 2);
        let mut p = Plan::empty(5);
        p.set_bandwidth(NodeId(1), 1); // captures the best value only
        assert_eq!(expected_misses(&p, &t, &s), 1.0);
        assert!((expected_accuracy(&p, &t, &s) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accuracy_on_fresh_values() {
        let t = chain(4);
        let p = Plan::naive_k(&t, 2);
        let acc = accuracy_on_values(&p, &t, &[5.0, 1.0, 9.0, 2.0], 2);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn expected_proven_full_sweep_is_k() {
        let t = chain(5);
        let s = sample_set(vec![vec![1.0, 2.0, 3.0, 4.0, 5.0]], 3);
        let mut p = Plan::full_sweep(&t);
        p.proof_carrying = true;
        assert_eq!(expected_proven(&p, &t, &s), 3.0);
    }

    #[test]
    fn loss_free_expected_accuracy_matches_reliable() {
        let t = chain(6);
        let s = sample_set(
            vec![vec![1.0, 5.0, 2.0, 8.0, 3.0, 9.0], vec![9.0, 1.0, 8.0, 2.0, 7.0, 3.0]],
            2,
        );
        let p = Plan::naive_k(&t, 2);
        let fm = prospector_net::FailureModel::none(6);
        let policy = prospector_net::ArqPolicy::default();
        let lossless = expected_accuracy_under_loss(&p, &t, &s, &fm, &policy, 5);
        assert_eq!(lossless, expected_accuracy(&p, &t, &s));
    }

    #[test]
    fn loss_hurts_and_retries_help_in_expectation() {
        let t = star(8);
        let rows: Vec<Vec<f64>> =
            (0..16).map(|r| (0..8).map(|i| ((i * 7 + r * 13) % 23) as f64).collect()).collect();
        let s = sample_set(rows, 3);
        let p = Plan::naive_k(&t, 3);
        let fm = prospector_net::FailureModel::uniform(8, 0.4, 0.0);
        let no_retry = prospector_net::ArqPolicy::no_retries();
        let retry3 =
            prospector_net::ArqPolicy { max_retries: 3, backoff: prospector_net::Backoff::none() };
        let a0 = expected_accuracy_under_loss(&p, &t, &s, &fm, &no_retry, 11);
        let a3 = expected_accuracy_under_loss(&p, &t, &s, &fm, &retry3, 11);
        assert!(a0 < 1.0, "40% loss with no retries must cost accuracy, got {a0}");
        assert!(a3 > a0, "retries must recover accuracy: {a0} -> {a3}");
        assert_eq!(expected_accuracy(&p, &t, &s), 1.0, "sanity: plan is exact when reliable");
    }

    #[test]
    fn lossy_accuracy_parallel_matches_serial_bitwise() {
        let t = star(10);
        let rows: Vec<Vec<f64>> =
            (0..32).map(|r| (0..10).map(|i| ((i * 11 + r * 5) % 29) as f64).collect()).collect();
        let s = sample_set(rows, 4);
        let p = Plan::naive_k(&t, 4);
        let fm = prospector_net::FailureModel::uniform(10, 0.25, 0.0);
        let policy = prospector_net::ArqPolicy::default();
        let serial = expected_accuracy_under_loss_with(&p, &t, &s, &fm, &policy, 3, 1);
        for threads in [2, 4, 8] {
            let par = expected_accuracy_under_loss_with(&p, &t, &s, &fm, &policy, 3, threads);
            assert_eq!(serial.to_bits(), par.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn claiming_kernel_matches_simulation_on_handcrafted_plans() {
        // Star, chain and a lopsided tree, with plans that exercise every
        // kernel branch: unused edges, full edges, deep truncation.
        let t = chain(6);
        let s = sample_set(
            vec![vec![1.0, 5.0, 2.0, 8.0, 3.0, 9.0], vec![9.0, 1.0, 8.0, 2.0, 7.0, 3.0]],
            3,
        );
        for raw in
            [[0u32, 1, 1, 0, 2, 1], [3, 3, 3, 3, 3, 3], [0, 0, 0, 0, 0, 1], [1, 0, 2, 1, 1, 1]]
        {
            let mut p = Plan::empty(6);
            for (i, &w) in raw.iter().enumerate().skip(1) {
                p.set_bandwidth(NodeId::from_index(i), w);
            }
            for j in 0..s.len() {
                assert_eq!(
                    hits_on_sample(&p, &t, &s, j),
                    hits_on_sample_via_simulation(&p, &t, &s, j),
                    "plan {raw:?}, sample {j}"
                );
            }
        }
    }

    #[test]
    fn claiming_kernel_counts_ties_like_the_recomputed_truth() {
        // All-equal readings: truth is decided purely by the id tie-break.
        // The cached window truth and a fresh recomputation must agree, and
        // the kernel must count against exactly that set.
        let t = star(5);
        let s = sample_set(vec![vec![7.0; 5], vec![7.0; 5]], 2);
        for j in 0..s.len() {
            assert_eq!(s.ones(j), &top_k_nodes(s.values(j), 2)[..], "cached truth drifts on ties");
        }
        let mut p = Plan::empty(5);
        p.set_bandwidth(NodeId(1), 1);
        p.set_bandwidth(NodeId(2), 1);
        for j in 0..s.len() {
            assert_eq!(hits_on_sample(&p, &t, &s, j), hits_on_sample_via_simulation(&p, &t, &s, j));
        }
        // Truth = {0 (root), 1}; the plan delivers node 1 and the root is
        // free, so both truth values arrive.
        assert_eq!(hits_on_sample(&p, &t, &s, 0), 2);
    }

    #[test]
    fn claiming_kernel_respects_masked_windows() {
        // After masking, the stored truth excludes the dead node; the
        // kernel must score against the survivors only.
        let t = star(4);
        let mut s = sample_set(vec![vec![0.0, 5.0, 6.0, 7.0]], 2);
        s.mask_nodes(&[NodeId(3)]);
        assert_eq!(s.ones(0), &[NodeId(2), NodeId(1)]);
        let p = Plan::naive_k(&t, 2);
        assert_eq!(hits_on_sample(&p, &t, &s, 0), 2);
        assert_eq!(hits_on_sample(&p, &t, &s, 0), hits_on_sample_via_simulation(&p, &t, &s, 0));
    }

    #[test]
    #[should_panic]
    fn rejects_empty_sample_window() {
        let t = chain(2);
        let s = SampleSet::new(2, 1, 4);
        expected_misses(&Plan::empty(2), &t, &s);
    }
}
