//! q-digest quantile sketches — compact per-subtree value summaries for
//! the continuous-query protocol ("Medians and Beyond: New Aggregation
//! Techniques for Sensor Networks", Shrivastava et al., SenSys 2004).
//!
//! A [`QDigest`] summarizes a multiset of readings drawn from a bounded
//! value domain `[lo, hi]` quantized onto `2^depth` equal-width buckets.
//! The buckets are the leaves of a conceptual complete binary tree; the
//! sketch stores counts on a sparse set of tree nodes. Three properties
//! matter to the protocol:
//!
//! * **Associative, lossless merging.** [`QDigest::merge`] adds counts
//!   node-by-node and defers compression, so `(a ∪ b) ∪ c` and
//!   `a ∪ (b ∪ c)` are *identical* — subtree summaries can be combined
//!   in routing-tree order without the result depending on that order.
//! * **Bounded rank error.** After canonical compression the classic
//!   q-digest guarantee holds: any quantile query is answered with rank
//!   error at most `ε·n` where `ε = depth / compression`
//!   ([`QDigest::epsilon`]), at a size of `O(compression · depth)` nodes.
//! * **Byte-deterministic encoding.** [`QDigest::encode`] canonically
//!   compresses and then serializes counts in sorted node order, so two
//!   sketches summarizing the same multiset produce identical bytes no
//!   matter how they were built.
//!
//! The continuous protocol ships one sketch per root-child subtree on
//! every full refresh; the planner queries it for candidate thresholds
//! ([`QDigest::quantile`]) and the root uses [`QDigest::upper_bound`]
//! plus the delta tolerance to bound what a *silent* subtree could
//! possibly contribute to the answer.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Configuration of a [`QDigest`]: value domain and accuracy/size knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchPrecision {
    /// Universe depth: values are quantized onto `2^depth` buckets.
    pub depth: u32,
    /// The q-digest compression parameter `k`: larger is more accurate
    /// and bigger. Rank error is at most `depth / compression · n`.
    pub compression: u64,
    /// Inclusive lower edge of the value domain.
    pub lo: f64,
    /// Inclusive upper edge of the value domain.
    pub hi: f64,
}

impl SketchPrecision {
    /// Rejects non-representable configurations.
    pub fn validate(&self) -> Result<(), SketchConfigError> {
        if self.depth == 0 || self.depth > 24 {
            return Err(SketchConfigError::BadDepth(self.depth));
        }
        if self.compression == 0 {
            return Err(SketchConfigError::ZeroCompression);
        }
        if !(self.lo.is_finite() && self.hi.is_finite() && self.lo < self.hi) {
            return Err(SketchConfigError::BadDomain(self.lo, self.hi));
        }
        Ok(())
    }
}

/// A rejected [`SketchPrecision`], naming the bad knob.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchConfigError {
    /// `depth` must be in `1..=24`.
    BadDepth(u32),
    /// `compression` must be at least 1.
    ZeroCompression,
    /// The domain must satisfy `lo < hi` with both finite.
    BadDomain(f64, f64),
}

impl fmt::Display for SketchConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchConfigError::BadDepth(d) => {
                write!(f, "sketch depth must be in 1..=24, got {d}")
            }
            SketchConfigError::ZeroCompression => {
                write!(f, "sketch compression must be at least 1")
            }
            SketchConfigError::BadDomain(lo, hi) => {
                write!(f, "sketch domain must be finite with lo < hi, got [{lo}, {hi}]")
            }
        }
    }
}

impl Error for SketchConfigError {}

/// A malformed [`QDigest::encode`] byte string.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchDecodeError {
    /// Fewer bytes than the fixed header requires, or a truncated body.
    Truncated,
    /// The header's precision fields failed [`SketchPrecision::validate`].
    Config(SketchConfigError),
    /// A count entry's node id is outside the tree, zero-count, out of
    /// order, or duplicated.
    BadEntry(u64),
    /// The stored total does not equal the sum of entry counts.
    BadTotal,
}

impl fmt::Display for SketchDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchDecodeError::Truncated => write!(f, "sketch bytes truncated"),
            SketchDecodeError::Config(e) => write!(f, "sketch header invalid: {e}"),
            SketchDecodeError::BadEntry(id) => write!(f, "sketch entry {id} invalid"),
            SketchDecodeError::BadTotal => write!(f, "sketch total mismatches entries"),
        }
    }
}

impl Error for SketchDecodeError {}

/// A q-digest over a bounded, quantized value domain. See the module
/// docs for the guarantees.
///
/// Tree-node ids are 1-based heap indices: the root is 1, node `v` has
/// children `2v` and `2v+1`, and the `2^depth` leaves occupy
/// `2^depth ..= 2^(depth+1) - 1` in bucket order.
#[derive(Debug, Clone, PartialEq)]
pub struct QDigest {
    precision: SketchPrecision,
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl QDigest {
    /// An empty sketch. Panics on an invalid precision; validate first
    /// when the configuration is untrusted.
    pub fn new(precision: SketchPrecision) -> QDigest {
        precision.validate().expect("invalid sketch precision");
        QDigest { precision, counts: BTreeMap::new(), total: 0 }
    }

    /// Builds a sketch from a slice of values in one pass.
    pub fn from_values(precision: SketchPrecision, values: &[f64]) -> QDigest {
        let mut d = QDigest::new(precision);
        for &v in values {
            d.insert(v);
        }
        d
    }

    /// The configured precision.
    pub fn precision(&self) -> SketchPrecision {
        self.precision
    }

    /// Number of summarized values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Worst-case relative rank error after compression:
    /// `depth / compression`.
    pub fn epsilon(&self) -> f64 {
        self.precision.depth as f64 / self.precision.compression as f64
    }

    fn universe(&self) -> u64 {
        1u64 << self.precision.depth
    }

    /// The bucket a value quantizes to. Values outside the domain clamp
    /// to the edge buckets; NaN clamps low.
    pub fn bucket_of(&self, value: f64) -> u64 {
        let SketchPrecision { lo, hi, .. } = self.precision;
        let v = if value.is_nan() { lo } else { value.clamp(lo, hi) };
        let u = self.universe();
        let b = ((v - lo) / (hi - lo) * u as f64) as u64;
        b.min(u - 1)
    }

    /// Inclusive value bounds `(lower, upper)` of bucket `b`.
    pub fn bucket_bounds(&self, b: u64) -> (f64, f64) {
        let SketchPrecision { lo, hi, .. } = self.precision;
        let u = self.universe() as f64;
        let width = (hi - lo) / u;
        (lo + b as f64 * width, lo + (b + 1) as f64 * width)
    }

    /// Adds one value.
    pub fn insert(&mut self, value: f64) {
        let leaf = self.universe() + self.bucket_of(value);
        *self.counts.entry(leaf).or_insert(0) += 1;
        self.total += 1;
    }

    /// Adds every count of `other` into `self`. Pure count addition —
    /// no compression happens here, so merging is exactly associative
    /// and commutative. Panics when the precisions differ.
    pub fn merge(&mut self, other: &QDigest) {
        assert_eq!(
            self.precision, other.precision,
            "cannot merge q-digests with different precision"
        );
        for (&id, &c) in &other.counts {
            *self.counts.entry(id).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Canonically compresses in place: one deterministic bottom-up pass
    /// merging sibling pairs into their parent wherever the q-digest
    /// property `count(v) + count(sibling) + count(parent) ≤ ⌊n/k⌋`
    /// allows. Queries and encoding apply this automatically; calling it
    /// eagerly only trims memory.
    pub fn compress(&mut self) {
        let budget = self.total / self.precision.compression;
        if budget == 0 {
            return;
        }
        for level in (1..=self.precision.depth).rev() {
            let lo_id = 1u64 << level;
            let hi_id = (1u64 << (level + 1)) - 1;
            let parents: Vec<u64> =
                self.counts.range(lo_id..=hi_id).map(|(&id, _)| id >> 1).collect();
            let mut last = 0u64;
            for p in parents {
                if p == last {
                    continue; // both siblings listed this parent once already
                }
                last = p;
                let a = self.counts.get(&(2 * p)).copied().unwrap_or(0);
                let b = self.counts.get(&(2 * p + 1)).copied().unwrap_or(0);
                let c = self.counts.get(&p).copied().unwrap_or(0);
                if a + b + c <= budget {
                    self.counts.remove(&(2 * p));
                    self.counts.remove(&(2 * p + 1));
                    self.counts.insert(p, a + b + c);
                }
            }
        }
    }

    /// Cumulative counts per stored node ordered by the *highest* leaf
    /// bucket the node can cover — the classic q-digest rank ordering.
    fn ranked_nodes(&self) -> Vec<(u64, u64, u64)> {
        // (max_bucket, min_bucket, count), sorted ascending.
        let depth = self.precision.depth;
        let mut v: Vec<(u64, u64, u64)> = self
            .counts
            .iter()
            .map(|(&id, &c)| {
                let level = 63 - id.leading_zeros();
                let span = depth - level; // levels below this node
                let first_leaf = id << span;
                let min_b = first_leaf - self.universe();
                let max_b = min_b + (1u64 << span) - 1;
                (max_b, min_b, c)
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// The smallest bucket `b` such that at least `phi·n` values are
    /// summarized at or below `b`, up to the `ε·n` rank slack. Returns
    /// the bucket and its inclusive value bounds; `None` when empty.
    /// `phi` is clamped to `[0, 1]`.
    pub fn quantile(&self, phi: f64) -> Option<(u64, f64, f64)> {
        if self.total == 0 {
            return None;
        }
        let mut canon = self.clone();
        canon.compress();
        let target = (phi.clamp(0.0, 1.0) * canon.total as f64).ceil() as u64;
        let mut seen = 0u64;
        let mut last = None;
        for (max_b, _min_b, c) in canon.ranked_nodes() {
            seen += c;
            last = Some(max_b);
            if seen >= target {
                break;
            }
        }
        let b = last.expect("non-empty digest has nodes");
        let (lo, hi) = self.bucket_bounds(b);
        Some((b, lo, hi))
    }

    /// Estimated number of summarized values in buckets `<= b`:
    /// every stored node whose covered range lies entirely at or below
    /// `b` contributes fully. The true quantized rank exceeds this by at
    /// most `ε·n` after compression.
    pub fn rank_of_bucket(&self, b: u64) -> u64 {
        let mut canon = self.clone();
        canon.compress();
        canon
            .ranked_nodes()
            .into_iter()
            .take_while(|&(max_b, _, _)| max_b <= b)
            .map(|(_, _, c)| c)
            .sum()
    }

    /// Upper value bound over everything summarized: the upper edge of
    /// the highest occupied region. Adding the continuous-mode tolerance
    /// to this bounds what a silent subtree could contribute now.
    pub fn upper_bound(&self) -> Option<f64> {
        self.quantile(1.0).map(|(_, _, hi)| hi)
    }

    /// Canonical byte encoding: header (depth, compression, lo, hi,
    /// total) then the compressed counts as sorted `(node id, count)`
    /// pairs. Equal multisets encode to equal bytes regardless of
    /// insertion or merge order.
    pub fn encode(&self) -> Vec<u8> {
        let mut canon = self.clone();
        canon.compress();
        let mut out = Vec::with_capacity(44 + canon.counts.len() * 16);
        out.extend_from_slice(&canon.precision.depth.to_le_bytes());
        out.extend_from_slice(&canon.precision.compression.to_le_bytes());
        out.extend_from_slice(&canon.precision.lo.to_bits().to_le_bytes());
        out.extend_from_slice(&canon.precision.hi.to_bits().to_le_bytes());
        out.extend_from_slice(&canon.total.to_le_bytes());
        out.extend_from_slice(&(canon.counts.len() as u64).to_le_bytes());
        for (&id, &c) in &canon.counts {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    /// Inverse of [`QDigest::encode`], validating structure as it goes.
    pub fn decode(bytes: &[u8]) -> Result<QDigest, SketchDecodeError> {
        fn take<const N: usize>(b: &mut &[u8]) -> Result<[u8; N], SketchDecodeError> {
            if b.len() < N {
                return Err(SketchDecodeError::Truncated);
            }
            let (head, tail) = b.split_at(N);
            *b = tail;
            Ok(head.try_into().expect("split_at guarantees length"))
        }
        let mut b = bytes;
        let depth = u32::from_le_bytes(take::<4>(&mut b)?);
        let compression = u64::from_le_bytes(take::<8>(&mut b)?);
        let lo = f64::from_bits(u64::from_le_bytes(take::<8>(&mut b)?));
        let hi = f64::from_bits(u64::from_le_bytes(take::<8>(&mut b)?));
        let precision = SketchPrecision { depth, compression, lo, hi };
        precision.validate().map_err(SketchDecodeError::Config)?;
        let total = u64::from_le_bytes(take::<8>(&mut b)?);
        let len = u64::from_le_bytes(take::<8>(&mut b)?);
        let max_id = (1u64 << (depth + 1)) - 1;
        let mut counts = BTreeMap::new();
        let mut prev = 0u64;
        let mut sum = 0u64;
        for _ in 0..len {
            let id = u64::from_le_bytes(take::<8>(&mut b)?);
            let c = u64::from_le_bytes(take::<8>(&mut b)?);
            if id <= prev || id > max_id || c == 0 {
                return Err(SketchDecodeError::BadEntry(id));
            }
            prev = id;
            sum = sum.checked_add(c).ok_or(SketchDecodeError::BadTotal)?;
            counts.insert(id, c);
        }
        if !b.is_empty() {
            return Err(SketchDecodeError::Truncated);
        }
        if sum != total {
            return Err(SketchDecodeError::BadTotal);
        }
        Ok(QDigest { precision, counts, total })
    }

    /// Number of stored tree nodes (sparse size before compression).
    pub fn node_count(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prec() -> SketchPrecision {
        SketchPrecision { depth: 8, compression: 16, lo: 0.0, hi: 256.0 }
    }

    #[test]
    fn insert_and_total() {
        let mut d = QDigest::new(prec());
        assert_eq!(d.total(), 0);
        d.insert(3.0);
        d.insert(200.0);
        assert_eq!(d.total(), 2);
        assert_eq!(d.node_count(), 2);
    }

    #[test]
    fn clamping_maps_out_of_domain_to_edges() {
        let d = QDigest::new(prec());
        assert_eq!(d.bucket_of(-10.0), 0);
        assert_eq!(d.bucket_of(1e9), 255);
        assert_eq!(d.bucket_of(f64::NAN), 0);
        assert_eq!(d.bucket_of(f64::NEG_INFINITY), 0);
    }

    #[test]
    fn quantile_on_uniform_values_is_near_exact() {
        let values: Vec<f64> = (0..256).map(|i| i as f64 + 0.5).collect();
        let d = QDigest::from_values(prec(), &values);
        let (b, _, _) = d.quantile(0.5).unwrap();
        let err = (b as i64 - 127).unsigned_abs();
        assert!(err as f64 <= d.epsilon() * 256.0 + 1.0, "bucket {b}, err {err}");
    }

    #[test]
    fn compress_respects_budget_and_preserves_total() {
        let values: Vec<f64> = (0..1000).map(|i| (i % 256) as f64).collect();
        let mut d = QDigest::from_values(prec(), &values);
        d.compress();
        assert_eq!(d.total(), 1000);
        // Size bound: at most 3k nodes after compression (classic bound).
        assert!(d.node_count() as u64 <= 3 * prec().compression);
    }

    #[test]
    fn merge_is_count_addition() {
        let mut a = QDigest::from_values(prec(), &[1.0, 2.0]);
        let b = QDigest::from_values(prec(), &[1.0, 250.0]);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        let direct = QDigest::from_values(prec(), &[1.0, 2.0, 1.0, 250.0]);
        assert_eq!(a, direct);
    }

    #[test]
    fn encode_decode_round_trips() {
        let values: Vec<f64> = (0..500).map(|i| (i * 7 % 256) as f64).collect();
        let d = QDigest::from_values(prec(), &values);
        let bytes = d.encode();
        let back = QDigest::decode(&bytes).unwrap();
        assert_eq!(back.total(), d.total());
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(QDigest::decode(&[1, 2, 3]), Err(SketchDecodeError::Truncated));
        let mut bytes = QDigest::from_values(prec(), &[1.0, 2.0]).encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(QDigest::decode(&bytes).is_err());
    }

    #[test]
    fn precision_validation() {
        assert!(prec().validate().is_ok());
        assert!(SketchPrecision { depth: 0, ..prec() }.validate().is_err());
        assert!(SketchPrecision { depth: 25, ..prec() }.validate().is_err());
        assert!(SketchPrecision { compression: 0, ..prec() }.validate().is_err());
        assert!(SketchPrecision { lo: 1.0, hi: 1.0, ..prec() }.validate().is_err());
        assert!(SketchPrecision { lo: f64::NAN, ..prec() }.validate().is_err());
    }

    #[test]
    fn upper_bound_covers_max() {
        let values = [3.0, 99.5, 17.25, 240.0];
        let d = QDigest::from_values(prec(), &values);
        assert!(d.upper_bound().unwrap() >= 240.0);
    }
}
