//! Configuration of the continuous-query (delta-collection) mode.
//!
//! In continuous mode the network stops re-collecting the full top-k
//! answer every epoch. Instead each node remembers the last value it
//! shipped and the last broadcast k-th threshold, and a query epoch is
//! either a **delta epoch** (only changed readings travel, silence means
//! "nothing changed") or a **full refresh** (the classic from-scratch
//! collection, forced periodically and whenever silence can no longer be
//! trusted). The policy knobs live here in `core` so the checkpoint wire
//! format can carry them; the protocol state machine lives in
//! `prospector-sim`.

use std::error::Error;
use std::fmt;

use crate::sketch::{SketchConfigError, SketchPrecision};

/// Knobs of the continuous-query mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuousPolicy {
    /// A node re-ships its reading when it moved more than this from the
    /// last shipped value (or crossed the k-th threshold, regardless of
    /// tolerance). `0.0` means any bit-level change ships.
    pub tolerance: f64,
    /// Force a full from-scratch refresh every this many epochs. `1`
    /// degenerates to the classic protocol (refresh every epoch) and is
    /// the reference the differential harness compares against.
    pub refresh_period: u64,
    /// When set, every full refresh also builds one q-digest per
    /// root-child subtree (merged bottom-up along the tree) that the
    /// planner can query for thresholds and the root uses to bound a
    /// silent subtree's possible contribution.
    pub sketch: Option<SketchPrecision>,
}

impl ContinuousPolicy {
    /// Rejects unusable configurations.
    pub fn validate(&self) -> Result<(), ContinuousPolicyError> {
        if !self.tolerance.is_finite() || self.tolerance < 0.0 {
            return Err(ContinuousPolicyError::BadTolerance(self.tolerance));
        }
        if self.refresh_period == 0 {
            return Err(ContinuousPolicyError::ZeroRefreshPeriod);
        }
        if let Some(p) = &self.sketch {
            p.validate().map_err(ContinuousPolicyError::Sketch)?;
        }
        Ok(())
    }
}

/// A rejected [`ContinuousPolicy`], naming the bad knob.
#[derive(Debug, Clone, PartialEq)]
pub enum ContinuousPolicyError {
    /// `tolerance` must be finite and non-negative.
    BadTolerance(f64),
    /// `refresh_period` must be at least 1.
    ZeroRefreshPeriod,
    /// The sketch precision failed validation.
    Sketch(SketchConfigError),
}

impl fmt::Display for ContinuousPolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContinuousPolicyError::BadTolerance(t) => {
                write!(f, "continuous tolerance must be finite and non-negative, got {t}")
            }
            ContinuousPolicyError::ZeroRefreshPeriod => {
                write!(f, "continuous refresh_period must be at least 1")
            }
            ContinuousPolicyError::Sketch(e) => write!(f, "continuous sketch invalid: {e}"),
        }
    }
}

impl Error for ContinuousPolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ContinuousPolicy {
        ContinuousPolicy { tolerance: 0.5, refresh_period: 8, sketch: None }
    }

    #[test]
    fn accepts_reasonable_policy() {
        assert!(policy().validate().is_ok());
        let with_sketch = ContinuousPolicy {
            sketch: Some(SketchPrecision { depth: 12, compression: 32, lo: 0.0, hi: 100.0 }),
            ..policy()
        };
        assert!(with_sketch.validate().is_ok());
    }

    #[test]
    fn rejects_bad_knobs() {
        assert!(ContinuousPolicy { tolerance: -1.0, ..policy() }.validate().is_err());
        assert!(ContinuousPolicy { tolerance: f64::NAN, ..policy() }.validate().is_err());
        assert!(ContinuousPolicy { refresh_period: 0, ..policy() }.validate().is_err());
        let bad_sketch = ContinuousPolicy {
            sketch: Some(SketchPrecision { depth: 0, compression: 1, lo: 0.0, hi: 1.0 }),
            ..policy()
        };
        assert!(bad_sketch.validate().is_err());
    }
}
