//! Executable companion to Section 3.1 ("Theoretical Foundation of
//! Sampling").
//!
//! The paper reduces `SIMPLE-TOP-K` — choose at most `t` nodes to query at
//! unit cost, minimizing the expected number of top-k values missed — to
//! two-stage stochastic optimization (`STOCHASTIC-STEINER-TREE` with star
//! topology and λ = 1), for which Shmoys–Swamy show that solving an LP
//! relaxation over polynomially many **samples** approximates the true
//! stochastic optimum arbitrarily well.
//!
//! This module makes the claim checkable: [`optimal_subset`] brute-forces
//! the true optimum over an explicit scenario distribution, and
//! [`sampled_lp_subset`] solves the sampled LP relaxation (which for this
//! star-shaped special case has an integral structure — it is a fractional
//! knapsack over appearance counts). The tests verify the sampled solution
//! converges to the brute-force optimum as samples grow.

use prospector_data::top_k_nodes;
use prospector_lp::{Cmp, Problem, Sense};
use prospector_net::NodeId;

/// An explicit finite joint distribution over network readings.
#[derive(Debug, Clone)]
pub struct ScenarioDistribution {
    /// Each scenario: (probability, readings per node).
    pub scenarios: Vec<(f64, Vec<f64>)>,
    pub k: usize,
}

impl ScenarioDistribution {
    /// Expected number of top-k values missed when querying `subset`
    /// (node i is "covered" iff subset contains it).
    pub fn expected_misses(&self, subset: &[NodeId]) -> f64 {
        self.scenarios
            .iter()
            .map(|(prob, values)| {
                let top = top_k_nodes(values, self.k);
                let missed = top.iter().filter(|n| !subset.contains(n)).count();
                prob * missed as f64
            })
            .sum()
    }

    fn num_nodes(&self) -> usize {
        self.scenarios[0].1.len()
    }
}

/// Brute-force optimum of `SIMPLE-TOP-K`: the best subset of ≤ `t` nodes
/// by exhaustive enumeration. Exponential; for tests on tiny instances.
pub fn optimal_subset(dist: &ScenarioDistribution, t: usize) -> (Vec<NodeId>, f64) {
    let n = dist.num_nodes();
    assert!(n <= 20, "brute force limited to tiny instances");
    let mut best: Option<(Vec<NodeId>, f64)> = None;
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize > t {
            continue;
        }
        let subset: Vec<NodeId> =
            (0..n).filter(|i| mask & (1 << i) != 0).map(NodeId::from_index).collect();
        let misses = dist.expected_misses(&subset);
        if best.as_ref().is_none_or(|(_, b)| misses < *b) {
            best = Some((subset, misses));
        }
    }
    best.expect("at least the empty subset")
}

/// The Shmoys–Swamy-style sampled solution: draw `samples` scenarios,
/// write the LP relaxation `max Σ cnt_i x_i s.t. Σ x_i ≤ t, x ∈ [0,1]`,
/// solve, and round the `t` largest fractional values to 1.
pub fn sampled_lp_subset(
    dist: &ScenarioDistribution,
    t: usize,
    samples: usize,
    seed: u64,
) -> Vec<NodeId> {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    let n = dist.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0u32; n];
    for _ in 0..samples {
        // Sample a scenario by its probability.
        let r: f64 = rng.random_range(0.0..1.0);
        let mut acc = 0.0;
        let mut values = &dist.scenarios[0].1;
        for (p, v) in &dist.scenarios {
            acc += p;
            if r <= acc {
                values = v;
                break;
            }
        }
        for node in top_k_nodes(values, dist.k) {
            counts[node.index()] += 1;
        }
    }

    let mut lp = Problem::new(Sense::Maximize);
    let vars: Vec<_> = counts.iter().map(|&c| lp.add_var(0.0, 1.0, c as f64)).collect();
    lp.add_constraint(vars.iter().map(|&v| (v, 1.0)), Cmp::Le, t as f64);
    let sol = lp.solve().expect("sampled LP solves");

    round_lp_solution(&sol.x, &counts, t)
}

/// Rounds a fractional LP solution to the `t` best nodes: descending
/// fractional value, ties broken by appearance count then node id.
///
/// Uses `f64::total_cmp` and clamps non-finite solver output to 0, so a
/// pathological column (NaN/±inf escaping the simplex) can neither panic
/// the sort nor win the selection spuriously.
fn round_lp_solution(x: &[f64], counts: &[u32], t: usize) -> Vec<NodeId> {
    let x: Vec<f64> = x.iter().map(|&v| if v.is_finite() { v } else { 0.0 }).collect();
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by(|&a, &b| x[b].total_cmp(&x[a]).then(counts[b].cmp(&counts[a])).then(a.cmp(&b)));
    order.into_iter().take(t).filter(|&i| counts[i] > 0).map(NodeId::from_index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// A distribution with the paper's Section 1 trap: a high-mean node
    /// that is never in the top-1, plus a group whose members alternate.
    fn trap_distribution() -> ScenarioDistribution {
        // 4 nodes. Node 0 always reads 10. Nodes 1-3: one of them reads 20
        // in each scenario, the others 1.
        let scenarios = vec![
            (1.0 / 3.0, vec![10.0, 20.0, 1.0, 1.0]),
            (1.0 / 3.0, vec![10.0, 1.0, 20.0, 1.0]),
            (1.0 / 3.0, vec![10.0, 1.0, 1.0, 20.0]),
        ];
        ScenarioDistribution { scenarios, k: 1 }
    }

    #[test]
    fn brute_force_finds_group_not_mean() {
        // With t = 1, querying the high-mean node 0 misses the top-1
        // always; the optimum picks one group member (miss 2/3).
        let d = trap_distribution();
        let (subset, misses) = optimal_subset(&d, 1);
        assert!(!subset.contains(&NodeId(0)), "mean-sorting trap");
        assert!((misses - 2.0 / 3.0).abs() < 1e-9);
        // t = 3 covers the whole group exactly.
        let (subset, misses) = optimal_subset(&d, 3);
        assert_eq!(subset, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert!(misses.abs() < 1e-9);
    }

    #[test]
    fn sampled_lp_converges_to_optimum() {
        let d = trap_distribution();
        let (_, opt) = optimal_subset(&d, 2);
        // Few samples: may be off. Many samples: must be near-optimal.
        let subset = sampled_lp_subset(&d, 2, 400, 7);
        let achieved = d.expected_misses(&subset);
        assert!(achieved <= opt + 1e-9, "sampled solution {achieved} worse than optimum {opt}");
    }

    #[test]
    fn sampled_lp_near_optimal_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..5 {
            let n = 7;
            let k = 2;
            let num_scenarios = 6;
            let scenarios: Vec<(f64, Vec<f64>)> = (0..num_scenarios)
                .map(|_| {
                    (
                        1.0 / num_scenarios as f64,
                        (0..n).map(|_| rng.random_range(0.0..100.0)).collect(),
                    )
                })
                .collect();
            let d = ScenarioDistribution { scenarios, k };
            let t = 3;
            let (_, opt) = optimal_subset(&d, t);
            let subset = sampled_lp_subset(&d, t, 600, trial);
            let achieved = d.expected_misses(&subset);
            assert!(achieved <= opt + 0.35, "trial {trial}: sampled {achieved} vs optimum {opt}");
        }
    }

    #[test]
    fn rounding_survives_nan_and_inf_columns() {
        // Regression: `partial_cmp().unwrap()` panicked here when the
        // solver emitted a NaN column. Non-finite entries now rank as 0.
        let x = [f64::NAN, 0.5, f64::INFINITY, 1.0, f64::NEG_INFINITY];
        let counts = [9, 3, 9, 2, 9];
        let picked = round_lp_solution(&x, &counts, 2);
        assert_eq!(picked, vec![NodeId(3), NodeId(1)], "finite values beat clamped garbage");
        // All-NaN solutions degrade to the count order instead of dying.
        let all_nan = [f64::NAN; 3];
        assert_eq!(round_lp_solution(&all_nan, &[1, 5, 3], 2), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn sample_count_tradeoff_is_monotoneish() {
        // The paper's "Other Results": one sample is poor, a handful is
        // nearly as good as many.
        let d = trap_distribution();
        let with = |s| {
            let mut total = 0.0;
            for seed in 0..20 {
                total += d.expected_misses(&sampled_lp_subset(&d, 2, s, seed));
            }
            total / 20.0
        };
        let one = with(1);
        let many = with(200);
        assert!(many <= one + 1e-9, "more samples can't hurt on average: {many} vs {one}");
    }
}
