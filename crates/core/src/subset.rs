//! Generalized subset-query planning (Section 3's generalization).
//!
//! The Prospector framework only needs a Boolean answer matrix: "set
//! M[j][i] = 1 if node i contributes to the answer in the j-th sample …
//! minimize the total number of 1's in M missed by the plan." This module
//! plans **delivery plans** for arbitrary [`AnswerSpec`] queries
//! (selection, quantile bands, …) with the same topology-aware LP as
//! LP−LF, driven by the generalized window's column counts.
//!
//! Execution differs from top-k: rank-based local filtering is a top-k
//! trick (the answer is always the highest values); for a general subset
//! query the chosen nodes' readings are shipped verbatim —
//! [`deliver_chosen`] — and the root applies the query predicate itself.

use crate::error::PlanError;
use crate::lp_no_lf::plan_with_counts;
use crate::plan::Plan;
use crate::planner::PlanContext;
use prospector_data::subset::{AnswerSpec, SubsetSampleSet};
use prospector_data::{Reading, SampleSet};
use prospector_net::{NodeId, Topology};

/// Plans a delivery plan for an arbitrary subset query under an energy
/// budget: the nodes most frequently contributing to past answers are
/// fetched, sharing paths where the topology allows.
///
/// The returned plan is a chosen-set (no-local-filtering) plan; execute it
/// with [`deliver_chosen`] + the usual cost model, or let `prospector-sim`
/// meter it.
pub fn plan_subset_query(
    ctx_template: &PlanContext<'_>,
    window: &SubsetSampleSet,
) -> Result<Plan, PlanError> {
    if window.is_empty() {
        return Err(PlanError::NoSamples);
    }
    plan_with_counts(ctx_template, window.column_counts())
}

/// The readings a chosen-set plan delivers to the root: the root's own
/// reading plus every node whose edge carries its value. For chosen-set
/// plans built by [`plan_subset_query`] this is exactly the chosen nodes.
pub fn deliver_chosen(plan: &Plan, topology: &Topology, values: &[f64]) -> Vec<Reading> {
    // In a chosen-set plan, node i's value reaches the root iff
    // bandwidth(i) > Σ bandwidth(children(i)) — its own value accounts for
    // the surplus unit (values are never rank-filtered in delivery mode).
    let mut out = vec![Reading { node: topology.root(), value: values[topology.root().index()] }];
    for e in topology.edges() {
        let own: u32 = topology.children(e).iter().map(|&c| plan.bandwidth(c)).sum();
        if plan.bandwidth(e) > own {
            out.push(Reading { node: e, value: values[e.index()] });
        }
    }
    out.sort_unstable_by(Reading::rank_cmp);
    out
}

/// Fraction of the true answer a plan delivers for one epoch (`1.0` when
/// the true answer is empty).
pub fn subset_accuracy(plan: &Plan, topology: &Topology, spec: &AnswerSpec, values: &[f64]) -> f64 {
    let truth = spec.answer_nodes(values);
    if truth.is_empty() {
        return 1.0;
    }
    let delivered: Vec<NodeId> =
        deliver_chosen(plan, topology, values).into_iter().map(|r| r.node).collect();
    let hits = truth.iter().filter(|n| delivered.contains(n)).count();
    hits as f64 / truth.len() as f64
}

/// Builds a `PlanContext` helper for subset planning: the generalized
/// window carries the counts, but `PlanContext` wants a `SampleSet`; this
/// produces a minimal stand-in window so cost accounting works unchanged.
///
/// (Only `topology`, `energy`, `failures` and `budget_mj` are read by the
/// chosen-set machinery; `k` is irrelevant for subset plans.)
pub fn subset_context<'a>(
    topology: &'a Topology,
    energy: &'a prospector_net::EnergyModel,
    placeholder: &'a SampleSet,
    budget_mj: f64,
) -> PlanContext<'a> {
    PlanContext::new(topology, energy, placeholder, budget_mj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_net::topology::{balanced, star};
    use prospector_net::EnergyModel;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn placeholder(n: usize) -> SampleSet {
        let mut s = SampleSet::new(n, 1, 1);
        s.push(vec![0.0; n]);
        s
    }

    #[test]
    fn selection_query_planning_end_to_end() {
        // Nodes 1 and 2 regularly exceed the threshold; node 3 never.
        let t = star(4);
        let em = EnergyModel::mica2();
        let mut w = SubsetSampleSet::new(4, AnswerSpec::AboveThreshold(50.0), 8);
        for _ in 0..5 {
            w.push(vec![0.0, 80.0, 60.0, 10.0]);
        }
        let ph = placeholder(4);
        let ctx = subset_context(&t, &em, &ph, 10.0);
        let plan = plan_subset_query(&ctx, &w).unwrap();
        assert!(plan.is_used(NodeId(1)) && plan.is_used(NodeId(2)));
        assert!(!plan.is_used(NodeId(3)));

        let acc = subset_accuracy(&plan, &t, w.spec(), &[0.0, 80.0, 60.0, 10.0]);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn deliver_chosen_ships_low_values_too() {
        // The whole point of delivery mode: a below-threshold query's
        // answers are *low* values, which rank-based filtering would drop.
        let t = star(4);
        let mut plan = Plan::empty(4);
        plan.set_bandwidth(NodeId(3), 1);
        let values = [50.0, 99.0, 98.0, 1.0];
        let delivered = deliver_chosen(&plan, &t, &values);
        let nodes: Vec<NodeId> = delivered.iter().map(|r| r.node).collect();
        assert!(nodes.contains(&NodeId(3)), "the low value must arrive");
        assert!(!nodes.contains(&NodeId(1)));
    }

    #[test]
    fn quantile_band_query_planning() {
        let t = balanced(3, 2);
        let n = t.len();
        let em = EnergyModel::mica2();
        let mut rng = StdRng::seed_from_u64(5);
        // Values with a stable ordering: node i ≈ 10·i plus noise, so the
        // median band is persistent.
        let gen = |rng: &mut StdRng| -> Vec<f64> {
            (0..n).map(|i| 10.0 * i as f64 + rng.random_range(-2.0..2.0)).collect()
        };
        let spec = AnswerSpec::QuantileBand { lo: 0.4, hi: 0.6 };
        let mut w = SubsetSampleSet::new(n, spec.clone(), 10);
        for _ in 0..10 {
            w.push(gen(&mut rng));
        }
        let ph = placeholder(n);
        let ctx = subset_context(&t, &em, &ph, 50.0);
        let plan = plan_subset_query(&ctx, &w).unwrap();
        plan.validate(&t).unwrap();
        let mut acc = 0.0;
        for _ in 0..5 {
            acc += subset_accuracy(&plan, &t, &spec, &gen(&mut rng));
        }
        assert!(acc / 5.0 > 0.75, "median-band accuracy {}", acc / 5.0);
    }

    #[test]
    fn respects_budget() {
        let t = balanced(2, 3);
        let n = t.len();
        let em = EnergyModel::mica2();
        let mut w = SubsetSampleSet::new(n, AnswerSpec::AboveThreshold(0.5), 4);
        w.push((0..n).map(|i| i as f64).collect());
        let ph = placeholder(n);
        for budget in [3.0, 9.0, 30.0] {
            let ctx = subset_context(&t, &em, &ph, budget);
            let plan = plan_subset_query(&ctx, &w).unwrap();
            assert!(ctx.plan_cost(&plan) <= budget + 1e-9);
        }
    }

    #[test]
    fn empty_window_errors() {
        let t = star(3);
        let em = EnergyModel::mica2();
        let w = SubsetSampleSet::new(3, AnswerSpec::AboveThreshold(1.0), 2);
        let ph = placeholder(3);
        let ctx = subset_context(&t, &em, &ph, 5.0);
        assert!(matches!(plan_subset_query(&ctx, &w), Err(PlanError::NoSamples)));
    }
}
