//! `ProspectorProof` (Section 4.3): bandwidth allocation for
//! proof-carrying plans.
//!
//! A proof-carrying plan must use **every** edge (any unvisited node could
//! hold the maximum), so the free parameters are the bandwidths
//! `w_e ∈ [1, |desc(e)|]`. The LP maximizes the expected number of top-k
//! values proven at the root over the sample window, with one variable
//! `p_{j,i,a}` per (sample, node, ancestor) triple: is node i's value
//! proven by ancestor a when the plan runs on sample j?
//!
//! Constraints (numbers refer to the paper):
//! * (12) bandwidth — values proven at a node all crossed the child edge;
//! * (13) monotonicity — proven at `a` requires proven at every node on
//!   the path below `a`;
//! * (14) proof — every sibling subtree must prove a *witness* value
//!   ranked below v (rows are skipped when the witness set is empty,
//!   matching the paper's c.3 exception).

use crate::error::PlanError;
use crate::evaluate::{expected_proven, expected_proven_with};
use crate::plan::Plan;
use crate::planner::{PlanContext, Planner};
use prospector_data::Reading;
use prospector_lp::{Cmp, Problem, Sense, Status, VarId};
use prospector_net::NodeId;
use std::collections::HashMap;

/// How leftover phase-1 budget is spent after the LP's objective
/// saturates (an ablation axis; see `prospector-bench`'s `ablation`
/// harness for the measured impact on `ProspectorExact`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillStrategy {
    /// Safety margin spread relative to the observed per-edge top-k load
    /// (default; keeps proofs robust on fresh epochs).
    #[default]
    NeedAware,
    /// Fill the largest remaining subtree deficits first (naive; leaves
    /// many subtrees one witness short, collapsing proof prefixes).
    SubtreeDeficit,
    /// Spend nothing beyond the LP solution.
    None,
}

/// The proof-carrying plan optimizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProspectorProof {
    /// Budget-fill strategy applied after LP rounding.
    pub fill: FillStrategy,
}

impl Planner for ProspectorProof {
    fn name(&self) -> &'static str {
        "prospector-proof"
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> Result<Plan, PlanError> {
        if ctx.samples.is_empty() {
            return Err(PlanError::NoSamples);
        }
        let min_cost = ctx.min_proof_cost();
        if ctx.budget_mj < min_cost {
            return Err(PlanError::BudgetTooSmall {
                required_mj: min_cost,
                budget_mj: ctx.budget_mj,
            });
        }

        let topo = ctx.topology;
        let n = topo.len();
        let num_samples = ctx.samples.len();
        let root = topo.root();

        let mut lp = Problem::new(Sense::Maximize);

        // Bandwidths: every edge carries at least one value. No edge ever
        // needs more than k + 1 (its subtree holds at most k answer values,
        // plus one witness suffices for proofs above).
        let k_cap = ctx.k() + 1;
        let mut w: Vec<Option<VarId>> = vec![None; n];
        for e in topo.edges() {
            let ub = topo.subtree_size(e).min(k_cap) as f64;
            w[e.index()] = Some(lp.add_var(1.0, ub, 0.0));
        }

        // Proven indicators p_{j,i,a}. Leaf nodes are trivially proven at
        // themselves, so (leaf, a = leaf) is the constant 1 and gets no
        // variable.
        let mut p: HashMap<(usize, u32, u32), VarId> = HashMap::new();
        for j in 0..num_samples {
            let ones = ctx.samples.ones(j);
            for i in (0..n).map(NodeId::from_index) {
                for a in topo.path_to_root(i) {
                    if a == i && topo.is_leaf(i) {
                        continue;
                    }
                    let obj = if a == root && ones.contains(&i) { 1.0 } else { 0.0 };
                    p.insert((j, i.0, a.0), lp.add_var(0.0, 1.0, obj));
                }
            }
        }
        let pvar =
            |j: usize, i: NodeId, a: NodeId| -> Option<VarId> { p.get(&(j, i.0, a.0)).copied() };

        // (13) monotonicity along each node's ancestor path.
        for j in 0..num_samples {
            for i in (0..n).map(NodeId::from_index) {
                let mut below = i;
                for a in topo.path_to_root(i).skip(1) {
                    let pa = pvar(j, i, a).expect("ancestor variable exists");
                    match pvar(j, i, below) {
                        Some(pb) => lp.add_constraint([(pa, 1.0), (pb, -1.0)], Cmp::Le, 0.0),
                        None => { /* below is the leaf itself: p ≤ 1 is the box bound */ }
                    }
                    below = a;
                }
            }
        }

        // (12) bandwidth: values proven at parent(c) from subtree(c) all
        // crossed edge c. Rows with |desc(c)| == 1 are dominated by the
        // bound w ≥ 1.
        for c in topo.edges() {
            let sub = topo.subtree(c);
            if sub.len() <= 1 {
                continue;
            }
            let parent = topo.parent(c).expect("edges have parents");
            let wc = w[c.index()].expect("edge has a bandwidth variable");
            for j in 0..num_samples {
                let mut terms: Vec<(VarId, f64)> = Vec::with_capacity(sub.len() + 1);
                for &i in &sub {
                    if let Some(pi) = pvar(j, i, parent) {
                        terms.push((pi, 1.0));
                    }
                }
                terms.push((wc, -1.0));
                lp.add_constraint(terms, Cmp::Le, 0.0);
            }
        }

        // (14) proof rows: for p_{j,i,a} and every child c of a not on the
        // i→a path, some witness in desc(c) ranked below v_j(i) must be
        // proven by c. Skipped when the witness set is empty (the paper's
        // return-everything exception) or when it contains a trivially
        // proven leaf-child witness.
        for j in 0..num_samples {
            for i in (0..n).map(NodeId::from_index) {
                let vi = Reading { node: i, value: ctx.samples.value(j, i) };
                let mut below = i;
                for a in topo.path_to_root(i) {
                    // Children of a that must supply witnesses: all except
                    // the one leading to i (when a != i).
                    let skip_child = if a == i { None } else { Some(below) };
                    let Some(pia) = pvar(j, i, a) else {
                        below = a;
                        continue; // leaf at itself: trivially proven
                    };
                    for &c in topo.children(a) {
                        if Some(c) == skip_child {
                            continue;
                        }
                        let mut witness_terms: Vec<(VarId, f64)> = Vec::new();
                        let mut trivially_satisfied = false;
                        for i2 in topo.subtree(c) {
                            let v2 = Reading { node: i2, value: ctx.samples.value(j, i2) };
                            if v2.rank_cmp(&vi) == std::cmp::Ordering::Greater {
                                match pvar(j, i2, c) {
                                    Some(pw) => witness_terms.push((pw, -1.0)),
                                    // Leaf child c itself as witness: the
                                    // constant 1 satisfies the row.
                                    None => {
                                        trivially_satisfied = true;
                                        break;
                                    }
                                }
                            }
                        }
                        if trivially_satisfied {
                            continue;
                        }
                        if witness_terms.is_empty() {
                            // Empty witness set: the paper's exception —
                            // provable only via "c returns everything";
                            // the row is skipped (optimistic, as in the
                            // paper).
                            continue;
                        }
                        witness_terms.push((pia, 1.0));
                        lp.add_constraint(witness_terms, Cmp::Le, 0.0);
                    }
                    below = a;
                }
            }
        }

        // (11) budget: every edge pays its message; bandwidth pays bytes;
        // the proven-count side channel is reserved up front.
        let fixed: f64 =
            topo.edges().map(|e| ctx.edge_message_cost(e)).sum::<f64>() + ctx.proof_overhead();
        let budget_terms: Vec<(VarId, f64)> = topo
            .edges()
            .map(|e| (w[e.index()].expect("bandwidth var"), ctx.edge_value_cost(e)))
            .collect();
        lp.add_constraint(budget_terms, Cmp::Le, ctx.budget_mj - fixed);

        let sol = lp.solve()?;
        if sol.status != Status::Optimal {
            return Err(PlanError::UnexpectedLpStatus(match sol.status {
                Status::Infeasible => "infeasible",
                Status::Unbounded => "unbounded",
                _ => "iteration limit",
            }));
        }

        let mut plan = Plan::empty(n);
        plan.proof_carrying = true;
        for e in topo.edges() {
            let we = w[e.index()].expect("bandwidth var");
            let rounded = sol.value(we).round().max(1.0) as u32;
            plan.set_bandwidth(e, rounded.min(topo.subtree_size(e).min(k_cap) as u32));
        }
        repair_proof_budget(&mut plan, ctx);
        fill_proof_budget(&mut plan, ctx, self.fill);
        Ok(plan)
    }
}

/// Spends leftover phase-1 budget on extra witness bandwidth. The LP's
/// objective saturates once every *sample* proof succeeds, but on fresh
/// epochs extra witnesses avert mop-ups, so `ProspectorExact` wants the
/// phase-1 budget actually used (the paper's Figure 8 trades phase-1
/// spending against phase-2 cost). Bandwidth is added where headroom is
/// largest (deep subtrees squeezed to few values first).
fn fill_proof_budget(plan: &mut Plan, ctx: &PlanContext<'_>, strategy: FillStrategy) {
    if strategy == FillStrategy::None {
        return;
    }
    let topo = ctx.topology;
    let per_value = ctx.energy.per_value();
    let overhead = ctx.proof_overhead();
    let mut cost = ctx.plan_cost(plan) + overhead;
    let k_cap = ctx.samples.k() + 1;

    // Observed per-edge load: the most top-k values any sample pushed
    // through each edge. Safety margin is spread evenly *relative to this
    // need* — a subtree that never held more than 2 answer values gets its
    // third slot long before a quiet leaf gets its second.
    let mut need = vec![0i64; topo.len()];
    for j in 0..ctx.samples.len() {
        let mut cnt = vec![0i64; topo.len()];
        for &i in ctx.samples.ones(j) {
            for e in topo.edges_to_root(i) {
                cnt[e.index()] += 1;
            }
        }
        for (n, c) in need.iter_mut().zip(&cnt) {
            *n = (*n).max(*c);
        }
    }

    loop {
        if cost + per_value > ctx.budget_mj {
            return;
        }
        let best = match strategy {
            FillStrategy::None => unreachable!("handled above"),
            FillStrategy::NeedAware => topo
                .edges()
                .filter(|&e| (plan.bandwidth(e) as usize) < topo.subtree_size(e).min(k_cap))
                .min_by_key(|&e| {
                    // Smallest margin over observed need first; break ties
                    // toward larger subtrees (they hide more), then by id.
                    (
                        plan.bandwidth(e) as i64 - need[e.index()],
                        std::cmp::Reverse(topo.subtree_size(e)),
                        e.0,
                    )
                }),
            FillStrategy::SubtreeDeficit => topo
                .edges()
                .filter(|&e| (plan.bandwidth(e) as usize) < topo.subtree_size(e).min(k_cap))
                .max_by_key(|&e| {
                    (
                        topo.subtree_size(e).min(k_cap) - plan.bandwidth(e) as usize,
                        std::cmp::Reverse(e.0),
                    )
                }),
        };
        let Some(e) = best else { return };
        let step = ctx.edge_value_cost(e);
        if cost + step > ctx.budget_mj {
            return;
        }
        plan.set_bandwidth(e, plan.bandwidth(e) + 1);
        cost += step;
    }
}

/// Decrements bandwidths (floor 1) until the plan fits the budget,
/// dropping the unit whose removal loses the fewest expected proofs.
///
/// Candidate drops are scored on the worker pool (serial inner
/// evaluation, edge-order reduction), so the chosen drop is identical to
/// the serial loop at any thread count. Unlike the LP+LF repair loop,
/// proof scoring cannot use the rank-order claiming kernel (proofs need
/// the raw values and witness sets), so `expected_proven` still simulates
/// — over the CSR topology, which keeps the per-node merge loop free of
/// pointer chasing.
fn repair_proof_budget(plan: &mut Plan, ctx: &PlanContext<'_>) {
    let topo = ctx.topology;
    let overhead = ctx.proof_overhead();
    loop {
        let cost = ctx.plan_cost(plan) + overhead;
        if cost <= ctx.budget_mj {
            return;
        }
        let base = expected_proven(plan, topo, ctx.samples);
        let current: &Plan = plan;
        let droppable: Vec<NodeId> = topo.edges().filter(|&e| current.bandwidth(e) > 1).collect();
        let losses = prospector_par::par_map(&droppable, |_, &e| {
            let mut cand = current.clone();
            cand.set_bandwidth(e, current.bandwidth(e) - 1);
            base - expected_proven_with(&cand, topo, ctx.samples, 1)
        });
        let mut best: Option<(f64, NodeId)> = None;
        for (&e, &loss) in droppable.iter().zip(&losses) {
            if best.is_none_or(|(bl, _)| loss < bl) {
                best = Some((loss, e));
            }
        }
        let Some((_, e)) = best else { return };
        let w = plan.bandwidth(e);
        plan.set_bandwidth(e, w - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_proof_plan;
    use prospector_data::SampleSet;
    use prospector_net::topology::balanced;
    use prospector_net::EnergyModel;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn stable_samples(n: usize, k: usize, rows: usize, seed: u64) -> SampleSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let means: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..100.0)).collect();
        let mut s = SampleSet::new(n, k, rows);
        for _ in 0..rows {
            s.push(means.iter().map(|m| m + rng.random_range(-3.0..3.0)).collect());
        }
        s
    }

    #[test]
    fn produces_valid_proof_plan_within_budget() {
        let t = balanced(2, 3); // 15 nodes
        let em = EnergyModel::mica2();
        let s = stable_samples(t.len(), 3, 5, 1);
        let budget = 40.0;
        let ctx = PlanContext::new(&t, &em, &s, budget);
        let plan = ProspectorProof::default().plan(&ctx).unwrap();
        plan.validate(&t).unwrap();
        assert!(plan.proof_carrying);
        assert!(ctx.plan_cost(&plan) + ctx.proof_overhead() <= budget + 1e-9);
        for e in t.edges() {
            assert!(plan.bandwidth(e) >= 1, "every edge used");
        }
    }

    #[test]
    fn proves_most_of_the_answer_with_generous_budget() {
        let t = balanced(2, 3);
        let em = EnergyModel::mica2();
        let k = 3;
        let s = stable_samples(t.len(), k, 5, 2);
        let ctx = PlanContext::new(&t, &em, &s, 200.0);
        let plan = ProspectorProof::default().plan(&ctx).unwrap();
        let avg = expected_proven(&plan, &t, &s);
        assert!(avg >= (k - 1) as f64, "expected proven {avg} of {k}");
    }

    #[test]
    fn budget_too_small_is_detected() {
        let t = balanced(2, 3);
        let em = EnergyModel::mica2();
        let s = stable_samples(t.len(), 2, 3, 3);
        let ctx = PlanContext::new(&t, &em, &s, 1.0);
        assert!(matches!(
            ProspectorProof::default().plan(&ctx),
            Err(PlanError::BudgetTooSmall { .. })
        ));
    }

    #[test]
    fn proof_execution_matches_lp_expectation_direction() {
        // Tighter budgets must never prove more (on the training samples)
        // than looser budgets.
        let t = balanced(2, 3);
        let em = EnergyModel::mica2();
        let s = stable_samples(t.len(), 3, 4, 4);
        let loose = PlanContext::new(&t, &em, &s, 200.0);
        let tight = PlanContext::new(&t, &em, &s, loose.min_proof_cost() + 2.0);
        let p_loose = ProspectorProof::default().plan(&loose).unwrap();
        let p_tight = ProspectorProof::default().plan(&tight).unwrap();
        let e_loose = expected_proven(&p_loose, &t, &s);
        let e_tight = expected_proven(&p_tight, &t, &s);
        assert!(e_loose + 1e-9 >= e_tight, "loose {e_loose} vs tight {e_tight}");
    }

    #[test]
    fn proof_plan_answers_are_usable() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let k = 3;
        let s = stable_samples(t.len(), k, 5, 5);
        let ctx = PlanContext::new(&t, &em, &s, 100.0);
        let plan = ProspectorProof::default().plan(&ctx).unwrap();
        let out = run_proof_plan(&plan, &t, s.values(0), k);
        assert_eq!(out.answer.len(), k);
        assert!(out.proven <= k);
    }
}
