//! Graceful planner degradation.
//!
//! Long-running experiments must never abort because one planning
//! algorithm hit a bad numeric corner: after a permanent failure shrinks
//! the usable network, an LP can turn degenerate, or a tightened budget
//! can fall below what a proof-carrying plan requires. [`FallbackPlanner`]
//! chains planners from most to least sophisticated and returns the first
//! plan that succeeds, recording through
//! [`Planner::plan_traced`](crate::Planner::plan_traced) which link
//! actually produced the answer.

use crate::error::PlanError;
use crate::greedy::ProspectorGreedy;
use crate::lp_lf::ProspectorLpLf;
use crate::naive::NaiveK;
use crate::plan::Plan;
use crate::planner::{PlanAttempt, PlanContext, PlannedWith, Planner};

/// Tries a chain of planners in order, returning the first success.
///
/// ```
/// use prospector_core::FallbackPlanner;
///
/// // LP with local filtering, degrading to greedy, then to NAIVE-k.
/// let planner = FallbackPlanner::standard();
/// assert_eq!(planner.names(), vec!["lp+lf", "greedy", "naive-k"]);
/// ```
pub struct FallbackPlanner {
    chain: Vec<Box<dyn Planner>>,
}

impl FallbackPlanner {
    /// A chain with a single (primary) planner; add fallbacks with
    /// [`FallbackPlanner::or`].
    pub fn new(primary: Box<dyn Planner>) -> Self {
        FallbackPlanner { chain: vec![primary] }
    }

    /// Appends a planner tried when everything before it failed.
    pub fn or(mut self, next: Box<dyn Planner>) -> Self {
        self.chain.push(next);
        self
    }

    /// The standard degradation chain: `lp+lf` → `greedy` → `naive-k`.
    /// NAIVE-k ignores the budget and never errors, so this chain always
    /// produces *some* plan.
    pub fn standard() -> Self {
        FallbackPlanner::new(Box::new(ProspectorLpLf))
            .or(Box::new(ProspectorGreedy))
            .or(Box::new(NaiveK))
    }

    /// Names of the chained planners, in trial order.
    pub fn names(&self) -> Vec<&'static str> {
        self.chain.iter().map(|p| p.name()).collect()
    }
}

impl Planner for FallbackPlanner {
    fn name(&self) -> &'static str {
        "fallback"
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> Result<Plan, PlanError> {
        self.plan_traced(ctx).map(|t| t.plan)
    }

    fn plan_traced(&self, ctx: &PlanContext<'_>) -> Result<PlannedWith, PlanError> {
        debug_assert!(!self.chain.is_empty(), "fallback chain cannot be empty");
        let mut last_err = None;
        let mut attempts = Vec::new();
        for (fallback_depth, planner) in self.chain.iter().enumerate() {
            match planner.plan_traced(ctx) {
                Ok(traced) => {
                    attempts.extend(traced.attempts);
                    return Ok(PlannedWith {
                        plan: traced.plan,
                        planner: traced.planner,
                        fallback_depth,
                        lp: traced.lp,
                        attempts,
                    });
                }
                Err(e) => {
                    attempts
                        .push(PlanAttempt { planner: planner.name(), error: Some(e.to_string()) });
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("chain has at least one planner"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_data::SampleSet;
    use prospector_net::topology::chain;
    use prospector_net::EnergyModel;

    /// A planner that always fails, for exercising the chain.
    struct AlwaysFails;

    impl Planner for AlwaysFails {
        fn name(&self) -> &'static str {
            "always-fails"
        }
        fn plan(&self, _ctx: &PlanContext<'_>) -> Result<Plan, PlanError> {
            Err(PlanError::UnexpectedLpStatus("synthetic failure"))
        }
    }

    fn samples(n: usize, k: usize) -> SampleSet {
        let mut s = SampleSet::new(n, k, 8);
        s.push((0..n).map(|i| i as f64).collect());
        s
    }

    #[test]
    fn primary_success_reports_depth_zero() {
        let t = chain(5);
        let em = EnergyModel::mica2();
        let s = samples(5, 2);
        let ctx = PlanContext::new(&t, &em, &s, 50.0);
        let p = FallbackPlanner::standard();
        let traced = p.plan_traced(&ctx).unwrap();
        assert_eq!(traced.fallback_depth, 0);
        assert_eq!(traced.planner, "lp+lf");
    }

    #[test]
    fn failure_falls_through_to_next_link() {
        let t = chain(5);
        let em = EnergyModel::mica2();
        let s = samples(5, 2);
        let ctx = PlanContext::new(&t, &em, &s, 50.0);
        let p = FallbackPlanner::new(Box::new(AlwaysFails)).or(Box::new(ProspectorGreedy));
        let traced = p.plan_traced(&ctx).unwrap();
        assert_eq!(traced.fallback_depth, 1);
        assert_eq!(traced.planner, "greedy");
        // plan() agrees with plan_traced().
        assert_eq!(p.plan(&ctx).unwrap().total_bandwidth(), traced.plan.total_bandwidth());
    }

    #[test]
    fn all_failures_surface_last_error() {
        let t = chain(3);
        let em = EnergyModel::mica2();
        let s = samples(3, 1);
        let ctx = PlanContext::new(&t, &em, &s, 50.0);
        let p = FallbackPlanner::new(Box::new(AlwaysFails)).or(Box::new(AlwaysFails));
        assert!(matches!(p.plan_traced(&ctx), Err(PlanError::UnexpectedLpStatus(_))));
    }

    #[test]
    fn standard_chain_survives_empty_window() {
        // No samples at all: LP and greedy both need samples, NAIVE-k does
        // not — the chain must still deliver a plan.
        let t = chain(6);
        let em = EnergyModel::mica2();
        let s = SampleSet::new(6, 2, 8);
        let ctx = PlanContext::new(&t, &em, &s, 50.0);
        let traced = FallbackPlanner::standard().plan_traced(&ctx).unwrap();
        assert_eq!(traced.planner, "naive-k");
        assert_eq!(traced.fallback_depth, 2);
        assert!(traced.plan.num_visited(&t) > 0);
    }

    #[test]
    fn plain_planners_trace_as_themselves() {
        let t = chain(4);
        let em = EnergyModel::mica2();
        let s = samples(4, 2);
        let ctx = PlanContext::new(&t, &em, &s, 50.0);
        let traced = ProspectorGreedy.plan_traced(&ctx).unwrap();
        assert_eq!(traced.planner, "greedy");
        assert_eq!(traced.fallback_depth, 0);
    }
}
