//! Sampling-based plausibility gating: the root-side trust machinery that
//! decides whether a delivered reading is believable.
//!
//! The paper's central asset — the sample window — already predicts every
//! node's next reading; the same window yields a *plausibility band*
//! (`SampleSet::prediction_band`: mean ± z·stddev). This module holds the
//! policy knobs ([`GatePolicy`]) and the per-node trust state machine
//! ([`TrustState`]): a reading outside its band is a **strike** and gets
//! substituted with the window prediction (the backfill estimated-entry
//! convention); `quarantine_after` consecutive strikes quarantine the node
//! (its readings are substituted unconditionally until it earns parole);
//! `parole_after` consecutive in-band deliveries readmit it.
//!
//! The machinery is observation-only by construction: when every reading
//! stays in-band the state machine never leaves its default state, no
//! substitution happens, and the simulation's output is bit-for-bit what
//! it would be with gating disabled.

use std::error::Error;
use std::fmt;

/// Knobs of the plausibility gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatePolicy {
    /// Band half-width in (floored) standard deviations. The default of 8
    /// keeps honest Gaussian readings in-band with overwhelming
    /// probability over any realistic run length while still catching
    /// stuck-at/spike corruptions tens of sigmas out.
    pub z: f64,
    /// Floor on the estimated stddev, so a constant history still
    /// tolerates sensor quantization instead of producing a zero-width
    /// band.
    pub min_sigma: f64,
    /// Minimum finite window readings before a band exists at all; with
    /// fewer the gate abstains (no observation is recorded).
    pub min_window: usize,
    /// Consecutive out-of-band strikes before a node is quarantined.
    pub quarantine_after: u32,
    /// Consecutive in-band deliveries a quarantined node needs to be
    /// readmitted.
    pub parole_after: u32,
}

impl Default for GatePolicy {
    fn default() -> Self {
        GatePolicy { z: 8.0, min_sigma: 1e-3, min_window: 4, quarantine_after: 3, parole_after: 4 }
    }
}

/// A rejected [`GatePolicy`], naming the bad knob.
#[derive(Debug, Clone, PartialEq)]
pub enum GatePolicyError {
    /// `z` must be finite and positive.
    BadZ(f64),
    /// `min_sigma` must be finite and non-negative.
    BadMinSigma(f64),
    /// `min_window` must be at least 2 (one reading has no variance).
    BadMinWindow(usize),
    /// `quarantine_after` must be at least 1.
    ZeroQuarantineAfter,
    /// `parole_after` must be at least 1.
    ZeroParoleAfter,
}

impl fmt::Display for GatePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatePolicyError::BadZ(z) => write!(f, "gate z must be finite and positive, got {z}"),
            GatePolicyError::BadMinSigma(s) => {
                write!(f, "gate min_sigma must be finite and non-negative, got {s}")
            }
            GatePolicyError::BadMinWindow(w) => {
                write!(f, "gate min_window must be at least 2, got {w}")
            }
            GatePolicyError::ZeroQuarantineAfter => {
                write!(f, "gate quarantine_after must be at least 1")
            }
            GatePolicyError::ZeroParoleAfter => write!(f, "gate parole_after must be at least 1"),
        }
    }
}

impl Error for GatePolicyError {}

impl GatePolicy {
    /// Checks every knob, naming the first bad one.
    pub fn validate(&self) -> Result<(), GatePolicyError> {
        if !(self.z.is_finite() && self.z > 0.0) {
            return Err(GatePolicyError::BadZ(self.z));
        }
        if !(self.min_sigma.is_finite() && self.min_sigma >= 0.0) {
            return Err(GatePolicyError::BadMinSigma(self.min_sigma));
        }
        if self.min_window < 2 {
            return Err(GatePolicyError::BadMinWindow(self.min_window));
        }
        if self.quarantine_after == 0 {
            return Err(GatePolicyError::ZeroQuarantineAfter);
        }
        if self.parole_after == 0 {
            return Err(GatePolicyError::ZeroParoleAfter);
        }
        Ok(())
    }
}

/// What one [`TrustState::observe`] call did, for reports and traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrustTransition {
    /// The reading fell outside its band.
    pub flagged: bool,
    /// This observation crossed the strike threshold into quarantine.
    pub quarantined: bool,
    /// This observation completed parole; the node is trusted again.
    pub readmitted: bool,
}

/// Per-node trust state. The default (zero strikes, not quarantined) is a
/// fully trusted node; the state only moves when a band violation is
/// observed, which keeps gating observation-only on honest runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrustState {
    /// Consecutive out-of-band observations (reset by any in-band one).
    pub strikes: u32,
    /// The epoch quarantine began, while it lasts.
    pub quarantined_since: Option<u64>,
    /// Consecutive in-band observations since entering quarantine.
    pub clean_epochs: u32,
}

impl TrustState {
    /// True while the node's readings are substituted unconditionally.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined_since.is_some()
    }

    /// Records one root-side observation of the node at `epoch`: the
    /// reading was either inside its plausibility band (`in_band`) or not.
    /// Callers must invoke this at most once per node per epoch, and only
    /// when a band existed (the gate abstains otherwise).
    pub fn observe(&mut self, in_band: bool, epoch: u64, policy: &GatePolicy) -> TrustTransition {
        let mut t = TrustTransition::default();
        if self.is_quarantined() {
            if in_band {
                self.clean_epochs += 1;
                if self.clean_epochs >= policy.parole_after {
                    *self = TrustState::default();
                    t.readmitted = true;
                }
            } else {
                self.clean_epochs = 0;
                t.flagged = true;
            }
        } else if in_band {
            self.strikes = 0;
        } else {
            self.strikes += 1;
            t.flagged = true;
            if self.strikes >= policy.quarantine_after {
                self.quarantined_since = Some(epoch);
                self.clean_epochs = 0;
                t.quarantined = true;
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> GatePolicy {
        GatePolicy { quarantine_after: 3, parole_after: 2, ..GatePolicy::default() }
    }

    #[test]
    fn default_policy_is_valid() {
        assert_eq!(GatePolicy::default().validate(), Ok(()));
    }

    #[test]
    fn validation_names_the_bad_knob() {
        let cases = [
            (GatePolicy { z: 0.0, ..policy() }, GatePolicyError::BadZ(0.0)),
            (GatePolicy { z: f64::NAN, ..policy() }, GatePolicyError::BadZ(f64::NAN)),
            (GatePolicy { min_sigma: -1.0, ..policy() }, GatePolicyError::BadMinSigma(-1.0)),
            (GatePolicy { min_window: 1, ..policy() }, GatePolicyError::BadMinWindow(1)),
            (GatePolicy { quarantine_after: 0, ..policy() }, GatePolicyError::ZeroQuarantineAfter),
            (GatePolicy { parole_after: 0, ..policy() }, GatePolicyError::ZeroParoleAfter),
        ];
        for (p, want) in cases {
            match (p.validate().unwrap_err(), want) {
                // NaN != NaN, so compare the variant for the NaN case.
                (GatePolicyError::BadZ(a), GatePolicyError::BadZ(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits())
                }
                (got, want) => assert_eq!(got, want),
            }
        }
    }

    #[test]
    fn in_band_observations_leave_the_default_state_untouched() {
        let p = policy();
        let mut s = TrustState::default();
        for epoch in 0..50 {
            assert_eq!(s.observe(true, epoch, &p), TrustTransition::default());
        }
        assert_eq!(s, TrustState::default(), "observation-only on honest runs");
    }

    #[test]
    fn consecutive_strikes_quarantine_but_interrupted_ones_reset() {
        let p = policy();
        let mut s = TrustState::default();
        // Two strikes, then an in-band reading: counter resets, no quarantine.
        assert!(s.observe(false, 0, &p).flagged);
        assert!(s.observe(false, 1, &p).flagged);
        assert_eq!(s.strikes, 2);
        assert!(!s.observe(true, 2, &p).flagged);
        assert_eq!(s.strikes, 0);
        // Three in a row cross the threshold.
        s.observe(false, 3, &p);
        s.observe(false, 4, &p);
        let t = s.observe(false, 5, &p);
        assert!(t.flagged && t.quarantined);
        assert_eq!(s.quarantined_since, Some(5));
        assert!(s.is_quarantined());
    }

    #[test]
    fn parole_requires_consecutive_clean_epochs() {
        let p = policy();
        let mut s =
            TrustState { strikes: p.quarantine_after, quarantined_since: Some(5), clean_epochs: 0 };
        // One clean epoch, then a violation: parole progress resets.
        assert!(!s.observe(true, 6, &p).readmitted);
        assert!(s.observe(false, 7, &p).flagged);
        assert_eq!(s.clean_epochs, 0);
        assert!(s.is_quarantined());
        // Two consecutive clean epochs readmit and fully reset the state.
        assert!(!s.observe(true, 8, &p).readmitted);
        let t = s.observe(true, 9, &p);
        assert!(t.readmitted && !t.flagged && !t.quarantined);
        assert_eq!(s, TrustState::default());
        // A readmitted node starts from zero strikes.
        assert!(!s.observe(false, 10, &p).quarantined);
    }
}
