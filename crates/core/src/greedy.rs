//! `ProspectorGreedy` (Section 3).
//!
//! "As long as the energy cost of the plan constructed so far does not
//! exceed the prescribed budget, the algorithm greedily picks the node
//! (among all nodes not visited by the current plan) for which the top-k
//! appearance count is the largest, and expands the current plan to obtain
//! the value from that node."
//!
//! Chosen values travel all the way to the root (no local filtering); the
//! marginal cost of a node is the per-message cost of newly used path
//! edges plus one per-value payload per hop.

use crate::error::PlanError;
use crate::plan::Plan;
use crate::planner::{PlanContext, Planner};
use prospector_net::NodeId;

/// The greedy sampling-based planner.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProspectorGreedy;

/// Incremental cost tracker for chosen-node (no-local-filtering) plans.
pub(crate) struct ChosenSet {
    pub chosen: Vec<bool>,
    used_edge: Vec<bool>,
    pub cost: f64,
}

impl ChosenSet {
    pub fn new(n: usize) -> Self {
        ChosenSet { chosen: vec![false; n], used_edge: vec![false; n], cost: 0.0 }
    }

    /// Marginal collection cost of adding `node`'s value to the plan.
    pub fn marginal_cost(&self, ctx: &PlanContext<'_>, node: NodeId) -> f64 {
        let mut cost = 0.0;
        for e in ctx.topology.edges_to_root(node) {
            if !self.used_edge[e.index()] {
                cost += ctx.edge_message_cost(e);
            }
            cost += ctx.edge_value_cost(e);
        }
        cost
    }

    /// Adds `node`, updating the running cost.
    pub fn add(&mut self, ctx: &PlanContext<'_>, node: NodeId) {
        self.cost += self.marginal_cost(ctx, node);
        self.chosen[node.index()] = true;
        for e in ctx.topology.edges_to_root(node) {
            self.used_edge[e.index()] = true;
        }
    }

    pub fn is_chosen(&self, node: NodeId) -> bool {
        self.chosen[node.index()]
    }
}

/// Candidate nodes in greedy priority order: by descending answer count,
/// then by depth (cheaper first), then by id. `counts` is the number of
/// window samples in which each node contributed to the answer — the
/// top-k column sums for ordinary queries, or any generalized subset
/// query's counts (Section 3's generalization).
pub(crate) fn candidates_by_count(ctx: &PlanContext<'_>, counts: &[u32]) -> Vec<NodeId> {
    let mut cands: Vec<NodeId> = (0..ctx.topology.len())
        .map(NodeId::from_index)
        .filter(|&n| n != ctx.topology.root() && counts[n.index()] > 0)
        .collect();
    cands.sort_unstable_by_key(|&n| {
        (std::cmp::Reverse(counts[n.index()]), ctx.topology.depth(n), n.0)
    });
    cands
}

/// Greedily adds affordable candidates (in priority order) to an existing
/// chosen set. Shared by the greedy planner, the LP−LF budget filler and
/// the generalized subset planner.
pub(crate) fn greedy_extend(
    set: &mut ChosenSet,
    ctx: &PlanContext<'_>,
    counts: &[u32],
    budget: f64,
) {
    for node in candidates_by_count(ctx, counts) {
        if set.is_chosen(node) {
            continue;
        }
        let marginal = set.marginal_cost(ctx, node);
        if set.cost + marginal <= budget {
            set.add(ctx, node);
        }
    }
}

impl Planner for ProspectorGreedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> Result<Plan, PlanError> {
        if ctx.samples.is_empty() {
            return Err(PlanError::NoSamples);
        }
        let mut set = ChosenSet::new(ctx.topology.len());
        greedy_extend(&mut set, ctx, ctx.samples.column_counts(), ctx.budget_mj);
        Ok(Plan::from_chosen(ctx.topology, &set.chosen))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_data::SampleSet;
    use prospector_net::topology::{chain, star};
    use prospector_net::EnergyModel;

    fn samples_star() -> SampleSet {
        // Node 1 tops every sample; node 2 half; node 3 never.
        let mut s = SampleSet::new(4, 1, 8);
        s.push(vec![0.0, 9.0, 5.0, 1.0]);
        s.push(vec![0.0, 9.0, 5.0, 1.0]);
        s.push(vec![0.0, 1.0, 9.0, 2.0]);
        s
    }

    #[test]
    fn picks_highest_count_first() {
        let t = star(4);
        let em = EnergyModel::mica2();
        let s = samples_star();
        // Budget for exactly one node: message + one value.
        let budget = em.per_message_mj + em.per_value() + 1e-9;
        let ctx = PlanContext::new(&t, &em, &s, budget);
        let plan = ProspectorGreedy.plan(&ctx).unwrap();
        assert!(plan.is_used(NodeId(1)), "node with count 2 chosen");
        assert!(!plan.is_used(NodeId(2)));
        assert!(!plan.is_used(NodeId(3)));
        assert!(ctx.plan_cost(&plan) <= budget);
    }

    #[test]
    fn fills_budget_with_second_best() {
        let t = star(4);
        let em = EnergyModel::mica2();
        let s = samples_star();
        let budget = 2.0 * (em.per_message_mj + em.per_value()) + 1e-9;
        let ctx = PlanContext::new(&t, &em, &s, budget);
        let plan = ProspectorGreedy.plan(&ctx).unwrap();
        assert!(plan.is_used(NodeId(1)) && plan.is_used(NodeId(2)));
        assert!(!plan.is_used(NodeId(3)), "zero-count nodes never chosen");
    }

    #[test]
    fn zero_budget_means_empty_plan() {
        let t = star(4);
        let em = EnergyModel::mica2();
        let s = samples_star();
        let ctx = PlanContext::new(&t, &em, &s, 0.0);
        let plan = ProspectorGreedy.plan(&ctx).unwrap();
        assert_eq!(plan.total_bandwidth(), 0);
    }

    #[test]
    fn shares_path_costs_on_chains() {
        // Chain 0 <- 1 <- 2: choosing node 2 uses both edges; adding node
        // 1 afterwards costs only one extra value (edge already used).
        let t = chain(3);
        let em = EnergyModel::mica2();
        let mut s = SampleSet::new(3, 2, 4);
        s.push(vec![0.0, 5.0, 9.0]);
        let ctx = PlanContext::new(&t, &em, &s, 1e9);
        let mut set = ChosenSet::new(3);
        set.add(&ctx, NodeId(2));
        let m = set.marginal_cost(&ctx, NodeId(1));
        assert!((m - em.per_value()).abs() < 1e-9);
    }

    #[test]
    fn errors_without_samples() {
        let t = star(3);
        let em = EnergyModel::mica2();
        let s = SampleSet::new(3, 1, 4);
        let ctx = PlanContext::new(&t, &em, &s, 100.0);
        assert!(matches!(ProspectorGreedy.plan(&ctx), Err(PlanError::NoSamples)));
    }

    #[test]
    fn respects_budget_exactly() {
        let t = chain(6);
        let em = EnergyModel::mica2();
        let mut s = SampleSet::new(6, 3, 4);
        s.push(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        for budget in [0.5, 2.0, 5.0, 10.0, 50.0] {
            let ctx = PlanContext::new(&t, &em, &s, budget);
            let plan = ProspectorGreedy.plan(&ctx).unwrap();
            assert!(
                ctx.plan_cost(&plan) <= budget + 1e-9,
                "budget {budget} exceeded: {}",
                ctx.plan_cost(&plan)
            );
        }
    }
}
