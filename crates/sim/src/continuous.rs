//! The continuous-query delta-collection protocol.
//!
//! In continuous mode the network stops re-collecting the answer from
//! scratch every epoch. Each node remembers the last value it shipped
//! ([`ContinuousState::last_shipped`]) and the last k-th threshold the
//! root broadcast; a **delta epoch** ships only readings that moved
//! beyond the tolerance or crossed the threshold, and the root patches
//! its cached view instead of re-merging the world. Steady state costs
//! O(changes), not O(n).
//!
//! **Silence is a claim.** A subtree that sends nothing asserts "nothing
//! changed", and the protocol must make that claim trustworthy under
//! loss:
//!
//! * Every alive root child sends a per-epoch **change beacon** (a
//!   header-only message) even when it has no deltas. A lost beacon
//!   means the root cannot tell silence from loss, so it forces a full
//!   refresh next epoch (`full_refresh` reason `"loss"`).
//! * Deltas travel hop-by-hop under the same ARQ policy as classic
//!   collection. A hop that exhausts its retries keeps the batch in the
//!   child's **custody buffer** and re-forwards it next delta epoch —
//!   a lost delta is delayed, never silently dropped. The machine-checked
//!   invariant: for every alive node, either the root's view matches the
//!   node's last shipped value, or a custody entry for that node exists
//!   somewhere in the tree ([`ContinuousState::custody_invariant_holds`]).
//! * Custody held *at* a node dies with it, so node deaths force a full
//!   refresh (`"repair"`), as does the configured refresh period
//!   (`"period"`) and the first continuous epoch (`"first"`).
//!
//! Full refreshes run the classic reliable-or-ARQ collection with full
//! forwarding and optionally rebuild one q-digest per root-child subtree
//! ([`prospector_core::QDigest`]) — the planner-facing quantile summary
//! whose upper bound (plus the tolerance) also bounds what a silent
//! subtree could contribute.
//!
//! The root-side cached answer is maintained incrementally in an ordered
//! set ([`ContinuousState::answer`]); `recompute_answer` re-sorts from
//! scratch so the differential harness can prove patch ≡ re-merge on
//! every epoch.

use crate::trace::charge;
use prospector_core::{QDigest, SketchPrecision};
use prospector_data::Reading;
use prospector_net::{
    link_rng, ArqPolicy, EnergyMeter, EnergyModel, FailureModel, LinkAttempts, NodeId, Phase,
    Topology,
};
use prospector_obs::{TraceEvent, Tracer};
use std::collections::BTreeSet;

/// One in-flight changed reading: `origin` reported `value` at `epoch`.
/// Later epochs supersede earlier ones wherever two entries for the same
/// origin meet (they travel the same root-ward path, so they do meet).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delta {
    pub origin: NodeId,
    pub epoch: u64,
    pub value: f64,
}

/// Monotone key: orders f64 descending (IEEE total order), ties by node
/// ascending — exactly `Reading::rank_cmp`.
fn desc_key(v: f64) -> u64 {
    let b = v.to_bits();
    !(if b >> 63 == 1 { !b } else { b | (1 << 63) })
}

/// Root + node state of the continuous protocol.
#[derive(Debug, Clone)]
pub struct ContinuousState {
    /// Root's belief: the last *reported* (raw, pre-gate) value applied
    /// per node; `-inf` for dead or never-heard nodes.
    view: Vec<f64>,
    /// Node-side: the last value each node handed into the delta
    /// pipeline (or delivered in a refresh); `-inf` before the first.
    last_shipped: Vec<f64>,
    /// Root's post-gate effective value per node (`-inf` = absent); the
    /// answer is the top k of this vector.
    eff: Vec<f64>,
    /// Incremental answer index over `eff`: `(desc_key(eff), node)`.
    /// Contains exactly the nodes with finite `eff`. Rebuilt from `eff`
    /// on resume, never serialized.
    ordered: BTreeSet<(u64, u32)>,
    /// Per holder node: delta batches awaiting a working uplink.
    custody: Vec<Vec<Delta>>,
    /// The k-th threshold as last broadcast (`-inf` before the first).
    threshold: f64,
    /// Epoch of the last full refresh (sweeps count), `None` before any.
    last_refresh: Option<u64>,
    /// Silence can no longer be trusted (lost beacon or exhausted retry
    /// escalation): the next query epoch must fully refresh.
    force_refresh: bool,
    /// Per root-child subtree q-digest from the last refresh, sorted by
    /// child node id. Empty when the policy has no sketch.
    sketches: Vec<(NodeId, QDigest)>,
}

impl ContinuousState {
    pub fn new(n: usize) -> ContinuousState {
        ContinuousState {
            view: vec![f64::NEG_INFINITY; n],
            last_shipped: vec![f64::NEG_INFINITY; n],
            eff: vec![f64::NEG_INFINITY; n],
            ordered: BTreeSet::new(),
            custody: vec![Vec::new(); n],
            threshold: f64::NEG_INFINITY,
            last_refresh: None,
            force_refresh: false,
            sketches: Vec::new(),
        }
    }

    /// Rebuilds a state from checkpointed parts (the ordered index is
    /// derived from `eff`).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        view: Vec<f64>,
        last_shipped: Vec<f64>,
        eff: Vec<f64>,
        custody: Vec<Vec<Delta>>,
        threshold: f64,
        last_refresh: Option<u64>,
        force_refresh: bool,
        sketches: Vec<(NodeId, QDigest)>,
    ) -> ContinuousState {
        let ordered = eff
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_finite())
            .map(|(i, &v)| (desc_key(v), i as u32))
            .collect();
        ContinuousState {
            view,
            last_shipped,
            eff,
            ordered,
            custody,
            threshold,
            last_refresh,
            force_refresh,
            sketches,
        }
    }

    pub fn view(&self) -> &[f64] {
        &self.view
    }

    pub fn last_shipped(&self) -> &[f64] {
        &self.last_shipped
    }

    pub fn eff(&self) -> &[f64] {
        &self.eff
    }

    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    pub fn last_refresh(&self) -> Option<u64> {
        self.last_refresh
    }

    pub fn force_refresh(&self) -> bool {
        self.force_refresh
    }

    /// All custody entries, by holder (for checkpointing and tests).
    pub fn custody(&self) -> &[Vec<Delta>] {
        &self.custody
    }

    /// The per-root-child q-digests from the last refresh.
    pub fn sketches(&self) -> &[(NodeId, QDigest)] {
        &self.sketches
    }

    /// The subtree summary for root child `c`, if one was built.
    pub fn subtree_sketch(&self, c: NodeId) -> Option<&QDigest> {
        self.sketches.iter().find(|(n, _)| *n == c).map(|(_, d)| d)
    }

    /// Upper bound on what a *silent* subtree under root child `c` could
    /// currently contribute: the sketch's value upper bound plus the
    /// delta tolerance (a silent node is within tolerance of what it
    /// last shipped, which the refresh-time sketch summarizes).
    pub fn silent_subtree_bound(&self, c: NodeId, tolerance: f64) -> Option<f64> {
        self.subtree_sketch(c).and_then(|d| d.upper_bound()).map(|b| b + tolerance)
    }

    pub(crate) fn set_threshold(&mut self, tau: f64) {
        self.threshold = tau;
    }

    pub(crate) fn set_last_refresh(&mut self, epoch: u64) {
        self.last_refresh = Some(epoch);
    }

    pub(crate) fn set_force_refresh(&mut self, v: bool) {
        self.force_refresh = v;
    }

    /// Sets node `i`'s effective value, maintaining the ordered index.
    /// `-inf` (or any non-finite) clears the node from the answer.
    pub(crate) fn set_eff(&mut self, i: usize, v: f64) {
        let old = self.eff[i];
        if old.to_bits() == v.to_bits() {
            return;
        }
        if old.is_finite() {
            self.ordered.remove(&(desc_key(old), i as u32));
        }
        if v.is_finite() {
            self.ordered.insert((desc_key(v), i as u32));
        }
        self.eff[i] = v;
    }

    /// The cached answer: top `k` of the incrementally-patched index.
    pub fn answer(&self, k: usize) -> Vec<Reading> {
        self.ordered
            .iter()
            .take(k)
            .map(|&(key, node)| {
                debug_assert_eq!(desc_key(self.eff[node as usize]), key);
                Reading { node: NodeId(node), value: self.eff[node as usize] }
            })
            .collect()
    }

    /// The answer recomputed from scratch (full sort of `eff`) — the
    /// "re-merge the world" reference the differential harness compares
    /// [`ContinuousState::answer`] against.
    pub fn recompute_answer(&self, k: usize) -> Vec<Reading> {
        let mut all: Vec<Reading> = self
            .eff
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_finite())
            .map(|(i, &v)| Reading { node: NodeId::from_index(i), value: v })
            .collect();
        all.sort_unstable_by(Reading::rank_cmp);
        all.truncate(k);
        all
    }

    /// Serializes to the checkpoint wire image (sketches travel in their
    /// byte-deterministic encoded form).
    pub fn to_image(&self) -> prospector_ckpt::ContinuousImage {
        prospector_ckpt::ContinuousImage {
            view: self.view.clone(),
            last_shipped: self.last_shipped.clone(),
            eff: self.eff.clone(),
            threshold: self.threshold,
            last_refresh: self.last_refresh,
            force_refresh: self.force_refresh,
            custody: self
                .custody
                .iter()
                .map(|held| held.iter().map(|d| (d.origin.0, d.epoch, d.value)).collect())
                .collect(),
            sketches: self.sketches.iter().map(|(c, d)| (c.0, d.encode())).collect(),
        }
    }

    /// Rebuilds from a checkpoint image; fails if an encoded sketch does
    /// not decode.
    pub fn from_image(img: prospector_ckpt::ContinuousImage) -> Result<ContinuousState, String> {
        let custody = img
            .custody
            .into_iter()
            .map(|held| {
                let mut held: Vec<Delta> = held
                    .into_iter()
                    .map(|(origin, epoch, value)| Delta { origin: NodeId(origin), epoch, value })
                    .collect();
                held.sort_by_key(|d| d.origin);
                held
            })
            .collect();
        let sketches = img
            .sketches
            .into_iter()
            .map(|(c, bytes)| {
                QDigest::decode(&bytes)
                    .map(|d| (NodeId(c), d))
                    .map_err(|e| format!("sketch for node {c} does not decode: {e}"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ContinuousState::from_parts(
            img.view,
            img.last_shipped,
            img.eff,
            custody,
            img.threshold,
            img.last_refresh,
            img.force_refresh,
            sketches,
        ))
    }

    /// The silence-under-loss invariant: for every alive non-root node,
    /// either the root's view matches the node's last shipped value
    /// bit-for-bit, or a custody entry for that node is waiting somewhere
    /// in the tree (a lost delta is delayed, never misread as "no
    /// change"). Trivially true under zero loss.
    pub fn custody_invariant_holds(&self, alive: &[bool], root: NodeId) -> bool {
        (0..self.view.len()).all(|i| {
            if !alive[i] || i == root.index() {
                return true;
            }
            self.view[i].to_bits() == self.last_shipped[i].to_bits()
                || self.custody.iter().any(|held| held.iter().any(|d| d.origin.index() == i))
        })
    }

    /// Drops all protocol state touching `deaths`: their view/eff/custody
    /// entries, custody held *at* them (which dies with the node — the
    /// reason deaths force a refresh), and their subtree sketches.
    pub(crate) fn on_deaths(&mut self, deaths: &[NodeId]) {
        for &d in deaths {
            let i = d.index();
            self.view[i] = f64::NEG_INFINITY;
            self.last_shipped[i] = f64::NEG_INFINITY;
            self.set_eff(i, f64::NEG_INFINITY);
            self.custody[i].clear();
            self.sketches.retain(|(c, _)| *c != d);
        }
        for held in &mut self.custody {
            held.retain(|e| deaths.iter().all(|d| *d != e.origin));
        }
    }
}

/// What a delta epoch's transport did.
#[derive(Debug, Clone)]
pub struct DeltaOutcome {
    /// Deltas applied to the root's view, sorted by origin node.
    pub applied: Vec<(NodeId, f64)>,
    /// Active edges whose batch (or beacon) was lost, in edge order.
    pub lost_edges: Vec<NodeId>,
    /// Transmissions beyond each active edge's first attempt, summed.
    pub retransmissions: u32,
    /// Fraction of active edges whose message was delivered (1.0 when no
    /// edge was active).
    pub delivered_fraction: f64,
    /// Radio transmissions this epoch: every attempt plus every ack.
    pub messages: u32,
    /// A root child's beacon was lost: silence cannot be trusted, the
    /// caller must force a refresh.
    pub beacon_lost: bool,
}

/// Per-edge transport record, filled in post order and charged in edge
/// order (matching `execute_plan_arq_traced`'s accounting exactly).
struct EdgeSend {
    sent: u32,
    link: LinkAttempts,
}

fn attempt(
    failures: Option<&FailureModel>,
    arq: &ArqPolicy,
    seed: u64,
    child: NodeId,
) -> LinkAttempts {
    match failures {
        Some(f) if !f.is_trivial() => {
            let mut rng = link_rng(seed, child);
            arq.attempt_delivery(f, child, &mut rng)
        }
        _ => LinkAttempts { attempts: 1, delivered: true, backoff_mj: 0.0 },
    }
}

/// Merges `incoming` into `held` with latest-wins per origin, keeping
/// the result sorted by origin.
fn merge_deltas(held: &mut Vec<Delta>, incoming: Vec<Delta>) {
    for d in incoming {
        match held.binary_search_by_key(&d.origin, |e| e.origin) {
            Ok(i) => {
                if d.epoch >= held[i].epoch {
                    held[i] = d;
                }
            }
            Err(i) => held.insert(i, d),
        }
    }
}

/// Runs one delta epoch: generates fresh deltas against the tolerance
/// and the last broadcast threshold, routes custody + fresh batches up
/// the tree under ARQ (charged exactly like classic collection: first
/// attempt under [`Phase::Collection`], retries + backoff + ack under
/// [`Phase::Retransmit`], in [`Topology::edges`] order), applies what
/// reaches the root to the view, and records per-root-child beacons.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_delta_epoch(
    state: &mut ContinuousState,
    topology: &Topology,
    alive: &[bool],
    energy: &EnergyModel,
    values: &[f64],
    tolerance: f64,
    failures: Option<&FailureModel>,
    arq: &ArqPolicy,
    seed: u64,
    epoch: u64,
    meter: &mut EnergyMeter,
    tracer: &mut dyn Tracer,
) -> DeltaOutcome {
    let n = topology.len();
    let root = topology.root();

    // Fresh deltas enter the pipeline at their origin's custody buffer,
    // superseding any older stuck entry for the same origin.
    for i in 0..n {
        let u = NodeId::from_index(i);
        if u == root || !alive[i] {
            continue;
        }
        let v = values[i];
        let last = state.last_shipped[i];
        let crossed = (v >= state.threshold) != (last >= state.threshold);
        if (v - last).abs() > tolerance || crossed {
            merge_deltas(&mut state.custody[i], vec![Delta { origin: u, epoch, value: v }]);
            state.last_shipped[i] = v;
        }
    }

    // Transport: children before parents, so a batch can cross several
    // hops in one epoch when every hop delivers. Failed hops keep the
    // batch in the child's custody for next epoch.
    let mut sends: Vec<Option<EdgeSend>> = (0..n).map(|_| None).collect();
    let mut inbox: Vec<Vec<Delta>> = vec![Vec::new(); n];
    let mut root_inbox: Vec<Delta> = Vec::new();
    let mut beacon_lost = false;
    for &u in topology.post_order() {
        if u == root || !alive[u.index()] {
            continue;
        }
        let mut payload = std::mem::take(&mut state.custody[u.index()]);
        merge_deltas(&mut payload, std::mem::take(&mut inbox[u.index()]));
        let parent = topology.parent(u).expect("non-root node has a parent");
        let is_beacon_edge = parent == root;
        if payload.is_empty() && !is_beacon_edge {
            continue; // a silent interior edge sends nothing — the saving
        }
        let link = attempt(failures, arq, seed, u);
        sends[u.index()] = Some(EdgeSend { sent: payload.len() as u32, link });
        if link.delivered {
            if is_beacon_edge {
                root_inbox.extend(payload);
            } else {
                merge_deltas(&mut inbox[parent.index()], payload);
            }
        } else {
            state.custody[u.index()] = payload;
            if is_beacon_edge {
                beacon_lost = true;
            }
        }
    }

    // Charges and delivery events in edge order, mirroring
    // `execute_plan_arq_traced` byte-for-byte under zero loss.
    let mut retransmissions = 0u32;
    let mut messages = 0u32;
    let mut lost_edges = Vec::new();
    let mut active = 0usize;
    let mut delivered_cnt = 0usize;
    for e in topology.edges() {
        let Some(send) = &sends[e.index()] else { continue };
        active += 1;
        let msg = energy.unicast_values(send.sent as usize);
        charge(meter, tracer, e, Phase::Collection, msg);
        let link = send.link;
        messages += link.attempts;
        let acked = link.attempts > 1 && link.delivered;
        if link.attempts > 1 {
            retransmissions += link.retries();
            charge(
                meter,
                tracer,
                e,
                Phase::Retransmit,
                link.retries() as f64 * msg + link.backoff_mj,
            );
            if link.delivered {
                charge(meter, tracer, e, Phase::Retransmit, energy.per_message_mj);
                messages += 1;
            }
        }
        if link.delivered {
            delivered_cnt += 1;
        } else {
            lost_edges.push(e);
        }
        if tracer.enabled() {
            tracer.record(TraceEvent::LinkDelivery {
                child: e.0,
                sent_values: send.sent,
                attempts: link.attempts,
                delivered: link.delivered,
                acked,
                backoff_mj: link.backoff_mj,
            });
        }
    }

    // Root applies what arrived (single path per origin, but dedupe by
    // epoch anyway) in origin order; its own reading is free.
    let mut final_in: Vec<Delta> = Vec::new();
    merge_deltas(&mut final_in, root_inbox);
    let mut applied = Vec::with_capacity(final_in.len());
    for d in final_in {
        state.view[d.origin.index()] = d.value;
        applied.push((d.origin, d.value));
        if tracer.enabled() {
            tracer.record(TraceEvent::DeltaShipped { node: d.origin.0, value: d.value });
        }
    }
    state.view[root.index()] = values[root.index()];
    state.last_shipped[root.index()] = values[root.index()];

    let delivered_fraction = if active == 0 { 1.0 } else { delivered_cnt as f64 / active as f64 };
    DeltaOutcome { applied, lost_edges, retransmissions, delivered_fraction, messages, beacon_lost }
}

/// What a full-refresh collection did.
#[derive(Debug, Clone)]
pub struct RefreshOutcome {
    /// Per node: its value survived every hop to the root this epoch
    /// (the root itself is always true).
    pub delivered: Vec<bool>,
    /// Used edges whose batch was lost, in edge order.
    pub lost_edges: Vec<NodeId>,
    /// Transmissions beyond each edge's first attempt, summed.
    pub retransmissions: u32,
    /// Fraction of alive non-root nodes whose value reached the root.
    pub delivered_fraction: f64,
    /// Radio transmissions this epoch (triggers + attempts + acks).
    pub messages: u32,
}

/// Runs a full from-scratch refresh: a trigger broadcast wakes the tree,
/// every alive node forwards its *entire* merged batch (no bandwidth
/// truncation — refreshes re-seed `last_shipped` for every delivered
/// node, so they must carry everything), and delivered values overwrite
/// the root's view and each node's last-shipped record. Optionally
/// rebuilds per-root-child q-digests, charging their encoded bytes on
/// the child's uplink.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_refresh_epoch(
    state: &mut ContinuousState,
    topology: &Topology,
    alive: &[bool],
    energy: &EnergyModel,
    values: &[f64],
    sketch: Option<SketchPrecision>,
    failures: Option<&FailureModel>,
    arq: &ArqPolicy,
    seed: u64,
    meter: &mut EnergyMeter,
    tracer: &mut dyn Tracer,
) -> RefreshOutcome {
    let n = topology.len();
    let root = topology.root();
    let mut messages = 0u32;

    // Trigger: every alive node with an alive child broadcasts, exactly
    // like a full-sweep plan's trigger phase.
    for i in 0..n {
        let u = NodeId::from_index(i);
        if !alive[i] {
            continue;
        }
        if topology.children(u).iter().any(|&c| alive[c.index()]) {
            charge(meter, tracer, u, Phase::Trigger, energy.broadcast());
            messages += 1;
        }
    }

    // Full-forwarding collection with per-hop ARQ.
    let mut outbox: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n];
    let mut sends: Vec<Option<EdgeSend>> = (0..n).map(|_| None).collect();
    for &u in topology.post_order() {
        if u == root || !alive[u.index()] {
            continue;
        }
        let mut batch = vec![(u, values[u.index()])];
        for &c in topology.children(u) {
            batch.append(&mut outbox[c.index()]);
        }
        let link = attempt(failures, arq, seed, u);
        sends[u.index()] = Some(EdgeSend { sent: batch.len() as u32, link });
        if link.delivered {
            outbox[u.index()] = batch;
        }
    }

    let mut retransmissions = 0u32;
    let mut lost_edges = Vec::new();
    for e in topology.edges() {
        let Some(send) = &sends[e.index()] else { continue };
        let msg = energy.unicast_values(send.sent as usize);
        charge(meter, tracer, e, Phase::Collection, msg);
        let link = send.link;
        messages += link.attempts;
        let acked = link.attempts > 1 && link.delivered;
        if link.attempts > 1 {
            retransmissions += link.retries();
            charge(
                meter,
                tracer,
                e,
                Phase::Retransmit,
                link.retries() as f64 * msg + link.backoff_mj,
            );
            if link.delivered {
                charge(meter, tracer, e, Phase::Retransmit, energy.per_message_mj);
                messages += 1;
            }
        }
        if !link.delivered {
            lost_edges.push(e);
        }
        if tracer.enabled() {
            tracer.record(TraceEvent::LinkDelivery {
                child: e.0,
                sent_values: send.sent,
                attempts: link.attempts,
                delivered: link.delivered,
                acked,
                backoff_mj: link.backoff_mj,
            });
        }
    }

    // A node's value reached the root iff every hop on its path
    // delivered (parents-before-children walk, as in the lossy executor).
    let mut delivered = vec![false; n];
    delivered[root.index()] = true;
    let mut used = 0usize;
    let mut covered = 0usize;
    for &u in topology.post_order().iter().rev() {
        let Some(send) = &sends[u.index()] else { continue };
        let parent = topology.parent(u).expect("non-root edge has a parent");
        delivered[u.index()] = send.link.delivered && delivered[parent.index()];
        used += 1;
        covered += delivered[u.index()] as usize;
    }
    let delivered_fraction = if used == 0 { 1.0 } else { covered as f64 / used as f64 };

    apply_refresh(
        state,
        topology,
        alive,
        values,
        &delivered,
        sketch,
        energy,
        meter,
        tracer,
        &mut messages,
    );

    RefreshOutcome { delivered, lost_edges, retransmissions, delivered_fraction, messages }
}

/// Applies a refresh's delivered values to the protocol state: view and
/// last-shipped overwrite, custody superseding, and sketch rebuild (with
/// per-root-child byte charges). Shared by the ARQ refresh above and the
/// reliable exploration sweep (which delivers everything).
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_refresh(
    state: &mut ContinuousState,
    topology: &Topology,
    alive: &[bool],
    values: &[f64],
    delivered: &[bool],
    sketch: Option<SketchPrecision>,
    energy: &EnergyModel,
    meter: &mut EnergyMeter,
    tracer: &mut dyn Tracer,
    messages: &mut u32,
) {
    let n = topology.len();
    for i in 0..n {
        if alive[i] && delivered[i] {
            state.view[i] = values[i];
            state.last_shipped[i] = values[i];
        }
    }
    // Custody entries for delivered origins are superseded by the fresh
    // refresh value (custody epochs always predate this epoch); entries
    // for missed origins stay queued.
    for held in &mut state.custody {
        held.retain(|d| !(alive[d.origin.index()] && delivered[d.origin.index()]));
    }

    if let Some(prec) = sketch {
        // One q-digest per alive root-child subtree over the values that
        // actually arrived; its encoded bytes ride the child's uplink.
        let root = topology.root();
        let owner = subtree_owner(topology, root);
        state.sketches.clear();
        for &c in topology.children(root) {
            if !alive[c.index()] {
                continue;
            }
            let vals: Vec<f64> = (0..n)
                .filter(|&i| alive[i] && delivered[i] && owner[i] == Some(c))
                .map(|i| values[i])
                .collect();
            let digest = QDigest::from_values(prec, &vals);
            let bytes = digest.encode().len();
            charge(meter, tracer, c, Phase::Collection, energy.per_byte_mj * bytes as f64);
            *messages += 1;
            state.sketches.push((c, digest));
        }
    }
}

/// For each node, the root child whose subtree contains it (`None` for
/// the root itself).
fn subtree_owner(topology: &Topology, root: NodeId) -> Vec<Option<NodeId>> {
    let mut owner: Vec<Option<NodeId>> = vec![None; topology.len()];
    // Parents precede children in reverse post order.
    for &u in topology.post_order().iter().rev() {
        if u == root {
            continue;
        }
        let p = topology.parent(u).expect("non-root node has a parent");
        owner[u.index()] = if p == root { Some(u) } else { owner[p.index()] };
    }
    owner
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_net::topology::{balanced, chain};
    use prospector_obs::NullTracer;

    fn quiet_state(n: usize, values: &[f64]) -> ContinuousState {
        let mut s = ContinuousState::new(n);
        s.view.copy_from_slice(values);
        s.last_shipped.copy_from_slice(values);
        s
    }

    #[test]
    fn quiet_delta_epoch_ships_only_beacons() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let values: Vec<f64> = (0..t.len()).map(|i| 50.0 - i as f64).collect();
        let mut state = quiet_state(t.len(), &values);
        let alive = vec![true; t.len()];
        let mut meter = EnergyMeter::new(t.len());
        let out = run_delta_epoch(
            &mut state,
            &t,
            &alive,
            &em,
            &values,
            0.0,
            None,
            &ArqPolicy::default(),
            1,
            5,
            &mut meter,
            &mut NullTracer,
        );
        assert!(out.applied.is_empty());
        assert_eq!(out.messages, t.children(t.root()).len() as u32, "one beacon per root child");
        assert!(!out.beacon_lost);
        // Beacons are header-only messages.
        let expect = t.children(t.root()).len() as f64 * em.unicast_values(0);
        assert!((meter.total() - expect).abs() < 1e-12);
    }

    #[test]
    fn changed_value_ships_and_patches_view() {
        let t = chain(3); // 0 <- 1 <- 2
        let em = EnergyModel::mica2();
        let base = vec![10.0, 9.0, 8.0];
        let mut state = quiet_state(3, &base);
        let alive = vec![true; 3];
        let mut values = base.clone();
        values[2] = 20.0;
        let mut meter = EnergyMeter::new(3);
        let out = run_delta_epoch(
            &mut state,
            &t,
            &alive,
            &em,
            &values,
            0.5,
            None,
            &ArqPolicy::default(),
            1,
            7,
            &mut meter,
            &mut NullTracer,
        );
        assert_eq!(out.applied, vec![(NodeId(2), 20.0)]);
        assert_eq!(state.view()[2], 20.0);
        assert_eq!(state.last_shipped()[2], 20.0);
        assert!(state.custody_invariant_holds(&alive, t.root()));
    }

    #[test]
    fn lost_delta_stays_in_custody_and_reships() {
        let t = chain(3); // 0 <- 1 <- 2; fail edge 2 only
        let em = EnergyModel::mica2();
        let base = vec![10.0, 9.0, 8.0];
        let mut state = quiet_state(3, &base);
        let alive = vec![true; 3];
        let mut values = base.clone();
        values[2] = 20.0;
        let mut probs = vec![0.0; 3];
        probs[2] = 1.0;
        let fm = FailureModel::per_edge(3, probs, 0.0).unwrap();
        let arq = ArqPolicy { max_retries: 1, backoff: prospector_net::Backoff::none() };
        let mut meter = EnergyMeter::new(3);
        let out = run_delta_epoch(
            &mut state,
            &t,
            &alive,
            &em,
            &values,
            0.5,
            Some(&fm),
            &arq,
            3,
            7,
            &mut meter,
            &mut NullTracer,
        );
        // The delta is stuck at node 2; the view still holds the old
        // value, but custody records the truth — silence is not claimed.
        assert!(out.applied.is_empty());
        assert_eq!(out.lost_edges, vec![NodeId(2)]);
        assert_eq!(state.view()[2], 8.0);
        assert_eq!(state.last_shipped()[2], 20.0);
        assert_eq!(state.custody()[2], vec![Delta { origin: NodeId(2), epoch: 7, value: 20.0 }]);
        assert!(state.custody_invariant_holds(&alive, t.root()));
        assert!(!out.beacon_lost, "the beacon edge (node 1) still delivered");

        // Next epoch the link works: the held delta is re-forwarded
        // without the node re-reporting anything.
        let fm_ok = FailureModel::none(3);
        let mut meter2 = EnergyMeter::new(3);
        let out2 = run_delta_epoch(
            &mut state,
            &t,
            &alive,
            &em,
            &values,
            0.5,
            Some(&fm_ok),
            &arq,
            4,
            8,
            &mut meter2,
            &mut NullTracer,
        );
        assert_eq!(out2.applied, vec![(NodeId(2), 20.0)]);
        assert_eq!(state.view()[2], 20.0);
        assert!(state.custody()[2].is_empty());
    }

    #[test]
    fn lost_root_beacon_is_flagged() {
        let t = chain(2); // 0 <- 1, the only edge is a beacon edge
        let em = EnergyModel::mica2();
        let base = vec![5.0, 4.0];
        let mut state = quiet_state(2, &base);
        let alive = vec![true; 2];
        let fm = FailureModel::uniform(2, 1.0, 0.0);
        let arq = ArqPolicy { max_retries: 0, backoff: prospector_net::Backoff::none() };
        let mut meter = EnergyMeter::new(2);
        let out = run_delta_epoch(
            &mut state,
            &t,
            &alive,
            &em,
            &base,
            0.5,
            Some(&fm),
            &arq,
            9,
            3,
            &mut meter,
            &mut NullTracer,
        );
        assert!(out.beacon_lost, "a silent epoch with a lost beacon is untrustworthy");
    }

    #[test]
    fn refresh_reseeds_everything_and_builds_sketches() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let values: Vec<f64> = (0..t.len()).map(|i| 30.0 + i as f64).collect();
        let mut state = ContinuousState::new(t.len());
        let alive = vec![true; t.len()];
        let prec = SketchPrecision { depth: 10, compression: 16, lo: 0.0, hi: 100.0 };
        let mut meter = EnergyMeter::new(t.len());
        let out = run_refresh_epoch(
            &mut state,
            &t,
            &alive,
            &em,
            &values,
            Some(prec),
            None,
            &ArqPolicy::default(),
            11,
            &mut meter,
            &mut NullTracer,
        );
        assert!(out.delivered.iter().all(|&d| d));
        assert_eq!(out.delivered_fraction, 1.0);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(state.view()[i], v);
            assert_eq!(state.last_shipped()[i], v);
        }
        assert_eq!(state.sketches().len(), t.children(t.root()).len());
        for &c in t.children(t.root()) {
            let d = state.subtree_sketch(c).unwrap();
            assert_eq!(d.total(), 4, "each subtree holds 4 nodes");
            assert!(state.silent_subtree_bound(c, 0.5).unwrap() >= values[c.index()]);
        }
    }

    #[test]
    fn incremental_answer_matches_recompute() {
        let mut s = ContinuousState::new(6);
        let updates =
            [(1, 5.0), (2, 9.0), (3, 7.0), (1, 1.0), (4, 9.0), (2, f64::NEG_INFINITY), (5, 8.5)];
        for &(i, v) in &updates {
            s.set_eff(i, v);
            for k in 1..=6 {
                assert_eq!(s.answer(k), s.recompute_answer(k), "after ({i}, {v}), k={k}");
            }
        }
    }

    #[test]
    fn deaths_scrub_state_everywhere() {
        let t = chain(4); // 0 <- 1 <- 2 <- 3
        let mut s = quiet_state(4, &[4.0, 3.0, 2.0, 1.0]);
        for i in 0..4 {
            s.set_eff(i, s.view[i]);
        }
        // A custody entry for node 3 held at node 2, plus one at node 3.
        s.custody[2].push(Delta { origin: NodeId(3), epoch: 1, value: 9.0 });
        s.custody[3].push(Delta { origin: NodeId(3), epoch: 2, value: 9.5 });
        s.on_deaths(&[NodeId(3)]);
        assert_eq!(s.view()[3], f64::NEG_INFINITY);
        assert!(s.custody().iter().all(|h| h.is_empty()));
        assert!(!s.answer(4).iter().any(|r| r.node == NodeId(3)));
        let alive = [true, true, true, false];
        assert!(s.custody_invariant_holds(&alive, t.root()));
    }
}
