//! Adaptive re-sampling (Section 4.4, "Re-sampling").
//!
//! "When to re-sample depends on how confident we are in the accuracy of
//! the current model for predicting top k. This confidence can be measured
//! by periodically running ProspectorProof or ProspectorExact (instead of
//! Prospectors without proofs), which can tell us the accuracy of our
//! approximate solutions. If the accuracy is not acceptable, the rate of
//! re-sampling is increased."
//!
//! The loop here runs an approximate plan epoch by epoch; every
//! `audit_every` epochs it spends a two-phase **exact** execution (whose
//! answer is ground truth *and* doubles as a fresh sample) to measure the
//! current plan's real accuracy, then adapts the sampling period: halve it
//! when accuracy is below the floor, lengthen it when comfortably above.

use crate::exact_exec::run_exact;
use crate::exec::{execute_plan, execute_plan_traced};
use crate::runner::{charge_repair, mask_dead_edges, mask_dead_values};
use crate::trace::charge;
use prospector_core::{exact::ExactConfig, Plan, PlanContext, PlanError, Planner};
use prospector_data::{SampleSet, ValueSource};
use prospector_net::{EnergyMeter, EnergyModel, FaultSchedule, NodeId, Phase, Topology};
use prospector_obs::{NullTracer, TraceEvent, Tracer};

/// Configuration of the adaptive loop.
pub struct AdaptiveConfig {
    /// Top-k parameter.
    pub k: usize,
    /// Sample-window capacity.
    pub window: usize,
    /// Budget per approximate collection.
    pub budget_mj: f64,
    /// Epochs of mandatory initial sampling.
    pub warmup: u64,
    /// Run the exact audit every this many epochs.
    pub audit_every: u64,
    /// Adapt downward when measured accuracy falls below this.
    pub accuracy_floor: f64,
    /// Initial / minimum / maximum sampling period.
    pub initial_period: u64,
    pub min_period: u64,
    pub max_period: u64,
    /// Phase-1 budget multiplier (over the minimum proof cost) for audits.
    pub audit_budget_factor: f64,
    /// Scheduled permanent failures; the loop repairs the tree and keeps
    /// going when they fire.
    pub faults: FaultSchedule,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            k: 5,
            window: 16,
            budget_mj: 30.0,
            warmup: 8,
            audit_every: 16,
            accuracy_floor: 0.8,
            initial_period: 12,
            min_period: 2,
            max_period: 48,
            audit_budget_factor: 1.2,
            faults: FaultSchedule::new(),
        }
    }
}

/// One epoch of the adaptive loop.
#[derive(Debug, Clone)]
pub struct AdaptiveEpoch {
    pub epoch: u64,
    /// The sampling period in force this epoch.
    pub period: u64,
    /// What the epoch was spent on.
    pub kind: AdaptiveAction,
    /// True accuracy of the delivered answer (1.0 for sweeps/audits).
    pub accuracy: f64,
    /// Energy spent this epoch (mJ).
    pub energy_mj: f64,
}

/// What an adaptive epoch did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveAction {
    /// Full sweep feeding the window.
    Sample,
    /// Exact two-phase audit: measures the plan's real accuracy.
    Audit,
    /// Ordinary approximate query.
    Query,
}

impl AdaptiveAction {
    /// Stable lowercase tag used in trace events.
    pub fn name(self) -> &'static str {
        match self {
            AdaptiveAction::Sample => "sample",
            AdaptiveAction::Audit => "audit",
            AdaptiveAction::Query => "query",
        }
    }
}

/// Runs the adaptive loop for `epochs` epochs.
pub fn run_adaptive<S: ValueSource>(
    topology: &Topology,
    energy: &EnergyModel,
    planner: &dyn Planner,
    source: &mut S,
    config: &AdaptiveConfig,
    epochs: u64,
) -> Result<(Vec<AdaptiveEpoch>, EnergyMeter), PlanError> {
    run_adaptive_traced(topology, energy, planner, source, config, epochs, &mut NullTracer)
}

/// [`run_adaptive`] with tracing: fault handling emits
/// `NodeDeath`/`TreeRepaired` events, energy charges that land in the
/// returned meter are mirrored as `Energy` events in charge order, and
/// every epoch closes with one `AdaptiveEpoch` summary event.
pub fn run_adaptive_traced<S: ValueSource>(
    topology: &Topology,
    energy: &EnergyModel,
    planner: &dyn Planner,
    source: &mut S,
    config: &AdaptiveConfig,
    epochs: u64,
    tracer: &mut dyn Tracer,
) -> Result<(Vec<AdaptiveEpoch>, EnergyMeter), PlanError> {
    let n = topology.len();
    let mut topology = topology.clone();
    let mut alive = vec![true; n];
    let mut samples = SampleSet::new(n, config.k, config.window);
    let mut meter = EnergyMeter::new(n);
    let mut period = config.initial_period.clamp(config.min_period, config.max_period);
    let mut since_sample = 0u64;
    let mut plan: Option<Plan> = None;
    let mut reports = Vec::with_capacity(epochs as usize);

    for epoch in 0..epochs {
        // Permanent failures scheduled for this epoch: repair the tree,
        // silence the dead in the window, and force a fresh plan.
        let deaths: Vec<NodeId> = config
            .faults
            .deaths_at(epoch)
            .into_iter()
            .filter(|d| d.index() < n && alive[d.index()])
            .collect();
        let mut repair_mj = 0.0;
        if !deaths.is_empty() {
            for &d in &deaths {
                if d != topology.root() {
                    alive[d.index()] = false;
                }
                if tracer.enabled() {
                    tracer.record(TraceEvent::NodeDeath { node: d.0 });
                }
            }
            let mut repair_meter = EnergyMeter::new(n);
            charge_repair(&topology, &alive, &deaths, energy, &mut repair_meter, tracer);
            repair_mj = repair_meter.total();
            meter.merge(&repair_meter);
            topology = topology.repair(&deaths)?;
            if tracer.enabled() {
                tracer.record(TraceEvent::TreeRepaired { deaths: deaths.len() as u32 });
            }
            samples.mask_nodes(&deaths);
            plan = None;
        }

        let mut values = source.values(epoch);
        mask_dead_values(&mut values, &alive);
        let truth = prospector_data::top_k_nodes(&values, config.k);

        // Mandatory warmup and period-driven sweeps.
        if epoch < config.warmup || since_sample >= period {
            let mut sweep = Plan::full_sweep(&topology);
            mask_dead_edges(&mut sweep, &topology, &alive);
            let r = execute_plan(&sweep, &topology, energy, &values, config.k, None);
            charge_as(&mut meter, &r.meter, &topology, Phase::Sampling, tracer);
            samples.push(values);
            since_sample = 0;
            plan = None; // stale: replan on next query epoch
            let report = AdaptiveEpoch {
                epoch,
                period,
                kind: AdaptiveAction::Sample,
                accuracy: 1.0,
                energy_mj: r.total_mj() + repair_mj,
            };
            record_adaptive(tracer, &report);
            reports.push(report);
            continue;
        }
        since_sample += 1;

        // Plan lazily against the current window.
        if plan.is_none() {
            let ctx = PlanContext::new(&topology, energy, &samples, config.budget_mj);
            let mut p = planner.plan(&ctx)?;
            mask_dead_edges(&mut p, &topology, &alive);
            meter.merge(&crate::dissemination::install_plan_traced(&p, &topology, energy, tracer));
            plan = Some(p);
        }
        let current = plan.as_ref().expect("planned above");

        // Periodic exact audit: measures the plan's *true* accuracy and
        // feeds the window with its (exact) answer epoch.
        if config.audit_every > 0 && epoch % config.audit_every == 0 {
            let approx = execute_plan(current, &topology, energy, &values, config.k, None);
            let hits = approx.answer.iter().filter(|r| truth.contains(&r.node)).count();
            let measured = hits as f64 / config.k as f64;

            let probe = PlanContext::new(&topology, energy, &samples, 1.0);
            let cfg = ExactConfig {
                phase1_budget_mj: probe.min_proof_cost() * config.audit_budget_factor,
            };
            let ctx = PlanContext::new(&topology, energy, &samples, cfg.phase1_budget_mj);
            let phase1 = cfg.plan_phase1(&ctx)?;
            let exact = run_exact(&phase1, &topology, energy, &values, config.k, None);
            charge_as(&mut meter, &exact.meter, &topology, Phase::Sampling, tracer);
            charge_as(&mut meter, &approx.meter, &topology, Phase::Collection, tracer);

            // Adapt the sampling rate.
            period = if measured < config.accuracy_floor {
                (period / 2).max(config.min_period)
            } else {
                (period + period / 4 + 1).min(config.max_period)
            };
            // The exact answer also makes a (partial) sample: a full value
            // vector is only known for sweep epochs, so audits only reset
            // staleness pressure rather than pushing to the window.
            let report = AdaptiveEpoch {
                epoch,
                period,
                kind: AdaptiveAction::Audit,
                accuracy: measured,
                energy_mj: exact.total_mj() + approx.total_mj() + repair_mj,
            };
            record_adaptive(tracer, &report);
            reports.push(report);
            continue;
        }

        // Ordinary approximate query.
        let r = execute_plan_traced(current, &topology, energy, &values, config.k, None, tracer);
        meter.merge(&r.meter);
        let hits = r.answer.iter().filter(|x| truth.contains(&x.node)).count();
        let report = AdaptiveEpoch {
            epoch,
            period,
            kind: AdaptiveAction::Query,
            accuracy: hits as f64 / config.k as f64,
            energy_mj: r.total_mj() + repair_mj,
        };
        record_adaptive(tracer, &report);
        reports.push(report);
    }

    Ok((reports, meter))
}

/// Emits the per-epoch summary event for the adaptive loop.
fn record_adaptive(tracer: &mut dyn Tracer, r: &AdaptiveEpoch) {
    if tracer.enabled() {
        tracer.record(TraceEvent::AdaptiveEpoch {
            epoch: r.epoch,
            action: r.kind.name(),
            period: r.period,
            accuracy: r.accuracy,
            energy_mj: r.energy_mj,
        });
    }
}

/// Re-attributes all of `src`'s charges under one phase, mirroring each
/// re-attributed charge as an `Energy` event.
fn charge_as(
    dst: &mut EnergyMeter,
    src: &EnergyMeter,
    topology: &Topology,
    phase: Phase,
    tracer: &mut dyn Tracer,
) {
    for i in 0..topology.len() {
        let node = NodeId::from_index(i);
        let mj = src.node_total(node);
        if mj > 0.0 {
            charge(dst, tracer, node, phase, mj);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_core::ProspectorGreedy;
    use prospector_data::{IndependentGaussian, RandomWalk};
    use prospector_net::topology::balanced;

    fn avg_period_tail(reports: &[AdaptiveEpoch]) -> f64 {
        let tail = &reports[reports.len() / 2..];
        tail.iter().map(|r| r.period as f64).sum::<f64>() / tail.len() as f64
    }

    #[test]
    fn stable_source_lengthens_sampling_period() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let mut src = IndependentGaussian::random(t.len(), 40.0..60.0, 0.2..0.5, 3);
        let cfg = AdaptiveConfig { budget_mj: 40.0, ..Default::default() };
        let (reports, _) = run_adaptive(&t, &em, &ProspectorGreedy, &mut src, &cfg, 120).unwrap();
        assert!(
            avg_period_tail(&reports) > cfg.initial_period as f64,
            "stable data should earn a longer sampling period"
        );
    }

    #[test]
    fn drifting_source_shortens_sampling_period() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        // Strong drift plus a tight budget: the plan can only cover a
        // subset of nodes, and drift moves the top-k out from under it.
        let mut src = RandomWalk::new(t.len(), 50.0, 5.0, 4.0, 0.0, 9);
        let cfg = AdaptiveConfig {
            budget_mj: 9.0,
            accuracy_floor: 0.9,
            audit_every: 8,
            ..Default::default()
        };
        let (reports, _) = run_adaptive(&t, &em, &ProspectorGreedy, &mut src, &cfg, 120).unwrap();
        assert!(
            avg_period_tail(&reports) < cfg.initial_period as f64,
            "drifting data should force more frequent sampling (avg {})",
            avg_period_tail(&reports)
        );
    }

    #[test]
    fn scheduled_death_repairs_and_finishes() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let mut src = IndependentGaussian::random(t.len(), 40.0..60.0, 0.5..1.0, 5);
        let victim = t.children(t.root())[0];
        let cfg = AdaptiveConfig {
            faults: FaultSchedule::new().with_death(20, victim),
            ..Default::default()
        };
        let (reports, meter) =
            run_adaptive(&t, &em, &ProspectorGreedy, &mut src, &cfg, 80).unwrap();
        assert_eq!(reports.len(), 80, "loop survives the death");
        assert!(meter.phase_total(Phase::Repair) > 0.0, "repair was charged");
        // The death epoch's energy includes the repair surcharge.
        let death_epoch = reports.iter().find(|r| r.epoch == 20).unwrap();
        assert!(death_epoch.energy_mj >= meter.phase_total(Phase::Repair));
    }

    #[test]
    fn all_epochs_accounted() {
        let t = balanced(2, 3);
        let em = EnergyModel::mica2();
        let mut src = IndependentGaussian::random(t.len(), 0.0..10.0, 0.5..1.0, 1);
        let cfg = AdaptiveConfig::default();
        let (reports, meter) =
            run_adaptive(&t, &em, &ProspectorGreedy, &mut src, &cfg, 60).unwrap();
        assert_eq!(reports.len(), 60);
        assert!(meter.total() > 0.0);
        assert!(reports.iter().any(|r| r.kind == AdaptiveAction::Sample));
        assert!(reports.iter().any(|r| r.kind == AdaptiveAction::Audit));
        assert!(reports.iter().any(|r| r.kind == AdaptiveAction::Query));
        // Energy per epoch is recorded and positive for sweeps.
        for r in &reports {
            if r.kind == AdaptiveAction::Sample {
                assert!(r.energy_mj > 0.0);
            }
        }
    }
}
