//! Execution engine for top-k query plans over simulated sensor networks.
//!
//! `prospector-core` defines *what* a plan does (pure semantics); this
//! crate prices it and runs the paper's protocols end to end:
//!
//! * [`exec`] — energy-metered execution of approximate and proof-carrying
//!   plans: trigger broadcasts, per-edge unicasts, proven-count side
//!   channel, transient-failure injection with rerouting charges;
//! * [`dissemination`] — the initial distribution phase (installing a plan);
//! * [`naive1`] — the pipelined `NAIVE-1` exact protocol of Section 2, one
//!   value per message;
//! * [`exact_exec`] — `ProspectorExact`'s two phases: a proof-carrying
//!   collection followed by the range-bounded mop-up of Section 4.3;
//! * [`runner`] — multi-epoch experiments: exploration sampling,
//!   re-planning, plan dissemination and per-epoch metrics;
//! * [`continuous`] — the continuous-query delta protocol: custody-based
//!   delta shipping, change beacons, forced full refreshes and per-subtree
//!   q-digest summaries;
//! * [`adaptive`] — Section 4.4's re-sampling rate adaptation driven by
//!   periodic exact audits.
//!
//! Every phase has a `_traced` variant taking a
//! [`Tracer`](prospector_obs::Tracer): energy charges, link deliveries,
//! faults and epoch summaries stream out as structured
//! [`TraceEvent`](prospector_obs::TraceEvent)s. The untraced names
//! delegate with a [`NullTracer`](prospector_obs::NullTracer) and cost
//! nothing extra.

pub mod adaptive;
pub mod backfill;
pub mod continuous;
pub mod dissemination;
pub mod exact_exec;
pub mod exec;
pub mod naive1;
pub mod runner;
mod trace;

pub use adaptive::{
    run_adaptive, run_adaptive_traced, AdaptiveAction, AdaptiveConfig, AdaptiveEpoch,
};
pub use backfill::{backfill_answer, backfill_answer_traced, AnswerEntry};
pub use continuous::{ContinuousState, Delta, DeltaOutcome, RefreshOutcome};
pub use dissemination::{
    install_cost, install_plan, install_plan_lossy, install_plan_lossy_traced, install_plan_traced,
    DisseminationReport,
};
pub use exact_exec::{run_exact, ExactResult};
pub use exec::{
    execute_plan, execute_plan_arq, execute_plan_arq_traced, execute_plan_traced,
    execute_proof_plan, ExecutionReport,
};
pub use naive1::run_naive1;
pub use runner::{
    CheckpointedRunError, ConfigError, EpochReport, ExperimentConfig, ExperimentRunner, ResumeError,
};
