//! The pipelined `NAIVE-1` exact protocol (Section 2).
//!
//! "Each node maintains a heap containing its own value and the last value
//! requested from each of its children. When the node receives from its
//! parent a request for a value, the node first ensures that the heap has
//! a value from each of its children (unless the child has no more values
//! to return); if not, a new value is requested from that child. Then, the
//! largest value in the heap is removed and returned to the parent."
//!
//! Every request and every returned value is a separate message, so the
//! protocol minimizes bytes but pays a per-message overhead per value per
//! hop — prohibitive in practice, as the paper observes.

use prospector_data::Reading;
use prospector_net::{EnergyMeter, EnergyModel, NodeId, Phase, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

struct NodeState {
    /// Min-by-rank heap: best reading on top. Entries carry the child
    /// slot that supplied them (`None` = the node's own reading).
    heap: BinaryHeap<(Reverse<Reading>, Option<usize>)>,
    initialized: bool,
    /// Per child slot: needs a refill before the next pop.
    need: Vec<bool>,
    /// Per child slot: child has no more values.
    exhausted: Vec<bool>,
}

/// Runs `NAIVE-1` to completion for a top-`k` query, returning the exact
/// answer and the energy meter (requests and single-value responses are
/// all individual messages).
pub fn run_naive1(
    topology: &Topology,
    energy: &EnergyModel,
    values: &[f64],
    k: usize,
) -> (Vec<Reading>, EnergyMeter) {
    assert_eq!(values.len(), topology.len());
    let n = topology.len();
    let mut meter = EnergyMeter::new(n);
    let mut states: Vec<NodeState> = (0..n)
        .map(|i| {
            let deg = topology.children(NodeId::from_index(i)).len();
            NodeState {
                heap: BinaryHeap::new(),
                initialized: false,
                need: vec![true; deg],
                exhausted: vec![false; deg],
            }
        })
        .collect();

    let root = topology.root();
    let mut answer = Vec::with_capacity(k);
    for _ in 0..k.min(n) {
        match next_value(root, topology, values, energy, &mut states, &mut meter) {
            Some(v) => answer.push(v),
            None => break,
        }
    }
    (answer, meter)
}

/// Services one value request at `u`; `None` when the subtree is
/// exhausted. Charges the request/response messages on child edges.
fn next_value(
    u: NodeId,
    topology: &Topology,
    values: &[f64],
    energy: &EnergyModel,
    states: &mut [NodeState],
    meter: &mut EnergyMeter,
) -> Option<Reading> {
    if !states[u.index()].initialized {
        states[u.index()].initialized = true;
        let own = Reading { node: u, value: values[u.index()] };
        states[u.index()].heap.push((Reverse(own), None));
    }
    let children: Vec<NodeId> = topology.children(u).to_vec();
    for (slot, &c) in children.iter().enumerate() {
        let (need, exhausted) = (states[u.index()].need[slot], states[u.index()].exhausted[slot]);
        if !need || exhausted {
            continue;
        }
        // Request message down the edge (header only).
        meter.charge(c, Phase::Collection, energy.unicast_bytes(0));
        match next_value(c, topology, values, energy, states, meter) {
            Some(v) => {
                // Response carrying one value.
                meter.charge(c, Phase::Collection, energy.unicast_values(1));
                states[u.index()].heap.push((Reverse(v), Some(slot)));
                states[u.index()].need[slot] = false;
            }
            None => {
                // "No more values" reply (header only).
                meter.charge(c, Phase::Collection, energy.unicast_bytes(0));
                states[u.index()].exhausted[slot] = true;
            }
        }
    }
    let (Reverse(v), src) = states[u.index()].heap.pop()?;
    if let Some(slot) = src {
        states[u.index()].need[slot] = true;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_data::top_k_nodes;
    use prospector_net::topology::{balanced, chain, star};

    #[test]
    fn returns_exact_top_k() {
        for t in [balanced(2, 3), balanced(3, 2), chain(9), star(9)] {
            let values: Vec<f64> = (0..t.len()).map(|i| ((i * 41 + 7) % 53) as f64).collect();
            for k in [1, 3, 5] {
                let (ans, _) = run_naive1(&t, &EnergyModel::mica2(), &values, k);
                let got: Vec<NodeId> = ans.iter().map(|r| r.node).collect();
                assert_eq!(got, top_k_nodes(&values, k), "k={k}");
            }
        }
    }

    #[test]
    fn k_larger_than_network_returns_everything() {
        let t = chain(4);
        let values = vec![4.0, 3.0, 2.0, 1.0];
        let (ans, _) = run_naive1(&t, &EnergyModel::mica2(), &values, 10);
        assert_eq!(ans.len(), 4);
    }

    #[test]
    fn message_overhead_grows_with_k() {
        let t = balanced(2, 4); // 31 nodes
        let values: Vec<f64> = (0..t.len()).map(|i| ((i * 19) % 37) as f64).collect();
        let em = EnergyModel::mica2();
        let (_, m1) = run_naive1(&t, &em, &values, 1);
        let (_, m8) = run_naive1(&t, &em, &values, 8);
        // Even k = 1 visits every node (each must report its subtree
        // max), so growth is linear in k on top of that base, as the
        // paper notes.
        assert!(
            m8.total() > 1.5 * m1.total(),
            "cost should grow with k: {} vs {}",
            m8.total(),
            m1.total()
        );
        let (_, m4) = run_naive1(&t, &em, &values, 4);
        let step1 = m4.total() - m1.total();
        let step2 = m8.total() - m4.total();
        assert!(step1 > 0.0 && step2 > 0.0, "strictly increasing in k");
    }

    #[test]
    fn naive1_beats_naive_k_on_bytes_but_not_messages() {
        // The tradeoff of Section 2: NAIVE-1 ships few values but many
        // messages; with MICA2's large per-message cost it loses for
        // realistic k.
        use prospector_core::Plan;
        let t = balanced(3, 3); // 40 nodes
        let values: Vec<f64> = (0..t.len()).map(|i| ((i * 23 + 11) % 59) as f64).collect();
        let em = EnergyModel::mica2();
        let k = 10;
        let (_, m1) = run_naive1(&t, &em, &values, k);
        let plan = Plan::naive_k(&t, k);
        let rk = crate::exec::execute_plan(&plan, &t, &em, &values, k, None);
        assert!(
            m1.total() > rk.total_mj(),
            "per-message overhead should dominate: naive1 {} vs naive-k {}",
            m1.total(),
            rk.total_mj()
        );
    }
}
