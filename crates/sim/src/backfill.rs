//! Graceful degradation at the root: backfilling lost subtrees from the
//! sample window.
//!
//! When a hop exhausts its ARQ budget the root receives a partial answer
//! and knows *which* edges went silent. Rather than return a short
//! answer, it estimates the missing contributions from each lost node's
//! recent history ([`SampleSet::predicted_value`]) — the prediction-based
//! fallback of content-centric wake-up schemes — and flags every
//! estimated entry so consumers can tell observation from guesswork.

use prospector_core::Plan;
use prospector_data::{Reading, SampleSet};
use prospector_net::{NodeId, Topology};
use prospector_obs::{NullTracer, TraceEvent, Tracer};

/// One entry of a degraded answer: a reading that was either observed in
/// this epoch's collection or estimated from the sample window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnswerEntry {
    pub reading: Reading,
    /// True when the reading is a window prediction standing in for a
    /// lost batch, not an observation.
    pub estimated: bool,
}

/// Merges the root's delivered (partial) answer with window predictions
/// for every plan-visited node cut off by a lost edge, returning the best
/// `k` entries in rank order.
///
/// With no lost edges this is the observed answer verbatim. Predictions
/// for nodes with no usable history rank `-inf` and can never displace an
/// observation. Observed entries always win ties against estimates for
/// the same rank position only through the usual deterministic
/// [`Reading::rank_cmp`] order — a node is never both observed and
/// estimated, because a lost edge removes its whole subtree's batch.
pub fn backfill_answer(
    answer: &[Reading],
    lost_edges: &[NodeId],
    plan: &Plan,
    topology: &Topology,
    samples: &SampleSet,
    k: usize,
) -> Vec<AnswerEntry> {
    backfill_answer_traced(answer, lost_edges, plan, topology, samples, k, &mut NullTracer)
}

/// [`backfill_answer`] with tracing: each estimated entry that survives
/// into the final truncated answer emits one `Backfill` event, in answer
/// rank order.
pub fn backfill_answer_traced(
    answer: &[Reading],
    lost_edges: &[NodeId],
    plan: &Plan,
    topology: &Topology,
    samples: &SampleSet,
    k: usize,
    tracer: &mut dyn Tracer,
) -> Vec<AnswerEntry> {
    let mut entries: Vec<AnswerEntry> =
        answer.iter().map(|&reading| AnswerEntry { reading, estimated: false }).collect();
    if !lost_edges.is_empty() {
        // A lost edge silences every plan-visited node of its subtree;
        // nested lost edges may overlap, so dedupe by node.
        let mut missing = vec![false; topology.len()];
        for &e in lost_edges {
            for u in topology.subtree(e) {
                if plan.visits(topology, u) {
                    missing[u.index()] = true;
                }
            }
        }
        for (i, &m) in missing.iter().enumerate() {
            if m {
                let node = NodeId::from_index(i);
                // An unknown history predicts `-inf`: the estimate sorts
                // last and can never displace a real observation.
                let value = samples.predicted_value(node).unwrap_or(f64::NEG_INFINITY);
                entries.push(AnswerEntry { reading: Reading { node, value }, estimated: true });
            }
        }
        entries.sort_unstable_by(|a, b| a.reading.rank_cmp(&b.reading));
    }
    entries.truncate(k);
    if tracer.enabled() {
        for e in entries.iter().filter(|e| e.estimated) {
            tracer.record(TraceEvent::Backfill {
                node: e.reading.node.0,
                predicted: e.reading.value,
            });
        }
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_net::topology::{chain, star};

    fn window(rows: Vec<Vec<f64>>, k: usize) -> SampleSet {
        let n = rows[0].len();
        let mut s = SampleSet::new(n, k, rows.len());
        for r in rows {
            s.push(r);
        }
        s
    }

    #[test]
    fn no_loss_is_identity() {
        let t = star(4);
        let plan = Plan::naive_k(&t, 2);
        let s = window(vec![vec![0.0, 1.0, 2.0, 3.0]], 2);
        let answer =
            vec![Reading { node: NodeId(3), value: 3.0 }, Reading { node: NodeId(2), value: 2.0 }];
        let out = backfill_answer(&answer, &[], &plan, &t, &s, 2);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|e| !e.estimated));
        assert_eq!(out[0].reading, answer[0]);
        assert_eq!(out[1].reading, answer[1]);
    }

    #[test]
    fn lost_subtree_is_estimated_from_history() {
        // Chain 0 <- 1 <- 2: edge above 1 lost, so nodes 1 and 2 are
        // backfilled from their window means (1: 10.0, 2: 20.0).
        let t = chain(3);
        let plan = Plan::naive_k(&t, 3);
        let s = window(vec![vec![0.0, 8.0, 16.0], vec![0.0, 12.0, 24.0]], 3);
        let answer = vec![Reading { node: NodeId(0), value: 1.0 }];
        let out = backfill_answer(&answer, &[NodeId(1)], &plan, &t, &s, 3);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].reading.node, NodeId(2));
        assert!((out[0].reading.value - 20.0).abs() < 1e-12);
        assert!(out[0].estimated);
        assert_eq!(out[1].reading.node, NodeId(1));
        assert!(out[1].estimated);
        assert_eq!(out[2].reading.node, NodeId(0));
        assert!(!out[2].estimated, "the observed reading survives");
    }

    #[test]
    fn estimates_compete_by_rank_and_k_truncates() {
        // Star: children 1..=3, edge 2 lost. Its prediction (5.0) beats
        // node 3's observed 4.0 but not node 1's observed 9.0; k = 2 drops
        // the weakest.
        let t = star(4);
        let plan = Plan::naive_k(&t, 3);
        let s = window(vec![vec![0.0, 9.0, 5.0, 4.0]], 3);
        let answer = vec![
            Reading { node: NodeId(1), value: 9.0 },
            Reading { node: NodeId(3), value: 4.0 },
            Reading { node: NodeId(0), value: 0.0 },
        ];
        let out = backfill_answer(&answer, &[NodeId(2)], &plan, &t, &s, 2);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].reading.node, out[0].estimated), (NodeId(1), false));
        assert_eq!((out[1].reading.node, out[1].estimated), (NodeId(2), true));
    }

    #[test]
    fn unvisited_nodes_are_not_backfilled() {
        // Plan only visits node 1 of a star; losing that edge must not
        // invent estimates for nodes the plan never collected from.
        let t = star(4);
        let mut plan = Plan::empty(4);
        plan.set_bandwidth(NodeId(1), 1);
        let s = window(vec![vec![0.0, 9.0, 5.0, 4.0]], 2);
        let answer = vec![Reading { node: NodeId(0), value: 0.0 }];
        let out = backfill_answer(&answer, &[NodeId(1)], &plan, &t, &s, 2);
        assert_eq!(out.len(), 2);
        let estimated: Vec<NodeId> =
            out.iter().filter(|e| e.estimated).map(|e| e.reading.node).collect();
        assert_eq!(estimated, vec![NodeId(1)], "only the visited lost node");
    }

    #[test]
    fn unknown_history_never_displaces_observations() {
        let t = chain(2);
        let plan = Plan::naive_k(&t, 1);
        let s = SampleSet::new(2, 1, 4); // empty window: no history at all
        let answer = vec![Reading { node: NodeId(0), value: -100.0 }];
        let out = backfill_answer(&answer, &[NodeId(1)], &plan, &t, &s, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].reading.node, NodeId(0), "-inf estimate sorts last");
        assert!(!out[0].estimated);
    }
}
