//! Charge mirroring for the traced execution paths.
//!
//! Every energy charge on a traced path goes through [`charge`], which
//! applies the charge and — only when the tracer is enabled — records a
//! matching [`TraceEvent::Energy`]. Because events are emitted in charge
//! order, summing a merge-free execution's energy events reproduces its
//! meter bit-for-bit (f64 addition order included); `tests/obs_properties.rs`
//! pins this.

use prospector_net::{EnergyMeter, NodeId, Phase};
use prospector_obs::{TraceEvent, Tracer};

/// Charges `mj` to `node` under `phase` and mirrors the charge as an
/// [`TraceEvent::Energy`] when tracing is enabled.
pub(crate) fn charge(
    meter: &mut EnergyMeter,
    tracer: &mut dyn Tracer,
    node: NodeId,
    phase: Phase,
    mj: f64,
) {
    meter.charge(node, phase, mj);
    if tracer.enabled() {
        tracer.record(TraceEvent::Energy { node: node.0, phase: phase.name(), mj });
    }
}
