//! Energy-metered plan execution.

use crate::trace::charge;
use prospector_core::{run_plan, run_plan_lossy, run_proof_plan, Plan};
use prospector_data::Reading;
use prospector_net::{ArqPolicy, EnergyMeter, EnergyModel, FailureModel, NodeId, Phase, Topology};
use prospector_obs::{NullTracer, TraceEvent, Tracer};
use rand::rngs::StdRng;

/// One executed collection phase: the answer plus its energy bill.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// The root's answer (top k), in rank order.
    pub answer: Vec<Reading>,
    /// Answer values proven at the root (0 for non-proof plans).
    pub proven: usize,
    /// Per-node, per-phase energy charges for this execution.
    pub meter: EnergyMeter,
    /// Used edges whose batch was lost after exhausting the ARQ retry
    /// budget ([`Topology::edges`] order). Always empty on the reliable
    /// paths ([`execute_plan`], [`execute_proof_plan`]).
    pub lost_edges: Vec<NodeId>,
    /// Transmissions beyond each edge's first attempt, summed.
    pub retransmissions: u32,
    /// Fraction of plan-visited non-root nodes whose batch survived every
    /// hop to the root (1.0 on the reliable paths).
    pub delivered_fraction: f64,
}

impl ExecutionReport {
    /// Total energy (mJ) of this execution.
    pub fn total_mj(&self) -> f64 {
        self.meter.total()
    }

    /// Node ids of the answer.
    pub fn answer_nodes(&self) -> Vec<NodeId> {
        self.answer.iter().map(|r| r.node).collect()
    }
}

/// Charges the subsequent-distribution trigger: a header-only broadcast at
/// every participating node that has at least one participating child.
fn charge_trigger(
    plan: &Plan,
    topology: &Topology,
    energy: &EnergyModel,
    meter: &mut EnergyMeter,
    tracer: &mut dyn Tracer,
) {
    for u in (0..topology.len()).map(NodeId::from_index) {
        if !plan.visits(topology, u) {
            continue;
        }
        if topology.children(u).iter().any(|&c| plan.is_used(c)) {
            charge(meter, tracer, u, Phase::Trigger, energy.broadcast());
        }
    }
}

/// Charges per-edge unicast costs for the values actually sent, injecting
/// transient failures when a model and RNG are supplied.
fn charge_collection(
    sent: &[u32],
    plan: &Plan,
    topology: &Topology,
    energy: &EnergyModel,
    meter: &mut EnergyMeter,
    tracer: &mut dyn Tracer,
    mut failures: Option<(&FailureModel, &mut StdRng)>,
) {
    for e in topology.edges() {
        if !plan.is_used(e) {
            continue;
        }
        charge(
            meter,
            tracer,
            e,
            Phase::Collection,
            energy.unicast_values(sent[e.index()] as usize),
        );
        if let Some((fm, rng)) = failures.as_mut() {
            if fm.sample_failure(e, rng) {
                charge(meter, tracer, e, Phase::Rerouting, fm.reroute_penalty());
            }
        }
    }
}

/// Executes an approximate plan for one epoch: trigger broadcast plus the
/// collection phase, with optional failure injection.
pub fn execute_plan(
    plan: &Plan,
    topology: &Topology,
    energy: &EnergyModel,
    values: &[f64],
    k: usize,
    failures: Option<(&FailureModel, &mut StdRng)>,
) -> ExecutionReport {
    execute_plan_traced(plan, topology, energy, values, k, failures, &mut NullTracer)
}

/// [`execute_plan`] with tracing: every energy charge is mirrored as an
/// `Energy` event, in charge order.
pub fn execute_plan_traced(
    plan: &Plan,
    topology: &Topology,
    energy: &EnergyModel,
    values: &[f64],
    k: usize,
    failures: Option<(&FailureModel, &mut StdRng)>,
    tracer: &mut dyn Tracer,
) -> ExecutionReport {
    let mut meter = EnergyMeter::new(topology.len());
    charge_trigger(plan, topology, energy, &mut meter, tracer);
    let out = run_plan(plan, topology, values, k);
    charge_collection(&out.sent, plan, topology, energy, &mut meter, tracer, failures);
    ExecutionReport {
        answer: out.answer,
        proven: 0,
        meter,
        lost_edges: Vec::new(),
        retransmissions: 0,
        delivered_fraction: 1.0,
    }
}

/// Executes an approximate plan over a lossy radio with per-hop ARQ: each
/// upward batch is sampled against `failures` and retried up to
/// `policy.max_retries` times; a hop that exhausts its budget genuinely
/// loses its subtree's batch and the answer is partial.
///
/// Energy accounting is exact to the attempt:
/// * the **first** transmission of each used edge's batch is charged under
///   [`Phase::Collection`] — exactly what the reliable path charges;
/// * every retry resends the whole batch and is charged under
///   [`Phase::Retransmit`], along with the seeded backoff idle-listening
///   preceding it;
/// * a delivery that needed at least one retry is confirmed with a
///   header-only ack, also under [`Phase::Retransmit`] (the first
///   attempt's ack is already folded into the reliable unicast cost, as
///   in [`install_plan_lossy`](crate::dissemination::install_plan_lossy));
///   like every edge charge, it is attributed to the edge's child.
///
/// Charges are applied in [`Topology::edges`] order, matching
/// [`execute_plan`]'s order, so with a zero-loss model the meter is
/// byte-identical to the reliable path (f64 accumulation order included).
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_arq(
    plan: &Plan,
    topology: &Topology,
    energy: &EnergyModel,
    values: &[f64],
    k: usize,
    failures: &FailureModel,
    policy: &ArqPolicy,
    seed: u64,
) -> ExecutionReport {
    execute_plan_arq_traced(
        plan,
        topology,
        energy,
        values,
        k,
        failures,
        policy,
        seed,
        &mut NullTracer,
    )
}

/// [`execute_plan_arq`] with tracing: every energy charge is mirrored as
/// an `Energy` event in charge order, and each used edge additionally
/// emits one `LinkDelivery` event (after its charges) recording the
/// batch size, attempt count, delivery outcome, ack and backoff.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_arq_traced(
    plan: &Plan,
    topology: &Topology,
    energy: &EnergyModel,
    values: &[f64],
    k: usize,
    failures: &FailureModel,
    policy: &ArqPolicy,
    seed: u64,
    tracer: &mut dyn Tracer,
) -> ExecutionReport {
    let mut meter = EnergyMeter::new(topology.len());
    charge_trigger(plan, topology, energy, &mut meter, tracer);
    let out = run_plan_lossy(plan, topology, values, k, failures, policy, seed);
    let mut retransmissions = 0u32;
    for e in topology.edges() {
        if !plan.is_used(e) {
            continue;
        }
        let msg = energy.unicast_values(out.sent[e.index()] as usize);
        charge(&mut meter, tracer, e, Phase::Collection, msg);
        let link = out.links[e.index()].expect("used edge has a delivery record");
        let acked = link.attempts > 1 && link.delivered;
        if link.attempts > 1 {
            retransmissions += link.retries();
            charge(
                &mut meter,
                tracer,
                e,
                Phase::Retransmit,
                link.retries() as f64 * msg + link.backoff_mj,
            );
            if link.delivered {
                charge(&mut meter, tracer, e, Phase::Retransmit, energy.per_message_mj);
            }
        }
        if tracer.enabled() {
            tracer.record(TraceEvent::LinkDelivery {
                child: e.0,
                sent_values: out.sent[e.index()],
                attempts: link.attempts,
                delivered: link.delivered,
                acked,
                backoff_mj: link.backoff_mj,
            });
        }
    }
    ExecutionReport {
        answer: out.answer,
        proven: 0,
        meter,
        lost_edges: out.lost_edges,
        retransmissions,
        delivered_fraction: out.delivered_fraction,
    }
}

/// Executes a proof-carrying plan, additionally charging the proven-count
/// side channel on non-leaf edges that prove fewer values than they send
/// (Section 4.3 step 4). Returns the full proof outcome alongside the
/// report so the exact algorithm can run its mop-up phase.
pub fn execute_proof_plan(
    plan: &Plan,
    topology: &Topology,
    energy: &EnergyModel,
    values: &[f64],
    k: usize,
    failures: Option<(&FailureModel, &mut StdRng)>,
) -> (ExecutionReport, prospector_core::ProofOutcome) {
    let mut meter = EnergyMeter::new(topology.len());
    charge_trigger(plan, topology, energy, &mut meter, &mut NullTracer);
    let out = run_proof_plan(plan, topology, values, k);
    charge_collection(&out.sent, plan, topology, energy, &mut meter, &mut NullTracer, failures);
    for e in topology.edges() {
        if !topology.is_leaf(e)
            && plan.is_used(e)
            && out.proven_count[e.index()] < out.sent[e.index()]
        {
            meter.charge(
                e,
                Phase::Collection,
                energy.per_byte_mj * energy.proven_count_bytes as f64,
            );
        }
    }
    let report = ExecutionReport {
        answer: out.answer.clone(),
        proven: out.proven,
        meter,
        lost_edges: Vec::new(),
        retransmissions: 0,
        delivered_fraction: 1.0,
    };
    (report, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_net::topology::{chain, star};
    use rand::SeedableRng;

    #[test]
    fn energy_matches_hand_computation() {
        // Chain 0 <- 1 <- 2, w = [_, 2, 1]: trigger at 0 and 1; messages
        // on both edges with 2 and 1 values.
        let t = chain(3);
        let em = EnergyModel::mica2();
        let mut plan = Plan::empty(3);
        plan.set_bandwidth(NodeId(1), 2);
        plan.set_bandwidth(NodeId(2), 1);
        let r = execute_plan(&plan, &t, &em, &[1.0, 2.0, 3.0], 2, None);
        let expect = 2.0 * em.broadcast() + em.unicast_values(2) + em.unicast_values(1);
        assert!((r.total_mj() - expect).abs() < 1e-9, "{} vs {expect}", r.total_mj());
        assert_eq!(r.answer_nodes(), vec![NodeId(2), NodeId(1)]);
    }

    #[test]
    fn unused_subtrees_cost_nothing() {
        let t = star(5);
        let em = EnergyModel::mica2();
        let mut plan = Plan::empty(5);
        plan.set_bandwidth(NodeId(1), 1);
        let r = execute_plan(&plan, &t, &em, &[0.0; 5], 1, None);
        assert_eq!(r.meter.node_total(NodeId(2)), 0.0);
        assert_eq!(r.meter.node_total(NodeId(3)), 0.0);
        // root pays one trigger broadcast; node 1 pays one message.
        assert!((r.meter.node_total(NodeId(0)) - em.broadcast()).abs() < 1e-12);
    }

    #[test]
    fn actual_bytes_not_bandwidth_are_charged() {
        // Bandwidth 5 on a leaf edge still ships only one value.
        let t = chain(2);
        let em = EnergyModel::mica2();
        let mut plan = Plan::empty(2);
        plan.set_bandwidth(NodeId(1), 1);
        let mut plan5 = Plan::empty(2);
        plan5.set_bandwidth(NodeId(1), 5);
        // bandwidth > subtree is invalid; emulate by comparing 1 vs 1.
        let a = execute_plan(&plan, &t, &em, &[0.0, 1.0], 1, None);
        let b = execute_plan(&plan5, &t, &em, &[0.0, 1.0], 1, None);
        assert!((a.total_mj() - b.total_mj()).abs() < 1e-12);
    }

    #[test]
    fn failures_add_rerouting_charges() {
        let t = chain(4);
        let em = EnergyModel::mica2();
        let plan = Plan::naive_k(&t, 2);
        let fm = FailureModel::uniform(4, 1.0, 3.0); // always fail
        let mut rng = StdRng::seed_from_u64(1);
        let r = execute_plan(&plan, &t, &em, &[0.0, 1.0, 2.0, 3.0], 2, Some((&fm, &mut rng)));
        assert!((r.meter.phase_total(Phase::Rerouting) - 9.0).abs() < 1e-9, "3 edges × 3 mJ");
    }

    #[test]
    fn arq_zero_loss_is_byte_identical_to_reliable() {
        let t = chain(4);
        let em = EnergyModel::mica2();
        let plan = Plan::naive_k(&t, 2);
        let values = [0.0, 3.0, 1.0, 2.0];
        let reliable = execute_plan(&plan, &t, &em, &values, 2, None);
        let fm = FailureModel::none(4);
        let arq = execute_plan_arq(&plan, &t, &em, &values, 2, &fm, &ArqPolicy::default(), 77);
        assert_eq!(arq.answer, reliable.answer);
        assert_eq!(arq.meter.total().to_bits(), reliable.meter.total().to_bits());
        for i in 0..4 {
            let n = NodeId::from_index(i);
            assert_eq!(arq.meter.node_total(n).to_bits(), reliable.meter.node_total(n).to_bits());
        }
        assert_eq!(arq.meter.phase_total(Phase::Retransmit), 0.0);
        assert!(arq.lost_edges.is_empty());
        assert_eq!(arq.retransmissions, 0);
        assert_eq!(arq.delivered_fraction, 1.0);
    }

    #[test]
    fn arq_energy_is_exact_to_the_attempt() {
        // Star with 2 children, both edges always failing, 2 retries, no
        // jitter: every edge sends its 1-value batch 3 times plus two
        // backoff windows (0.2 + 0.4), no acks, batches lost.
        let t = star(3);
        let em = EnergyModel::mica2();
        let plan = Plan::naive_k(&t, 2);
        let fm = FailureModel::uniform(3, 1.0, 0.0);
        let policy = ArqPolicy {
            max_retries: 2,
            backoff: prospector_net::Backoff { base_mj: 0.2, factor: 2.0, jitter: 0.0 },
        };
        let r = execute_plan_arq(&plan, &t, &em, &[9.0, 1.0, 2.0], 2, &fm, &policy, 5);
        assert_eq!(r.lost_edges, vec![NodeId(1), NodeId(2)]);
        assert_eq!(r.retransmissions, 4);
        assert_eq!(r.delivered_fraction, 0.0);
        assert_eq!(r.answer_nodes(), vec![NodeId(0)], "only the root's reading survives");
        let per_edge_retx = 2.0 * em.unicast_values(1) + 0.2 + 0.4;
        assert!((r.meter.phase_total(Phase::Retransmit) - 2.0 * per_edge_retx).abs() < 1e-9);
        // First attempts stay under Collection, exactly as reliable.
        let first = 2.0 * em.unicast_values(1);
        assert!((r.meter.phase_total(Phase::Collection) - first).abs() < 1e-9);
    }

    #[test]
    fn arq_ack_charged_only_on_retried_delivery() {
        // One edge at 50% loss: find a seed where delivery needs ≥ 1
        // retry, and check the ack lands under Retransmit.
        let t = chain(2);
        let em = EnergyModel::mica2();
        let plan = Plan::naive_k(&t, 1);
        let fm = FailureModel::uniform(2, 0.5, 0.0);
        let policy = ArqPolicy { max_retries: 3, backoff: prospector_net::Backoff::none() };
        let mut saw_retried_delivery = false;
        for seed in 0..64u64 {
            let r = execute_plan_arq(&plan, &t, &em, &[0.0, 1.0], 1, &fm, &policy, seed);
            if r.retransmissions > 0 && r.lost_edges.is_empty() {
                saw_retried_delivery = true;
                let expect = r.retransmissions as f64 * em.unicast_values(1) + em.per_message_mj;
                assert!(
                    (r.meter.phase_total(Phase::Retransmit) - expect).abs() < 1e-9,
                    "retries + one ack, seed {seed}"
                );
            }
        }
        assert!(saw_retried_delivery, "no seed produced a retried delivery");
    }

    #[test]
    fn proof_execution_charges_proven_count_bytes() {
        // Chain 0 <- 1 <- 2 with w=1: node 1 sends 1 value, proves 1 →
        // proven == sent, no side-channel charge. With w=2 at edge 1 and a
        // hidden larger value, proven < sent on a non-leaf edge → charge.
        let t = chain(3);
        let em = EnergyModel::mica2();
        let mut plan = Plan::empty(3);
        plan.proof_carrying = true;
        plan.set_bandwidth(NodeId(1), 2);
        plan.set_bandwidth(NodeId(2), 1);
        let (r, out) = execute_proof_plan(&plan, &t, &em, &[0.0, 1.0, 2.0], 2, None);
        // node 2 sends its whole subtree → everything provable at 1; both
        // of node 1's values proven → no extra byte anywhere.
        assert_eq!(out.proven_count[1], 2);
        let expect = 2.0 * em.broadcast() + em.unicast_values(2) + em.unicast_values(1);
        assert!((r.total_mj() - expect).abs() < 1e-9);
        assert_eq!(r.proven, 2);
    }

    #[test]
    fn proof_execution_charges_when_unproven() {
        // Star-of-chains where a middle subtree hides values: proven <
        // sent at the hiding edge's parent side.
        let t = chain(4); // 0 <- 1 <- 2 <- 3
        let em = EnergyModel::mica2();
        let mut plan = Plan::empty(4);
        plan.proof_carrying = true;
        plan.set_bandwidth(NodeId(1), 2);
        plan.set_bandwidth(NodeId(2), 1); // hides one of {v2's subtree}
        plan.set_bandwidth(NodeId(3), 1);
        let (r, out) = execute_proof_plan(&plan, &t, &em, &[0.0, 1.0, 2.0, 3.0], 2, None);
        // node 2 sends top-1 of {2.0, 3.0} = 3.0 proven (child sent all);
        // node 1 sends [3.0, 1.0]: 3.0 proven (in child's proven prefix),
        // 1.0 unproven (child may hide something bigger) → side channel on
        // edge 1.
        assert_eq!(out.proven_count[1], 1);
        assert_eq!(out.sent[1], 2);
        // Triggers at nodes 0, 1, 2 (each has a used child edge); messages
        // on edges 1 (2 values), 2 and 3 (1 value each); one proven-count
        // byte on edge 1 only (edge 2 proves everything it sends, edge 3
        // is a leaf).
        let side = em.per_byte_mj * em.proven_count_bytes as f64;
        let expect = 3.0 * em.broadcast()
            + em.unicast_values(2)
            + em.unicast_values(1)
            + em.unicast_values(1)
            + side;
        assert!((r.total_mj() - expect).abs() < 1e-9, "{} vs {expect}", r.total_mj());
    }
}
