//! `ProspectorExact`: the two-phase exact algorithm (Section 4.3).
//!
//! Phase 1 executes a proof-carrying plan. If the root proves all k answer
//! values, done. Otherwise the **mop-up** phase walks the tree with
//! range-bounded requests `(t, l, u)` — "return the top `t` values at or
//! below this node within the open range `(l, u)`" — using the
//! `retrieved`/`proven` state every node kept from phase 1 to prune both
//! the request count `t` and the range at every hop.

use crate::exec::{execute_proof_plan, ExecutionReport};
use prospector_core::{Plan, ProofOutcome};
use prospector_data::Reading;
use prospector_net::{EnergyMeter, EnergyModel, FailureModel, NodeId, Phase, Topology};
use rand::rngs::StdRng;
use std::cmp::Ordering;

/// Result of a full two-phase exact execution.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// The exact top-k answer.
    pub answer: Vec<Reading>,
    /// Energy spent by the proof-carrying phase 1 (mJ).
    pub phase1_mj: f64,
    /// Energy spent by the mop-up phase 2 (mJ, zero when phase 1 proved
    /// everything).
    pub phase2_mj: f64,
    /// Whether the mop-up phase ran at all.
    pub mopup_ran: bool,
    /// Merged per-node meter across both phases.
    pub meter: EnergyMeter,
}

impl ExactResult {
    /// Total energy across both phases.
    pub fn total_mj(&self) -> f64 {
        self.phase1_mj + self.phase2_mj
    }
}

/// An open rank-interval `(lower, upper)`: a reading qualifies when it
/// ranks strictly better than `lower` and strictly worse than `upper`
/// (`None` = unbounded). "Better" means larger value (ties by node id).
#[derive(Debug, Clone, Copy)]
struct Range {
    lower: Option<Reading>,
    upper: Option<Reading>,
}

impl Range {
    fn contains(&self, v: &Reading) -> bool {
        self.lower.is_none_or(|l| v.rank_cmp(&l) == Ordering::Less)
            && self.upper.is_none_or(|u| v.rank_cmp(&u) == Ordering::Greater)
    }

    /// True when some reading could lie strictly between the bounds.
    fn is_nonempty(&self) -> bool {
        match (self.lower, self.upper) {
            (Some(l), Some(u)) => u.rank_cmp(&l) == Ordering::Less,
            _ => true,
        }
    }
}

struct MopupState {
    /// Rank-sorted known readings per node (phase-1 `retrieved`, extended
    /// by mop-up responses).
    retrieved: Vec<Vec<Reading>>,
    /// Rank-sorted proven readings per node (fixed after phase 1).
    proven: Vec<Vec<Reading>>,
}

/// Merges `extra` into the rank-sorted `list`, deduplicating by node.
fn merge_readings(list: &mut Vec<Reading>, extra: &[Reading]) {
    for v in extra {
        if !list.iter().any(|x| x.node == v.node) {
            list.push(*v);
        }
    }
    list.sort_unstable_by(Reading::rank_cmp);
}

/// Services a `(t, range)` request at node `u` (Section 4.3 steps 1–3);
/// returns the top `t` known values of `subtree(u)` within the range.
fn mopup(
    u: NodeId,
    t: usize,
    range: Range,
    topology: &Topology,
    energy: &EnergyModel,
    state: &mut MopupState,
    meter: &mut EnergyMeter,
) -> Vec<Reading> {
    // Step 2a: proven values in range already service part of the request.
    let proven_in_range = state.proven[u.index()].iter().filter(|v| range.contains(v)).count();
    let t_fwd = t.saturating_sub(proven_in_range);

    // Step 2b: tighten the lower bound to the t-th known in-range value —
    // anything new must beat it to matter.
    let in_range: Vec<Reading> =
        state.retrieved[u.index()].iter().copied().filter(|v| range.contains(v)).collect();
    let lower = if in_range.len() >= t && t > 0 { Some(in_range[t - 1]) } else { range.lower };

    // Step 2c: tighten the upper bound to the worst proven value — every
    // subtree value above it is already known (Lemma 1).
    let upper = match state.proven[u.index()].last() {
        Some(&worst_proven) => match range.upper {
            // The *smaller* value (worse rank) is the tighter upper bound.
            Some(u0) if u0.rank_cmp(&worst_proven) == Ordering::Greater => Some(u0),
            _ => Some(worst_proven),
        },
        None => range.upper,
    };
    let fwd = Range { lower, upper };

    if t_fwd > 0 && fwd.is_nonempty() && !topology.is_leaf(u) {
        // Broadcast the request to all children at once.
        meter.charge(u, Phase::MopUp, energy.broadcast_bytes(energy.request_bytes as usize));
        for &c in topology.children(u) {
            let resp = mopup(c, t_fwd, fwd, topology, energy, state, meter);
            // Empty responses are suppressed: the request's link-layer ack
            // already tells the parent the child has nothing in range.
            if !resp.is_empty() {
                meter.charge(c, Phase::MopUp, energy.unicast_values(resp.len()));
            }
            merge_readings(&mut state.retrieved[u.index()], &resp);
        }
    }

    // Step 3: answer the original request from the merged state.
    state.retrieved[u.index()].iter().copied().filter(|v| range.contains(v)).take(t).collect()
}

/// Runs both phases of `ProspectorExact` with the given proof-carrying
/// phase-1 plan. The returned answer is always the exact top k.
pub fn run_exact(
    phase1_plan: &Plan,
    topology: &Topology,
    energy: &EnergyModel,
    values: &[f64],
    k: usize,
    failures: Option<(&FailureModel, &mut StdRng)>,
) -> ExactResult {
    let (report, proof): (ExecutionReport, ProofOutcome) =
        execute_proof_plan(phase1_plan, topology, energy, values, k, failures);
    let phase1_mj = report.meter.total();

    if proof.proven >= k.min(topology.len()) {
        return ExactResult {
            answer: report.answer,
            phase1_mj,
            phase2_mj: 0.0,
            mopup_ran: false,
            meter: report.meter,
        };
    }

    // Assemble mop-up state from phase 1.
    let n = topology.len();
    let root = topology.root();
    let mut proven: Vec<Vec<Reading>> = Vec::with_capacity(n);
    for i in 0..n {
        let p = proof.proven_count[i] as usize;
        proven.push(proof.retrieved[i][..p.min(proof.retrieved[i].len())].to_vec());
    }
    let mut state = MopupState { retrieved: proof.retrieved, proven };
    let mut meter = EnergyMeter::new(n);

    // Root request: t = k − |proven(root)|, lower = the k-th retrieved
    // value, upper = the worst proven value.
    let t0 = k - proof.proven;
    let retrieved_root = &state.retrieved[root.index()];
    let lower0 = retrieved_root.get(k - 1).copied();
    let upper0 = state.proven[root.index()].last().copied();
    let range0 = Range { lower: lower0, upper: upper0 };
    if t0 > 0 && range0.is_nonempty() {
        meter.charge(root, Phase::MopUp, energy.broadcast_bytes(energy.request_bytes as usize));
        for &c in topology.children(root).to_vec().iter() {
            let resp = mopup(c, t0, range0, topology, energy, &mut state, &mut meter);
            if !resp.is_empty() {
                meter.charge(c, Phase::MopUp, energy.unicast_values(resp.len()));
            }
            let root_list = &mut state.retrieved[root.index()];
            merge_readings(root_list, &resp);
        }
    }

    let answer: Vec<Reading> = state.retrieved[root.index()].iter().copied().take(k).collect();
    let phase2_mj = meter.total();
    let mut merged = report.meter;
    merged.merge(&meter);
    ExactResult { answer, phase1_mj, phase2_mj, mopup_ran: true, meter: merged }
}

/// Convenience assertion helper: the exact answer's node set.
pub fn exact_answer_nodes(result: &ExactResult) -> Vec<NodeId> {
    result.answer.iter().map(|r| r.node).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_data::top_k_nodes;
    use prospector_net::topology::{balanced, chain, star};
    use rand::{RngExt, SeedableRng};

    fn check_exact(topology: &Topology, values: &[f64], k: usize, plan: &Plan) -> ExactResult {
        let em = EnergyModel::mica2();
        let r = run_exact(plan, topology, &em, values, k, None);
        let got = exact_answer_nodes(&r);
        let expect = top_k_nodes(values, k);
        assert_eq!(got, expect, "exactness violated (k={k})");
        r
    }

    fn minimal_proof_plan(t: &Topology) -> Plan {
        let mut p = Plan::empty(t.len());
        p.proof_carrying = true;
        for e in t.edges() {
            p.set_bandwidth(e, 1);
        }
        p
    }

    #[test]
    fn exact_on_random_networks_and_minimal_plans() {
        // The stress case: minimal phase-1 bandwidth forces heavy mop-up.
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..12 {
            let t = match trial % 4 {
                0 => balanced(2, 3),
                1 => balanced(3, 2),
                2 => chain(10),
                _ => star(10),
            };
            let values: Vec<f64> = (0..t.len()).map(|_| rng.random_range(0.0..100.0)).collect();
            for k in [1, 2, 5] {
                check_exact(&t, &values, k, &minimal_proof_plan(&t));
            }
        }
    }

    #[test]
    fn exact_with_duplicate_values() {
        let t = balanced(2, 3);
        let values: Vec<f64> = (0..t.len()).map(|i| (i % 3) as f64).collect();
        check_exact(&t, &values, 4, &minimal_proof_plan(&t));
    }

    #[test]
    fn generous_phase1_skips_mopup() {
        let t = balanced(2, 3);
        let values: Vec<f64> = (0..t.len()).map(|i| ((i * 7) % 31) as f64).collect();
        let k = 3;
        let mut plan = Plan::full_sweep(&t);
        plan.proof_carrying = true;
        let r = check_exact(&t, &values, k, &plan);
        assert!(!r.mopup_ran);
        assert_eq!(r.phase2_mj, 0.0);
    }

    #[test]
    fn tight_phase1_triggers_mopup() {
        let t = chain(8);
        let values: Vec<f64> = vec![0.0, 1.0, 7.0, 3.0, 6.0, 5.0, 4.0, 2.0];
        let r = check_exact(&t, &values, 3, &minimal_proof_plan(&t));
        assert!(r.mopup_ran);
        assert!(r.phase2_mj > 0.0);
    }

    #[test]
    fn mopup_cheaper_than_full_second_sweep() {
        // The whole point of retrieved/proven state: phase 2 should cost
        // less than collecting everything again.
        let t = balanced(3, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<f64> = (0..t.len()).map(|_| rng.random_range(0.0..100.0)).collect();
        let k = 5;
        let em = EnergyModel::mica2();
        // Phase-1 plan with a bit more than minimal bandwidth.
        let mut plan = Plan::empty(t.len());
        plan.proof_carrying = true;
        for e in t.edges() {
            plan.set_bandwidth(e, 2.min(t.subtree_size(e) as u32));
        }
        let r = check_exact(&t, &values, k, &plan);
        let naive = Plan::naive_k(&t, k);
        let naive_cost = crate::exec::execute_plan(&naive, &t, &em, &values, k, None).total_mj();
        if r.mopup_ran {
            assert!(
                r.phase2_mj < naive_cost,
                "mop-up {} should undercut a full NAIVE-k pass {naive_cost}",
                r.phase2_mj
            );
        }
    }

    #[test]
    fn phase_costs_add_up() {
        let t = chain(6);
        let values: Vec<f64> = vec![0.0, 5.0, 1.0, 4.0, 2.0, 3.0];
        let r = check_exact(&t, &values, 2, &minimal_proof_plan(&t));
        assert!((r.total_mj() - r.meter.total()).abs() < 1e-9);
    }
}
