//! Multi-epoch experiment runner: exploration sampling, planning,
//! re-planning and per-epoch metrics (Sections 3 and 4.4).
//!
//! Per epoch the runner either spends a full-network sweep to refresh the
//! sample window (the exploration/exploitation scheme) or executes the
//! current plan. Plans are re-optimized at the base station every
//! `replan_every` epochs and **disseminated only if the expected
//! improvement exceeds a threshold** ("Plan Re-calculation", Section 4.4),
//! in which case the installation unicasts are charged.

use crate::dissemination::install_plan;
use crate::exec::execute_plan;
use prospector_core::{evaluate, Plan, PlanContext, PlanError, Planner};
use prospector_data::{top_k_nodes, SamplePolicy, SampleSet, ValueSource};
use prospector_net::{EnergyMeter, EnergyModel, FailureModel, Phase, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of a multi-epoch experiment.
pub struct ExperimentConfig {
    /// Top-k parameter.
    pub k: usize,
    /// Sample-window capacity.
    pub window: usize,
    /// When to spend full sweeps on sampling.
    pub policy: SamplePolicy,
    /// Collection-phase energy budget handed to the planner.
    pub budget_mj: f64,
    /// Re-optimize the plan every this many epochs (0 = plan once).
    pub replan_every: u64,
    /// Disseminate a recomputed plan only if it improves expected misses
    /// by at least this much (absolute, in values per query).
    pub replan_threshold: f64,
    /// Optional transient-failure model (used for both planning and
    /// injection).
    pub failures: Option<FailureModel>,
    /// Seed for failure injection.
    pub seed: u64,
}

/// What happened during one epoch.
#[derive(Debug, Clone)]
pub struct EpochReport {
    pub epoch: u64,
    /// This epoch was spent on a full sampling sweep.
    pub sampled: bool,
    /// A new plan was disseminated this epoch.
    pub replanned: bool,
    /// Fraction of the true top k returned (sampling sweeps are exact).
    pub accuracy: f64,
    /// Energy spent this epoch (mJ), all phases.
    pub energy_mj: f64,
}

/// Drives a planner over a value source for many epochs.
pub struct ExperimentRunner<'a> {
    topology: &'a Topology,
    energy: &'a EnergyModel,
    planner: &'a dyn Planner,
    config: ExperimentConfig,
    samples: SampleSet,
    plan: Option<Plan>,
    /// Epoch of the last plan recalculation (None before the first).
    last_replan: Option<u64>,
    meter: EnergyMeter,
    rng: StdRng,
}

impl<'a> ExperimentRunner<'a> {
    pub fn new(
        topology: &'a Topology,
        energy: &'a EnergyModel,
        planner: &'a dyn Planner,
        config: ExperimentConfig,
    ) -> Self {
        let samples = SampleSet::new(topology.len(), config.k, config.window);
        let rng = StdRng::seed_from_u64(config.seed);
        ExperimentRunner {
            topology,
            energy,
            planner,
            config,
            samples,
            plan: None,
            last_replan: None,
            meter: EnergyMeter::new(topology.len()),
            rng,
        }
    }

    /// Cumulative energy across all epochs run so far.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// The currently installed plan, if any.
    pub fn current_plan(&self) -> Option<&Plan> {
        self.plan.as_ref()
    }

    /// Current sample window (for inspection).
    pub fn samples(&self) -> &SampleSet {
        &self.samples
    }

    fn plan_context(&self) -> PlanContext<'_> {
        let mut ctx =
            PlanContext::new(self.topology, self.energy, &self.samples, self.config.budget_mj);
        if let Some(f) = &self.config.failures {
            ctx = ctx.with_failures(f);
        }
        ctx
    }

    /// Runs one epoch against `source`, returning what happened.
    pub fn step<S: ValueSource>(&mut self, source: &mut S, epoch: u64) -> Result<EpochReport, PlanError> {
        let values = source.values(epoch);
        let k = self.config.k;

        // Exploration: full sweep feeds the window and answers exactly.
        if self.config.policy.should_sample(epoch) {
            let sweep = Plan::full_sweep(self.topology);
            let report = execute_plan(&sweep, self.topology, self.energy, &values, k, None);
            // Re-attribute the sweep to the sampling phase.
            let mut sweep_meter = EnergyMeter::new(self.topology.len());
            for i in 0..self.topology.len() {
                let node = prospector_net::NodeId::from_index(i);
                let mj = report.meter.node_total(node);
                if mj > 0.0 {
                    sweep_meter.charge(node, Phase::Sampling, mj);
                }
            }
            self.meter.merge(&sweep_meter);
            self.samples.push(values);
            return Ok(EpochReport {
                epoch,
                sampled: true,
                replanned: false,
                accuracy: 1.0,
                energy_mj: sweep_meter.total(),
            });
        }

        if self.samples.is_empty() {
            return Err(PlanError::NoSamples);
        }

        // (Re-)planning. The cadence counts epochs since the last
        // recalculation: a plain `epoch % replan_every` silently collides
        // with the sampling period (those epochs return early above) and
        // can starve replanning entirely.
        let mut replanned = false;
        let mut epoch_meter = EnergyMeter::new(self.topology.len());
        let due = self.plan.is_none()
            || (self.config.replan_every > 0
                && self.last_replan.is_none_or(|lr| epoch - lr >= self.config.replan_every));
        if due {
            self.last_replan = Some(epoch);
            let ctx = self.plan_context();
            let candidate = self.planner.plan(&ctx)?;
            let install = match &self.plan {
                None => true,
                Some(current) => {
                    let cur =
                        evaluate::expected_misses(current, self.topology, &self.samples);
                    let new =
                        evaluate::expected_misses(&candidate, self.topology, &self.samples);
                    cur - new >= self.config.replan_threshold
                }
            };
            if install {
                epoch_meter.merge(&install_plan(&candidate, self.topology, self.energy));
                self.plan = Some(candidate);
                replanned = true;
            }
        }

        let plan = self.plan.as_ref().expect("plan exists after planning step");
        let failure_pair = self.config.failures.as_ref().map(|f| (f, &mut self.rng));
        let report = execute_plan(plan, self.topology, self.energy, &values, k, failure_pair);
        epoch_meter.merge(&report.meter);
        self.meter.merge(&epoch_meter);

        let truth = top_k_nodes(&values, k);
        let hits = report.answer.iter().filter(|r| truth.contains(&r.node)).count();
        Ok(EpochReport {
            epoch,
            sampled: false,
            replanned,
            accuracy: hits as f64 / k as f64,
            energy_mj: epoch_meter.total(),
        })
    }

    /// Runs epochs `0..epochs`, collecting per-epoch reports.
    pub fn run<S: ValueSource>(
        &mut self,
        source: &mut S,
        epochs: u64,
    ) -> Result<Vec<EpochReport>, PlanError> {
        (0..epochs).map(|e| self.step(source, e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_core::ProspectorGreedy;
    use prospector_data::IndependentGaussian;
    use prospector_net::topology::balanced;

    fn config(budget: f64) -> ExperimentConfig {
        ExperimentConfig {
            k: 3,
            window: 10,
            policy: SamplePolicy::Periodic { warmup: 5, period: 20 },
            budget_mj: budget,
            replan_every: 10,
            replan_threshold: 0.25,
            failures: None,
            seed: 42,
        }
    }

    #[test]
    fn warmup_then_querying() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let planner = ProspectorGreedy;
        let mut source = IndependentGaussian::random(t.len(), 40.0..60.0, 1.0..4.0, 7);
        let mut runner = ExperimentRunner::new(&t, &em, &planner, config(30.0));
        let reports = runner.run(&mut source, 30).unwrap();
        assert!(reports[0].sampled && reports[4].sampled);
        assert!(!reports[5].sampled);
        assert!(reports[5].replanned, "first query epoch installs a plan");
        // Sampling epochs are exact.
        for r in &reports {
            if r.sampled {
                assert_eq!(r.accuracy, 1.0);
            }
        }
        // Energy is attributed per phase.
        assert!(runner.meter().phase_total(Phase::Sampling) > 0.0);
        assert!(runner.meter().phase_total(Phase::Collection) > 0.0);
        assert!(runner.meter().phase_total(Phase::PlanInstall) > 0.0);
    }

    #[test]
    fn accuracy_reasonable_with_stable_source() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let planner = ProspectorGreedy;
        // Very predictable source: tiny variance.
        let mut source = IndependentGaussian::random(t.len(), 40.0..60.0, 0.1..0.2, 9);
        let mut runner = ExperimentRunner::new(&t, &em, &planner, config(40.0));
        let reports = runner.run(&mut source, 40).unwrap();
        let queries: Vec<&EpochReport> = reports.iter().filter(|r| !r.sampled).collect();
        let avg: f64 =
            queries.iter().map(|r| r.accuracy).sum::<f64>() / queries.len() as f64;
        assert!(avg > 0.9, "stable source should be predictable: {avg}");
    }

    #[test]
    fn replanning_is_throttled_by_threshold() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let planner = ProspectorGreedy;
        let mut source = IndependentGaussian::random(t.len(), 40.0..60.0, 0.1..0.2, 3);
        let mut cfg = config(40.0);
        cfg.replan_threshold = 100.0; // impossible improvement
        let mut runner = ExperimentRunner::new(&t, &em, &planner, cfg);
        let reports = runner.run(&mut source, 40).unwrap();
        let replans = reports.iter().filter(|r| r.replanned).count();
        assert_eq!(replans, 1, "only the initial installation");
    }

    #[test]
    fn no_samples_error_when_policy_never_samples() {
        let t = balanced(2, 2);
        let em = EnergyModel::mica2();
        let planner = ProspectorGreedy;
        let mut source = IndependentGaussian::random(t.len(), 0.0..1.0, 0.1..0.2, 1);
        let mut cfg = config(10.0);
        cfg.policy = SamplePolicy::Never;
        let mut runner = ExperimentRunner::new(&t, &em, &planner, cfg);
        assert!(matches!(runner.step(&mut source, 0), Err(PlanError::NoSamples)));
    }
}
