//! Multi-epoch experiment runner: exploration sampling, planning,
//! re-planning, permanent-failure recovery and per-epoch metrics
//! (Sections 3 and 4.4).
//!
//! Per epoch the runner either spends a full-network sweep to refresh the
//! sample window (the exploration/exploitation scheme) or executes the
//! current plan. Plans are re-optimized at the base station every
//! `replan_every` epochs and **disseminated only if the expected
//! improvement exceeds a threshold** ("Plan Re-calculation", Section 4.4),
//! in which case the installation unicasts are charged.
//!
//! Permanent failures (Section 4.4) come from a [`FaultSchedule`]: when a
//! scheduled node death fires, the runner detects the silent node, charges
//! the tree rebuild under [`Phase::Repair`], re-parents the orphaned
//! subtrees ([`Topology::repair`]), masks the dead node out of the sample
//! window and forces a re-plan on the repaired tree. With transient
//! failures configured, plan dissemination itself is lossy: subplan
//! unicasts retry a bounded number of times and nodes that never receive
//! their new subplan keep executing the previous one.

use crate::backfill::{backfill_answer, backfill_answer_traced, AnswerEntry};
use crate::continuous::{apply_refresh, run_delta_epoch, run_refresh_epoch, ContinuousState};
use crate::dissemination::{install_plan_lossy_traced, install_plan_traced};
use crate::exec::{execute_plan, execute_plan_arq_traced, execute_plan_traced};
use crate::trace::charge;
use prospector_ckpt::{Checkpoint, CheckpointPolicy, CheckpointStore, StoreError};
use prospector_core::{
    evaluate, ContinuousPolicy, GatePolicy, Plan, PlanContext, PlanError, Planner, TrustState,
};
use prospector_data::{top_k_nodes, Reading, SamplePolicy, SampleSet, ValueSource};
use prospector_net::{
    epoch_seed, ArqPolicy, EnergyMeter, EnergyModel, FailureModel, FaultSchedule, NodeId, Phase,
    Topology,
};
use prospector_obs::{gini, MetricsRegistry, MetricsSnapshot, NullTracer, TraceEvent, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Configuration of a multi-epoch experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Top-k parameter.
    pub k: usize,
    /// Sample-window capacity.
    pub window: usize,
    /// When to spend full sweeps on sampling.
    pub policy: SamplePolicy,
    /// Collection-phase energy budget handed to the planner.
    pub budget_mj: f64,
    /// Re-optimize the plan every this many epochs (0 = plan once).
    pub replan_every: u64,
    /// Disseminate a recomputed plan only if it improves expected misses
    /// by at least this much (absolute, in values per query).
    pub replan_threshold: f64,
    /// Optional transient-failure model (used for planning, collection
    /// loss, and lossy plan dissemination).
    pub failures: Option<FailureModel>,
    /// Scheduled permanent failures (node deaths, link degradations).
    pub faults: FaultSchedule,
    /// Retries beyond the first attempt for each subplan unicast when
    /// dissemination is lossy (ignored without a failure model).
    pub install_retries: u32,
    /// Per-hop ARQ policy for collection unicasts when a (non-trivial)
    /// failure model is configured; the reliable path ignores it.
    pub arq: ArqPolicy,
    /// Graceful-degradation threshold: when an epoch's delivered fraction
    /// drops below this, the runner raises the collection retry budget by
    /// one (up to [`ExperimentConfig::max_retry_budget`]) and, once the
    /// budget is maxed out, forces a re-plan so a fallback chain can
    /// route around the bad links. `0.0` disables escalation.
    pub min_delivered: f64,
    /// Ceiling for the escalated collection retry budget.
    pub max_retry_budget: u32,
    /// Optional root-side plausibility gate: delivered readings outside
    /// their sample-window prediction band are substituted with the
    /// prediction, and repeat offenders are quarantined (see
    /// [`GatePolicy`]). Observation-only on honest data: when every
    /// reading stays in-band the run's output is bit-identical to an
    /// ungated one.
    pub gate: Option<GatePolicy>,
    /// Continuous-query mode: query epochs ship deltas against the
    /// policy's tolerance and threshold instead of executing a planner's
    /// collection plan, with periodic/forced full refreshes (see the
    /// [`continuous`](crate::continuous) module). `None` keeps the
    /// classic plan-and-collect mode.
    pub continuous: Option<ContinuousPolicy>,
    /// Seed for failure injection.
    pub seed: u64,
}

/// Why an [`ExperimentConfig`] cannot drive an experiment (see
/// [`ExperimentConfig::validate`]). Catching these at construction turns
/// what used to be downstream panics (a `SampleSet` assert, a division
/// by a zero window) into typed errors at the API boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `k` must be at least 1: a top-0 query answers nothing.
    KTooSmall { k: usize },
    /// `k` cannot exceed the network size.
    KExceedsNodes { k: usize, n: usize },
    /// The sample window must hold at least one sample.
    ZeroWindow,
    /// The planning budget must be finite and non-negative; NaN or an
    /// infinite budget would poison every expected-cost comparison.
    BadBudget { budget_mj: f64 },
    /// `min_delivered` is a fraction and must lie in `[0, 1]`.
    BadMinDelivered { min_delivered: f64 },
    /// The plausibility-gate policy has an invalid knob.
    BadGate { why: String },
    /// The continuous-query policy has an invalid knob.
    BadContinuous { why: String },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::KTooSmall { k } => write!(f, "k must be at least 1, got {k}"),
            ConfigError::KExceedsNodes { k, n } => {
                write!(f, "k = {k} exceeds the network size n = {n}")
            }
            ConfigError::ZeroWindow => write!(f, "sample window capacity must be nonzero"),
            ConfigError::BadBudget { budget_mj } => {
                write!(f, "budget must be finite and non-negative, got {budget_mj}")
            }
            ConfigError::BadMinDelivered { min_delivered } => {
                write!(f, "min_delivered must lie in [0, 1], got {min_delivered}")
            }
            ConfigError::BadGate { why } => write!(f, "invalid gate policy: {why}"),
            ConfigError::BadContinuous { why } => {
                write!(f, "invalid continuous policy: {why}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl ExperimentConfig {
    /// Checks the configuration against a network of `n` nodes.
    pub fn validate(&self, n: usize) -> Result<(), ConfigError> {
        if self.k < 1 {
            return Err(ConfigError::KTooSmall { k: self.k });
        }
        if self.k > n {
            return Err(ConfigError::KExceedsNodes { k: self.k, n });
        }
        if self.window == 0 {
            return Err(ConfigError::ZeroWindow);
        }
        if !self.budget_mj.is_finite() || self.budget_mj < 0.0 {
            return Err(ConfigError::BadBudget { budget_mj: self.budget_mj });
        }
        if !self.min_delivered.is_finite() || !(0.0..=1.0).contains(&self.min_delivered) {
            return Err(ConfigError::BadMinDelivered { min_delivered: self.min_delivered });
        }
        if let Some(gate) = &self.gate {
            gate.validate().map_err(|e| ConfigError::BadGate { why: e.to_string() })?;
        }
        if let Some(cont) = &self.continuous {
            cont.validate().map_err(|e| ConfigError::BadContinuous { why: e.to_string() })?;
        }
        Ok(())
    }
}

/// Why a [`Checkpoint`] could not be resumed into a runner.
#[derive(Debug, Clone, PartialEq)]
pub enum ResumeError {
    /// The checkpointed configuration fails validation.
    Config(ConfigError),
    /// The checkpoint's pieces disagree with each other (e.g. a sample
    /// window sized for a different network than the topology).
    Inconsistent(String),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Config(e) => write!(f, "checkpointed config is invalid: {e}"),
            ResumeError::Inconsistent(why) => write!(f, "checkpoint is inconsistent: {why}"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// A checkpointed run can fail in the epoch loop or at the store.
#[derive(Debug)]
pub enum CheckpointedRunError {
    Plan(PlanError),
    Store(StoreError),
}

impl std::fmt::Display for CheckpointedRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointedRunError::Plan(e) => write!(f, "epoch failed: {e}"),
            CheckpointedRunError::Store(e) => write!(f, "checkpoint write failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointedRunError {}

/// Planner names a resumed checkpoint may carry. `plan_via` holds a
/// `&'static str` (planner names are compile-time constants); a name
/// deserialized from disk is matched back to the known set, or leaked
/// once for an out-of-tree planner — a bounded leak, since checkpoints
/// are loaded a handful of times per process.
fn intern_planner_name(name: &str) -> &'static str {
    const KNOWN: &[&str] =
        &["greedy", "lp+lf", "lp-lf(-)", "naive-k", "prospector-proof", "fallback", "FAILING"];
    KNOWN
        .iter()
        .find(|&&k| k == name)
        .copied()
        .unwrap_or_else(|| Box::leak(name.to_string().into_boxed_str()))
}

/// What happened during one epoch.
#[derive(Debug, Clone)]
pub struct EpochReport {
    pub epoch: u64,
    /// This epoch was spent on a full sampling sweep.
    pub sampled: bool,
    /// A new plan was disseminated this epoch.
    pub replanned: bool,
    /// Fraction of the true top k returned (sampling sweeps are exact).
    /// After deaths, truth is the top k over surviving nodes.
    pub accuracy: f64,
    /// Energy spent this epoch (mJ), all phases.
    pub energy_mj: f64,
    /// Nodes that permanently failed at the start of this epoch.
    pub deaths: Vec<NodeId>,
    /// The spanning tree was rebuilt this epoch.
    pub repaired: bool,
    /// Name of the planner that produced the plan in force this epoch,
    /// when it was not the chain's primary (see
    /// [`Planner::plan_traced`](prospector_core::Planner::plan_traced));
    /// `None` while the primary planner is holding up.
    pub fallback_used: Option<&'static str>,
    /// Used edges whose batch was lost after exhausting the ARQ budget.
    pub lost_edges: usize,
    /// Collection retransmissions this epoch (attempts beyond the first).
    pub retransmissions: u32,
    /// Fraction of plan-visited nodes whose batch reached the root.
    pub delivered_fraction: f64,
    /// Answer entries backfilled from window predictions (estimated, not
    /// observed).
    pub backfilled: usize,
    /// Collection retry budget in force this epoch (may exceed the
    /// configured `arq.max_retries` after escalations).
    pub retry_budget: u32,
    /// Subplan unicasts that exhausted dissemination retries this epoch
    /// (0 when no plan was installed).
    pub install_undelivered: usize,
    /// Readings the plausibility gate replaced with window predictions
    /// this epoch (out-of-band, or held back by quarantine). Always 0
    /// without a [`ExperimentConfig::gate`].
    pub flagged: usize,
    /// Nodes in quarantine at the end of this epoch.
    pub quarantined: usize,
    /// Nodes that completed parole and were readmitted this epoch.
    pub readmitted: usize,
    /// Deltas the root applied to its cached view this epoch. Always 0
    /// outside continuous mode and on full-refresh epochs.
    pub deltas_shipped: usize,
    /// This epoch re-collected the whole network (continuous mode: a
    /// forced/periodic refresh or an exploration sweep). Always false
    /// outside continuous mode.
    pub full_refresh: bool,
    /// Radio transmissions this epoch (data messages, beacons, retries,
    /// acks, trigger and threshold broadcasts). Counted only by the
    /// continuous protocol paths — 0 in classic mode and on continuous
    /// exploration sweeps, whose cost is tracked in energy terms only.
    pub messages: u32,
    /// Cumulative metrics snapshot at the end of this epoch; present only
    /// after [`ExperimentRunner::enable_metrics`]. Snapshots may carry
    /// wall-clock measurements (plan latency) and are never part of the
    /// deterministic trace.
    pub metrics: Option<MetricsSnapshot>,
}

/// Per-epoch tally of plausibility-gate interventions.
#[derive(Debug, Clone, Copy, Default)]
struct GateTally {
    /// Readings replaced with window predictions.
    substituted: usize,
    /// Nodes readmitted from quarantine.
    readmitted: usize,
}

/// Drives a planner over a value source for many epochs.
pub struct ExperimentRunner<'a> {
    /// Owned: permanent failures rewrite the tree mid-run.
    topology: Topology,
    energy: &'a EnergyModel,
    planner: &'a dyn Planner,
    config: ExperimentConfig,
    samples: SampleSet,
    plan: Option<Plan>,
    /// Provenance of the currently installed plan (planner name, depth).
    plan_via: Option<(&'static str, usize)>,
    /// Epoch of the last plan recalculation (None before the first).
    last_replan: Option<u64>,
    /// Owned: link degradations worsen edges mid-run.
    failures: Option<FailureModel>,
    /// Collection ARQ policy currently in force; starts at the configured
    /// policy and escalates when delivery degrades.
    arq: ArqPolicy,
    /// `alive[i]` is false once node i has permanently failed.
    alive: Vec<bool>,
    /// Per-node plausibility-gate trust state; stays all-default without
    /// a gate policy (and on honest data with one).
    trust: Vec<TrustState>,
    /// Continuous-protocol state, present exactly when
    /// [`ExperimentConfig::continuous`] is.
    cont: Option<ContinuousState>,
    meter: EnergyMeter,
    rng: StdRng,
    /// Aggregate metrics; populated only after
    /// [`ExperimentRunner::enable_metrics`].
    metrics: Option<MetricsRegistry>,
    /// The epoch the next [`ExperimentRunner::run_to`] call starts at:
    /// one past the last completed epoch (0 for a fresh runner).
    next_epoch: u64,
}

impl<'a> ExperimentRunner<'a> {
    /// Builds a runner, panicking on an invalid configuration. Callers
    /// that want the error instead use [`ExperimentRunner::try_new`].
    pub fn new(
        topology: &Topology,
        energy: &'a EnergyModel,
        planner: &'a dyn Planner,
        config: ExperimentConfig,
    ) -> Self {
        Self::try_new(topology, energy, planner, config)
            .unwrap_or_else(|e| panic!("invalid experiment config: {e}"))
    }

    /// Builds a runner after validating `config` against the topology.
    pub fn try_new(
        topology: &Topology,
        energy: &'a EnergyModel,
        planner: &'a dyn Planner,
        config: ExperimentConfig,
    ) -> Result<Self, ConfigError> {
        config.validate(topology.len())?;
        let samples = SampleSet::new(topology.len(), config.k, config.window);
        let rng = StdRng::seed_from_u64(config.seed);
        let failures = config.failures.clone();
        let arq = config.arq;
        Ok(ExperimentRunner {
            topology: topology.clone(),
            energy,
            planner,
            samples,
            plan: None,
            plan_via: None,
            last_replan: None,
            failures,
            arq,
            alive: vec![true; topology.len()],
            trust: vec![TrustState::default(); topology.len()],
            cont: config.continuous.as_ref().map(|_| ContinuousState::new(topology.len())),
            meter: EnergyMeter::new(topology.len()),
            rng,
            metrics: None,
            config,
            next_epoch: 0,
        })
    }

    /// Captures the full resumable state at the current epoch boundary.
    ///
    /// The capture is pure observation — it consumes no randomness and
    /// mutates nothing — so a run that checkpoints every epoch produces
    /// traces byte-identical to one that never checkpoints.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            next_epoch: self.next_epoch,
            k: self.config.k,
            window: self.config.window,
            policy: self.config.policy.clone(),
            budget_mj: self.config.budget_mj,
            replan_every: self.config.replan_every,
            replan_threshold: self.config.replan_threshold,
            config_failures: self.config.failures.clone(),
            faults: self.config.faults.clone(),
            install_retries: self.config.install_retries,
            config_arq: self.config.arq,
            min_delivered: self.config.min_delivered,
            max_retry_budget: self.config.max_retry_budget,
            gate: self.config.gate,
            continuous: self.config.continuous,
            seed: self.config.seed,
            topology: self.topology.clone(),
            alive: self.alive.clone(),
            trust: self.trust.clone(),
            samples: self.samples.clone(),
            meter: self.meter.clone(),
            plan: self.plan.clone(),
            plan_via: self.plan_via.map(|(name, depth)| (name.to_string(), depth as u64)),
            last_replan: self.last_replan,
            failures: self.failures.clone(),
            arq: self.arq,
            rng_state: self.rng.state(),
            metrics: self.metrics.as_ref().map(|m| m.snapshot()),
            cont_state: self.cont.as_ref().map(ContinuousState::to_image),
        }
    }

    /// Rebuilds a runner from a checkpoint. The energy model and planner
    /// are borrowed anew (they are stateless, so they need not be — and
    /// cannot be — serialized); everything else comes from the image.
    /// The resumed runner's next [`ExperimentRunner::run_to`] continues
    /// at `ckpt.next_epoch` and replays the uninterrupted run exactly,
    /// provided the value source is epoch-deterministic (stateless per
    /// epoch, like `IndependentGaussian` — a stateful source such as
    /// `RandomWalk` must be fast-forwarded by the caller).
    pub fn resume(
        ckpt: Checkpoint,
        energy: &'a EnergyModel,
        planner: &'a dyn Planner,
    ) -> Result<Self, ResumeError> {
        let config = ExperimentConfig {
            k: ckpt.k,
            window: ckpt.window,
            policy: ckpt.policy,
            budget_mj: ckpt.budget_mj,
            replan_every: ckpt.replan_every,
            replan_threshold: ckpt.replan_threshold,
            failures: ckpt.config_failures,
            faults: ckpt.faults,
            install_retries: ckpt.install_retries,
            arq: ckpt.config_arq,
            min_delivered: ckpt.min_delivered,
            max_retry_budget: ckpt.max_retry_budget,
            gate: ckpt.gate,
            continuous: ckpt.continuous,
            seed: ckpt.seed,
        };
        let n = ckpt.topology.len();
        config.validate(n).map_err(ResumeError::Config)?;
        let inconsistent = |why: String| Err(ResumeError::Inconsistent(why));
        if ckpt.samples.num_nodes() != n {
            return inconsistent(format!(
                "sample window covers {} nodes, topology has {n}",
                ckpt.samples.num_nodes()
            ));
        }
        if ckpt.samples.k() != config.k || ckpt.samples.capacity() != config.window {
            return inconsistent(format!(
                "sample window is (k={}, capacity={}), config says (k={}, window={})",
                ckpt.samples.k(),
                ckpt.samples.capacity(),
                config.k,
                config.window
            ));
        }
        if ckpt.alive.len() != n {
            return inconsistent(format!(
                "alive mask covers {} nodes, topology has {n}",
                ckpt.alive.len()
            ));
        }
        if ckpt.trust.len() != n {
            return inconsistent(format!(
                "trust state covers {} nodes, topology has {n}",
                ckpt.trust.len()
            ));
        }
        if ckpt.meter.node_totals().len() != n {
            return inconsistent(format!(
                "meter covers {} nodes, topology has {n}",
                ckpt.meter.node_totals().len()
            ));
        }
        if let Some(f) = &ckpt.failures {
            if f.len() != n {
                return inconsistent(format!(
                    "failure model covers {} nodes, topology has {n}",
                    f.len()
                ));
            }
        }
        let cont = match (&config.continuous, ckpt.cont_state) {
            (Some(_), Some(img)) => {
                if img.view.len() != n {
                    return inconsistent(format!(
                        "continuous state covers {} nodes, topology has {n}",
                        img.view.len()
                    ));
                }
                Some(ContinuousState::from_image(img).map_err(ResumeError::Inconsistent)?)
            }
            (Some(_), None) => {
                return inconsistent(
                    "config is continuous but the checkpoint has no protocol state".to_string(),
                )
            }
            (None, Some(_)) => {
                return inconsistent(
                    "checkpoint carries continuous state but the config is not continuous"
                        .to_string(),
                )
            }
            (None, None) => None,
        };
        Ok(ExperimentRunner {
            topology: ckpt.topology,
            energy,
            planner,
            samples: ckpt.samples,
            plan: ckpt.plan,
            plan_via: ckpt
                .plan_via
                .map(|(name, depth)| (intern_planner_name(&name), depth as usize)),
            last_replan: ckpt.last_replan,
            failures: ckpt.failures,
            arq: ckpt.arq,
            alive: ckpt.alive,
            trust: ckpt.trust,
            cont,
            meter: ckpt.meter,
            rng: StdRng::from_state(ckpt.rng_state),
            metrics: ckpt.metrics.as_ref().map(MetricsRegistry::from_snapshot),
            config,
            next_epoch: ckpt.next_epoch,
        })
    }

    /// Turns on aggregate metrics: every subsequent epoch updates the
    /// registry and embeds a cumulative [`MetricsSnapshot`] in its report.
    pub fn enable_metrics(&mut self) {
        self.metrics = Some(MetricsRegistry::new());
    }

    /// The metrics registry, if [`ExperimentRunner::enable_metrics`] was
    /// called.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// Collection ARQ policy currently in force (reflects escalations).
    pub fn arq(&self) -> ArqPolicy {
        self.arq
    }

    /// Cumulative energy across all epochs run so far.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// The currently installed plan, if any.
    pub fn current_plan(&self) -> Option<&Plan> {
        self.plan.as_ref()
    }

    /// Current sample window (for inspection).
    pub fn samples(&self) -> &SampleSet {
        &self.samples
    }

    /// The routing tree as currently repaired.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Per-node liveness (false once permanently failed).
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    fn plan_context(&self) -> PlanContext<'_> {
        let mut ctx =
            PlanContext::new(&self.topology, self.energy, &self.samples, self.config.budget_mj);
        if let Some(f) = &self.failures {
            // Edge costs price the ARQ policy collection will actually run
            // under (including escalations), steering plans around bad
            // links.
            ctx = ctx.with_failures(f).with_arq(self.arq);
        }
        ctx
    }

    /// Applies the faults scheduled for `epoch`; returns the nodes that
    /// died. Charges detection + re-attachment under [`Phase::Repair`].
    fn apply_faults(
        &mut self,
        epoch: u64,
        epoch_meter: &mut EnergyMeter,
        tracer: &mut dyn Tracer,
    ) -> Result<Vec<NodeId>, PlanError> {
        let deaths: Vec<NodeId> = self
            .config
            .faults
            .deaths_at(epoch)
            .into_iter()
            .filter(|d| d.index() < self.alive.len() && self.alive[d.index()])
            .collect();
        if !deaths.is_empty() {
            for &d in &deaths {
                if d != self.topology.root() {
                    self.alive[d.index()] = false;
                }
                if tracer.enabled() {
                    tracer.record(TraceEvent::NodeDeath { node: d.0 });
                }
            }
            charge_repair(&self.topology, &self.alive, &deaths, self.energy, epoch_meter, tracer);
            self.topology = self.topology.repair(&deaths)?;
            if tracer.enabled() {
                tracer.record(TraceEvent::TreeRepaired { deaths: deaths.len() as u32 });
            }
            self.samples.mask_nodes(&deaths);
            // The old plan routes through the dead node; discard it and
            // re-plan on the repaired tree immediately.
            self.plan = None;
            self.plan_via = None;
            self.last_replan = None;
        }
        for (child, added) in self.config.faults.degradations_at(epoch) {
            if let Some(f) = self.failures.as_mut() {
                if child.index() < f.len() {
                    f.degrade(child, added).expect("fault schedule validates probabilities");
                    if tracer.enabled() {
                        tracer.record(TraceEvent::LinkDegraded { child: child.0, added });
                    }
                }
            }
        }
        Ok(deaths)
    }

    /// Runs one epoch against `source`, returning what happened.
    pub fn step<S: ValueSource>(
        &mut self,
        source: &mut S,
        epoch: u64,
    ) -> Result<EpochReport, PlanError> {
        self.step_traced(source, epoch, &mut NullTracer)
    }

    /// [`ExperimentRunner::step`] with tracing: the epoch's event stream
    /// is recorded between `EpochStart` and `EpochEnd` brackets. Every
    /// field of every event is a pure function of seeded state, so with a
    /// fixed seed the stream is byte-identical across runs and thread
    /// counts once serialized.
    pub fn step_traced<S: ValueSource>(
        &mut self,
        source: &mut S,
        epoch: u64,
        tracer: &mut dyn Tracer,
    ) -> Result<EpochReport, PlanError> {
        if tracer.enabled() {
            tracer.record(TraceEvent::EpochStart { epoch });
        }
        let mut values = source.values(epoch);
        let k = self.config.k;
        let mut epoch_meter = EnergyMeter::new(self.topology.len());

        let deaths = self.apply_faults(epoch, &mut epoch_meter, tracer)?;
        let repaired = !deaths.is_empty();
        if let Some(cont) = self.cont.as_mut() {
            // Custody held at a dead node dies with it; scrubbing here
            // (before any transport) keeps the repair-forced refresh the
            // only thing that can re-learn the lost subtree.
            cont.on_deaths(&deaths);
        }
        mask_dead_values(&mut values, &self.alive);

        // Data faults corrupt readings where they are sourced, after death
        // masking (a dead sensor reports nothing, corrupted or not), so
        // every execution path below sees the same lies. The clean copy is
        // the ground truth accuracy is scored against; without data faults
        // the truth is `values` itself and no copy is taken.
        let clean = self.config.faults.has_data_faults().then(|| values.clone());
        for f in self.config.faults.corrupt_values(epoch, &mut values) {
            if tracer.enabled() {
                tracer.record(TraceEvent::DataFault {
                    node: f.node.0,
                    kind: f.kind,
                    clean: f.clean,
                    corrupted: f.corrupted,
                });
            }
        }

        // Exploration: full sweep feeds the window and answers exactly.
        if self.config.policy.should_sample(epoch) {
            let mut sweep = Plan::full_sweep(&self.topology);
            mask_dead_edges(&mut sweep, &self.topology, &self.alive);
            let report = execute_plan(&sweep, &self.topology, self.energy, &values, k, None);
            // Re-attribute the sweep to the sampling phase. Events mirror
            // the epoch meter's charges (the re-attributed ones), not the
            // throwaway per-execution meter.
            for i in 0..self.topology.len() {
                let node = NodeId::from_index(i);
                let mj = report.meter.node_total(node);
                if mj > 0.0 {
                    charge(&mut epoch_meter, tracer, node, Phase::Sampling, mj);
                }
            }
            // Root-side gate on the sweep: implausible readings feed the
            // window (and the answer) as predictions, so a lying sensor
            // cannot poison the very history it is judged against.
            let raw = self.cont.is_some().then(|| values.clone());
            let mut gated = GateTally::default();
            if let Some(policy) = self.config.gate {
                gated = self.gate_sweep(epoch, &mut values, &policy, tracer);
            }
            // In continuous mode a sweep delivers every alive reading, so
            // it doubles as a free full refresh: the view re-seeds from
            // the raw (pre-gate) reported values — exactly what nodes
            // would ship — while the answer takes the gated ones.
            let cont_messages = match raw {
                Some(raw) => {
                    self.continuous_after_sweep(epoch, &raw, &values, &mut epoch_meter, tracer)
                }
                None => 0,
            };
            self.meter.merge(&epoch_meter);
            // Sweeps answer exactly over what the network reports; with
            // data faults in play, score the (gated) report against the
            // clean truth instead of hard-coding exactness.
            let accuracy = match &clean {
                None => 1.0,
                Some(clean_values) => {
                    let truth = top_k_nodes(clean_values, k);
                    let answered = top_k_nodes(&values, k);
                    answered.iter().filter(|n| truth.contains(n)).count() as f64 / k as f64
                }
            };
            self.samples.push(values);
            let report = EpochReport {
                epoch,
                sampled: true,
                replanned: false,
                accuracy,
                energy_mj: epoch_meter.total(),
                deaths,
                repaired,
                fallback_used: self.fallback_used(),
                lost_edges: 0,
                retransmissions: 0,
                delivered_fraction: 1.0,
                backfilled: 0,
                retry_budget: self.arq.max_retries,
                install_undelivered: 0,
                flagged: gated.substituted,
                quarantined: self.quarantined_count(),
                readmitted: gated.readmitted,
                deltas_shipped: 0,
                full_refresh: self.cont.is_some(),
                messages: cont_messages,
                metrics: None,
            };
            return Ok(self.finish_epoch(report, tracer));
        }

        // Continuous query epochs bypass planning and plan execution
        // entirely (and need no samples: without a window the gate simply
        // abstains, and thresholds come from the protocol itself).
        if self.cont.is_some() {
            let report = self.continuous_query_epoch(
                epoch,
                &values,
                clean.as_deref(),
                deaths,
                repaired,
                &mut epoch_meter,
                tracer,
            );
            return Ok(self.finish_epoch(report, tracer));
        }

        if self.samples.is_empty() {
            return Err(PlanError::NoSamples);
        }

        // (Re-)planning. The cadence counts epochs since the last
        // recalculation: a plain `epoch % replan_every` silently collides
        // with the sampling period (those epochs return early above) and
        // can starve replanning entirely.
        let mut replanned = false;
        let mut install_undelivered = 0usize;
        let due = self.plan.is_none()
            || (self.config.replan_every > 0
                && self.last_replan.is_none_or(|lr| epoch - lr >= self.config.replan_every));
        if due {
            self.last_replan = Some(epoch);
            // Plan latency is wall-clock and lives only in the metrics
            // registry, never in the trace.
            let plan_start = self.metrics.is_some().then(Instant::now);
            let traced = {
                let ctx = self.plan_context();
                self.planner.plan_traced(&ctx)?
            };
            if let (Some(m), Some(t0)) = (self.metrics.as_mut(), plan_start) {
                m.observe("plan_latency_ms", t0.elapsed().as_secs_f64() * 1e3);
                if let Some(lp) = &traced.lp {
                    m.observe("lp_iterations", lp.iterations as f64);
                }
            }
            let mut candidate = traced.plan;
            // A planner that ignores samples (e.g. NAIVE-k as the last
            // fallback) may still route dead parked leaves; strip them.
            mask_dead_edges(&mut candidate, &self.topology, &self.alive);
            let install = match &self.plan {
                None => true,
                Some(current) => {
                    // Scored by the rank-order claiming kernel over the
                    // window's stored top-k sets (O(k·depth) per sample),
                    // so this comparison stays cheap at 50k nodes.
                    let cur = evaluate::expected_misses(current, &self.topology, &self.samples);
                    let new = evaluate::expected_misses(&candidate, &self.topology, &self.samples);
                    cur - new >= self.config.replan_threshold
                }
            };
            if tracer.enabled() {
                for a in &traced.attempts {
                    tracer.record(TraceEvent::PlanAttempt {
                        planner: a.planner,
                        error: a.error.clone(),
                    });
                }
                tracer.record(TraceEvent::PlanChosen {
                    planner: traced.planner,
                    fallback_depth: traced.fallback_depth as u32,
                    lp_iterations: traced.lp.as_ref().map(|s| s.iterations as u64),
                    lp_objective: traced.lp.as_ref().map(|s| s.objective),
                    cost_mj: self.plan_context().plan_cost(&candidate),
                    total_bandwidth: candidate.total_bandwidth(),
                    installed: install,
                });
            }
            if install {
                let used_edges =
                    self.topology.edges().filter(|&e| candidate.is_used(e)).count() as u32;
                match &self.failures {
                    Some(f) if !f.is_trivial() => {
                        let (install_meter, delivery) = install_plan_lossy_traced(
                            &candidate,
                            &self.topology,
                            self.energy,
                            f,
                            &mut self.rng,
                            self.config.install_retries,
                            tracer,
                        );
                        epoch_meter.merge(&install_meter);
                        install_undelivered = delivery.undelivered.len();
                        if tracer.enabled() {
                            tracer.record(TraceEvent::PlanInstalled {
                                edges: used_edges,
                                undelivered: install_undelivered as u32,
                                attempts: delivery.attempts,
                            });
                        }
                        if !delivery.undelivered.is_empty() {
                            // Nodes that never heard the new subplan keep
                            // executing their old one.
                            for &e in &delivery.undelivered {
                                let old = self.plan.as_ref().map_or(0, |p| p.bandwidth(e));
                                candidate.set_bandwidth(e, old);
                            }
                            candidate.repair_connectivity(&self.topology);
                            mask_dead_edges(&mut candidate, &self.topology, &self.alive);
                        }
                    }
                    _ => {
                        let install_meter =
                            install_plan_traced(&candidate, &self.topology, self.energy, tracer);
                        epoch_meter.merge(&install_meter);
                        if tracer.enabled() {
                            tracer.record(TraceEvent::PlanInstalled {
                                edges: used_edges,
                                undelivered: 0,
                                attempts: used_edges,
                            });
                        }
                    }
                }
                self.plan = Some(candidate);
                self.plan_via = Some((traced.planner, traced.fallback_depth));
                replanned = true;
            }
        }

        let plan = self.plan.as_ref().expect("plan exists after planning step");
        let retry_budget = self.arq.max_retries;
        // With lossy links, collection runs real per-hop delivery: every
        // upward batch is retried under the ARQ policy and a hop that
        // exhausts its budget loses its subtree's batch. Loss-free runs
        // keep the exact reliable path (and its energy accounting,
        // byte-for-byte).
        let report = match &self.failures {
            Some(f) if !f.is_trivial() => execute_plan_arq_traced(
                plan,
                &self.topology,
                self.energy,
                &values,
                k,
                f,
                &self.arq,
                epoch_seed(self.config.seed, epoch),
                tracer,
            ),
            _ => execute_plan_traced(plan, &self.topology, self.energy, &values, k, None, tracer),
        };
        epoch_meter.merge(&report.meter);
        self.meter.merge(&epoch_meter);

        // Root-side plausibility gate: delivered readings outside their
        // prediction band are flagged and replaced with the window
        // prediction (the backfill estimated-entry convention); nodes in
        // quarantine are substituted unconditionally until parole.
        let mut kept: Vec<Reading> = Vec::new();
        let mut substituted: Vec<AnswerEntry> = Vec::new();
        let mut gated = GateTally::default();
        if let Some(policy) = self.config.gate {
            for &reading in &report.answer {
                match self.gate_reading(reading, epoch, &policy, &mut gated, tracer) {
                    Some(prediction) => {
                        substituted.push(AnswerEntry { reading: prediction, estimated: true })
                    }
                    None => kept.push(reading),
                }
            }
        }
        let answer: &[Reading] = if self.config.gate.is_some() { &kept } else { &report.answer };
        // Re-borrow: gating above needed `&mut self`.
        let plan = self.plan.as_ref().expect("plan exists after planning step");

        // Graceful degradation at the root: estimate lost subtrees from
        // the sample window and answer over delivered + backfilled (+
        // gate-substituted) entries.
        let entries: Vec<AnswerEntry> = if substituted.is_empty() {
            backfill_answer_traced(
                answer,
                &report.lost_edges,
                plan,
                &self.topology,
                &self.samples,
                k,
                tracer,
            )
        } else {
            // Substituted entries compete by rank exactly like backfilled
            // ones; `Backfill` events are only owed to estimates that
            // survive the final cut, so emit them after the merge.
            let mut entries =
                backfill_answer(answer, &report.lost_edges, plan, &self.topology, &self.samples, k);
            entries.extend(substituted.iter().copied());
            entries.sort_unstable_by(|a, b| a.reading.rank_cmp(&b.reading));
            entries.truncate(k);
            if tracer.enabled() {
                for e in entries.iter().filter(|e| {
                    e.estimated && !substituted.iter().any(|s| s.reading.node == e.reading.node)
                }) {
                    tracer.record(TraceEvent::Backfill {
                        node: e.reading.node.0,
                        predicted: e.reading.value,
                    });
                }
            }
            entries
        };
        let backfilled = entries
            .iter()
            .filter(|e| {
                e.estimated && !substituted.iter().any(|s| s.reading.node == e.reading.node)
            })
            .count();
        let truth = top_k_nodes(clean.as_deref().unwrap_or(&values), k);
        let hits = entries.iter().filter(|e| truth.contains(&e.reading.node)).count();

        // Adaptive reliability: when too little of the network is heard
        // from, first spend more on retries; once the budget is maxed,
        // force a re-plan so a fallback chain can route around the loss
        // (edge costs in `plan_context` already price the current ARQ).
        if self.config.min_delivered > 0.0 && report.delivered_fraction < self.config.min_delivered
        {
            if self.arq.max_retries < self.config.max_retry_budget {
                self.arq.max_retries += 1;
                if tracer.enabled() {
                    tracer.record(TraceEvent::RetryEscalated { max_retries: self.arq.max_retries });
                }
                if let Some(m) = self.metrics.as_mut() {
                    m.count("retry_escalations", 1);
                }
            } else {
                self.plan = None;
                self.last_replan = None;
                if tracer.enabled() {
                    tracer.record(TraceEvent::ReplanForced {
                        delivered_fraction: report.delivered_fraction,
                    });
                }
                if let Some(m) = self.metrics.as_mut() {
                    m.count("forced_replans", 1);
                }
            }
        }

        let report = EpochReport {
            epoch,
            sampled: false,
            replanned,
            accuracy: hits as f64 / k as f64,
            energy_mj: epoch_meter.total(),
            deaths,
            repaired,
            fallback_used: self.fallback_used(),
            lost_edges: report.lost_edges.len(),
            retransmissions: report.retransmissions,
            delivered_fraction: report.delivered_fraction,
            backfilled,
            retry_budget,
            install_undelivered,
            flagged: gated.substituted,
            quarantined: self.quarantined_count(),
            readmitted: gated.readmitted,
            deltas_shipped: 0,
            full_refresh: false,
            messages: 0,
            metrics: None,
        };
        Ok(self.finish_epoch(report, tracer))
    }

    /// The continuous-protocol state, when the run is in continuous mode.
    pub fn continuous_state(&self) -> Option<&ContinuousState> {
        self.cont.as_ref()
    }

    /// Runs one continuous-mode query epoch: either a full refresh (first
    /// epoch, death repair, untrusted silence, or the refresh period) or
    /// a delta epoch, followed by the root-side view audit, the cached
    /// answer patch and the threshold broadcast.
    #[allow(clippy::too_many_arguments)]
    fn continuous_query_epoch(
        &mut self,
        epoch: u64,
        values: &[f64],
        clean: Option<&[f64]>,
        deaths: Vec<NodeId>,
        repaired: bool,
        epoch_meter: &mut EnergyMeter,
        tracer: &mut dyn Tracer,
    ) -> EpochReport {
        let k = self.config.k;
        let policy = self.config.continuous.expect("continuous mode");
        let mut state = self.cont.take().expect("continuous mode");
        let retry_budget = self.arq.max_retries;
        let seed = epoch_seed(self.config.seed, epoch);

        // Refresh-reason precedence: a run must start with one; deaths
        // invalidate custody and silence alike; a lost beacon (or maxed
        // escalation) means silence can't be trusted; then the period.
        let refresh_reason: Option<&'static str> = if state.last_refresh().is_none() {
            Some("first")
        } else if repaired {
            Some("repair")
        } else if state.force_refresh() {
            Some("loss")
        } else if epoch - state.last_refresh().expect("checked above") >= policy.refresh_period {
            Some("period")
        } else {
            None
        };

        let (deltas_shipped, lost_edges, retransmissions, delivered_fraction, mut messages);
        let full_refresh = refresh_reason.is_some();
        if let Some(reason) = refresh_reason {
            if tracer.enabled() {
                tracer.record(TraceEvent::FullRefresh { reason });
            }
            let out = run_refresh_epoch(
                &mut state,
                &self.topology,
                &self.alive,
                self.energy,
                values,
                policy.sketch,
                self.failures.as_ref(),
                &self.arq,
                seed,
                epoch_meter,
                tracer,
            );
            state.set_last_refresh(epoch);
            state.set_force_refresh(false);
            deltas_shipped = 0;
            lost_edges = out.lost_edges.len();
            retransmissions = out.retransmissions;
            delivered_fraction = out.delivered_fraction;
            messages = out.messages;
        } else {
            let out = run_delta_epoch(
                &mut state,
                &self.topology,
                &self.alive,
                self.energy,
                values,
                policy.tolerance,
                self.failures.as_ref(),
                &self.arq,
                seed,
                epoch,
                epoch_meter,
                tracer,
            );
            if out.beacon_lost {
                state.set_force_refresh(true);
            }
            deltas_shipped = out.applied.len();
            lost_edges = out.lost_edges.len();
            retransmissions = out.retransmissions;
            delivered_fraction = out.delivered_fraction;
            messages = out.messages;
        }

        // Root-side audit: gate the *whole* cached view every epoch (not
        // just what moved), so trust evolves identically whether a value
        // arrived this epoch or is being carried forward — the property
        // the delta-vs-refresh-every-epoch equivalence tests pin down.
        let mut gated = GateTally::default();
        if let Some(gate_policy) = self.config.gate {
            for i in 0..self.topology.len() {
                if !self.alive[i] {
                    continue;
                }
                let v = state.view()[i];
                if !v.is_finite() {
                    continue;
                }
                let reading = Reading { node: NodeId::from_index(i), value: v };
                let eff = match self.gate_reading(reading, epoch, &gate_policy, &mut gated, tracer)
                {
                    Some(prediction) => prediction.value,
                    None => v,
                };
                state.set_eff(i, eff);
            }
        } else {
            for i in 0..self.topology.len() {
                if self.alive[i] {
                    state.set_eff(i, state.view()[i]);
                }
            }
        }

        let answer = state.answer(k);
        let truth = top_k_nodes(clean.unwrap_or(values), k);
        let hits = answer.iter().filter(|r| truth.contains(&r.node)).count();
        messages += self.continuous_update_threshold(&mut state, policy, epoch_meter, tracer);

        // Adaptive reliability, continuous flavour: spend more retries
        // first; once maxed, the next epoch re-learns the network with a
        // forced refresh instead of re-planning.
        if self.config.min_delivered > 0.0 && delivered_fraction < self.config.min_delivered {
            if self.arq.max_retries < self.config.max_retry_budget {
                self.arq.max_retries += 1;
                if tracer.enabled() {
                    tracer.record(TraceEvent::RetryEscalated { max_retries: self.arq.max_retries });
                }
                if let Some(m) = self.metrics.as_mut() {
                    m.count("retry_escalations", 1);
                }
            } else {
                state.set_force_refresh(true);
                if let Some(m) = self.metrics.as_mut() {
                    m.count("forced_refreshes", 1);
                }
            }
        }

        self.cont = Some(state);
        self.meter.merge(epoch_meter);
        EpochReport {
            epoch,
            sampled: false,
            replanned: false,
            accuracy: hits as f64 / k as f64,
            energy_mj: epoch_meter.total(),
            deaths,
            repaired,
            fallback_used: self.fallback_used(),
            lost_edges,
            retransmissions,
            delivered_fraction,
            backfilled: 0,
            retry_budget,
            install_undelivered: 0,
            flagged: gated.substituted,
            quarantined: self.quarantined_count(),
            readmitted: gated.readmitted,
            deltas_shipped,
            full_refresh,
            messages,
            metrics: None,
        }
    }

    /// Folds an exploration sweep's delivered values into the continuous
    /// state as a free full refresh (reason `"sweep"`): the raw reported
    /// values re-seed view and last-shipped (superseding custody), the
    /// gated values become the effective answer, sketches rebuild, and
    /// the threshold updates. Returns the messages charged (sketch
    /// uplinks + threshold broadcasts).
    fn continuous_after_sweep(
        &mut self,
        epoch: u64,
        raw: &[f64],
        gated_values: &[f64],
        epoch_meter: &mut EnergyMeter,
        tracer: &mut dyn Tracer,
    ) -> u32 {
        let policy = self.config.continuous.expect("continuous mode");
        let mut state = self.cont.take().expect("continuous mode");
        if tracer.enabled() {
            tracer.record(TraceEvent::FullRefresh { reason: "sweep" });
        }
        let delivered = self.alive.clone();
        let mut messages = 0u32;
        apply_refresh(
            &mut state,
            &self.topology,
            &self.alive,
            raw,
            &delivered,
            policy.sketch,
            self.energy,
            epoch_meter,
            tracer,
            &mut messages,
        );
        state.set_last_refresh(epoch);
        state.set_force_refresh(false);
        for (i, &g) in gated_values.iter().enumerate() {
            if self.alive[i] {
                state.set_eff(i, g);
            }
        }
        messages += self.continuous_update_threshold(&mut state, policy, epoch_meter, tracer);
        self.cont = Some(state);
        messages
    }

    /// Recomputes the k-th threshold from the cached answer and, when it
    /// moved by more than the tolerance, broadcasts it down the tree
    /// (every alive interior node relays once, like a trigger wave).
    /// Nodes keep judging against the *old* threshold until a broadcast
    /// actually happens — the root cannot update them for free.
    fn continuous_update_threshold(
        &mut self,
        state: &mut ContinuousState,
        policy: ContinuousPolicy,
        epoch_meter: &mut EnergyMeter,
        tracer: &mut dyn Tracer,
    ) -> u32 {
        let answer = state.answer(self.config.k);
        let new_tau = if answer.len() == self.config.k {
            answer[self.config.k - 1].value
        } else {
            f64::NEG_INFINITY
        };
        // NaN-safe: -inf minus -inf is NaN, and NaN > tol is false, so an
        // unchanged "no threshold yet" never broadcasts.
        let moved = (new_tau - state.threshold()).abs() > policy.tolerance;
        if !moved {
            return 0;
        }
        state.set_threshold(new_tau);
        let mut messages = 0u32;
        for i in 0..self.topology.len() {
            let u = NodeId::from_index(i);
            if !self.alive[i] {
                continue;
            }
            if self.topology.children(u).iter().any(|&c| self.alive[c.index()]) {
                charge(epoch_meter, tracer, u, Phase::Trigger, self.energy.broadcast());
                messages += 1;
            }
        }
        if tracer.enabled() {
            tracer.record(TraceEvent::ThresholdBroadcast { threshold: new_tau });
        }
        messages
    }

    /// Nodes currently in quarantine.
    fn quarantined_count(&self) -> usize {
        self.trust.iter().filter(|t| t.is_quarantined()).count()
    }

    /// Gates one delivered reading against its prediction band, updating
    /// the node's trust state. Returns the prediction to substitute when
    /// the reading is out-of-band or the node is quarantined, `None` when
    /// the reading is kept (in-band and trusted, or no band exists yet —
    /// the gate abstains rather than judging on thin evidence).
    fn gate_reading(
        &mut self,
        reading: Reading,
        epoch: u64,
        policy: &GatePolicy,
        tally: &mut GateTally,
        tracer: &mut dyn Tracer,
    ) -> Option<Reading> {
        let node = reading.node;
        let (lo, hi) =
            self.samples.prediction_band(node, policy.z, policy.min_sigma, policy.min_window)?;
        let in_band = reading.value >= lo && reading.value <= hi;
        let t = self.trust[node.index()].observe(in_band, epoch, policy);
        // A band implies at least two finite readings, so a prediction
        // always exists here.
        let predicted = self.samples.predicted_value(node).expect("band implies history");
        if tracer.enabled() {
            if t.flagged {
                tracer.record(TraceEvent::ReadingFlagged {
                    node: node.0,
                    value: reading.value,
                    lo,
                    hi,
                    predicted,
                });
            }
            if t.quarantined {
                tracer.record(TraceEvent::NodeQuarantined {
                    node: node.0,
                    strikes: self.trust[node.index()].strikes,
                });
            }
            if t.readmitted {
                tracer.record(TraceEvent::NodeReadmitted {
                    node: node.0,
                    clean_epochs: policy.parole_after,
                });
            }
        }
        tally.readmitted += usize::from(t.readmitted);
        if !in_band || self.trust[node.index()].is_quarantined() {
            tally.substituted += 1;
            Some(Reading { node, value: predicted })
        } else {
            None
        }
    }

    /// Gates a sweep's readings in place: every alive node is observed,
    /// and flagged or quarantined nodes contribute their window
    /// prediction to the new sample instead of their reported value.
    fn gate_sweep(
        &mut self,
        epoch: u64,
        values: &mut [f64],
        policy: &GatePolicy,
        tracer: &mut dyn Tracer,
    ) -> GateTally {
        let mut tally = GateTally::default();
        for (i, value) in values.iter_mut().enumerate() {
            if !value.is_finite() {
                continue;
            }
            let reading = Reading { node: NodeId::from_index(i), value: *value };
            if let Some(prediction) = self.gate_reading(reading, epoch, policy, &mut tally, tracer)
            {
                *value = prediction.value;
            }
        }
        tally
    }

    /// Epoch epilogue shared by both branches: folds the report into the
    /// metrics registry (attaching a cumulative snapshot), advances the
    /// resume cursor, and emits the closing `EpochEnd` event.
    fn finish_epoch(&mut self, mut report: EpochReport, tracer: &mut dyn Tracer) -> EpochReport {
        self.next_epoch = report.epoch + 1;
        if let Some(m) = self.metrics.as_mut() {
            m.count("epochs", 1);
            if report.sampled {
                m.count("sample_sweeps", 1);
            }
            if report.replanned {
                m.count("replans", 1);
            }
            if report.repaired {
                m.count("repairs", 1);
            }
            m.count("deaths", report.deaths.len() as u64);
            m.count("retransmissions", u64::from(report.retransmissions));
            m.count("lost_edges", report.lost_edges as u64);
            m.count("backfilled_entries", report.backfilled as u64);
            m.count("install_undelivered", report.install_undelivered as u64);
            m.count("flagged_readings", report.flagged as u64);
            m.count("readmissions", report.readmitted as u64);
            m.count("deltas_shipped", report.deltas_shipped as u64);
            if report.full_refresh {
                m.count("full_refreshes", 1);
            }
            m.count("messages", u64::from(report.messages));
            m.gauge("quarantined_nodes", report.quarantined as f64);
            m.gauge("delivered_fraction", report.delivered_fraction);
            m.gauge("retry_budget", f64::from(self.arq.max_retries));
            m.gauge("energy_total_mj", self.meter.total());
            m.gauge("energy_gini", gini(self.meter.node_totals()));
            m.observe("epoch_energy_mj", report.energy_mj);
            m.observe("accuracy", report.accuracy);
            report.metrics = Some(m.snapshot());
        }
        if tracer.enabled() {
            tracer.record(TraceEvent::EpochEnd {
                epoch: report.epoch,
                sampled: report.sampled,
                replanned: report.replanned,
                accuracy: report.accuracy,
                energy_mj: report.energy_mj,
                lost_edges: report.lost_edges as u32,
                retransmissions: report.retransmissions,
                delivered_fraction: report.delivered_fraction,
                backfilled: report.backfilled as u32,
            });
        }
        report
    }

    fn fallback_used(&self) -> Option<&'static str> {
        match self.plan_via {
            Some((name, depth)) if depth > 0 => Some(name),
            _ => None,
        }
    }

    /// The epoch the next [`ExperimentRunner::run_to`] call starts at:
    /// 0 for a fresh runner, `ckpt.next_epoch` for a resumed one.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Runs epochs up to (exclusive) `epochs`, collecting per-epoch
    /// reports. A fresh runner starts at epoch 0; a resumed runner
    /// continues where its checkpoint left off.
    pub fn run<S: ValueSource>(
        &mut self,
        source: &mut S,
        epochs: u64,
    ) -> Result<Vec<EpochReport>, PlanError> {
        self.run_traced(source, epochs, &mut NullTracer)
    }

    /// [`ExperimentRunner::run`] with tracing: epochs record their event
    /// streams back to back into `tracer`.
    pub fn run_traced<S: ValueSource>(
        &mut self,
        source: &mut S,
        epochs: u64,
        tracer: &mut dyn Tracer,
    ) -> Result<Vec<EpochReport>, PlanError> {
        self.run_to_traced(source, epochs, tracer)
    }

    /// Runs epochs `next_epoch..until` (the explicit-name twin of
    /// [`ExperimentRunner::run`], for resumed runners).
    pub fn run_to<S: ValueSource>(
        &mut self,
        source: &mut S,
        until: u64,
    ) -> Result<Vec<EpochReport>, PlanError> {
        self.run_to_traced(source, until, &mut NullTracer)
    }

    /// [`ExperimentRunner::run_to`] with tracing.
    pub fn run_to_traced<S: ValueSource>(
        &mut self,
        source: &mut S,
        until: u64,
        tracer: &mut dyn Tracer,
    ) -> Result<Vec<EpochReport>, PlanError> {
        (self.next_epoch..until).map(|e| self.step_traced(source, e, tracer)).collect()
    }

    /// [`ExperimentRunner::run_to`] with periodic checkpointing: after
    /// each epoch boundary the policy deems due, the full state is
    /// written atomically into `store` (keeping `policy.keep_last`
    /// files). Checkpointing consumes no randomness, so the run's
    /// reports and traces are byte-identical with or without it.
    pub fn run_checkpointed<S: ValueSource>(
        &mut self,
        source: &mut S,
        epochs: u64,
        store: &CheckpointStore,
        policy: CheckpointPolicy,
    ) -> Result<Vec<EpochReport>, CheckpointedRunError> {
        self.run_checkpointed_traced(source, epochs, store, policy, &mut NullTracer)
    }

    /// [`ExperimentRunner::run_checkpointed`] with tracing.
    pub fn run_checkpointed_traced<S: ValueSource>(
        &mut self,
        source: &mut S,
        epochs: u64,
        store: &CheckpointStore,
        policy: CheckpointPolicy,
        tracer: &mut dyn Tracer,
    ) -> Result<Vec<EpochReport>, CheckpointedRunError> {
        let mut reports = Vec::new();
        for e in self.next_epoch..epochs {
            reports.push(self.step_traced(source, e, tracer).map_err(CheckpointedRunError::Plan)?);
            if policy.due(e) {
                store
                    .save(&self.checkpoint(), policy.keep_last)
                    .map_err(CheckpointedRunError::Store)?;
            }
        }
        Ok(reports)
    }
}

/// Charges the energy of detecting `deaths` and re-attaching their
/// orphaned children under [`Phase::Repair`], using the *pre-repair*
/// topology: each dead node's first surviving ancestor broadcasts a
/// failure probe after the silence, and every surviving child of a dead
/// node pays a re-attachment handshake with its new parent.
pub(crate) fn charge_repair(
    topology: &Topology,
    alive: &[bool],
    deaths: &[NodeId],
    energy: &EnergyModel,
    meter: &mut EnergyMeter,
    tracer: &mut dyn Tracer,
) {
    for &d in deaths {
        // Walk up to the first surviving ancestor; it noticed the silence
        // and probes for the subtree.
        let mut probe = topology.parent(d);
        while let Some(p) = probe {
            if alive[p.index()] {
                break;
            }
            probe = topology.parent(p);
        }
        let prober = probe.unwrap_or(topology.root());
        charge(meter, tracer, prober, Phase::Repair, energy.broadcast());
        // Each surviving child of the dead node re-attaches somewhere new.
        for &c in topology.children(d) {
            if alive[c.index()] {
                charge(meter, tracer, c, Phase::Repair, energy.repair_handshake());
            }
        }
    }
}

/// Silences dead nodes: their readings become `-inf` so they can never
/// appear in a top-k answer or truth set.
pub(crate) fn mask_dead_values(values: &mut [f64], alive: &[bool]) {
    for (v, &a) in values.iter_mut().zip(alive) {
        if !a {
            *v = f64::NEG_INFINITY;
        }
    }
}

/// Zeroes plan bandwidth on edges whose child is dead. Safe because
/// repaired topologies park dead nodes as leaves: nothing routes *through*
/// them, so dropping their edges cannot disconnect a survivor.
pub(crate) fn mask_dead_edges(plan: &mut Plan, topology: &Topology, alive: &[bool]) {
    for e in topology.edges() {
        if !alive[e.index()] && plan.bandwidth(e) > 0 {
            plan.set_bandwidth(e, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_core::ProspectorGreedy;
    use prospector_data::IndependentGaussian;
    use prospector_net::topology::balanced;

    fn config(budget: f64) -> ExperimentConfig {
        ExperimentConfig {
            k: 3,
            window: 10,
            policy: SamplePolicy::Periodic { warmup: 5, period: 20 },
            budget_mj: budget,
            replan_every: 10,
            replan_threshold: 0.25,
            failures: None,
            faults: FaultSchedule::new(),
            install_retries: 2,
            arq: ArqPolicy::default(),
            min_delivered: 0.0,
            max_retry_budget: 8,
            gate: None,
            continuous: None,
            seed: 42,
        }
    }

    #[test]
    fn warmup_then_querying() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let planner = ProspectorGreedy;
        let mut source = IndependentGaussian::random(t.len(), 40.0..60.0, 1.0..4.0, 7);
        let mut runner = ExperimentRunner::new(&t, &em, &planner, config(30.0));
        let reports = runner.run(&mut source, 30).unwrap();
        assert!(reports[0].sampled && reports[4].sampled);
        assert!(!reports[5].sampled);
        assert!(reports[5].replanned, "first query epoch installs a plan");
        // Sampling epochs are exact.
        for r in &reports {
            if r.sampled {
                assert_eq!(r.accuracy, 1.0);
            }
        }
        // Energy is attributed per phase.
        assert!(runner.meter().phase_total(Phase::Sampling) > 0.0);
        assert!(runner.meter().phase_total(Phase::Collection) > 0.0);
        assert!(runner.meter().phase_total(Phase::PlanInstall) > 0.0);
    }

    #[test]
    fn accuracy_reasonable_with_stable_source() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let planner = ProspectorGreedy;
        // Very predictable source: tiny variance.
        let mut source = IndependentGaussian::random(t.len(), 40.0..60.0, 0.1..0.2, 9);
        let mut runner = ExperimentRunner::new(&t, &em, &planner, config(40.0));
        let reports = runner.run(&mut source, 40).unwrap();
        let queries: Vec<&EpochReport> = reports.iter().filter(|r| !r.sampled).collect();
        let avg: f64 = queries.iter().map(|r| r.accuracy).sum::<f64>() / queries.len() as f64;
        assert!(avg > 0.9, "stable source should be predictable: {avg}");
    }

    #[test]
    fn replanning_is_throttled_by_threshold() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let planner = ProspectorGreedy;
        let mut source = IndependentGaussian::random(t.len(), 40.0..60.0, 0.1..0.2, 3);
        let mut cfg = config(40.0);
        cfg.replan_threshold = 100.0; // impossible improvement
        let mut runner = ExperimentRunner::new(&t, &em, &planner, cfg);
        let reports = runner.run(&mut source, 40).unwrap();
        let replans = reports.iter().filter(|r| r.replanned).count();
        assert_eq!(replans, 1, "only the initial installation");
    }

    #[test]
    fn scheduled_deaths_are_reported_and_charged() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let planner = ProspectorGreedy;
        let mut source = IndependentGaussian::random(t.len(), 40.0..60.0, 1.0..2.0, 11);
        let mut cfg = config(30.0);
        let victim = t.children(t.root())[0];
        cfg.faults = FaultSchedule::new().with_death(12, victim);
        let mut runner = ExperimentRunner::new(&t, &em, &planner, cfg);
        let reports = runner.run(&mut source, 30).unwrap();
        assert_eq!(reports.len(), 30, "the run completes through the death");
        let death = reports.iter().find(|r| r.epoch == 12).unwrap();
        assert_eq!(death.deaths, vec![victim]);
        assert!(death.repaired);
        assert!(!runner.alive()[victim.index()]);
        assert!(runner.meter().phase_total(Phase::Repair) > 0.0);
        // The repaired tree parks the victim as a leaf under the root.
        assert_eq!(runner.topology().parent(victim), Some(t.root()));
        assert!(runner.topology().children(victim).is_empty());
        // Later epochs see no further deaths.
        assert!(reports[13..].iter().all(|r| r.deaths.is_empty() && !r.repaired));
    }

    #[test]
    fn degradation_worsens_transient_failure_rate() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let planner = ProspectorGreedy;
        let mut cfg = config(30.0);
        cfg.failures = Some(prospector_net::FailureModel::uniform(t.len(), 0.0, 2.0));
        // Degrade every edge to coin-flip loss: over 20 epochs some used
        // edge is all but certain to fail and charge a retransmission.
        let mut faults = FaultSchedule::new();
        for e in t.edges() {
            faults = faults.with_degradation(0, e, 0.5);
        }
        cfg.faults = faults;
        let mut source = IndependentGaussian::random(t.len(), 40.0..60.0, 1.0..2.0, 13);
        let mut runner = ExperimentRunner::new(&t, &em, &planner, cfg);
        let reports = runner.run(&mut source, 20).unwrap();
        // With the degraded edges failing half the time, the ARQ layer was
        // exercised and charged.
        assert!(runner.meter().phase_total(Phase::Retransmit) > 0.0);
        assert!(reports.iter().any(|r| r.retransmissions > 0));
    }

    #[test]
    fn loss_escalates_retry_budget_then_forces_replan() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let planner = ProspectorGreedy;
        let mut cfg = config(30.0);
        // Heavy uniform loss so delivered_fraction stays below threshold.
        cfg.failures = Some(prospector_net::FailureModel::uniform(t.len(), 0.8, 0.0));
        cfg.arq = ArqPolicy { max_retries: 0, backoff: prospector_net::Backoff::none() };
        cfg.min_delivered = 0.95;
        cfg.max_retry_budget = 3;
        cfg.replan_every = 1000; // escalation, not cadence, drives replans
        let mut source = IndependentGaussian::random(t.len(), 40.0..60.0, 1.0..2.0, 17);
        let mut runner = ExperimentRunner::new(&t, &em, &planner, cfg);
        let reports = runner.run(&mut source, 30).unwrap();
        assert_eq!(runner.arq().max_retries, 3, "budget climbed to its cap");
        let budgets: Vec<u32> =
            reports.iter().filter(|r| !r.sampled).map(|r| r.retry_budget).collect();
        assert!(budgets.windows(2).all(|w| w[1] >= w[0]), "budget never shrinks: {budgets:?}");
        assert!(budgets.contains(&0) && budgets.contains(&3));
        // Once maxed out, continued bad delivery forces fresh plans.
        let late_replans =
            reports.iter().filter(|r| !r.sampled && r.retry_budget == 3 && r.replanned).count();
        assert!(late_replans > 0, "maxed budget must trigger re-planning");
        // Partial answers were backfilled from the window.
        assert!(reports.iter().any(|r| r.backfilled > 0));
    }

    #[test]
    fn lossy_epochs_report_delivery_metrics() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let planner = ProspectorGreedy;
        let mut cfg = config(30.0);
        cfg.failures = Some(prospector_net::FailureModel::uniform(t.len(), 0.4, 0.0));
        cfg.arq = ArqPolicy { max_retries: 1, backoff: prospector_net::Backoff::none() };
        let mut source = IndependentGaussian::random(t.len(), 40.0..60.0, 1.0..2.0, 19);
        let mut runner = ExperimentRunner::new(&t, &em, &planner, cfg);
        let reports = runner.run(&mut source, 25).unwrap();
        let queries: Vec<&EpochReport> = reports.iter().filter(|r| !r.sampled).collect();
        assert!(queries.iter().any(|r| r.lost_edges > 0), "40% loss with 1 retry loses edges");
        assert!(queries.iter().all(|r| (0.0..=1.0).contains(&r.delivered_fraction)));
        assert!(queries.iter().any(|r| r.delivered_fraction < 1.0));
        // Backfilled predictions only ever appear alongside lost edges.
        assert!(queries.iter().all(|r| r.lost_edges > 0 || r.backfilled == 0));
        assert!(queries.iter().any(|r| r.backfilled > 0), "some loss is backfilled");
    }

    /// The child of the root whose subtree has the lowest peak mean: no
    /// true top-k member lives below it, but its edge aggregates a whole
    /// subtree, so a corrupted high reading hijacks a forwarding slot and
    /// reaches the root — the damage gating can undo cleanly.
    fn gullible_victim(t: &Topology, source: &IndependentGaussian) -> NodeId {
        let subtree_peak = |n: NodeId| {
            t.children(n)
                .iter()
                .map(|c| source.means()[c.index()])
                .fold(source.means()[n.index()], f64::max)
        };
        *t.children(t.root())
            .iter()
            .min_by(|&&a, &&b| subtree_peak(a).total_cmp(&subtree_peak(b)))
            .expect("root has children")
    }

    #[test]
    fn gating_recovers_accuracy_under_a_stuck_sensor() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let planner = ProspectorGreedy;
        let source = || IndependentGaussian::random(t.len(), 40.0..60.0, 1.0..2.0, 7);
        let victim = gullible_victim(&t, &source());
        let faults = FaultSchedule::new().with_data_fault(
            8,
            victim,
            prospector_net::DataFault::StuckAt { level: 1000.0 },
            10,
        );
        let run = |gate: Option<GatePolicy>| {
            let mut cfg = config(30.0);
            // Sweeps mixed into the faulty stretch: ungated sweeps answer
            // with the imposter *and* poison the sample window.
            cfg.policy = SamplePolicy::Periodic { warmup: 5, period: 5 };
            cfg.faults = faults.clone();
            cfg.gate = gate;
            let mut runner = ExperimentRunner::new(&t, &em, &planner, cfg);
            let reports = runner.run(&mut source(), 20).unwrap();
            // Mean accuracy over the faulty stretch only.
            let q: Vec<f64> = reports[8..18].iter().map(|r| r.accuracy).collect();
            q.iter().sum::<f64>() / q.len() as f64
        };
        let ungated = run(None);
        let gated = run(Some(GatePolicy::default()));
        // The run is fully seeded, so these means are deterministic: the
        // gated run holds near the fault-free ceiling for this config
        // (~0.83) while the ungated one pays for the imposter.
        assert!(gated >= 0.8, "gated accuracy stays near the fault-free ceiling: {gated:.2}");
        assert!(
            gated > ungated + 0.04,
            "gating must recover accuracy: gated {gated:.2}, ungated {ungated:.2}"
        );
    }

    #[test]
    fn quarantine_lifecycle_is_reported() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let planner = ProspectorGreedy;
        let mut source = IndependentGaussian::random(t.len(), 40.0..60.0, 1.0..2.0, 7);
        let victim = gullible_victim(&t, &source);
        let mut cfg = config(30.0);
        // Frequent sweeps so the honest post-fault readings are observed
        // (a low-mean node's honest value rarely wins a query slot).
        cfg.policy = SamplePolicy::Periodic { warmup: 5, period: 5 };
        cfg.faults = FaultSchedule::new().with_data_fault(
            8,
            victim,
            prospector_net::DataFault::StuckAt { level: 1000.0 },
            5,
        );
        cfg.gate =
            Some(GatePolicy { quarantine_after: 2, parole_after: 2, ..GatePolicy::default() });
        let mut runner = ExperimentRunner::new(&t, &em, &planner, cfg);
        let reports = runner.run(&mut source, 24).unwrap();
        assert!(reports.iter().any(|r| r.flagged > 0), "the stuck readings are flagged");
        assert!(reports.iter().any(|r| r.quarantined > 0), "strikes lead to quarantine");
        assert_eq!(
            reports.iter().map(|r| r.readmitted).sum::<usize>(),
            1,
            "the node earns parole exactly once"
        );
        assert_eq!(reports.last().unwrap().quarantined, 0, "quarantine is empty at the end");
    }

    #[test]
    fn gate_is_observation_only_without_faults() {
        let t = balanced(3, 2);
        let em = EnergyModel::mica2();
        let planner = ProspectorGreedy;
        let run = |gate: Option<GatePolicy>| {
            let mut cfg = config(30.0);
            cfg.gate = gate;
            let mut source = IndependentGaussian::random(t.len(), 40.0..60.0, 1.0..4.0, 7);
            let mut runner = ExperimentRunner::new(&t, &em, &planner, cfg);
            runner.run(&mut source, 30).unwrap()
        };
        let off = run(None);
        let on = run(Some(GatePolicy::default()));
        for (x, y) in off.iter().zip(&on) {
            assert_eq!(x.accuracy.to_bits(), y.accuracy.to_bits(), "epoch {}", x.epoch);
            assert_eq!(x.energy_mj.to_bits(), y.energy_mj.to_bits(), "epoch {}", x.epoch);
            assert_eq!(x.backfilled, y.backfilled, "epoch {}", x.epoch);
            assert_eq!((y.flagged, y.quarantined, y.readmitted), (0, 0, 0), "epoch {}", x.epoch);
        }
    }

    #[test]
    fn no_samples_error_when_policy_never_samples() {
        let t = balanced(2, 2);
        let em = EnergyModel::mica2();
        let planner = ProspectorGreedy;
        let mut source = IndependentGaussian::random(t.len(), 0.0..1.0, 0.1..0.2, 1);
        let mut cfg = config(10.0);
        cfg.policy = SamplePolicy::Never;
        let mut runner = ExperimentRunner::new(&t, &em, &planner, cfg);
        assert!(matches!(runner.step(&mut source, 0), Err(PlanError::NoSamples)));
    }
}
