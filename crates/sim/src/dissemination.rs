//! The initial distribution phase: installing a plan in the network.
//!
//! "Each node sends a subplan to each of its children using a unicast
//! message." Only nodes participating in the plan need subplans, and the
//! paper notes this cost is on the order of one collection phase but is
//! amortized over many executions of the same plan.

use prospector_core::Plan;
use prospector_net::{EnergyMeter, EnergyModel, Phase, Topology};

/// Charges the plan-installation unicasts (one per used edge) and returns
/// the meter.
pub fn install_plan(plan: &Plan, topology: &Topology, energy: &EnergyModel) -> EnergyMeter {
    let mut meter = EnergyMeter::new(topology.len());
    for e in topology.edges() {
        if plan.is_used(e) {
            meter.charge(e, Phase::PlanInstall, energy.subplan_install());
        }
    }
    meter
}

/// Total energy (mJ) to install the plan.
pub fn install_cost(plan: &Plan, topology: &Topology, energy: &EnergyModel) -> f64 {
    install_plan(plan, topology, energy).total()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_net::topology::star;
    use prospector_net::NodeId;

    #[test]
    fn only_used_edges_pay() {
        let t = star(4);
        let em = EnergyModel::mica2();
        let mut p = Plan::empty(4);
        p.set_bandwidth(NodeId(1), 1);
        p.set_bandwidth(NodeId(3), 1);
        let cost = install_cost(&p, &t, &em);
        assert!((cost - 2.0 * em.subplan_install()).abs() < 1e-12);
    }

    #[test]
    fn install_on_naive_k_is_order_of_collection() {
        // The paper: installation "is on the order of the cost of one
        // collection phase".
        let t = star(30);
        let em = EnergyModel::mica2();
        let p = Plan::naive_k(&t, 5);
        let install = install_cost(&p, &t, &em);
        let collection: f64 =
            t.edges().map(|e| em.unicast_values(p.bandwidth(e) as usize)).sum();
        assert!(install > 0.3 * collection && install < 3.0 * collection);
    }
}
