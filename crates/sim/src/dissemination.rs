//! The initial distribution phase: installing a plan in the network.
//!
//! "Each node sends a subplan to each of its children using a unicast
//! message." Only nodes participating in the plan need subplans, and the
//! paper notes this cost is on the order of one collection phase but is
//! amortized over many executions of the same plan.

use crate::trace::charge;
use prospector_core::Plan;
use prospector_net::{EnergyMeter, EnergyModel, FailureModel, NodeId, Phase, Topology};
use prospector_obs::{NullTracer, Tracer};
use rand::rngs::StdRng;

/// Charges the plan-installation unicasts (one per used edge) and returns
/// the meter.
pub fn install_plan(plan: &Plan, topology: &Topology, energy: &EnergyModel) -> EnergyMeter {
    install_plan_traced(plan, topology, energy, &mut NullTracer)
}

/// [`install_plan`] with tracing: each installation charge is mirrored as
/// an `Energy` event, in charge order.
pub fn install_plan_traced(
    plan: &Plan,
    topology: &Topology,
    energy: &EnergyModel,
    tracer: &mut dyn Tracer,
) -> EnergyMeter {
    let mut meter = EnergyMeter::new(topology.len());
    for e in topology.edges() {
        if plan.is_used(e) {
            charge(&mut meter, tracer, e, Phase::PlanInstall, energy.subplan_install());
        }
    }
    meter
}

/// Total energy (mJ) to install the plan.
pub fn install_cost(plan: &Plan, topology: &Topology, energy: &EnergyModel) -> f64 {
    install_plan(plan, topology, energy).total()
}

/// Outcome of a lossy installation pass.
#[derive(Debug, Clone)]
pub struct DisseminationReport {
    /// Total subplan unicast attempts (including retries).
    pub attempts: u32,
    /// Edges whose subplan was delivered and acknowledged.
    pub delivered: Vec<NodeId>,
    /// Edges that exhausted every retry; their nodes keep executing
    /// whatever subplan they had before.
    pub undelivered: Vec<NodeId>,
}

/// Installs a plan over lossy links: each used edge's subplan unicast is
/// retried up to `max_retries` times beyond the first attempt, every
/// attempt is charged at the sender, and a delivery is confirmed by a
/// header-only acknowledgement charged at the receiving child.
///
/// The transient model drives loss exactly as it does for collection
/// unicasts; an edge that fails `1 + max_retries` times in a row is
/// reported undelivered so the caller can fall back to the child's
/// previous subplan.
pub fn install_plan_lossy(
    plan: &Plan,
    topology: &Topology,
    energy: &EnergyModel,
    failures: &FailureModel,
    rng: &mut StdRng,
    max_retries: u32,
) -> (EnergyMeter, DisseminationReport) {
    install_plan_lossy_traced(plan, topology, energy, failures, rng, max_retries, &mut NullTracer)
}

/// [`install_plan_lossy`] with tracing: each attempt and ack charge is
/// mirrored as an `Energy` event, in charge order.
pub fn install_plan_lossy_traced(
    plan: &Plan,
    topology: &Topology,
    energy: &EnergyModel,
    failures: &FailureModel,
    rng: &mut StdRng,
    max_retries: u32,
    tracer: &mut dyn Tracer,
) -> (EnergyMeter, DisseminationReport) {
    let mut meter = EnergyMeter::new(topology.len());
    let mut report =
        DisseminationReport { attempts: 0, delivered: Vec::new(), undelivered: Vec::new() };
    for e in topology.edges() {
        if !plan.is_used(e) {
            continue;
        }
        let mut delivered = false;
        for _attempt in 0..=max_retries {
            report.attempts += 1;
            charge(&mut meter, tracer, e, Phase::PlanInstall, energy.subplan_install());
            if !failures.sample_failure(e, rng) {
                delivered = true;
                break;
            }
        }
        if delivered {
            // The child confirms its new subplan with a header-only ack.
            charge(&mut meter, tracer, e, Phase::PlanInstall, energy.per_message_mj);
            report.delivered.push(e);
        } else {
            report.undelivered.push(e);
        }
    }
    (meter, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_net::topology::star;
    use prospector_net::NodeId;
    use rand::SeedableRng;

    #[test]
    fn only_used_edges_pay() {
        let t = star(4);
        let em = EnergyModel::mica2();
        let mut p = Plan::empty(4);
        p.set_bandwidth(NodeId(1), 1);
        p.set_bandwidth(NodeId(3), 1);
        let cost = install_cost(&p, &t, &em);
        assert!((cost - 2.0 * em.subplan_install()).abs() < 1e-12);
    }

    #[test]
    fn lossless_links_deliver_everything_in_one_attempt() {
        let t = star(5);
        let em = EnergyModel::mica2();
        let p = Plan::naive_k(&t, 2);
        let fm = FailureModel::none(5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (meter, rep) = install_plan_lossy(&p, &t, &em, &fm, &mut rng, 3);
        assert_eq!(rep.attempts, 4, "one attempt per used edge");
        assert_eq!(rep.delivered.len(), 4);
        assert!(rep.undelivered.is_empty());
        // Lossless total = lossless install + one ack per edge.
        let expect = install_cost(&p, &t, &em) + 4.0 * em.per_message_mj;
        assert!((meter.total() - expect).abs() < 1e-9);
    }

    #[test]
    fn dead_links_exhaust_retries_and_report_undelivered() {
        let t = star(4);
        let em = EnergyModel::mica2();
        let p = Plan::naive_k(&t, 1);
        let fm = FailureModel::uniform(4, 1.0, 0.0); // always fails
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let (meter, rep) = install_plan_lossy(&p, &t, &em, &fm, &mut rng, 2);
        assert_eq!(rep.attempts, 9, "3 edges × (1 + 2 retries)");
        assert!(rep.delivered.is_empty());
        assert_eq!(rep.undelivered.len(), 3);
        // Every attempt is paid for, no acks.
        assert!((meter.total() - 9.0 * em.subplan_install()).abs() < 1e-9);
    }

    #[test]
    fn lossy_delivery_rate_matches_link_quality() {
        let t = star(400);
        let em = EnergyModel::mica2();
        let p = Plan::naive_k(&t, 1);
        let fm = FailureModel::uniform(400, 0.5, 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (_, rep) = install_plan_lossy(&p, &t, &em, &fm, &mut rng, 1);
        // P(undelivered) = 0.5² = 0.25 per edge over 399 edges.
        let rate = rep.undelivered.len() as f64 / 399.0;
        assert!((rate - 0.25).abs() < 0.08, "observed undelivered rate {rate}");
    }

    #[test]
    fn install_on_naive_k_is_order_of_collection() {
        // The paper: installation "is on the order of the cost of one
        // collection phase".
        let t = star(30);
        let em = EnergyModel::mica2();
        let p = Plan::naive_k(&t, 5);
        let install = install_cost(&p, &t, &em);
        let collection: f64 = t.edges().map(|e| em.unicast_values(p.bandwidth(e) as usize)).sum();
        assert!(install > 0.3 * collection && install < 3.0 * collection);
    }
}
