//! Tracing is observation-only: running any scenario with a tracer
//! attached must not perturb the simulation, and every sink must agree on
//! the serialized stream.

use prospector_obs::{event, JsonlTracer, RingTracer};
use prospector_sim::ExperimentRunner;
use prospector_testutil::{assert_meters_bit_identical, golden, lossy_config, recovery_config};

use prospector_core::FallbackPlanner;
use prospector_data::IndependentGaussian;
use prospector_net::{topology, EnergyModel, FaultSchedule};

/// Attaching a tracer changes nothing about the run itself: reports and
/// the cumulative meter are bit-identical to the untraced run.
#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let t = topology::balanced(3, 2);
    let em = EnergyModel::mica2();
    let planner = FallbackPlanner::standard();
    let n = t.len();
    let builders: [&dyn Fn() -> prospector_sim::ExperimentConfig; 2] =
        [&|| recovery_config(FaultSchedule::new()), &move || {
            lossy_config(n, 0.2, 2, FaultSchedule::new())
        }];
    for mk in builders {
        let mut plain_runner = ExperimentRunner::new(&t, &em, &planner, mk());
        let mut source = IndependentGaussian::random(t.len(), 40.0..60.0, 1.0..4.0, 13);
        let plain = plain_runner.run(&mut source, 20).unwrap();

        let mut traced_runner = ExperimentRunner::new(&t, &em, &planner, mk());
        let mut source = IndependentGaussian::random(t.len(), 40.0..60.0, 1.0..4.0, 13);
        let mut tracer = RingTracer::new(1 << 16);
        let traced = traced_runner.run_traced(&mut source, 20, &mut tracer).unwrap();

        assert!(!tracer.is_empty());
        assert_eq!(plain.len(), traced.len());
        for (a, b) in plain.iter().zip(&traced) {
            assert_eq!(a.sampled, b.sampled);
            assert_eq!(a.replanned, b.replanned);
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
            assert_eq!(a.energy_mj.to_bits(), b.energy_mj.to_bits());
            assert_eq!(a.lost_edges, b.lost_edges);
            assert_eq!(a.retransmissions, b.retransmissions);
        }
        assert_meters_bit_identical(plain_runner.meter(), traced_runner.meter(), t.len());
    }
}

/// The streaming JSONL sink and post-hoc serialization of the in-memory
/// ring produce the same bytes for every golden scenario.
#[test]
fn jsonl_sink_matches_ring_serialization() {
    for &name in golden::SCENARIOS {
        let events = golden::golden_events(name);
        let mut sink = JsonlTracer::new(Vec::new());
        for ev in &events {
            use prospector_obs::Tracer;
            sink.record(ev.clone());
        }
        assert_eq!(sink.io_errors(), 0);
        let streamed = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(streamed, event::to_jsonl(&events), "{name}");
    }
}
