//! Regression tests for `ExperimentConfig` validation: each rejection is
//! a typed `ConfigError` raised at construction, where it names the bad
//! field — not a panic three layers down in `SampleSet` or the planner.

use prospector_core::{FallbackPlanner, GatePolicy};
use prospector_net::{topology, EnergyModel, FaultSchedule};
use prospector_sim::{ConfigError, ExperimentConfig, ExperimentRunner, ResumeError};
use prospector_testutil::recovery_config;

fn base() -> ExperimentConfig {
    recovery_config(FaultSchedule::new())
}

const N: usize = 13; // balanced(3, 2)

#[test]
fn the_base_config_is_valid() {
    assert_eq!(base().validate(N), Ok(()));
}

#[test]
fn zero_k_is_rejected() {
    let mut cfg = base();
    cfg.k = 0;
    assert_eq!(cfg.validate(N), Err(ConfigError::KTooSmall { k: 0 }));
}

#[test]
fn k_beyond_network_size_is_rejected() {
    let mut cfg = base();
    cfg.k = N + 1;
    assert_eq!(cfg.validate(N), Err(ConfigError::KExceedsNodes { k: N + 1, n: N }));
    // k == n is the boundary and is fine: top-n is a full dump.
    cfg.k = N;
    assert_eq!(cfg.validate(N), Ok(()));
}

#[test]
fn zero_window_is_rejected() {
    let mut cfg = base();
    cfg.window = 0;
    assert_eq!(cfg.validate(N), Err(ConfigError::ZeroWindow));
}

#[test]
fn non_finite_or_negative_budget_is_rejected() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.5] {
        let mut cfg = base();
        cfg.budget_mj = bad;
        match cfg.validate(N) {
            Err(ConfigError::BadBudget { budget_mj }) => {
                assert_eq!(budget_mj.to_bits(), bad.to_bits())
            }
            other => panic!("budget {bad}: expected BadBudget, got {other:?}"),
        }
    }
    // Zero budget is legal (the planner falls back to the cheapest plan).
    let mut cfg = base();
    cfg.budget_mj = 0.0;
    assert_eq!(cfg.validate(N), Ok(()));
}

#[test]
fn min_delivered_outside_unit_interval_is_rejected() {
    for bad in [f64::NAN, -0.01, 1.01, f64::INFINITY] {
        let mut cfg = base();
        cfg.min_delivered = bad;
        match cfg.validate(N) {
            Err(ConfigError::BadMinDelivered { min_delivered }) => {
                assert_eq!(min_delivered.to_bits(), bad.to_bits())
            }
            other => panic!("min_delivered {bad}: expected BadMinDelivered, got {other:?}"),
        }
    }
    for ok in [0.0, 1.0] {
        let mut cfg = base();
        cfg.min_delivered = ok;
        assert_eq!(cfg.validate(N), Ok(()), "min_delivered {ok} is a legal boundary");
    }
}

#[test]
fn bad_gate_policy_is_rejected_naming_the_knob() {
    let cases: [(GatePolicy, &str); 3] = [
        (GatePolicy { z: 0.0, ..GatePolicy::default() }, "z"),
        (GatePolicy { min_window: 1, ..GatePolicy::default() }, "min_window"),
        (GatePolicy { quarantine_after: 0, ..GatePolicy::default() }, "quarantine_after"),
    ];
    for (gate, knob) in cases {
        let mut cfg = base();
        cfg.gate = Some(gate);
        match cfg.validate(N) {
            Err(ConfigError::BadGate { why }) => {
                assert!(why.contains(knob), "error {why:?} does not name {knob}")
            }
            other => panic!("expected BadGate naming {knob}, got {other:?}"),
        }
    }
    // Gating disabled skips gate validation entirely.
    let mut cfg = base();
    cfg.gate = None;
    assert_eq!(cfg.validate(N), Ok(()));
}

#[test]
fn try_new_surfaces_the_error_and_new_panics() {
    let t = topology::balanced(3, 2);
    let em = EnergyModel::mica2();
    let planner = FallbackPlanner::standard();
    let mut cfg = base();
    cfg.k = 0;
    match ExperimentRunner::try_new(&t, &em, &planner, cfg) {
        Err(ConfigError::KTooSmall { k: 0 }) => {}
        Err(e) => panic!("expected KTooSmall, got {e}"),
        Ok(_) => panic!("k = 0 was accepted"),
    }
}

#[test]
#[should_panic(expected = "invalid experiment config")]
fn new_panics_on_an_invalid_config() {
    let t = topology::balanced(3, 2);
    let em = EnergyModel::mica2();
    let planner = FallbackPlanner::standard();
    let mut cfg = base();
    cfg.window = 0;
    let _ = ExperimentRunner::new(&t, &em, &planner, cfg);
}

/// Resume validates the checkpointed config the same way, and on top of
/// that rejects internally inconsistent images.
#[test]
fn resume_rejects_invalid_and_inconsistent_checkpoints() {
    let t = topology::balanced(3, 2);
    let em = EnergyModel::mica2();
    let planner = FallbackPlanner::standard();
    let mut runner = ExperimentRunner::new(&t, &em, &planner, base());
    let mut source =
        prospector_data::IndependentGaussian::random(t.len(), 40.0..60.0, 1.0..4.0, 13);
    runner.run(&mut source, 3).expect("run");
    let good = runner.checkpoint();

    // A checkpoint whose config went bad fails config validation.
    let mut bad = good.clone();
    bad.window = 0;
    // (The sample set still has the old capacity; config error wins.)
    match ExperimentRunner::resume(bad, &em, &planner) {
        Err(ResumeError::Config(ConfigError::ZeroWindow)) => {}
        Err(e) => panic!("expected Config(ZeroWindow), got {e}"),
        Ok(_) => panic!("zero-window checkpoint was accepted"),
    }

    // A checkpoint whose pieces disagree is rejected as inconsistent.
    let mut bad = good.clone();
    bad.alive.pop();
    match ExperimentRunner::resume(bad, &em, &planner) {
        Err(ResumeError::Inconsistent(why)) => {
            assert!(why.contains("alive"), "unhelpful message: {why}")
        }
        Err(e) => panic!("expected Inconsistent, got {e}"),
        Ok(_) => panic!("truncated alive mask was accepted"),
    }

    // A trust vector that does not cover the topology is inconsistent.
    let mut bad = good.clone();
    bad.trust.pop();
    match ExperimentRunner::resume(bad, &em, &planner) {
        Err(ResumeError::Inconsistent(why)) => {
            assert!(why.contains("trust"), "unhelpful message: {why}")
        }
        Err(e) => panic!("expected Inconsistent, got {e}"),
        Ok(_) => panic!("truncated trust vector was accepted"),
    }

    // The untampered image still resumes.
    assert!(ExperimentRunner::resume(good, &em, &planner).is_ok());
}
