//! Transient-failure metering (Section 4.4): with `FailureModel::uniform
//! (n, p, c)`, every used edge's collection unicast fails independently
//! with probability p and charges a reroute penalty of c mJ. Over many
//! executions the metered reroute energy must converge to
//! `p × c × messages_sent`, independent of the RNG seed.

use prospector_core::Plan;
use prospector_net::{topology, EnergyModel, FailureModel, Phase};
use prospector_sim::execute_plan;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn reroute_energy_converges_to_p_times_c_times_messages() {
    let t = topology::balanced(3, 3); // 40 nodes, 39 edges
    let em = EnergyModel::mica2();
    let k = 3;
    let plan = Plan::naive_k(&t, k); // uses every edge
    let messages = t.edges().filter(|&e| plan.is_used(e)).count() as f64;
    assert_eq!(messages, (t.len() - 1) as f64);
    let values: Vec<f64> = (0..t.len()).map(|i| i as f64).collect();

    for &(p, c) in &[(0.1, 2.0), (0.3, 3.5)] {
        let fm = FailureModel::uniform(t.len(), p, c);
        let expected = p * c * messages;
        for seed in [1u64, 17, 4242] {
            let mut rng = StdRng::seed_from_u64(seed);
            let runs = 400;
            let total: f64 = (0..runs)
                .map(|_| {
                    execute_plan(&plan, &t, &em, &values, k, Some((&fm, &mut rng)))
                        .meter
                        .phase_total(Phase::Rerouting)
                })
                .sum();
            let avg = total / runs as f64;
            assert!(
                (avg - expected).abs() < 0.15 * expected,
                "seed {seed}, p={p}, c={c}: avg reroute {avg:.2} mJ vs expected {expected:.2} mJ"
            );
        }
    }
}

#[test]
fn no_failures_means_no_reroute_energy() {
    let t = topology::balanced(3, 3);
    let em = EnergyModel::mica2();
    let plan = Plan::naive_k(&t, 3);
    let values: Vec<f64> = (0..t.len()).map(|i| i as f64).collect();
    let fm = FailureModel::uniform(t.len(), 0.0, 5.0);
    let mut rng = StdRng::seed_from_u64(8);
    let r = execute_plan(&plan, &t, &em, &values, 3, Some((&fm, &mut rng)));
    assert_eq!(r.meter.phase_total(Phase::Rerouting), 0.0);
}
