//! Transient-failure metering (Section 4.4): with `FailureModel::uniform
//! (n, p, c)`, every used edge's collection unicast fails independently
//! with probability p and charges a reroute penalty of c mJ. Over many
//! executions the metered reroute energy must converge to
//! `p × c × messages_sent`, independent of the RNG seed.

use prospector_core::Plan;
use prospector_net::{topology, EnergyModel, FailureModel, Phase};
use prospector_sim::execute_plan;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn reroute_energy_converges_to_p_times_c_times_messages() {
    let t = topology::balanced(3, 3); // 40 nodes, 39 edges
    let em = EnergyModel::mica2();
    let k = 3;
    let plan = Plan::naive_k(&t, k); // uses every edge
    let messages = t.edges().filter(|&e| plan.is_used(e)).count() as f64;
    assert_eq!(messages, (t.len() - 1) as f64);
    let values: Vec<f64> = (0..t.len()).map(|i| i as f64).collect();

    for &(p, c) in &[(0.1, 2.0), (0.3, 3.5)] {
        let fm = FailureModel::uniform(t.len(), p, c);
        let expected = p * c * messages;
        for seed in [1u64, 17, 4242] {
            let mut rng = StdRng::seed_from_u64(seed);
            let runs = 400;
            let total: f64 = (0..runs)
                .map(|_| {
                    execute_plan(&plan, &t, &em, &values, k, Some((&fm, &mut rng)))
                        .meter
                        .phase_total(Phase::Rerouting)
                })
                .sum();
            let avg = total / runs as f64;
            assert!(
                (avg - expected).abs() < 0.15 * expected,
                "seed {seed}, p={p}, c={c}: avg reroute {avg:.2} mJ vs expected {expected:.2} mJ"
            );
        }
    }
}

#[test]
fn no_failures_means_no_reroute_energy() {
    let t = topology::balanced(3, 3);
    let em = EnergyModel::mica2();
    let plan = Plan::naive_k(&t, 3);
    let values: Vec<f64> = (0..t.len()).map(|i| i as f64).collect();
    let fm = FailureModel::uniform(t.len(), 0.0, 5.0);
    let mut rng = StdRng::seed_from_u64(8);
    let r = execute_plan(&plan, &t, &em, &values, 3, Some((&fm, &mut rng)));
    assert_eq!(r.meter.phase_total(Phase::Rerouting), 0.0);
}

/// A link degradation that fires mid-run must raise the *sampled* loss
/// rate for both directions in the very epoch it lands: the plan
/// installed that epoch runs lossy dissemination (undelivered subplans)
/// and the same epoch's collection runs the per-hop ARQ (lost edges,
/// retransmissions). Before the degradation the model is trivial and
/// both directions are loss-free.
#[test]
fn degradation_hits_dissemination_and_collection_in_the_same_epoch() {
    use prospector_core::ProspectorGreedy;
    use prospector_data::{IndependentGaussian, SamplePolicy};
    use prospector_net::{ArqPolicy, Backoff, FaultSchedule};
    use prospector_sim::{ExperimentConfig, ExperimentRunner};

    let t = topology::balanced(3, 2);
    let em = EnergyModel::mica2();
    let planner = ProspectorGreedy;
    // Every edge becomes certainly lossy at epoch 10, on top of a
    // zero-loss base model (trivial until then).
    let degrade_at = 10u64;
    let mut faults = FaultSchedule::new();
    for e in t.edges() {
        faults = faults.with_degradation(degrade_at, e, 1.0);
    }
    let config = ExperimentConfig {
        k: 3,
        window: 10,
        policy: SamplePolicy::Periodic { warmup: 5, period: 100 },
        budget_mj: 30.0,
        // Install a fresh plan every query epoch, unconditionally, so the
        // degradation epoch is guaranteed to exercise dissemination.
        replan_every: 1,
        replan_threshold: -10.0,
        failures: Some(FailureModel::uniform(t.len(), 0.0, 0.0)),
        faults,
        install_retries: 2,
        arq: ArqPolicy { max_retries: 2, backoff: Backoff::none() },
        min_delivered: 0.0,
        max_retry_budget: 8,
        gate: None,
        continuous: None,
        seed: 23,
    };
    let mut source = IndependentGaussian::random(t.len(), 40.0..60.0, 1.0..2.0, 23);
    let mut runner = ExperimentRunner::new(&t, &em, &planner, config);
    let reports = runner.run(&mut source, 12).unwrap();

    // Pre-degradation query epochs are fully reliable in both directions.
    for r in reports.iter().filter(|r| !r.sampled && r.epoch < degrade_at) {
        assert!(r.replanned, "epoch {}: threshold forces an install", r.epoch);
        assert_eq!(r.install_undelivered, 0, "epoch {}", r.epoch);
        assert_eq!(r.lost_edges, 0, "epoch {}", r.epoch);
        assert_eq!(r.retransmissions, 0, "epoch {}", r.epoch);
        assert_eq!(r.delivered_fraction, 1.0, "epoch {}", r.epoch);
    }

    // The degradation epoch itself samples the raised loss rate on both
    // the downward subplan unicasts and the upward collection batches.
    let hit = reports.iter().find(|r| r.epoch == degrade_at).unwrap();
    assert!(hit.replanned, "the degradation epoch still installs");
    assert!(hit.install_undelivered > 0, "dissemination saw the new loss rate: {hit:?}");
    assert!(hit.lost_edges > 0, "collection saw the new loss rate: {hit:?}");
    assert!(hit.retransmissions > 0, "ARQ retried before giving up: {hit:?}");
    assert_eq!(hit.delivered_fraction, 0.0, "certain loss silences every subtree");
}
