//! Std-only scoped-thread worker pool with deterministic, ordered results.
//!
//! The whole Prospector pipeline reduces to re-evaluating candidate plans
//! over the sample window — per-sample simulations in `core::evaluate`,
//! per-candidate scoring in the budget-repair loops, per-budget-point
//! planning in the figure harnesses. All of those are embarrassingly
//! parallel, and none of them may change its answer when parallelized:
//! plans, figures and the CI determinism gate demand bit-identical output
//! at any thread count.
//!
//! This crate provides exactly that, with no dependencies beyond `std`
//! (the offline build has no `rayon`):
//!
//! * [`par_map`] / [`par_map_range`] — map a function over a slice or an
//!   index range on a scoped worker pool ([`std::thread::scope`]), workers
//!   pulling **chunks** off a shared atomic cursor. Results are collected
//!   **in input order**, so any fold over them is exactly the serial fold;
//!   combined with order-independent reductions (integer sums) in the
//!   callers, output is bit-identical to serial execution at every thread
//!   count.
//! * [`configured_threads`] — the pool width: `PROSPECTOR_THREADS` when
//!   set to a positive integer, otherwise
//!   [`std::thread::available_parallelism`].
//! * [`par_map_in`] / [`par_map_range_in`] — the same with an explicit
//!   thread count, for benchmarks and serial-vs-parallel equivalence tests
//!   that must not race on the process-global environment.
//!
//! A worker panic propagates out of the scope (the remaining work is
//! abandoned), matching the serial behavior of the first panicking item as
//! closely as a parallel run can.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker-pool width.
pub const THREADS_ENV: &str = "PROSPECTOR_THREADS";

/// The configured pool width: `PROSPECTOR_THREADS` when it parses as a
/// positive integer, otherwise [`std::thread::available_parallelism`]
/// (falling back to 1 when even that is unavailable). Re-read on every
/// call so tests and harnesses can flip the variable between runs.
pub fn configured_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` on the configured pool, returning results in
/// input order. `f` receives `(index, &item)`.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_in(configured_threads(), items, f)
}

/// [`par_map`] with an explicit thread count (1 = inline serial).
pub fn par_map_in<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_range_in(threads, items.len(), |i| f(i, &items[i]))
}

/// Maps `f` over `0..n` on the configured pool, returning results in
/// index order.
pub fn par_map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_range_in(configured_threads(), n, f)
}

/// [`par_map_range`] with an explicit thread count (1 = inline serial).
///
/// The work queue is chunked: workers claim contiguous index ranges off an
/// atomic cursor, so scheduling is dynamic (a slow item does not stall the
/// other workers) while each result lands in its input slot.
pub fn par_map_range_in<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let threads = threads.min(n);
    // Several chunks per worker keeps the queue balanced without paying
    // one atomic claim per item.
    let chunk = (n / (threads * 4)).max(1);
    let num_chunks = n.div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(num_chunks));

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= num_chunks {
                    break;
                }
                let start = c * chunk;
                let end = (start + chunk).min(n);
                let out: Vec<R> = (start..end).map(&f).collect();
                parts.lock().unwrap().push((start, out));
            });
        }
    });

    let mut parts = parts.into_inner().unwrap();
    parts.sort_unstable_by_key(|&(start, _)| start);
    debug_assert_eq!(parts.iter().map(|(_, p)| p.len()).sum::<usize>(), n);
    let mut out = Vec::with_capacity(n);
    for (_, mut part) in parts {
        out.append(&mut part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map_in(threads, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn range_matches_serial_at_any_width() {
        let serial: Vec<usize> = (0..100).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 7, 100, 1000] {
            assert_eq!(par_map_range_in(threads, 100, |i| i * 3 + 1), serial);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map_range_in(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_range_in(8, 1, |i| i + 41), vec![41]);
        let none: [u8; 0] = [];
        assert_eq!(par_map_in(4, &none, |_, &b| b), Vec::<u8>::new());
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counts: Vec<AtomicU32> = (0..50).map(|_| AtomicU32::new(0)).collect();
        par_map_range_in(6, 50, |i| counts[i].fetch_add(1, Ordering::Relaxed));
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn float_sums_are_bit_identical_via_ordering() {
        // The contract callers rely on: reducing the ordered results gives
        // the same bits as the serial reduction.
        let vals: Vec<f64> = (0..1000).map(|i| 1.0 / (i as f64 + 0.1)).collect();
        let serial: f64 = vals.iter().map(|v| v.sqrt()).sum();
        for threads in [2, 5, 16] {
            let mapped = par_map_in(threads, &vals, |_, v| v.sqrt());
            let total: f64 = mapped.iter().sum();
            assert_eq!(total.to_bits(), serial.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        par_map_range_in(4, 16, |i| {
            if i == 9 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn env_override_parses_and_falls_back() {
        // Serialized within this test: env mutation is process-global.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(configured_threads(), 3);
        std::env::set_var(THREADS_ENV, "0");
        assert_eq!(configured_threads(), default_threads());
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert_eq!(configured_threads(), default_threads());
        std::env::remove_var(THREADS_ENV);
        assert_eq!(configured_threads(), default_threads());
        assert!(configured_threads() >= 1);
    }
}
