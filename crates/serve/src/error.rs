//! Typed errors of the serve path.
//!
//! Every rejection a request can suffer is a value of one of these enums —
//! nothing on the serve path panics on user input or fails silently. The
//! `Display` strings double as the `reason` field of
//! [`TraceEvent::RequestRejected`](prospector_obs::TraceEvent), so they
//! must be pure functions of the error's fields (no wall clock, no
//! addresses), keeping rejected requests golden-traceable.

use prospector_core::PlanError;
use std::fmt;

/// Why a request failed validation before admission was even considered.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// `k` is zero, exceeds the service's `max_k`, or exceeds the number
    /// of queryable nodes (the subset size for subset queries, the
    /// network size otherwise).
    BadK { k: usize, max: usize },
    /// The budget is non-finite or not positive.
    BadBudget { budget_mj: f64 },
    /// A subset member is outside the network.
    SubsetOutOfRange { node: u32, n: usize },
    /// The subset is empty after deduplication.
    EmptySubset,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::BadK { k, max } => write!(f, "k={k} outside 1..={max}"),
            RequestError::BadBudget { budget_mj } => {
                write!(f, "budget {budget_mj} mJ is not a positive finite number")
            }
            RequestError::SubsetOutOfRange { node, n } => {
                write!(f, "subset node {node} outside network of {n}")
            }
            RequestError::EmptySubset => write!(f, "subset is empty"),
        }
    }
}

impl std::error::Error for RequestError {}

/// Why admission control turned a valid request away. Admission is never
/// silent: every rejection carries one of these and is traced.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitError {
    /// The budget rounds down to zero bands — too small to buy any plan
    /// the cache could share.
    BudgetBelowBand { budget_mj: f64, band_mj: f64 },
    /// Admitting the request would overdraw this epoch's energy ledger.
    EnergyExhausted { requested_mj: f64, remaining_mj: f64 },
    /// The request's deadline epoch has already passed.
    DeadlineExpired { deadline: u64, epoch: u64 },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::BudgetBelowBand { budget_mj, band_mj } => {
                write!(f, "budget {budget_mj} mJ is below one band ({band_mj} mJ)")
            }
            AdmitError::EnergyExhausted { requested_mj, remaining_mj } => write!(
                f,
                "energy ledger exhausted: {requested_mj} mJ requested, {remaining_mj} mJ left"
            ),
            AdmitError::DeadlineExpired { deadline, epoch } => {
                write!(f, "deadline {deadline} already passed at epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for AdmitError {}

/// Everything that can go wrong serving one request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// `serve_batch` was called before any `begin_epoch`.
    NoEpoch,
    /// The sample window is too cold to predict from: either the window
    /// holds fewer than the configured minimum of samples, or a specific
    /// node has no finite history at all (`SampleSet::predicted_value`
    /// abstained). Cold starts surface here as a typed error — the `None`
    /// is never unwrapped on the serve path.
    InsufficientHistory { have: usize, need: usize },
    /// The request failed validation.
    Request(RequestError),
    /// The request was refused by admission control.
    Admit(AdmitError),
    /// Every planner in the fallback chain failed for this request.
    Plan(PlanError),
}

impl ServiceError {
    /// Stable kebab-case code for the line protocol's `ERR` responses.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::NoEpoch => "no-epoch",
            ServiceError::InsufficientHistory { .. } => "insufficient-history",
            ServiceError::Request(RequestError::BadK { .. }) => "bad-k",
            ServiceError::Request(RequestError::BadBudget { .. }) => "bad-budget",
            ServiceError::Request(RequestError::SubsetOutOfRange { .. }) => "bad-subset",
            ServiceError::Request(RequestError::EmptySubset) => "bad-subset",
            ServiceError::Admit(AdmitError::BudgetBelowBand { .. }) => "budget-below-band",
            ServiceError::Admit(AdmitError::EnergyExhausted { .. }) => "energy-exhausted",
            ServiceError::Admit(AdmitError::DeadlineExpired { .. }) => "deadline-expired",
            ServiceError::Plan(_) => "plan-failed",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::NoEpoch => write!(f, "no epoch has begun"),
            ServiceError::InsufficientHistory { have, need } => {
                write!(f, "insufficient history: {have} samples, {need} needed")
            }
            ServiceError::Request(e) => write!(f, "{e}"),
            ServiceError::Admit(e) => write!(f, "{e}"),
            ServiceError::Plan(e) => write!(f, "planning failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<RequestError> for ServiceError {
    fn from(e: RequestError) -> Self {
        ServiceError::Request(e)
    }
}

impl From<AdmitError> for ServiceError {
    fn from(e: AdmitError) -> Self {
        ServiceError::Admit(e)
    }
}

impl From<PlanError> for ServiceError {
    fn from(e: PlanError) -> Self {
        ServiceError::Plan(e)
    }
}

/// An invalid [`ServiceConfig`](crate::ServiceConfig).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `band_width_mj` must be positive and finite: it quantizes budgets
    /// into cache bands.
    BadBandWidth { band_width_mj: f64 },
    /// `epoch_budget_mj` must be non-negative and finite.
    BadEpochBudget { epoch_budget_mj: f64 },
    /// `window`, `sample_every` and `max_k` must all be at least 1.
    BadShape { window: usize, sample_every: u64, max_k: usize },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadBandWidth { band_width_mj } => {
                write!(f, "band width {band_width_mj} mJ is not positive finite")
            }
            ConfigError::BadEpochBudget { epoch_budget_mj } => {
                write!(f, "epoch budget {epoch_budget_mj} mJ is not non-negative finite")
            }
            ConfigError::BadShape { window, sample_every, max_k } => write!(
                f,
                "window {window}, sample_every {sample_every} and max_k {max_k} must all be ≥ 1"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings_are_pure_functions_of_fields() {
        let e = AdmitError::EnergyExhausted { requested_mj: 10.0, remaining_mj: 2.5 };
        assert_eq!(e.to_string(), "energy ledger exhausted: 10 mJ requested, 2.5 mJ left");
        assert_eq!(e.to_string(), e.clone().to_string());
        let e = ServiceError::InsufficientHistory { have: 0, need: 2 };
        assert_eq!(e.to_string(), "insufficient history: 0 samples, 2 needed");
        assert_eq!(e.code(), "insufficient-history");
    }

    #[test]
    fn codes_are_kebab_and_stable() {
        let cases: Vec<ServiceError> = vec![
            ServiceError::NoEpoch,
            ServiceError::Request(RequestError::BadK { k: 0, max: 4 }),
            ServiceError::Request(RequestError::BadBudget { budget_mj: f64::NAN }),
            ServiceError::Admit(AdmitError::BudgetBelowBand { budget_mj: 1.0, band_mj: 5.0 }),
            ServiceError::Admit(AdmitError::DeadlineExpired { deadline: 1, epoch: 3 }),
        ];
        for e in cases {
            let c = e.code();
            assert!(c.chars().all(|ch| ch.is_ascii_lowercase() || ch == '-'), "{c}");
        }
    }
}
