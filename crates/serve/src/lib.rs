//! Multi-tenant serving layer for Prospector top-k queries.
//!
//! The paper plans one query at a time; the north-star deployment is a
//! service absorbing a *stream* of top-k queries over one shared sensor
//! network. This crate is that layer:
//!
//! * [`QueryService`] — shared sample window and metered network, batched
//!   planning, energy-budget admission control (typed [`AdmitError`],
//!   never silent);
//! * [`PlanCache`] — plans keyed on (topology epoch, `k`, budget band,
//!   subset), invalidated by deaths/repairs/degradations and window
//!   refreshes. Cache hits are *transparent*: answers and energy charges
//!   are bit-identical to planning every request from scratch (the
//!   service plans at the band-floor budget, a pure function of the key);
//! * [`protocol`] / [`Repl`] — the `serve` bin's line protocol, typed
//!   errors for every malformed line;
//! * [`loadgen`] — the closed-loop seeded load generator behind
//!   `BENCH_serve.json`;
//! * [`golden`] — the `serve_burst` golden-trace scenario.
//!
//! Like every traced layer, service runs are byte-deterministic: the
//! event stream is a pure function of seeds (wall clock only ever appears
//! in untraced latency fields). The cache-introspection events
//! (`plan_cache_hit`/`plan_cache_miss`/`batch_planned`) are the one
//! intentional difference between cached and scratch runs;
//! [`scrub_cache_events`] removes them for transparency comparisons.

pub mod cache;
pub mod error;
pub mod golden;
pub mod loadgen;
pub mod protocol;
pub mod repl;
pub mod request;
pub mod service;

pub use cache::{CacheEntry, CacheStats, PlanCache, PlanKey};
pub use error::{AdmitError, ConfigError, RequestError, ServiceError};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
pub use protocol::{parse_line, Command, ProtocolError, MAX_LINE_BYTES};
pub use repl::Repl;
pub use request::{QueryRequest, QueryResponse};
pub use service::{EpochStart, QueryService, ServiceConfig, ServiceStats};

use prospector_obs::TraceEvent;

/// Drops the cache-introspection events (`plan_cache_hit`,
/// `plan_cache_miss`, `batch_planned`) from a trace. Everything that
/// remains — energy charges, accepts/rejects, deaths, repairs — must be
/// byte-identical between cached and scratch serving; the proptest suite
/// compares through this filter.
pub fn scrub_cache_events(events: &[TraceEvent]) -> Vec<TraceEvent> {
    events
        .iter()
        .filter(|e| {
            !matches!(
                e,
                TraceEvent::PlanCacheHit { .. }
                    | TraceEvent::PlanCacheMiss { .. }
                    | TraceEvent::BatchPlanned { .. }
            )
        })
        .cloned()
        .collect()
}
