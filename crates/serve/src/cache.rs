//! The plan cache.
//!
//! Plans are cached under a [`PlanKey`] — topology epoch, `k`, budget
//! band, subset — plus the sample-window version the plan was computed
//! against. A cached plan is *exactly* the plan scratch planning would
//! produce for any request mapping to the same key (the service plans
//! with the band-floor budget, a pure function of the key), which is what
//! makes cache hits transparent: bit-identical answers and energy charges
//! with the cache on or off.
//!
//! Invalidation is two-layered:
//! * **topology epoch** — node deaths, repairs and link degradations bump
//!   the service's topology epoch; since the epoch is part of the key,
//!   stale entries can never be *looked up*, and [`PlanCache::invalidate`]
//!   purges them eagerly so the cache cannot grow without bound.
//! * **window version** — every sample push or mask bumps the window
//!   version; a lookup whose stored version disagrees is evicted and
//!   counted as a miss, so a plan computed against old samples is never
//!   served.

use prospector_core::Plan;
use std::collections::BTreeMap;

/// What a plan is a function of: everything else (the topology itself,
/// the energy model, the planner) is fixed per topology epoch.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PlanKey {
    /// Bumped by every death/repair/degradation.
    pub topo_epoch: u64,
    /// Query parameter `k`.
    pub k: u32,
    /// `floor(budget / band_width)`: requests in the same band share a
    /// plan computed at the band floor.
    pub band: u64,
    /// Sorted, deduplicated subset node ids (`None` = whole network). The
    /// exact subset is stored — no fingerprints, no collisions.
    pub subset: Option<Vec<u32>>,
}

/// A cached plan plus the statistics that let the service skip both the
/// planner and the evaluator on a hit.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    pub plan: Plan,
    /// Expected accuracy of `plan` over the window it was planned on.
    pub expected_accuracy: f64,
    /// Sample-window version the plan was computed against.
    pub window_version: u64,
}

/// Cumulative cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered by a live entry.
    pub hits: u64,
    /// Lookups that found nothing usable (including stale evictions).
    pub misses: u64,
    /// Entries evicted on lookup because the sample window had moved.
    pub stale_evictions: u64,
    /// Entries purged by a topology-epoch bump.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hits over lookups, 0 when nothing was ever looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The cache proper. `BTreeMap` keeps iteration (and therefore purge
/// order) deterministic, like every other map on a traced path.
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: BTreeMap<PlanKey, CacheEntry>,
    stats: CacheStats,
}

impl PlanCache {
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Looks up a live entry for `key` at the current window version.
    /// An entry computed against an older window is evicted here — a
    /// stale plan is never returned.
    pub fn lookup(&mut self, key: &PlanKey, window_version: u64) -> Option<&CacheEntry> {
        match self.entries.get(key) {
            Some(e) if e.window_version == window_version => {
                self.stats.hits += 1;
                self.entries.get(key)
            }
            Some(_) => {
                self.entries.remove(key);
                self.stats.stale_evictions += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a freshly planned entry.
    pub fn insert(&mut self, key: PlanKey, entry: CacheEntry) {
        self.entries.insert(key, entry);
    }

    /// Purges every entry from a topology epoch other than `current`.
    /// Such entries could never be looked up again (the epoch is part of
    /// the key); this keeps the cache from growing without bound and
    /// makes the invalidation observable in [`CacheStats`].
    pub fn invalidate(&mut self, current_topo_epoch: u64) {
        let before = self.entries.len();
        self.entries.retain(|k, _| k.topo_epoch == current_topo_epoch);
        self.stats.invalidations += (before - self.entries.len()) as u64;
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(topo: u64, k: u32, band: u64) -> PlanKey {
        PlanKey { topo_epoch: topo, k, band, subset: None }
    }

    fn entry(version: u64) -> CacheEntry {
        CacheEntry { plan: Plan::empty(4), expected_accuracy: 1.0, window_version: version }
    }

    #[test]
    fn hit_then_stale_eviction() {
        let mut c = PlanCache::new();
        c.insert(key(0, 2, 3), entry(5));
        assert!(c.lookup(&key(0, 2, 3), 5).is_some());
        // The window moved: the entry must not be served.
        assert!(c.lookup(&key(0, 2, 3), 6).is_none());
        assert!(c.is_empty(), "stale entry evicted");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.stale_evictions), (1, 1, 1));
    }

    #[test]
    fn topology_bump_purges_old_epochs() {
        let mut c = PlanCache::new();
        c.insert(key(0, 2, 3), entry(0));
        c.insert(key(0, 3, 3), entry(0));
        c.insert(key(1, 2, 3), entry(0));
        c.invalidate(1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().invalidations, 2);
        assert!(c.lookup(&key(0, 2, 3), 0).is_none());
        assert!(c.lookup(&key(1, 2, 3), 0).is_some());
    }

    #[test]
    fn subset_keys_are_exact() {
        let mut c = PlanCache::new();
        let a = PlanKey { topo_epoch: 0, k: 1, band: 1, subset: Some(vec![1, 2]) };
        let b = PlanKey { topo_epoch: 0, k: 1, band: 1, subset: Some(vec![1, 3]) };
        c.insert(a.clone(), entry(0));
        assert!(c.lookup(&a, 0).is_some());
        assert!(c.lookup(&b, 0).is_none(), "different subsets never collide");
    }

    #[test]
    fn hit_rate_handles_empty() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats { hits: 3, misses: 1, ..Default::default() };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
