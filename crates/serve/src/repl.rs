//! The service loop behind the `serve` bin.
//!
//! Kept in the library (rather than the bin) so the robustness suite can
//! drive it directly: a hostile line must produce an `ERR` response and
//! leave the loop perfectly willing to serve the next good line.

use crate::protocol::{parse_line, Command, ProtocolError, MAX_LINE_BYTES};
use crate::request::QueryRequest;
use crate::service::QueryService;
use prospector_data::ValueSource;
use prospector_obs::NullTracer;

/// Root-side continuous bookkeeping for the line protocol: the last
/// value each node shipped, against the DESIGN.md §16 ship rule. A node
/// counts as a delta on a tick when it has never shipped or its reading
/// moved beyond the tolerance; the counter is surfaced as `deltas=` on
/// the `TICK` response (continuous sessions only — the classic response
/// shape is pinned by the `serve_burst` golden).
struct ContinuousTick {
    tolerance: f64,
    last_shipped: Vec<f64>,
}

impl ContinuousTick {
    /// Applies one epoch's readings and returns how many nodes shipped.
    fn deltas(&mut self, values: &[f64]) -> usize {
        let mut shipped = 0;
        for (last, &v) in self.last_shipped.iter_mut().zip(values) {
            if !last.is_finite() || (v - *last).abs() > self.tolerance {
                *last = v;
                shipped += 1;
            }
        }
        shipped
    }
}

/// A stateful line-protocol session over one [`QueryService`].
pub struct Repl<S: ValueSource> {
    service: QueryService,
    source: S,
    pending: Vec<QueryRequest>,
    done: bool,
    continuous: Option<ContinuousTick>,
}

impl<S: ValueSource> Repl<S> {
    pub fn new(service: QueryService, source: S) -> Self {
        Repl { service, source, pending: Vec::new(), done: false, continuous: None }
    }

    /// A session in continuous mode: `TICK` responses additionally
    /// report `deltas=`, the number of nodes whose reading moved beyond
    /// `tolerance` since they last shipped (every node ships on the
    /// first tick).
    pub fn continuous(service: QueryService, source: S, tolerance: f64) -> Self {
        let n = service.topology().len();
        Repl {
            service,
            source,
            pending: Vec::new(),
            done: false,
            continuous: Some(ContinuousTick {
                tolerance,
                last_shipped: vec![f64::NEG_INFINITY; n],
            }),
        }
    }

    /// True after a `QUIT`.
    pub fn done(&self) -> bool {
        self.done
    }

    pub fn service(&self) -> &QueryService {
        &self.service
    }

    /// Queued queries awaiting the next `TICK`.
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// Handles one raw input line (bytes, pre-newline-strip) and returns
    /// the response lines. Never panics on any input.
    pub fn handle_bytes(&mut self, raw: &[u8]) -> Vec<String> {
        if raw.len() > MAX_LINE_BYTES {
            // Refuse before UTF-8 validation: the length bound must hold
            // for arbitrary bytes.
            let e = ProtocolError::Oversized { len: raw.len(), max: MAX_LINE_BYTES };
            return vec![format!("ERR - {} {e}", e.code())];
        }
        match std::str::from_utf8(raw) {
            Ok(s) => self.handle_line(s),
            Err(_) => {
                let e = ProtocolError::BadUtf8;
                vec![format!("ERR - {} {e}", e.code())]
            }
        }
    }

    /// Handles one input line and returns the response lines.
    pub fn handle_line(&mut self, line: &str) -> Vec<String> {
        match parse_line(line) {
            Err(e) => vec![format!("ERR - {} {e}", e.code())],
            Ok(Command::Query(q)) => {
                let line = format!("QUEUED {}", q.id);
                self.pending.push(q);
                vec![line]
            }
            Ok(Command::Tick) => self.tick(),
            Ok(Command::Stats) => vec![self.stats_line()],
            Ok(Command::Quit) => {
                self.done = true;
                vec!["BYE".to_string()]
            }
        }
    }

    /// Advances one epoch and serves the queued batch.
    fn tick(&mut self) -> Vec<String> {
        let epoch = self.service.epoch().map_or(0, |e| e + 1);
        let values = self.source.values(epoch);
        let deltas = self.continuous.as_mut().map(|c| c.deltas(&values));
        let started = self.service.begin_epoch(&values, &mut NullTracer);
        let batch: Vec<QueryRequest> = std::mem::take(&mut self.pending);
        let results = self.service.serve_batch(&batch, &mut NullTracer);
        let mut out = Vec::with_capacity(batch.len() + 1);
        let mut served = 0usize;
        for (req, res) in batch.iter().zip(&results) {
            match res {
                Ok(r) => {
                    served += 1;
                    let answer: Vec<String> =
                        r.answer.iter().map(|a| format!("{}:{}", a.node.0, a.value)).collect();
                    out.push(format!(
                        "OK {} epoch={} cached={} energy={} acc={} n={} answer={}",
                        r.id,
                        r.epoch,
                        u8::from(r.cached),
                        r.energy_mj,
                        r.expected_accuracy,
                        r.answer.len(),
                        answer.join(",")
                    ));
                }
                Err(e) => out.push(format!("ERR {} {} {e}", req.id, e.code())),
            }
        }
        let mut tick_line = format!(
            "TICK {} sampled={} served={} rejected={}",
            started.epoch,
            u8::from(started.sampled),
            served,
            batch.len() - served
        );
        if let Some(deltas) = deltas {
            tick_line.push_str(&format!(" deltas={deltas}"));
        }
        out.push(tick_line);
        out
    }

    fn stats_line(&self) -> String {
        let s = self.service.stats();
        let c = self.service.cache_stats();
        format!(
            "STATS qdepth={} accepted={} rejected={} served={} hits={} misses={} \
             stale={} invalidated={} energy={}",
            self.pending.len(),
            s.accepted,
            s.rejected,
            s.served,
            c.hits,
            c.misses,
            c.stale_evictions,
            c.invalidations,
            self.service.meter().total()
        )
    }
}
