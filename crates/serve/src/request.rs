//! Service request and response types.

use prospector_data::Reading;
use prospector_net::NodeId;

/// One tenant's top-k query against the current epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Caller-chosen request id, echoed in responses and traces.
    pub id: u64,
    /// Tenant id, for traces and per-tenant accounting.
    pub tenant: u32,
    /// How many top values to return.
    pub k: usize,
    /// Collection-phase energy budget (mJ) the tenant is willing to pay.
    /// Admission reserves the *band floor* of this (see `PlanCache`), so
    /// the plan never costs more than the tenant offered.
    pub budget_mj: f64,
    /// Restrict the query to these nodes (top-k *within the subset*).
    /// `None` queries the whole network.
    pub subset: Option<Vec<NodeId>>,
    /// Last epoch at which the answer is still useful; requests whose
    /// deadline has passed are rejected instead of wasting energy.
    pub deadline: Option<u64>,
}

impl QueryRequest {
    /// A whole-network query with no deadline.
    pub fn simple(id: u64, tenant: u32, k: usize, budget_mj: f64) -> Self {
        QueryRequest { id, tenant, k, budget_mj, subset: None, deadline: None }
    }
}

/// A served answer. All fields except `cached` and `plan_ms` are pure
/// functions of the service's seeded state — `cached` reflects cache
/// occupancy and `plan_ms` measures wall clock, so the transparency
/// property compares everything else.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Echo of the tenant id.
    pub tenant: u32,
    /// Epoch the answer was collected in.
    pub epoch: u64,
    /// Whether a cached plan served this request (no planner ran).
    pub cached: bool,
    /// The collected top-k answer, in rank order.
    pub answer: Vec<Reading>,
    /// Window prediction for each answer node, parallel to `answer`.
    /// Cold-start abstention never reaches here — it surfaces as
    /// `ServiceError::InsufficientHistory` instead.
    pub predicted: Vec<f64>,
    /// Expected accuracy of the installed plan over the sample window.
    pub expected_accuracy: f64,
    /// Energy (mJ) this request's collection actually cost.
    pub energy_mj: f64,
    /// Wall-clock milliseconds spent planning for this request (0 when a
    /// cached plan was reused). Never traced.
    pub plan_ms: f64,
}
