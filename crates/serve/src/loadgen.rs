//! The closed-loop seeded load generator behind `serve --loadgen`.
//!
//! Drives one [`QueryService`] with a seeded multi-tenant request stream
//! whose parameters are drawn from small discrete pools — repeated (k,
//! band) pairs are the whole point, they are what the plan cache
//! amortizes — and reports queries/sec, p50/p99 plan latency and the
//! cache hit rate as `BENCH_serve.json`. Everything except the wall-clock
//! figures is a pure function of the seed.

use crate::request::QueryRequest;
use crate::service::{QueryService, ServiceConfig};
use prospector_core::FallbackPlanner;
use prospector_data::{IndependentGaussian, ValueSource};
use prospector_net::NetworkBuilder;
use prospector_obs::NullTracer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Workload shape. `fast()` is the CI profile (`SERVE_FAST=1`).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    pub nodes: usize,
    pub epochs: u64,
    /// Requests per epoch, over 4 tenants.
    pub per_epoch: usize,
    pub seed: u64,
    pub cache: bool,
}

impl LoadgenConfig {
    /// CI profile: small network, short run.
    pub fn fast() -> Self {
        LoadgenConfig { nodes: 30, epochs: 12, per_epoch: 16, seed: 11, cache: true }
    }

    /// Full profile for local benchmarking.
    pub fn full() -> Self {
        LoadgenConfig { nodes: 120, epochs: 40, per_epoch: 48, seed: 11, cache: true }
    }
}

/// What one load-generator run measured. The count fields are seeded and
/// deterministic; `wall_s`, `qps` and the latency percentiles are wall
/// clock.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    pub nodes: usize,
    pub epochs: u64,
    pub queries: u64,
    pub accepted: u64,
    pub rejected: u64,
    pub served: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_hit_rate: f64,
    pub energy_mj: f64,
    pub wall_s: f64,
    pub qps: f64,
    /// Percentiles over *fresh planner solves* (cache hits skip planning
    /// entirely, which is the point — their latency is ~0).
    pub plan_p50_ms: f64,
    pub plan_p99_ms: f64,
}

impl LoadgenReport {
    /// Hand-rolled JSON, one object (`BENCH_serve.json`).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"nodes\":{},\"epochs\":{},\"queries\":{},\"accepted\":{},",
                "\"rejected\":{},\"served\":{},\"cache_hits\":{},\"cache_misses\":{},",
                "\"cache_hit_rate\":{:.4},\"energy_mj\":{:.3},\"wall_s\":{:.3},",
                "\"qps\":{:.1},\"plan_p50_ms\":{:.3},\"plan_p99_ms\":{:.3}}}"
            ),
            self.nodes,
            self.epochs,
            self.queries,
            self.accepted,
            self.rejected,
            self.served,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate,
            self.energy_mj,
            self.wall_s,
            self.qps,
            self.plan_p50_ms,
            self.plan_p99_ms,
        )
    }
}

/// Percentile by nearest-rank over a sorted copy; 0 for an empty set.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.saturating_sub(1).min(samples.len() - 1)]
}

/// One seeded request: discrete pools keep (k, band) pairs repeating.
fn request(rng: &mut StdRng, id: u64, deadline_epoch: u64) -> QueryRequest {
    const KS: [usize; 3] = [2, 3, 4];
    const BUDGETS: [f64; 4] = [10.0, 15.0, 22.0, 30.0];
    let tenant = rng.random_range(0u32..4);
    let k = KS[rng.random_range(0usize..KS.len())];
    // A sliver of sub-band budgets exercises typed admission rejections.
    let budget_mj =
        if rng.random_bool(0.04) { 1.0 } else { BUDGETS[rng.random_range(0usize..BUDGETS.len())] };
    let deadline = rng.random_bool(0.1).then_some(deadline_epoch);
    QueryRequest { id, tenant, k, budget_mj, subset: None, deadline }
}

/// Runs the closed loop: each epoch begins, a seeded batch is built, the
/// batch is served to completion before the next epoch begins.
pub fn run_loadgen(cfg: &LoadgenConfig) -> LoadgenReport {
    let side = 40.0 * (cfg.nodes as f64).sqrt();
    let network = NetworkBuilder::new(cfg.nodes, side, side, 70.0)
        .seed(cfg.seed)
        .build()
        .expect("seeded placement connects");
    let service_config = ServiceConfig {
        window: 8,
        min_history: 1,
        band_width_mj: 5.0,
        epoch_budget_mj: cfg.per_epoch as f64 * 12.0,
        max_k: 8,
        // The window (and therefore every cached plan) refreshes every 4
        // epochs; between refreshes repeated (k, band) pairs hit.
        sample_every: 4,
        cache: cfg.cache,
        failures: None,
    };
    let mut service = QueryService::new(
        network.topology,
        prospector_net::EnergyModel::mica2(),
        Box::new(FallbackPlanner::standard()),
        service_config,
    )
    .expect("loadgen config is valid");
    let mut source =
        IndependentGaussian::random(cfg.nodes, 40.0..60.0, 1.0..4.0, cfg.seed ^ 0x5eed);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut next_id = 0u64;
    let mut queries = 0u64;
    let mut solve_ms: Vec<f64> = Vec::new();
    let started = Instant::now();
    for epoch in 0..cfg.epochs {
        let values = source.values(epoch);
        service.begin_epoch(&values, &mut NullTracer);
        let batch: Vec<QueryRequest> = (0..cfg.per_epoch)
            .map(|_| {
                next_id += 1;
                request(&mut rng, next_id, epoch)
            })
            .collect();
        queries += batch.len() as u64;
        for res in service.serve_batch(&batch, &mut NullTracer).iter().flatten() {
            if !res.cached {
                solve_ms.push(res.plan_ms);
            }
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    let stats = service.stats();
    let cache = service.cache_stats();
    LoadgenReport {
        nodes: cfg.nodes,
        epochs: cfg.epochs,
        queries,
        accepted: stats.accepted,
        rejected: stats.rejected,
        served: stats.served,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_hit_rate: cache.hit_rate(),
        energy_mj: service.meter().total(),
        wall_s,
        qps: if wall_s > 0.0 { queries as f64 / wall_s } else { 0.0 },
        plan_p50_ms: percentile(&mut solve_ms.clone(), 50.0),
        plan_p99_ms: percentile(&mut solve_ms, 99.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_profile_hits_the_cache_well_over_half_the_time() {
        let report = run_loadgen(&LoadgenConfig::fast());
        assert!(report.queries > 0);
        assert!(report.served > 0);
        assert!(report.rejected > 0, "workload includes sub-band budgets");
        assert!(
            report.cache_hit_rate > 0.5,
            "repeated-query workload must mostly hit: {:?}",
            report.cache_hit_rate
        );
    }

    #[test]
    fn counts_are_seed_deterministic() {
        let a = run_loadgen(&LoadgenConfig::fast());
        let b = run_loadgen(&LoadgenConfig::fast());
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.energy_mj.to_bits(), b.energy_mj.to_bits());
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&mut v, 50.0), 2.0);
        assert_eq!(percentile(&mut v, 99.0), 4.0);
        assert_eq!(percentile(&mut [], 50.0), 0.0);
    }
}
