//! The `serve` bin: line-protocol REPL, load generator, golden printer.
//!
//! ```text
//! serve                 line-protocol REPL on stdin/stdout
//!       [--continuous]  continuous session: TICK reports deltas=
//!                       (ship-rule tolerance 0.5)
//! serve --loadgen       closed-loop load generator → BENCH_serve.json
//!       [--fast]        CI profile (also via SERVE_FAST=1)
//!       [--cache-off]   plan every request from scratch
//!       [--out PATH]    report path (default BENCH_serve.json)
//! serve --golden        print the serve_burst golden trace (for CI cmp)
//! ```

use prospector_data::IndependentGaussian;
use prospector_net::{topology, EnergyModel};
use prospector_serve::{golden, loadgen, Repl, ServiceConfig};
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    if has("--golden") {
        print!("{}", golden::serve_burst_trace());
        return;
    }
    if has("--loadgen") {
        let fast = has("--fast") || std::env::var("SERVE_FAST").is_ok_and(|v| v == "1");
        let mut cfg =
            if fast { loadgen::LoadgenConfig::fast() } else { loadgen::LoadgenConfig::full() };
        cfg.cache = !has("--cache-off");
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "BENCH_serve.json".to_string());
        let report = loadgen::run_loadgen(&cfg);
        let json = report.to_json();
        if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
            eprintln!("serve: cannot write {out}: {e}");
            std::process::exit(1);
        }
        println!("{json}");
        eprintln!(
            "serve: {} queries, {:.0} q/s, hit rate {:.1}%, plan p50 {:.3} ms p99 {:.3} ms → {out}",
            report.queries,
            report.qps,
            100.0 * report.cache_hit_rate,
            report.plan_p50_ms,
            report.plan_p99_ms,
        );
        return;
    }
    repl(has("--continuous"));
}

/// The interactive loop: one golden-sized network, default service
/// config, responses flushed per line. In continuous mode the session
/// tracks last-shipped values and `TICK` reports `deltas=`.
fn repl(continuous: bool) {
    let tree = topology::balanced(3, 2);
    let n = tree.len();
    let service = prospector_serve::QueryService::new(
        tree,
        EnergyModel::mica2(),
        Box::new(prospector_core::FallbackPlanner::standard()),
        ServiceConfig::default(),
    )
    .expect("default config is valid");
    let source = IndependentGaussian::random(n, 40.0..60.0, 1.0..4.0, 21);
    let mut session = if continuous {
        Repl::continuous(service, source, 0.5)
    } else {
        Repl::new(service, source)
    };
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let mut line = Vec::new();
    loop {
        line.clear();
        match stdin.lock().read_until(b'\n', &mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {
                while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
                    line.pop();
                }
                for response in session.handle_bytes(&line) {
                    let _ = writeln!(stdout, "{response}");
                }
                let _ = stdout.flush();
                if session.done() {
                    break;
                }
            }
            Err(e) => {
                eprintln!("serve: stdin error: {e}");
                break;
            }
        }
    }
}
