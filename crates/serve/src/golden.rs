//! The `serve_burst` golden scenario.
//!
//! A seeded 3-tenant burst over the canonical 13-node balanced tree:
//! tenants 0 and 1 query the same budget band every epoch (the second is
//! a cache hit from epoch 1 on), tenant 2 queries a higher band; epoch 3
//! adds one over-ledger request that admission rejects with a typed
//! error, and node death before epoch 6 forces a tree repair and a cache
//! invalidation. The serialized event stream is byte-diffed against
//! `tests/golden/serve_burst.jsonl` by `tests/golden_serve.rs` and the CI
//! determinism loop (1 thread vs default).

use crate::request::QueryRequest;
use crate::service::{QueryService, ServiceConfig};
use prospector_core::FallbackPlanner;
use prospector_data::{IndependentGaussian, ValueSource};
use prospector_net::{topology, EnergyModel, Topology};
use prospector_obs::{event, RingTracer, TraceEvent};

/// Epochs the burst runs for.
pub const EPOCHS: u64 = 10;

/// The epoch whose `begin_epoch` follows the node death.
pub const DEATH_BEFORE_EPOCH: u64 = 6;

fn tree() -> Topology {
    topology::balanced(3, 2) // 13 nodes, matching the runner scenarios
}

/// The scenario's service, fresh.
pub fn service() -> QueryService {
    let config = ServiceConfig {
        window: 8,
        min_history: 1,
        band_width_mj: 5.0,
        epoch_budget_mj: 50.0,
        max_k: 6,
        sample_every: 2,
        cache: true,
        failures: None,
    };
    QueryService::new(tree(), EnergyModel::mica2(), Box::new(FallbackPlanner::standard()), config)
        .expect("serve_burst config is valid")
}

/// The scenario's value source (epoch-deterministic).
pub fn source() -> IndependentGaussian {
    IndependentGaussian::random(tree().len(), 40.0..60.0, 1.0..4.0, 21)
}

/// The request batch for one epoch. Tenants 0 and 1 land in the same
/// (k, band) key — one plans, the other hits; tenant 2 gets its own key.
/// Ledger per epoch: 10 + 10 + 25 = 45 of 50 mJ, so epoch 3's extra
/// request (another 25 mJ) is the scenario's admission rejection.
pub fn burst(epoch: u64) -> Vec<QueryRequest> {
    let base = 100 * (epoch + 1);
    let mut batch = vec![
        QueryRequest::simple(base, 0, 3, 12.0),
        QueryRequest::simple(base + 1, 1, 3, 13.0),
        QueryRequest::simple(base + 2, 2, 5, 27.0),
    ];
    if epoch == 3 {
        batch.push(QueryRequest::simple(base + 3, 2, 5, 27.0));
    }
    batch
}

/// Runs the burst and returns its full event stream.
pub fn serve_burst_events() -> Vec<TraceEvent> {
    let mut service = service();
    let mut source = source();
    let mut tracer = RingTracer::new(1 << 16);
    for epoch in 0..EPOCHS {
        if epoch == DEATH_BEFORE_EPOCH {
            let victim = service.topology().children(service.topology().root())[1];
            service.kill_node(victim, &mut tracer).expect("victim is not the root");
        }
        let values = source.values(epoch);
        service.begin_epoch(&values, &mut tracer);
        service.serve_batch(&burst(epoch), &mut tracer);
    }
    assert_eq!(tracer.dropped(), 0, "ring capacity must cover the whole scenario");
    tracer.take()
}

/// The serialized JSONL the golden file stores byte-for-byte.
pub fn serve_burst_trace() -> String {
    event::to_jsonl(&serve_burst_events())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_is_reproducible_in_process() {
        assert_eq!(serve_burst_trace(), serve_burst_trace());
    }

    #[test]
    fn burst_exercises_the_advertised_lifecycle() {
        let events = serve_burst_events();
        let rejected =
            events.iter().filter(|e| matches!(e, TraceEvent::RequestRejected { .. })).count();
        assert_eq!(rejected, 1, "exactly one admission rejection");
        assert!(events.iter().any(
            |e| matches!(e, TraceEvent::RequestRejected { reason, .. } if reason.contains("ledger"))
        ));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::NodeDeath { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::TreeRepaired { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::PlanCacheHit { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::PlanCacheMiss { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::BatchPlanned { .. })));
        // The death invalidates every cached plan: the epoch right after
        // it must re-plan (a miss at the new topology epoch).
        let hit_after_death =
            events.iter().any(|e| matches!(e, TraceEvent::PlanCacheHit { topo_epoch: 1, .. }));
        let miss_after_death =
            events.iter().any(|e| matches!(e, TraceEvent::PlanCacheMiss { topo_epoch: 1, .. }));
        assert!(miss_after_death, "post-death epochs plan fresh");
        assert!(hit_after_death, "and the cache warms back up");
    }
}
