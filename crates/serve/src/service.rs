//! The multi-tenant query service.
//!
//! One [`QueryService`] owns a metered network (topology + energy model +
//! cumulative [`EnergyMeter`]) and a shared sample window, and serves
//! batches of [`QueryRequest`]s against them. Per epoch:
//!
//! 1. [`QueryService::begin_epoch`] ingests the epoch's ground-truth
//!    readings, optionally runs a full-network sweep that feeds the
//!    sample window (charged under [`Phase::Sampling`], like the
//!    simulator's runner), and resets the admission ledger.
//! 2. [`QueryService::serve_batch`] validates and admits each request in
//!    order (typed [`AdmitError`] rejections, never silent), plans once
//!    per unique [`PlanKey`] — the plan cache *is* the batching: the
//!    first request of a key plans and caches, every same-key request
//!    after it (same batch or later epochs) reuses the entry — and then
//!    executes every admitted request's collection phase, merging its
//!    energy into the service meter.
//!
//! **Cache transparency.** The service plans with the *band-floor* budget
//! (`floor(budget / band_width) × band_width`), a pure function of the
//! cache key, so a cached plan is bit-identical to what scratch planning
//! would produce for any request in the band. With the cache disabled the
//! service plans every admitted request from scratch; answers, energy
//! charges and all non-cache trace events are byte-identical either way.
//! `tests/proptest_serve.rs` proves this and the `serve_burst` golden
//! pins it.

use crate::cache::{CacheEntry, CacheStats, PlanCache, PlanKey};
use crate::error::{AdmitError, ConfigError, RequestError, ServiceError};
use crate::request::{QueryRequest, QueryResponse};
use prospector_core::{evaluate, Plan, PlanContext, Planner};
use prospector_data::SampleSet;
use prospector_net::{
    EnergyMeter, EnergyModel, FailureModel, NodeId, Phase, RepairError, Topology,
};
use prospector_obs::{TraceEvent, Tracer};
use std::collections::VecDeque;
use std::time::Instant;

/// Service-level knobs. Validated by [`QueryService::new`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Sample-window capacity (full-network sweeps retained).
    pub window: usize,
    /// Minimum window samples before any request is served; colder
    /// windows get [`ServiceError::InsufficientHistory`].
    pub min_history: usize,
    /// Budget quantum: requests are admitted into band
    /// `floor(budget / band_width_mj)` and planned at the band floor.
    pub band_width_mj: f64,
    /// Collection energy the admission ledger hands out per epoch.
    pub epoch_budget_mj: f64,
    /// Largest `k` any tenant may ask for.
    pub max_k: usize,
    /// Run a window-feeding sweep every `sample_every` epochs (epoch 0
    /// always sweeps).
    pub sample_every: u64,
    /// Plan-cache toggle. Disabling it must not change any answer or
    /// charge — that is the transparency property.
    pub cache: bool,
    /// Link-failure statistics for the planners' cost model (execution
    /// itself is reliable here); degradations update this in place.
    pub failures: Option<FailureModel>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            window: 8,
            min_history: 1,
            band_width_mj: 5.0,
            epoch_budget_mj: 50.0,
            max_k: 8,
            sample_every: 2,
            cache: true,
            failures: None,
        }
    }
}

impl ServiceConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        if !(self.band_width_mj.is_finite() && self.band_width_mj > 0.0) {
            return Err(ConfigError::BadBandWidth { band_width_mj: self.band_width_mj });
        }
        if !(self.epoch_budget_mj.is_finite() && self.epoch_budget_mj >= 0.0) {
            return Err(ConfigError::BadEpochBudget { epoch_budget_mj: self.epoch_budget_mj });
        }
        if self.window < 1 || self.sample_every < 1 || self.max_k < 1 {
            return Err(ConfigError::BadShape {
                window: self.window,
                sample_every: self.sample_every,
                max_k: self.max_k,
            });
        }
        Ok(())
    }
}

/// What [`QueryService::begin_epoch`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStart {
    pub epoch: u64,
    /// Whether a window-feeding sweep ran this epoch.
    pub sampled: bool,
    /// Energy the sweep cost (0 when `sampled` is false).
    pub sweep_mj: f64,
}

/// Cumulative service counters (cache counters live in [`CacheStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests that cleared validation and admission.
    pub accepted: u64,
    /// Requests rejected by validation or admission.
    pub rejected: u64,
    /// Requests actually answered (accepted minus planner failures).
    pub served: u64,
    /// Accepted requests whose whole fallback chain failed to plan.
    pub plan_failures: u64,
}

/// The service. See the module docs for the epoch lifecycle.
pub struct QueryService {
    topology: Topology,
    energy: EnergyModel,
    planner: Box<dyn Planner>,
    config: ServiceConfig,
    alive: Vec<bool>,
    /// Current epoch; `None` until the first [`QueryService::begin_epoch`].
    epoch: Option<u64>,
    /// Bumped by every death/repair/degradation; part of every cache key.
    topo_epoch: u64,
    /// Bumped by every window push or mask; validates cache entries.
    window_version: u64,
    /// Masked raw sweep rows, oldest first (dead nodes at `-inf`).
    raw_window: VecDeque<Vec<f64>>,
    /// Current epoch's masked ground truth.
    truth: Vec<f64>,
    cache: PlanCache,
    /// Collection energy still grantable this epoch.
    ledger_remaining: f64,
    /// Cumulative per-node/per-phase energy across the service lifetime.
    meter: EnergyMeter,
    stats: ServiceStats,
}

impl QueryService {
    pub fn new(
        topology: Topology,
        energy: EnergyModel,
        planner: Box<dyn Planner>,
        config: ServiceConfig,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let n = topology.len();
        Ok(QueryService {
            topology,
            energy,
            planner,
            config,
            alive: vec![true; n],
            epoch: None,
            topo_epoch: 0,
            window_version: 0,
            raw_window: VecDeque::new(),
            truth: vec![f64::NEG_INFINITY; n],
            cache: PlanCache::new(),
            ledger_remaining: 0.0,
            meter: EnergyMeter::new(n),
            stats: ServiceStats::default(),
        })
    }

    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    pub fn epoch(&self) -> Option<u64> {
        self.epoch
    }

    pub fn topo_epoch(&self) -> u64 {
        self.topo_epoch
    }

    pub fn window_len(&self) -> usize {
        self.raw_window.len()
    }

    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    pub fn ledger_remaining(&self) -> f64 {
        self.ledger_remaining
    }

    /// Mirrors one energy charge into the meter and the trace, like the
    /// simulator's runner does.
    fn charge(&mut self, tracer: &mut dyn Tracer, node: NodeId, phase: Phase, mj: f64) {
        self.meter.charge(node, phase, mj);
        if tracer.enabled() {
            tracer.record(TraceEvent::Energy { node: node.0, phase: phase.name(), mj });
        }
    }

    /// Starts the next epoch: ingests `values` as ground truth (dead
    /// nodes masked), runs the periodic window-feeding sweep, and resets
    /// the admission ledger.
    ///
    /// Panics if `values` is the wrong length — that is a programming
    /// error of the driver, not tenant input.
    pub fn begin_epoch(&mut self, values: &[f64], tracer: &mut dyn Tracer) -> EpochStart {
        assert_eq!(values.len(), self.topology.len(), "value vector size mismatch");
        let epoch = self.epoch.map_or(0, |e| e + 1);
        self.epoch = Some(epoch);
        if tracer.enabled() {
            tracer.record(TraceEvent::EpochStart { epoch });
        }
        self.truth = values.to_vec();
        for (i, v) in self.truth.iter_mut().enumerate() {
            if !self.alive[i] {
                *v = f64::NEG_INFINITY;
            }
        }
        let sampled = epoch.is_multiple_of(self.config.sample_every);
        let mut sweep_mj = 0.0;
        if sampled {
            sweep_mj = self.sweep(tracer);
            if self.raw_window.len() == self.config.window {
                self.raw_window.pop_front();
            }
            self.raw_window.push_back(self.truth.clone());
            self.window_version += 1;
        }
        self.ledger_remaining = self.config.epoch_budget_mj;
        EpochStart { epoch, sampled, sweep_mj }
    }

    /// Full-network sweep feeding the sample window: every live edge
    /// ships its whole subtree. Charges are re-attributed to
    /// [`Phase::Sampling`] per node, exactly like the simulator's runner.
    fn sweep(&mut self, tracer: &mut dyn Tracer) -> f64 {
        let mut plan = Plan::full_sweep(&self.topology);
        for i in 0..self.topology.len() {
            if !self.alive[i] {
                plan.set_bandwidth(NodeId::from_index(i), 0);
            }
        }
        let report =
            prospector_sim::execute_plan(&plan, &self.topology, &self.energy, &self.truth, 1, None);
        let mut total = 0.0;
        for i in 0..self.topology.len() {
            let node = NodeId::from_index(i);
            let mj = report.meter.node_total(node);
            if mj > 0.0 {
                self.charge(tracer, node, Phase::Sampling, mj);
                total += mj;
            }
        }
        total
    }

    /// Kills `node` permanently: masks it everywhere, repairs the
    /// spanning tree (re-attachment handshakes charged under
    /// [`Phase::Repair`]), bumps the topology epoch and invalidates the
    /// plan cache. Killing an already-dead node is a no-op.
    pub fn kill_node(&mut self, node: NodeId, tracer: &mut dyn Tracer) -> Result<(), RepairError> {
        let repaired = self.topology.repair(&[node])?;
        if !self.alive[node.index()] {
            return Ok(());
        }
        self.alive[node.index()] = false;
        if tracer.enabled() {
            tracer.record(TraceEvent::NodeDeath { node: node.0 });
        }
        // Every node the repair re-parented pays one re-attachment
        // handshake, in node order.
        for i in 0..self.topology.len() {
            let id = NodeId::from_index(i);
            if id != self.topology.root()
                && self.alive[i]
                && repaired.parent(id) != self.topology.parent(id)
            {
                self.charge(tracer, id, Phase::Repair, self.energy.repair_handshake());
            }
        }
        self.topology = repaired;
        if tracer.enabled() {
            tracer.record(TraceEvent::TreeRepaired { deaths: 1 });
        }
        for row in &mut self.raw_window {
            row[node.index()] = f64::NEG_INFINITY;
        }
        self.truth[node.index()] = f64::NEG_INFINITY;
        self.window_version += 1;
        self.topo_epoch += 1;
        self.cache.invalidate(self.topo_epoch);
        Ok(())
    }

    /// Raises the loss probability of the edge above `child` in the
    /// planners' failure model, bumping the topology epoch — degraded
    /// links change plan costs, so cached plans must not survive.
    pub fn degrade_link(
        &mut self,
        child: NodeId,
        added_prob: f64,
        tracer: &mut dyn Tracer,
    ) -> Result<(), prospector_net::FailureModelError> {
        let n = self.topology.len();
        let failures = self.config.failures.get_or_insert_with(|| FailureModel::none(n));
        failures.degrade(child, added_prob)?;
        if tracer.enabled() {
            tracer.record(TraceEvent::LinkDegraded { child: child.0, added: added_prob });
        }
        self.topo_epoch += 1;
        self.cache.invalidate(self.topo_epoch);
        Ok(())
    }

    /// The band a budget falls into (`None` below one band). Saturating
    /// float→int conversion keeps absurd budgets finite.
    fn band(&self, budget_mj: f64) -> Option<u64> {
        let band = (budget_mj / self.config.band_width_mj).floor() as u64;
        (band >= 1).then_some(band)
    }

    fn validate(&self, req: &QueryRequest) -> Result<(), ServiceError> {
        if self.epoch.is_none() {
            return Err(ServiceError::NoEpoch);
        }
        if self.raw_window.len() < self.config.min_history {
            return Err(ServiceError::InsufficientHistory {
                have: self.raw_window.len(),
                need: self.config.min_history,
            });
        }
        let n = self.topology.len();
        let queryable = match &req.subset {
            None => n,
            Some(subset) => {
                if let Some(bad) = subset.iter().find(|id| id.index() >= n) {
                    return Err(RequestError::SubsetOutOfRange { node: bad.0, n }.into());
                }
                let mut ids: Vec<u32> = subset.iter().map(|id| id.0).collect();
                ids.sort_unstable();
                ids.dedup();
                if ids.is_empty() {
                    return Err(RequestError::EmptySubset.into());
                }
                ids.len()
            }
        };
        let max = self.config.max_k.min(queryable);
        if req.k == 0 || req.k > max {
            return Err(RequestError::BadK { k: req.k, max }.into());
        }
        if !(req.budget_mj.is_finite() && req.budget_mj > 0.0) {
            return Err(RequestError::BadBudget { budget_mj: req.budget_mj }.into());
        }
        Ok(())
    }

    /// Admission proper: deadline, band floor, energy ledger. Reserves
    /// the band-floor budget on success.
    fn admit(&mut self, req: &QueryRequest, epoch: u64) -> Result<u64, ServiceError> {
        if let Some(deadline) = req.deadline {
            if deadline < epoch {
                return Err(AdmitError::DeadlineExpired { deadline, epoch }.into());
            }
        }
        let band = self.band(req.budget_mj).ok_or(AdmitError::BudgetBelowBand {
            budget_mj: req.budget_mj,
            band_mj: self.config.band_width_mj,
        })?;
        let banded_mj = band as f64 * self.config.band_width_mj;
        if banded_mj > self.ledger_remaining {
            return Err(AdmitError::EnergyExhausted {
                requested_mj: banded_mj,
                remaining_mj: self.ledger_remaining,
            }
            .into());
        }
        self.ledger_remaining -= banded_mj;
        Ok(band)
    }

    /// The sample window as a [`SampleSet`] for one cache key: raw rows
    /// replayed at the key's `k`, then masked down to the key's subset
    /// and the live nodes. A pure function of (window content, key), so
    /// rebuilding it per key is transparent.
    fn build_samples(&self, k: usize, subset: Option<&[u32]>) -> SampleSet {
        let n = self.topology.len();
        let mut samples = SampleSet::new(n, k, self.config.window);
        for row in &self.raw_window {
            samples.push(row.clone());
        }
        let mut masked: Vec<NodeId> = Vec::new();
        for i in 0..n {
            let in_subset = subset.is_none_or(|s| s.binary_search(&(i as u32)).is_ok());
            if !self.alive[i] || !in_subset {
                masked.push(NodeId::from_index(i));
            }
        }
        samples.mask_nodes(&masked);
        samples
    }

    /// Serves one batch of requests against the current epoch. Responses
    /// come back in request order; every rejection is typed and traced.
    pub fn serve_batch(
        &mut self,
        requests: &[QueryRequest],
        tracer: &mut dyn Tracer,
    ) -> Vec<Result<QueryResponse, ServiceError>> {
        let epoch = self.epoch.unwrap_or(0);
        // Phase A: validate + admit in request order. `admitted[i]` holds
        // the request's cache key once it clears the ledger.
        let mut admitted: Vec<Option<PlanKey>> = Vec::with_capacity(requests.len());
        let mut results: Vec<Result<QueryResponse, ServiceError>> =
            Vec::with_capacity(requests.len());
        for req in requests {
            let outcome = self.validate(req).and_then(|()| self.admit(req, epoch));
            match outcome {
                Ok(band) => {
                    let subset = req.subset.as_ref().map(|s| {
                        let mut ids: Vec<u32> = s.iter().map(|id| id.0).collect();
                        ids.sort_unstable();
                        ids.dedup();
                        ids
                    });
                    let key =
                        PlanKey { topo_epoch: self.topo_epoch, k: req.k as u32, band, subset };
                    if tracer.enabled() {
                        tracer.record(TraceEvent::RequestAccepted {
                            id: req.id,
                            tenant: req.tenant,
                            k: req.k as u32,
                            band,
                        });
                    }
                    self.stats.accepted += 1;
                    admitted.push(Some(key));
                    results.push(Err(ServiceError::NoEpoch)); // placeholder
                }
                Err(e) => {
                    if tracer.enabled() {
                        tracer.record(TraceEvent::RequestRejected {
                            id: req.id,
                            tenant: req.tenant,
                            reason: e.to_string(),
                        });
                    }
                    self.stats.rejected += 1;
                    admitted.push(None);
                    results.push(Err(e));
                }
            }
        }

        // Phase B: plan once per unique key, in request order. With the
        // cache on, the cache itself is the batch structure: the first
        // request of a key plans and inserts, same-key requests hit. With
        // the cache off every admitted request plans from scratch.
        struct Batched {
            key: PlanKey,
            plan: Plan,
            expected_accuracy: f64,
            samples: SampleSet,
            cached: bool,
            plan_ms: f64,
        }
        let mut batch: Vec<Option<Result<Batched, ServiceError>>> = Vec::new();
        let mut unique: Vec<&PlanKey> = Vec::new();
        let mut planned_count = 0u32;
        for (req, key) in requests.iter().zip(&admitted) {
            let Some(key) = key else {
                batch.push(None);
                continue;
            };
            if !unique.contains(&key) {
                unique.push(key);
            }
            let banded_mj = key.band as f64 * self.config.band_width_mj;
            let subset = key.subset.as_deref();
            if self.config.cache {
                if let Some(entry) = self.cache.lookup(key, self.window_version) {
                    let (plan, acc) = (entry.plan.clone(), entry.expected_accuracy);
                    if tracer.enabled() {
                        tracer.record(TraceEvent::PlanCacheHit {
                            topo_epoch: key.topo_epoch,
                            k: key.k,
                            band: key.band,
                        });
                    }
                    batch.push(Some(Ok(Batched {
                        key: key.clone(),
                        plan,
                        expected_accuracy: acc,
                        samples: self.build_samples(req.k, subset),
                        cached: true,
                        plan_ms: 0.0,
                    })));
                    continue;
                }
                if tracer.enabled() {
                    tracer.record(TraceEvent::PlanCacheMiss {
                        topo_epoch: key.topo_epoch,
                        k: key.k,
                        band: key.band,
                    });
                }
            }
            let samples = self.build_samples(req.k, subset);
            let mut ctx = PlanContext::new(&self.topology, &self.energy, &samples, banded_mj);
            if let Some(f) = &self.config.failures {
                ctx = ctx.with_failures(f);
            }
            let started = Instant::now();
            let planned = self.planner.plan(&ctx);
            let plan_ms = started.elapsed().as_secs_f64() * 1e3;
            planned_count += 1;
            match planned {
                Ok(plan) => {
                    let acc = evaluate::expected_accuracy(&plan, &self.topology, &samples);
                    if self.config.cache {
                        self.cache.insert(
                            key.clone(),
                            CacheEntry {
                                plan: plan.clone(),
                                expected_accuracy: acc,
                                window_version: self.window_version,
                            },
                        );
                    }
                    batch.push(Some(Ok(Batched {
                        key: key.clone(),
                        plan,
                        expected_accuracy: acc,
                        samples,
                        cached: false,
                        plan_ms,
                    })));
                }
                Err(e) => {
                    self.stats.plan_failures += 1;
                    batch.push(Some(Err(ServiceError::Plan(e))));
                }
            }
        }

        // Phase C: execute every planned request's collection phase, in
        // request order, merging each bill into the service meter.
        for (i, (req, slot)) in requests.iter().zip(batch).enumerate() {
            let Some(outcome) = slot else { continue };
            let b = match outcome {
                Ok(b) => b,
                Err(e) => {
                    results[i] = Err(e);
                    continue;
                }
            };
            let truth: Vec<f64> = match &b.key.subset {
                None => self.truth.clone(),
                Some(subset) => {
                    let mut t = vec![f64::NEG_INFINITY; self.truth.len()];
                    for &id in subset {
                        t[id as usize] = self.truth[id as usize];
                    }
                    t
                }
            };
            let report = prospector_sim::execute_plan_traced(
                &b.plan,
                &self.topology,
                &self.energy,
                &truth,
                req.k,
                None,
                tracer,
            );
            self.meter.merge(&report.meter);
            let answer: Vec<_> =
                report.answer.into_iter().filter(|r| r.value.is_finite()).collect();
            let mut predicted = Vec::with_capacity(answer.len());
            let mut cold = None;
            for r in &answer {
                match b.samples.predicted_value(r.node) {
                    Some(p) => predicted.push(p),
                    None => {
                        // The window abstained for a node we just heard
                        // from: typed cold-start error, never an unwrap.
                        cold = Some(ServiceError::InsufficientHistory { have: 0, need: 1 });
                        break;
                    }
                }
            }
            results[i] = match cold {
                Some(e) => Err(e),
                None => {
                    self.stats.served += 1;
                    Ok(QueryResponse {
                        id: req.id,
                        tenant: req.tenant,
                        epoch,
                        cached: b.cached,
                        answer,
                        predicted,
                        expected_accuracy: b.expected_accuracy,
                        energy_mj: report.meter.total(),
                        plan_ms: b.plan_ms,
                    })
                }
            };
        }

        let admitted_count = admitted.iter().flatten().count() as u32;
        if tracer.enabled() {
            tracer.record(TraceEvent::BatchPlanned {
                requests: admitted_count,
                unique_keys: unique.len() as u32,
                planned: planned_count,
            });
        }
        results
    }
}
